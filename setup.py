"""Setuptools shim for offline legacy editable installs (no wheel pkg)."""
from setuptools import setup

setup()
