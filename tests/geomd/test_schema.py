"""Tests for the GeoMD schema and its personalization algebra."""

import pytest

from repro.data import build_sales_schema
from repro.errors import SchemaError
from repro.geomd import GEOMETRY_ATTRIBUTE, GeoMDSchema, GeometricType, Layer
from repro.mdm.model import Attribute
from repro.uml.core import STRING


@pytest.fixture()
def geo():
    return GeoMDSchema.from_md(build_sales_schema())


class TestLift:
    def test_from_md_is_independent_copy(self, geo):
        md = build_sales_schema()
        geo.become_spatial("Store.Store", GeometricType.POINT)
        # Lifting again from the original must not see the change.
        fresh = GeoMDSchema.from_md(md)
        assert not fresh.spatial_levels
        assert GEOMETRY_ATTRIBUTE not in md.dimensions["Store"].levels["Store"].attributes

    def test_initially_not_spatial(self, geo):
        assert geo.layers == {}
        assert geo.spatial_levels == {}


class TestBecomeSpatial:
    def test_adds_geometry_attribute(self, geo):
        geo.become_spatial("Store.Store", GeometricType.POINT)
        level = geo.dimension("Store").level("Store")
        assert GEOMETRY_ATTRIBUTE in level.attributes
        assert geo.is_spatial_level("Store.Store")
        assert geo.level_geometric_type("Store.Store") is GeometricType.POINT

    def test_dimension_shorthand_targets_leaf(self, geo):
        geo.become_spatial("Store", GeometricType.POINT)
        assert geo.is_spatial_level("Store.Store")

    def test_idempotent_same_type(self, geo):
        geo.become_spatial("Store.Store", GeometricType.POINT)
        geo.become_spatial("Store.Store", GeometricType.POINT)
        assert geo.level_geometric_type("Store.Store") is GeometricType.POINT

    def test_conflicting_type_rejected(self, geo):
        geo.become_spatial("Store.Store", GeometricType.POINT)
        with pytest.raises(SchemaError):
            geo.become_spatial("Store.Store", GeometricType.POLYGON)

    def test_unknown_level_rejected(self, geo):
        with pytest.raises(SchemaError):
            geo.become_spatial("Store.Planet", GeometricType.POINT)

    def test_bad_ref_shape(self, geo):
        with pytest.raises(SchemaError):
            geo.become_spatial("Store.City.name", GeometricType.POINT)

    def test_non_spatial_level_type_query_fails(self, geo):
        with pytest.raises(SchemaError):
            geo.level_geometric_type("Store.City")


class TestAddLayer:
    def test_basic(self, geo):
        layer = geo.add_layer("Airport", GeometricType.POINT)
        assert layer.name == "Airport"
        assert geo.layer("Airport").geometric_type is GeometricType.POINT

    def test_name_attribute_added(self, geo):
        layer = geo.add_layer("Airport", GeometricType.POINT)
        assert "name" in layer.attributes

    def test_idempotent_same_type(self, geo):
        first = geo.add_layer("Airport", GeometricType.POINT)
        second = geo.add_layer("Airport", GeometricType.POINT)
        assert first is second

    def test_conflicting_type_rejected(self, geo):
        geo.add_layer("Airport", GeometricType.POINT)
        with pytest.raises(SchemaError):
            geo.add_layer("Airport", GeometricType.LINE)

    def test_unknown_layer_lookup(self, geo):
        with pytest.raises(SchemaError):
            geo.layer("Ghost")

    def test_layer_with_attributes(self, geo):
        layer = geo.add_layer(
            "Highway",
            GeometricType.LINE,
            [Attribute("lanes", STRING)],
        )
        assert "lanes" in layer.attributes

    def test_layer_requires_name(self):
        with pytest.raises(SchemaError):
            Layer("", GeometricType.POINT)


class TestSerialization:
    def test_round_trip(self, geo):
        geo.become_spatial("Store.Store", GeometricType.POINT)
        geo.add_layer("Airport", GeometricType.POINT)
        geo.add_layer("Train", GeometricType.LINE)
        rebuilt = GeoMDSchema.from_dict(geo.to_dict())
        assert rebuilt.to_dict() == geo.to_dict()
        assert rebuilt.is_spatial_level("Store.Store")
        assert rebuilt.layer("Train").geometric_type is GeometricType.LINE
