"""Tests for topological hierarchy constraints over warehouse instances."""

import pytest

from repro.geomd import (
    GeoMDSchema,
    GeometricType,
    HierarchyConstraint,
    TopologicalRelation,
    check_constraint,
)
from repro.geometry import Point, Polygon
from repro.mdm.model import Dimension, Fact, Hierarchy, Level, Measure
from repro.storage import StarSchema
from repro.uml.core import INTEGER


def _geo_star():
    dim = Dimension(
        "Store",
        [Level("Store"), Level("City")],
        [Hierarchy("geo", ["Store", "City"])],
        leaf="Store",
    )
    fact = Fact("Sales", ["Store"], [Measure("units", INTEGER)])
    schema = GeoMDSchema("S", [dim], [fact])
    schema.become_spatial("Store.Store", GeometricType.POINT)
    schema.become_spatial("Store.City", GeometricType.POLYGON)
    star = StarSchema(schema)
    city_poly = Polygon([(0, 0), (100, 0), (100, 100), (0, 100)])
    star.add_member("Store", "City", "Alicante", {"geometry": city_poly})
    star.add_member(
        "Store", "Store", "S1", {"geometry": Point(50, 50)}, parents={"City": "Alicante"}
    )
    star.add_member(
        "Store", "Store", "S2", {"geometry": Point(500, 500)}, parents={"City": "Alicante"}
    )
    return star


class TestRelations:
    def test_within(self):
        poly = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])
        assert TopologicalRelation.WITHIN.check(Point(5, 5), poly)
        assert not TopologicalRelation.WITHIN.check(Point(50, 50), poly)

    def test_disjoint(self):
        poly = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])
        assert TopologicalRelation.DISJOINT.check(Point(50, 50), poly)

    def test_contains(self):
        poly = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])
        assert TopologicalRelation.CONTAINS.check(poly, Point(5, 5))


class TestCheckConstraint:
    def test_violations_found(self):
        star = _geo_star()
        constraint = HierarchyConstraint(
            "Store", "Store", "City", TopologicalRelation.WITHIN
        )
        violations = check_constraint(star, constraint)
        assert len(violations) == 1
        assert violations[0].child_member == "S2"
        assert "within" in str(violations[0])

    def test_missing_geometry_is_violation(self):
        star = _geo_star()
        star.add_member(
            "Store", "Store", "S3", parents={"City": "Alicante"}
        )  # no geometry
        constraint = HierarchyConstraint(
            "Store", "Store", "City", TopologicalRelation.WITHIN
        )
        violations = check_constraint(star, constraint)
        assert {v.child_member for v in violations} == {"S2", "S3"}

    def test_generated_world_stores_within_states(self, world, star):
        """The synthetic world respects Store-within-State by construction."""
        schema = star.schema
        schema.become_spatial("Store.Store", GeometricType.POINT)
        schema.become_spatial("Store.State", GeometricType.POLYGON)
        table = star.dimension_table("Store")
        for store in world.stores:
            table.member("Store", store.name).attributes["geometry"] = store.location
        for state in world.states:
            table.member("State", state.name).attributes["geometry"] = state.polygon
        constraint = HierarchyConstraint(
            "Store", "Store", "State", TopologicalRelation.WITHIN
        )
        # Stores are gaussian-spread around cities; the vast majority must
        # fall inside their state cell (a few may spill over the border).
        violations = check_constraint(star, constraint)
        assert len(violations) < len(world.stores) * 0.2
