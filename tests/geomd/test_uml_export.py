"""Tests for GeoMD -> UML export (Fig. 6 regeneration path)."""

from repro.data import build_sales_schema
from repro.geomd import GeoMDSchema, GeometricType, geomd_profile, geomd_to_uml
from repro.uml import to_plantuml


def _fig6_schema():
    geo = GeoMDSchema.from_md(build_sales_schema())
    geo.become_spatial("Store.Store", GeometricType.POINT)
    geo.add_layer("Airport", GeometricType.POINT)
    geo.add_layer("Train", GeometricType.LINE)
    return geo


class TestProfile:
    def test_adds_spatial_stereotypes(self):
        profile = geomd_profile()
        assert "SpatialLevel" in profile.stereotypes
        assert "Layer" in profile.stereotypes
        assert "Fact" in profile.stereotypes  # inherits MD profile


class TestExport:
    def test_spatial_level_stereotype(self):
        model = geomd_to_uml(_fig6_schema())
        store = model.cls("Store")
        assert store.has_stereotype("SpatialLevel")
        assert not store.has_stereotype("Base")

    def test_layer_classes(self):
        model = geomd_to_uml(_fig6_schema())
        airport = model.cls("Airport")
        assert airport.has_stereotype("Layer")
        assert "geometry" in airport.properties
        assert "POINT" in airport.property("geometry").stereotypes
        train = model.cls("Train")
        assert "LINE" in train.property("geometry").stereotypes

    def test_geometric_types_enum_present(self):
        model = geomd_to_uml(_fig6_schema())
        assert "GeometricTypes" in model.enumerations

    def test_non_spatial_levels_keep_base(self):
        model = geomd_to_uml(_fig6_schema())
        assert model.cls("State").has_stereotype("Base")

    def test_renders(self):
        text = to_plantuml(geomd_to_uml(_fig6_schema()))
        assert "class Store <<SpatialLevel>>" in text
        assert "class Airport <<Layer>>" in text
