"""Tests for the GeometricTypes enumeration (Fig. 3)."""

import pytest

from repro.errors import GeometryError
from repro.geomd import GeometricType, geometric_types_enumeration
from repro.geometry import (
    GeometryCollection,
    LineString,
    MultiLineString,
    MultiPoint,
    Point,
    Polygon,
)


class TestAccepts:
    def test_point(self):
        assert GeometricType.POINT.accepts(Point(0, 0))
        assert GeometricType.POINT.accepts(MultiPoint([Point(0, 0)]))
        assert not GeometricType.POINT.accepts(LineString([(0, 0), (1, 1)]))

    def test_line(self):
        assert GeometricType.LINE.accepts(LineString([(0, 0), (1, 1)]))
        assert GeometricType.LINE.accepts(
            MultiLineString([LineString([(0, 0), (1, 1)])])
        )
        assert not GeometricType.LINE.accepts(Point(0, 0))

    def test_polygon(self):
        assert GeometricType.POLYGON.accepts(Polygon([(0, 0), (1, 0), (1, 1)]))
        assert not GeometricType.POLYGON.accepts(Point(0, 0))

    def test_collection_accepts_everything(self):
        for geom in (
            Point(0, 0),
            LineString([(0, 0), (1, 1)]),
            GeometryCollection(()),
        ):
            assert GeometricType.COLLECTION.accepts(geom)


class TestClassify:
    @pytest.mark.parametrize(
        "geom, expected",
        [
            (Point(0, 0), GeometricType.POINT),
            (LineString([(0, 0), (1, 1)]), GeometricType.LINE),
            (Polygon([(0, 0), (1, 0), (1, 1)]), GeometricType.POLYGON),
            (GeometryCollection(()), GeometricType.COLLECTION),
        ],
    )
    def test_of(self, geom, expected):
        assert GeometricType.of(geom) is expected


class TestParse:
    def test_case_insensitive(self):
        assert GeometricType.parse("point") is GeometricType.POINT
        assert GeometricType.parse("LINE") is GeometricType.LINE

    def test_unknown(self):
        with pytest.raises(GeometryError):
            GeometricType.parse("CIRCLE")


class TestEnumeration:
    def test_matches_paper(self):
        enum = geometric_types_enumeration()
        assert enum.name == "GeometricTypes"
        assert enum.literals == ("POINT", "LINE", "POLYGON", "COLLECTION")
