"""Tests for the pluggable session store: TTL, eviction, thread-safety."""

import threading

import pytest

from repro.errors import UnauthorizedError
from repro.service import InMemorySessionStore


class StubSession:
    """Duck-typed stand-in for a PersonalizedSession."""

    def __init__(self):
        self.closed = False
        self.ended = 0

    def end(self):
        self.ended += 1
        self.closed = True


class Clock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture()
def clock():
    return Clock()


def make_store(clock, **kwargs):
    kwargs.setdefault("ttl", 10.0)
    kwargs.setdefault("max_sessions", 4)
    return InMemorySessionStore(clock=clock, **kwargs)


class TestBasics:
    def test_put_get_roundtrip(self, clock):
        store = make_store(clock)
        session = StubSession()
        record = store.put(session, datamart="sales", user_id="ana")
        assert record.token.startswith("tok-")
        got = store.get(record.token)
        assert got.session is session
        assert got.datamart == "sales"
        assert got.user_id == "ana"
        assert len(store) == 1

    def test_tokens_are_unique(self, clock):
        store = make_store(clock, max_sessions=100)
        tokens = {
            store.put(StubSession(), datamart="d", user_id="u").token
            for _ in range(50)
        }
        assert len(tokens) == 50

    def test_unknown_token_is_structured_401(self, clock):
        store = make_store(clock)
        with pytest.raises(UnauthorizedError) as excinfo:
            store.get("tok-nope")
        assert excinfo.value.status == 401
        assert excinfo.value.code == "invalid_session"

    def test_remove_is_idempotent(self, clock):
        store = make_store(clock)
        record = store.put(StubSession(), datamart="d", user_id="u")
        store.remove(record.token)
        store.remove(record.token)
        assert len(store) == 0


class TestTTL:
    def test_expiry_after_idle_ttl(self, clock):
        store = make_store(clock, ttl=10.0)
        session = StubSession()
        record = store.put(session, datamart="d", user_id="u")
        clock.advance(10.1)
        with pytest.raises(UnauthorizedError) as excinfo:
            store.get(record.token)
        assert excinfo.value.code == "session_expired"
        assert excinfo.value.status == 401
        # The expired analysis session was ended like a logout would.
        assert session.ended == 1
        assert len(store) == 0

    def test_access_refreshes_idle_clock(self, clock):
        store = make_store(clock, ttl=10.0)
        record = store.put(StubSession(), datamart="d", user_id="u")
        clock.advance(6.0)
        store.get(record.token)  # touch at t=6
        clock.advance(6.0)  # t=12: only 6s idle since last touch
        assert store.get(record.token).token == record.token

    def test_purge_expired_sweeps_everything_stale(self, clock):
        store = make_store(clock, ttl=10.0, max_sessions=10)
        sessions = [StubSession() for _ in range(3)]
        for session in sessions:
            store.put(session, datamart="d", user_id="u")
        clock.advance(11.0)
        fresh = StubSession()
        fresh_token = store.put(fresh, datamart="d", user_id="u").token
        # put() already purged; a second sweep finds nothing.
        assert store.purge_expired() == 0
        assert len(store) == 1
        assert all(s.ended == 1 for s in sessions)
        assert store.get(fresh_token).session is fresh


class TestEviction:
    def test_lru_eviction_at_capacity(self, clock):
        store = make_store(clock, max_sessions=2)
        first = StubSession()
        token1 = store.put(first, datamart="d", user_id="u1").token
        token2 = store.put(StubSession(), datamart="d", user_id="u2").token
        clock.advance(1.0)
        store.get(token1)  # token1 is now most recently used
        store.put(StubSession(), datamart="d", user_id="u3")  # evicts token2
        assert len(store) == 2
        assert store.get(token1)
        with pytest.raises(UnauthorizedError):
            store.get(token2)

    def test_evicted_session_is_ended(self, clock):
        store = make_store(clock, max_sessions=1)
        first = StubSession()
        store.put(first, datamart="d", user_id="u1")
        store.put(StubSession(), datamart="d", user_id="u2")
        assert first.ended == 1

    def test_end_failure_does_not_break_eviction(self, clock):
        store = make_store(clock, max_sessions=1)

        class ExplodingSession(StubSession):
            def end(self):
                raise RuntimeError("boom")

        store.put(ExplodingSession(), datamart="d", user_id="u1")
        record = store.put(StubSession(), datamart="d", user_id="u2")
        assert store.get(record.token)

    def test_constructor_validation(self, clock):
        with pytest.raises(ValueError):
            InMemorySessionStore(ttl=0, clock=clock)
        with pytest.raises(ValueError):
            InMemorySessionStore(max_sessions=0, clock=clock)


class TestConcurrency:
    def test_parallel_put_get_remove(self):
        store = InMemorySessionStore(ttl=60.0, max_sessions=64)
        errors = []

        def worker():
            try:
                for _ in range(50):
                    record = store.put(
                        StubSession(), datamart="d", user_id="u"
                    )
                    store.get(record.token)
                    store.remove(record.token)
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(store) == 0
