"""Tests for the PersonalizationService façade (transport-independent)."""

import pytest

from repro.data import (
    WorldGeoSource,
    build_regional_manager_profile,
    build_sales_star,
)
from repro.errors import BadRequestError, NotFoundError, UnauthorizedError
from repro.personalization import PersonalizationEngine
from repro.service import (
    DatamartRegistry,
    InMemorySessionStore,
    LoginRequest,
    PageRequest,
    PersonalizationService,
    QueryRequest,
    SelectionRequest,
)


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture()
def bare_engine(world, user_schema):
    """A second tenant over the same world with no rules registered."""
    return PersonalizationEngine(
        build_sales_star(world),
        user_schema,
        geo_source=WorldGeoSource(world),
    )


@pytest.fixture()
def clock():
    return Clock()


@pytest.fixture()
def service(engine, bare_engine, profile, user_schema, clock):
    registry = DatamartRegistry()
    sales = registry.register("sales", engine, description="paper scenario")
    bare = registry.register("bare", bare_engine, description="no rules")
    sales.register_user(profile)
    bare.register_user(build_regional_manager_profile(user_schema, name="Bo Li"))
    return PersonalizationService(
        registry,
        session_store=InMemorySessionStore(ttl=100.0, clock=clock),
    )


def _login(service, profile, world, datamart=None):
    location = world.stores[0].location
    return service.login(
        LoginRequest(user=profile.user_id, datamart=datamart, location=location)
    )


class TestLoginRouting:
    def test_default_datamart(self, service, profile, world):
        result = _login(service, profile, world)
        assert result.datamart == "sales"
        assert "addSpatiality" in result.rules_fired
        assert result.view["fact_rows_kept"] < result.view["fact_rows_total"]

    def test_named_datamart_routes_to_its_engine(self, service, world):
        result = service.login(LoginRequest(user="bo-li", datamart="bare"))
        assert result.datamart == "bare"
        assert result.rules_fired == []  # the bare engine has no rules
        assert result.view["fact_rows_kept"] == result.view["fact_rows_total"]

    def test_unknown_datamart(self, service, profile):
        with pytest.raises(NotFoundError) as excinfo:
            service.login(
                LoginRequest(user=profile.user_id, datamart="marketing")
            )
        assert excinfo.value.code == "unknown_datamart"

    def test_user_is_scoped_to_datamart(self, service):
        # bo-li exists only in the 'bare' datamart.
        with pytest.raises(NotFoundError) as excinfo:
            service.login(LoginRequest(user="bo-li", datamart="sales"))
        assert excinfo.value.code == "unknown_user"

    def test_session_hook_counts_per_tenant(self, service, profile, world):
        _login(service, profile, world)
        _login(service, profile, world)
        service.login(LoginRequest(user="bo-li", datamart="bare"))
        assert service.sessions_started("sales") == 2
        assert service.sessions_started("bare") == 1
        info = {dm.name: dm for dm in service.datamarts()}
        assert info["sales"].sessions_started == 2
        assert info["sales"].default is True
        assert info["bare"].rules == 0


class TestSessionLifecycle:
    def test_missing_token(self, service):
        with pytest.raises(UnauthorizedError) as excinfo:
            service.view_stats(None)
        assert excinfo.value.code == "missing_token"

    def test_expired_session_structured_401(self, service, profile, world, clock):
        result = _login(service, profile, world)
        clock.advance(101.0)
        with pytest.raises(UnauthorizedError) as excinfo:
            service.view_stats(result.token)
        assert excinfo.value.code == "session_expired"
        assert excinfo.value.status == 401

    def test_logout_ends_and_invalidates(self, service, profile, world):
        result = _login(service, profile, world)
        logout = service.logout(result.token)
        assert logout.ended is True
        assert len(service.sessions) == 0
        with pytest.raises(UnauthorizedError) as excinfo:
            service.view_stats(result.token)
        assert excinfo.value.code == "invalid_session"

    def test_externally_closed_session_is_invalid(self, service, profile, world):
        result = _login(service, profile, world)
        record = service.sessions.get(result.token)
        record.session.end()  # closed behind the service's back
        with pytest.raises(UnauthorizedError) as excinfo:
            service.view_stats(result.token)
        assert excinfo.value.code == "invalid_session"
        assert len(service.sessions) == 0


class TestAnalysisOperations:
    def test_query_pagination(self, service, profile, world):
        token = _login(service, profile, world).token
        request = QueryRequest(
            q="SELECT SUM(UnitSales) FROM Sales BY Product.Family",
            page=PageRequest(limit=1, offset=0),
        )
        result = service.query(token, request)
        assert len(result.rows) == 1
        assert result.page.returned == 1
        assert result.page.total >= 1

    def test_bad_query_is_structured_400(self, service, profile, world):
        token = _login(service, profile, world).token
        with pytest.raises(BadRequestError) as excinfo:
            service.query(token, QueryRequest(q="SELEKT nope"))
        assert excinfo.value.code == "query_error"
        assert excinfo.value.detail == {"q": "SELEKT nope"}

    def test_unknown_layer_lists_available(self, service, profile, world):
        token = _login(service, profile, world).token
        with pytest.raises(NotFoundError) as excinfo:
            service.layer(token, "Rivers")
        assert excinfo.value.code == "unknown_layer"
        assert "Airport" in excinfo.value.detail["available"]

    def test_layer_pagination(self, service, profile, world):
        token = _login(service, profile, world).token
        result = service.layer(token, "Airport", PageRequest(limit=2, offset=1))
        assert result.page.total == len(world.airports)
        assert result.page.offset == 1
        assert len(result.features) == min(2, len(world.airports) - 1)

    def test_malformed_selection_is_structured_400(self, service, profile, world):
        token = _login(service, profile, world).token
        with pytest.raises(BadRequestError) as excinfo:
            service.record_selection(
                token, SelectionRequest(target="не-path!!", condition="x<1")
            )
        assert excinfo.value.code == "bad_selection"

    def test_selection_and_rerun_widen_view(self, service, profile, world):
        token = _login(service, profile, world).token
        before = service.view_stats(token)["fact_rows_kept"]
        condition = (
            "Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry)<20km"
        )
        for _ in range(4):
            outcome = service.record_selection(
                token,
                SelectionRequest(
                    target="GeoMD.Store.City", condition=condition
                ),
            )
            assert outcome.matched_rules == ["IntAirportCity"]
        rerun = service.rerun_instance_rules(token)
        assert rerun.view["fact_rows_kept"] > before


class TestHealthLocks:
    def test_locks_null_without_sanitizer(self, service, monkeypatch):
        # The instrumented path is opt-in: normal operation reports
        # null.  (The outer run may itself be sanitized; monkeypatch
        # restores the global on teardown.)
        from repro.analysis import sanitizer

        monkeypatch.delenv(sanitizer.ENV_SWITCH, raising=False)
        monkeypatch.setattr(sanitizer, "_active", None)
        assert service.health()["locks"] is None

    def test_locks_reported_under_sanitizer(self, engine, profile, clock):
        from repro.analysis import sanitizer

        previous = sanitizer.current()
        sanitizer.activate()
        try:
            registry = DatamartRegistry()
            registry.register(
                "sales", engine, description="paper scenario"
            ).register_user(profile)
            sanitized = PersonalizationService(
                registry,
                session_store=InMemorySessionStore(ttl=100.0, clock=clock),
            )
            locks = sanitized.health()["locks"]
        finally:
            sanitizer.deactivate(previous)
        assert locks["enabled"] is True
        assert locks["cycles"] == []
        assert locks["locks"]["PersonalizationService._lock"]["instances"] == 1
        assert "InMemorySessionStore._lock" in locks["locks"]


class TestHealthHitRates:
    """Health reports derived hit *rates* next to the raw counters, so
    collectors (the workload metrics scraper, dashboards) never
    re-derive them."""

    def test_rates_null_before_any_lookup(self, service):
        health = service.health()
        assert health["query_cache"]["hit_rate"] is None
        assert health["recommender"]["memo_hit_rate"] is None

    def test_query_cache_hit_rate_matches_counters(self, service, profile, world):
        token = _login(service, profile, world).token
        request = QueryRequest(
            q="SELECT SUM(UnitSales) FROM Sales BY Product.Family"
        )
        service.query(token, request)  # miss (cold cache)
        service.query(token, request)  # hit
        cache = service.health()["query_cache"]
        total = cache["hits"] + cache["misses"]
        assert total >= 2 and cache["hits"] >= 1
        assert cache["hit_rate"] == pytest.approx(
            cache["hits"] / total, abs=1e-4
        )

    def test_view_store_hit_rate_alongside_raw_counters(
        self, service, profile, world
    ):
        _login(service, profile, world)
        _login(service, profile, world)  # same selection: shared view hit
        health = service.health()
        block = next(
            dm for dm in health["datamarts"] if dm["name"] == "sales"
        )["view_store"]
        assert block["hits"] >= 1
        assert block["hit_rate"] == pytest.approx(
            block["hits"] / (block["hits"] + block["misses"]), abs=1e-4
        )

    def test_recommender_memo_rate_after_lookups(self, service, profile, world):
        token = _login(service, profile, world).token
        service.recommendations(token, "queries")  # miss
        service.recommendations(token, "queries")  # memo hit
        reco = service.health()["recommender"]
        total = reco["memo_hits"] + reco["memo_misses"]
        assert total >= 2
        assert reco["memo_hit_rate"] == pytest.approx(
            reco["memo_hits"] / total, abs=1e-4
        )
