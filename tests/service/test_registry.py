"""Tests for multi-datamart tenancy: the DatamartRegistry."""

import pytest

from repro.errors import BadRequestError, NotFoundError
from repro.service import DatamartRegistry


class TestRegistry:
    def test_first_registered_is_default(self, engine):
        registry = DatamartRegistry()
        registry.register("sales", engine)
        assert registry.default_name == "sales"
        assert registry.get().name == "sales"
        assert registry.get("sales").engine is engine

    def test_explicit_default_wins(self, engine):
        registry = DatamartRegistry()
        registry.register("a", engine)
        registry.register("b", engine, default=True)
        assert registry.get().name == "b"

    def test_unknown_datamart_is_structured_404(self, engine):
        registry = DatamartRegistry()
        registry.register("sales", engine)
        with pytest.raises(NotFoundError) as excinfo:
            registry.get("marketing")
        assert excinfo.value.code == "unknown_datamart"
        assert excinfo.value.status == 404
        assert "sales" in str(excinfo.value)

    def test_empty_registry_has_no_default(self):
        with pytest.raises(NotFoundError):
            DatamartRegistry().get()

    def test_duplicate_name_rejected(self, engine):
        registry = DatamartRegistry()
        registry.register("sales", engine)
        with pytest.raises(BadRequestError) as excinfo:
            registry.register("sales", engine)
        assert excinfo.value.code == "duplicate_datamart"

    def test_names_membership_iteration(self, engine):
        registry = DatamartRegistry()
        registry.register("b", engine)
        registry.register("a", engine)
        assert registry.names() == ["a", "b"]
        assert "a" in registry and "c" not in registry
        assert len(registry) == 2
        assert {dm.name for dm in registry} == {"a", "b"}

    def test_user_registration_per_datamart(self, engine, profile):
        registry = DatamartRegistry()
        datamart = registry.register("sales", engine)
        datamart.register_user(profile)
        assert datamart.profile(profile.user_id) is profile
        with pytest.raises(NotFoundError) as excinfo:
            datamart.profile("nobody")
        assert excinfo.value.code == "unknown_user"
