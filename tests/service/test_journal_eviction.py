"""SessionStore TTL/LRU eviction must never touch journaled history.

The journal is keyed ``(datamart, user)`` while the session store is
keyed by token: expiring or evicting a session ends the *session* (as
logout would) but the user's workload history survives intact, and a
re-login resumes appending to the same history.
"""

import pytest

from repro.data import build_regional_manager_profile
from repro.service import (
    DatamartRegistry,
    InMemorySessionStore,
    PersonalizationService,
)
from repro.web import PortalApp

QUERY_A = "SELECT SUM(UnitSales) FROM Sales BY Product.Family"
QUERY_B = "SELECT SUM(StoreSales) FROM Sales BY Store.City"


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture()
def clock():
    return Clock()


def build_portal(engine, user_schema, profile, clock, **store_kwargs):
    registry = DatamartRegistry()
    sales = registry.register("sales", engine)
    sales.register_user(profile)
    sales.register_user(
        build_regional_manager_profile(user_schema, name="Bo Li")
    )
    sales.register_user(
        build_regional_manager_profile(user_schema, name="Cy Wu")
    )
    service = PersonalizationService(
        registry,
        session_store=InMemorySessionStore(clock=clock, **store_kwargs),
    )
    return PortalApp(service=service)


def login(portal, user_id, world):
    location = world.stores[0].location
    response = portal.handle(
        "POST",
        "/api/v1/login",
        {"user": user_id, "location": [location.x, location.y]},
    )
    assert response.ok, response.body
    return response.json()["token"]


def run_query(portal, token, q):
    response = portal.handle("POST", "/api/v1/query", {"q": q}, token=token)
    assert response.ok, response.body


def journaled_queries(portal, user_id):
    return [
        event.payload["q"]
        for event in portal.service.journal.events("sales", user_id)
        if event.kind == "query"
    ]


class TestTTLExpiry:
    def test_expired_session_keeps_history_and_relogin_resumes_it(
        self, engine, user_schema, profile, clock, world
    ):
        portal = build_portal(engine, user_schema, profile, clock, ttl=100.0)
        token = login(portal, profile.user_id, world)
        run_query(portal, token, QUERY_A)
        clock.advance(101.0)
        expired = portal.handle(
            "POST", "/api/v1/query", {"q": QUERY_B}, token=token
        )
        assert expired.status == 401
        assert expired.body["error"]["code"] == "session_expired"
        # The failed request journaled nothing and dropped nothing.
        assert journaled_queries(portal, profile.user_id) == [QUERY_A]

        fresh = login(portal, profile.user_id, world)
        assert fresh != token
        run_query(portal, fresh, QUERY_B)
        assert journaled_queries(portal, profile.user_id) == [QUERY_A, QUERY_B]

    def test_background_purge_does_not_corrupt_history(
        self, engine, user_schema, profile, clock, world
    ):
        portal = build_portal(engine, user_schema, profile, clock, ttl=100.0)
        token = login(portal, profile.user_id, world)
        run_query(portal, token, QUERY_A)
        events_before = portal.service.journal.events("sales", profile.user_id)
        clock.advance(101.0)
        assert portal.service.sessions.purge_expired() == 1
        assert (
            portal.service.journal.events("sales", profile.user_id)
            == events_before
        )


class TestLRUEviction:
    def test_evicted_users_history_survives_and_resumes(
        self, engine, user_schema, profile, clock, world
    ):
        portal = build_portal(
            engine, user_schema, profile, clock, max_sessions=2
        )
        token = login(portal, profile.user_id, world)
        run_query(portal, token, QUERY_A)
        generation = portal.service.journal.generation("sales")

        # Two more logins evict the LRU session (the profile user's).
        login(portal, "bo-li", world)
        login(portal, "cy-wu", world)
        evicted = portal.handle("GET", "/api/v1/view", token=token)
        assert evicted.status == 401

        # Eviction neither dropped events nor bumped the journal.
        assert journaled_queries(portal, profile.user_id) == [QUERY_A]
        assert portal.service.journal.generation("sales") == generation

        fresh = login(portal, profile.user_id, world)
        run_query(portal, fresh, QUERY_B)
        assert journaled_queries(portal, profile.user_id) == [QUERY_A, QUERY_B]

    def test_history_spans_sessions_for_recommendations(
        self, engine, user_schema, profile, clock, world
    ):
        """Similarity sees one user history even across evicted sessions."""
        portal = build_portal(
            engine, user_schema, profile, clock, max_sessions=1
        )
        condition = (
            "Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry)<20km"
        )
        token = login(portal, profile.user_id, world)
        assert portal.handle(
            "POST",
            "/api/v1/selection",
            {"target": "GeoMD.Store.City", "condition": condition},
            token=token,
        ).ok
        login(portal, "bo-li", world)  # evicts the first session
        profile_members = portal.service.journal.member_profile(
            "sales", profile.user_id
        )
        assert profile_members  # the footprint outlived the session
