"""End-to-end recommendation subsystem over the /api/v1 surface.

Covers the PR acceptance criteria: overlapping workloads yield nonzero
mutual similarity, a similar user's query outranks dissimilar noise,
recommendations never leak outside the target's own personalization,
and repeated calls answer from the generation-keyed memo with results
identical to a cold run.
"""

import pytest

from repro.data import (
    DEMO_NOISE_QUERIES,
    DEMO_QUERY_RECOMMENDED,
    DEMO_QUERY_SHARED,
    replay_demo_workload,
)
from repro.web import PortalApp


@pytest.fixture()
def portal(engine):
    return PortalApp(engine, datamart_name="sales")


@pytest.fixture()
def tokens(portal, world):
    return replay_demo_workload(portal, world)


def get(portal, path, token, **query):
    response = portal.handle(
        "GET", path, token=token, query={k: str(v) for k, v in query.items()}
    )
    assert response.ok, response.body
    return response.json()


class TestAcceptance:
    def test_overlapping_workloads_have_nonzero_mutual_similarity(
        self, portal, tokens
    ):
        recommender = portal.service.recommender
        star = portal.registry.get("sales").engine.star
        ab = dict(recommender.similar_users("sales", "ana-garcia", star))
        ba = dict(recommender.similar_users("sales", "bruno-keller", star))
        assert ab["bruno-keller"] > 0.0
        assert ba["ana-garcia"] > 0.0
        assert ab["bruno-keller"] == pytest.approx(ba["ana-garcia"])

    def test_similar_users_query_outranks_noise(self, portal, tokens):
        payload = get(
            portal, "/api/v1/recommendations/queries", tokens["ana-garcia"]
        )
        texts = [item["item"]["q"] for item in payload["items"]]
        assert texts[0] == DEMO_QUERY_RECOMMENDED
        assert payload["items"][0]["supporters"] == ["bruno-keller"]
        # Ana already ran the shared query: never recommended back.
        assert DEMO_QUERY_SHARED not in texts
        for noise in DEMO_NOISE_QUERIES:
            if noise in texts:
                assert texts.index(noise) > 0
        peers = {p["user"]: p["score"] for p in payload["similar_users"]}
        assert peers["bruno-keller"] > peers.get("carla-diaz", 0.0)

    def test_recommended_query_executes_inside_own_selection(
        self, portal, tokens
    ):
        """Running a recommended query never leaves A's personalized view."""
        ana = tokens["ana-garcia"]
        top = get(portal, "/api/v1/recommendations/queries", ana)["items"][0]
        view = get(portal, "/api/v1/view", ana)
        assert view["fact_rows_kept"] < view["fact_rows_total"]  # restricted
        response = portal.handle(
            "POST", "/api/v1/query", {"q": top["item"]["q"]}, token=ana
        )
        assert response.ok, response.body
        assert response.json()["fact_rows_scanned"] == view["fact_rows_kept"]

    def test_layer_recommendations_confined_to_own_schema(
        self, portal, tokens
    ):
        ana = tokens["ana-garcia"]
        payload = get(portal, "/api/v1/recommendations/layers", ana)
        layers = [item["item"]["layer"] for item in payload["items"]]
        schema = get(portal, "/api/v1/schema", ana)
        assert set(layers) <= {layer["name"] for layer in schema["layers"]}
        assert "Airport" in layers  # bruno fetched it, ana never did

    def test_member_recommendations_exclude_live_selection(
        self, portal, tokens
    ):
        ana = tokens["ana-garcia"]
        record = portal.service.sessions.get(ana)
        own = {
            (dimension, level, key)
            for (dimension, level), keys in record.session.selection.members.items()
            for key in keys
        }
        assert own  # the 5km rule selected something at login
        payload = get(portal, "/api/v1/recommendations/members", ana)
        recommended = {
            (i["item"]["dimension"], i["item"]["level"], i["item"]["key"])
            for i in payload["items"]
        }
        assert recommended
        assert not recommended & own

    def test_repeated_calls_hit_memo_and_match_cold_results(
        self, portal, tokens
    ):
        ana = tokens["ana-garcia"]
        recommender = portal.service.recommender
        cold = get(portal, "/api/v1/recommendations/queries", ana)
        misses = recommender.stats()["memo_misses"]
        warm = get(portal, "/api/v1/recommendations/queries", ana)
        stats = recommender.stats()
        assert stats["memo_hits"] >= 1
        assert stats["memo_misses"] == misses
        assert warm == cold
        # Transparency: disabling the memo recomputes the same answer.
        recommender.enable_memo = False
        try:
            assert get(portal, "/api/v1/recommendations/queries", ana) == cold
        finally:
            recommender.enable_memo = True

    def test_new_workload_invalidates_memo(self, portal, tokens):
        ana, bruno = tokens["ana-garcia"], tokens["bruno-keller"]
        get(portal, "/api/v1/recommendations/queries", ana)
        fresh = "SELECT SUM(StoreCost) FROM Sales BY Store.State"
        assert portal.handle(
            "POST", "/api/v1/query", {"q": fresh}, token=bruno
        ).ok
        payload = get(portal, "/api/v1/recommendations/queries", ana)
        assert fresh in [item["item"]["q"] for item in payload["items"]]


class TestJournalingControls:
    def test_opt_out_at_login(self, portal, tokens, world):
        location = world.stores[0].location
        response = portal.handle(
            "POST",
            "/api/v1/login",
            {
                "user": "ana-garcia",
                "location": [location.x, location.y],
                "journal": False,
            },
        )
        assert response.ok and response.json()["journal"] is False
        token = response.json()["token"]
        before = len(portal.service.journal.events("sales", "ana-garcia"))
        assert portal.handle(
            "POST", "/api/v1/query", {"q": DEMO_QUERY_SHARED}, token=token
        ).ok
        assert portal.handle(
            "GET", "/api/v1/layers/Airport", token=token
        ).ok
        after = len(portal.service.journal.events("sales", "ana-garcia"))
        assert after == before  # nothing journaled for the opted-out session

    def test_journal_flag_must_be_boolean(self, portal):
        response = portal.handle(
            "POST", "/api/v1/login", {"user": "ana-garcia", "journal": "no"}
        )
        assert response.status == 400

    def test_query_cache_hits_are_still_journaled(self, portal, tokens):
        ana = tokens["ana-garcia"]
        q = "SELECT SUM(UnitSales) FROM Sales BY Store.State"
        for _ in range(3):  # second and third answer from the query cache
            assert portal.handle(
                "POST", "/api/v1/query", {"q": q}, token=ana
            ).ok
        assert portal.service.query_cache_hits >= 1
        events = [
            e
            for e in portal.service.journal.events("sales", "ana-garcia")
            if e.kind == "query" and e.payload["q"] == q
        ]
        assert len(events) == 3


class TestHealth:
    def test_health_is_public_and_complete(self, portal, tokens):
        response = portal.handle("GET", "/api/v1/health")
        assert response.ok
        payload = response.json()
        assert payload["status"] == "ok"
        (sales,) = payload["datamarts"]
        assert sales["name"] == "sales"
        assert sales["sessions_started"] == 3
        assert sales["star_generation"] > 0
        assert payload["active_sessions"] == 3
        assert set(payload["query_cache"]) == {
            "size",
            "max_size",
            "hits",
            "misses",
            "hit_rate",
        }
        assert payload["journal"]["sales"]["users"] == 3
        assert payload["journal"]["sales"]["events"] > 0
        assert set(payload["recommender"]) == {
            "memo_size",
            "memo_hits",
            "memo_misses",
            "memo_hit_rate",
        }

    def test_unknown_recommendation_kind_is_404(self, portal, tokens):
        response = portal.handle(
            "GET", "/api/v1/recommendations/facts", token=tokens["ana-garcia"]
        )
        assert response.status == 404
        assert response.body["error"]["code"] == "unknown_recommendation_kind"

    def test_auth_is_checked_before_kind(self, portal, tokens):
        """Anonymous clients cannot probe which kinds exist: 401 either way."""
        for kind in ("queries", "facts"):
            response = portal.handle("GET", f"/api/v1/recommendations/{kind}")
            assert response.status == 401
