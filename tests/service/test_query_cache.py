"""Tests for the façade's LRU query-result cache.

The cache key is ``(datamart, canonical query text, selection
fingerprint, as_of)`` and each payload carries per-dimension generation
stamps revalidated on read — these tests pin the protocol: hits only
while every stamp matches, misses on any selection change or any star
mutation the query's inputs depend on, warm entries through mutations
they provably don't (PR 9), entries shared across sessions exactly when
their selections hold the same content, never across tenants,
byte-identical responses with the cache disabled, and bounded size.
"""

import pytest

from repro.data import (
    WorldGeoSource,
    build_regional_manager_profile,
    build_sales_star,
)
from repro.personalization import PersonalizationEngine
from repro.service import (
    DatamartRegistry,
    LoginRequest,
    PersonalizationService,
    QueryRequest,
    SelectionRequest,
)

QUERY = "SELECT SUM(UnitSales) FROM Sales BY Product.Family"
WIDEN_CONDITION = (
    "Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry)<20km"
)


@pytest.fixture()
def registry(engine, world, user_schema):
    registry = DatamartRegistry()
    sales = registry.register("sales", engine, description="paper scenario")
    sales.register_user(build_regional_manager_profile(user_schema))
    twin_engine = PersonalizationEngine(
        build_sales_star(world),
        user_schema,
        geo_source=WorldGeoSource(world),
    )
    twin = registry.register("twin", twin_engine, description="no rules")
    twin.register_user(build_regional_manager_profile(user_schema))
    return registry


@pytest.fixture()
def service(registry):
    return PersonalizationService(registry)


def _login(service, world, datamart=None):
    location = world.stores[0].location
    return service.login(
        LoginRequest(user="ana-garcia", datamart=datamart, location=location)
    ).token


@pytest.fixture()
def token(service, world):
    return _login(service, world)


class TestHitsAndMisses:
    def test_repeat_query_hits(self, service, token):
        first = service.query(token, QueryRequest(q=QUERY))
        assert service.query_cache_misses == 1
        second = service.query(token, QueryRequest(q=QUERY))
        assert service.query_cache_hits == 1
        assert second.to_dict() == first.to_dict()

    def test_surrounding_whitespace_is_canonicalized(self, service, token):
        service.query(token, QueryRequest(q=QUERY))
        service.query(token, QueryRequest(q=f"  {QUERY}\n"))
        assert service.query_cache_hits == 1

    def test_internal_whitespace_is_significant(self, service, token):
        """Whitespace inside the query can live inside string literals —
        two queries differing there must never share a cache entry."""
        base = "SELECT COUNT(*) FROM Sales WHERE Store.City.name = 'Alicante'"
        spaced = base.replace("'Alicante'", "'Ali  cante'")
        hit = service.query(token, QueryRequest(q=base))
        miss = service.query(token, QueryRequest(q=spaced))
        assert service.query_cache_hits == 0
        assert service.query_cache_misses == 2
        assert miss.fact_rows_matched == 0
        assert hit.fact_rows_matched > 0

    def test_mutating_a_response_never_poisons_the_cache(self, service, token):
        """Satellite regression: cached payload rows are frozen tuples and
        every response materializes fresh lists — a consumer editing a
        returned row (or the rows list) must not corrupt later hits."""
        first = service.query(token, QueryRequest(q=QUERY))
        pristine = [list(row) for row in first.rows]
        first.rows[0][0] = "VANDALIZED"
        first.rows.clear()
        second = service.query(token, QueryRequest(q=QUERY))
        assert service.query_cache_hits == 1
        assert second.rows == pristine
        second.to_dict()["rows"][0][0] = "VANDALIZED"
        assert service.query(token, QueryRequest(q=QUERY)).rows == pristine

    def test_cached_payload_rows_are_frozen(self, service, token):
        service.query(token, QueryRequest(q=QUERY))
        (payload,) = list(service._query_cache._entries.values())
        assert isinstance(payload.rows, tuple)
        assert all(isinstance(row, tuple) for row in payload.rows)

    def test_pagination_shares_one_entry(self, service, token):
        from repro.service import PageRequest

        full = service.query(token, QueryRequest(q=QUERY))
        paged = service.query(
            token, QueryRequest(q=QUERY, page=PageRequest(limit=1))
        )
        assert service.query_cache_hits == 1
        assert paged.rows == full.rows[:1]
        assert paged.page.total == len(full.rows)

    def test_selection_generation_change_misses(self, service, token):
        service.query(token, QueryRequest(q=QUERY))
        for _ in range(4):  # interest threshold is 3
            service.record_selection(
                token,
                SelectionRequest(
                    target="GeoMD.Store.City", condition=WIDEN_CONDITION
                ),
            )
        service.rerun_instance_rules(token)
        before_hits = service.query_cache_hits
        widened = service.query(token, QueryRequest(q=QUERY))
        assert service.query_cache_hits == before_hits
        assert service.query_cache_misses == 2
        assert widened.fact_rows_scanned > 0

    def test_unrelated_feature_mutation_keeps_entry_warm(
        self, service, token, engine
    ):
        """PR 9: the payload's stamps cover only the layers the query's
        spatial filters read — a feature insert elsewhere leaves the
        entry warm, and the warm answer equals a fresh build."""
        from repro.geometry import Point

        first = service.query(token, QueryRequest(q=QUERY))
        engine.star.add_feature("Airport", "Test Field", Point(0.0, 0.0))
        warm = service.query(token, QueryRequest(q=QUERY))
        assert service.query_cache_hits == 1
        assert service.query_cache_misses == 1
        assert warm.to_dict() == first.to_dict()

    def test_fact_insert_misses(self, service, token, engine):
        """A fact append moves the fact stamp, so the entry is stale."""
        service.query(token, QueryRequest(q=QUERY))
        star = engine.star
        fact_table = star.fact_table()
        row = fact_table.row(0)
        star.insert_fact(
            fact_table.fact.name,
            {d: row[d] for d in fact_table.fact.dimension_names},
            {m: row[m] for m in fact_table.fact.measures},
        )
        service.query(token, QueryRequest(q=QUERY))
        assert service.query_cache_hits == 0
        assert service.query_cache_misses == 2

    def test_member_update_misses(self, service, token, engine):
        """An in-place member update on a dimension of the queried fact
        moves that dimension's stamp."""
        service.query(token, QueryRequest(q=QUERY))
        engine.star.note_member_change("Product", op="update")
        service.query(token, QueryRequest(q=QUERY))
        assert service.query_cache_hits == 0
        assert service.query_cache_misses == 2


class TestIsolation:
    def test_equal_selections_share_entries_across_sessions(
        self, service, world
    ):
        """PR 4 semantics: the key carries the selection *fingerprint*
        (content identity), so two sessions of one tenant whose
        personalization landed on the same instances share one entry."""
        first = _login(service, world)
        second = _login(service, world)
        result_one = service.query(first, QueryRequest(q=QUERY))
        result_two = service.query(second, QueryRequest(q=QUERY))
        assert service.query_cache_misses == 1
        assert service.query_cache_hits == 1
        assert result_one.to_dict() == result_two.to_dict()

    def test_differing_selections_never_share_entries(self, service, world):
        first = _login(service, world)
        second = _login(service, world)
        service.query(first, QueryRequest(q=QUERY))
        # Widen the second session's selection past the first's.
        for _ in range(4):  # interest threshold is 3
            service.record_selection(
                second,
                SelectionRequest(
                    target="GeoMD.Store.City", condition=WIDEN_CONDITION
                ),
            )
        service.rerun_instance_rules(second)
        service.query(second, QueryRequest(q=QUERY))
        assert service.query_cache_misses == 2
        assert service.query_cache_hits == 0

    def test_tenants_never_share_entries(self, service, world):
        sales = _login(service, world, datamart="sales")
        twin = _login(service, world, datamart="twin")
        personalized = service.query(sales, QueryRequest(q=QUERY))
        unrestricted = service.query(twin, QueryRequest(q=QUERY))
        assert service.query_cache_misses == 2
        assert service.query_cache_hits == 0
        # The twin tenant has no rules: it scans the whole fact table,
        # the personalized tenant does not — a shared entry would have
        # leaked one tenant's personalized rows to the other.
        assert (
            unrestricted.fact_rows_scanned > personalized.fact_rows_scanned
        )


class TestMultiFactDatamart:
    @pytest.fixture()
    def dual_service(self, dual_fact_star, user_schema):
        registry = DatamartRegistry()
        dual = registry.register(
            "dual", PersonalizationEngine(dual_fact_star, user_schema)
        )
        dual.register_user(build_regional_manager_profile(user_schema))
        return PersonalizationService(registry)

    def test_each_fact_queryable_through_service(self, dual_service):
        token = dual_service.login(
            LoginRequest(user="ana-garcia", datamart="dual")
        ).token
        sales = dual_service.query(
            token, QueryRequest(q="SELECT SUM(Units) FROM Sales")
        )
        returns = dual_service.query(
            token, QueryRequest(q="SELECT SUM(Count) FROM Returns")
        )
        assert sales.rows == [[8.0]]
        assert returns.rows == [[1.0]]
        assert dual_service.query_cache_misses == 2

    def test_schema_and_stats_work_without_fact(self, dual_service):
        token = dual_service.login(
            LoginRequest(user="ana-garcia", datamart="dual")
        ).token
        schema = dual_service.schema(token)
        assert {f["name"] for f in schema["facts"]} == {"Sales", "Returns"}
        stats = dual_service.view_stats(token)
        assert set(stats["facts"]) == {"Sales", "Returns"}
        assert stats["facts"]["Sales"]["fact_rows_total"] == 2
        assert stats["facts"]["Returns"]["fact_rows_total"] == 1


class TestConfiguration:
    def test_disabled_cache_is_transparent(self, registry, world):
        cached_service = PersonalizationService(registry)
        uncached_service = PersonalizationService(registry, query_cache_size=0)
        cached_token = _login(cached_service, world)
        uncached_token = _login(uncached_service, world)
        warm = cached_service.query(cached_token, QueryRequest(q=QUERY))
        hit = cached_service.query(cached_token, QueryRequest(q=QUERY))
        cold = uncached_service.query(uncached_token, QueryRequest(q=QUERY))
        again = uncached_service.query(uncached_token, QueryRequest(q=QUERY))
        assert uncached_service.query_cache_hits == 0
        assert uncached_service.query_cache_misses == 0
        assert hit.to_dict() == warm.to_dict() == cold.to_dict()
        assert again.to_dict() == cold.to_dict()

    def test_negative_size_rejected(self, registry):
        with pytest.raises(ValueError):
            PersonalizationService(registry, query_cache_size=-1)

    def test_lru_eviction_bounds_entries(self, registry, world):
        service = PersonalizationService(registry, query_cache_size=2)
        token = _login(service, world)
        queries = [
            QUERY,
            "SELECT SUM(StoreSales) FROM Sales BY Product.Family",
            "SELECT COUNT(*) FROM Sales BY Store.City",
        ]
        for q in queries:
            service.query(token, QueryRequest(q=q))
        assert len(service._query_cache) == 2
        misses = service.query_cache_misses
        service.query(token, QueryRequest(q=queries[0]))
        if hasattr(service._query_cache, "backend"):
            # Backend-backed cache (REPRO_BACKEND=sqlite): the L1 evicted
            # the oldest entry but the shared L2 retained it, so the
            # re-query is a decode hit rather than a rebuild.
            assert service.query_cache_misses == misses
        else:
            # The oldest entry was evicted: querying it again is a miss.
            assert service.query_cache_misses == misses + 1
