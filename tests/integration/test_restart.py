"""Portal-restart scenario: warehouse and profiles persist, state resumes.

The paper's user model "will be updated during the lifetime of the
system"; this test snapshots a personalized warehouse and a user profile
mid-interest, simulates a process restart (fresh objects from JSON), and
checks the widening behaviour resumes exactly where it left off.
"""

import json

from repro.data import (
    ALL_PAPER_RULES,
    WorldGeoSource,
    build_motivating_user_model,
    build_regional_manager_profile,
)
from repro.personalization import PersonalizationEngine
from repro.storage import star_from_dict, star_to_dict
from repro.sus import UserProfile

CONDITION = "Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry)<20km"


class TestRestart:
    def test_state_resumes_after_restart(self, world, star, user_schema):
        engine = PersonalizationEngine(
            star,
            user_schema,
            geo_source=WorldGeoSource(world),
            parameters={"threshold": 3},
        )
        engine.add_rules(ALL_PAPER_RULES.values())
        profile = build_regional_manager_profile(user_schema)

        # Session 1: personalize, accrue interest just below the threshold.
        session = engine.start_session(profile, world.stores[0].location)
        for _ in range(3):
            session.record_spatial_selection("GeoMD.Store.City", CONDITION)
        session.end()

        # --- "Restart": everything rebuilt from JSON ----------------------
        star_json = json.dumps(star_to_dict(star))
        profile_json = json.dumps(profile.to_dict())

        restored_star = star_from_dict(json.loads(star_json))
        restored_schema = build_motivating_user_model()
        restored_profile = UserProfile.from_dict(
            restored_schema, json.loads(profile_json)
        )
        assert restored_profile.degree("AirportCity") == 3

        restored_engine = PersonalizationEngine(
            restored_star,
            restored_schema,
            geo_source=WorldGeoSource(world),
            parameters={"threshold": 3},
        )
        restored_engine.add_rules(ALL_PAPER_RULES.values())

        # Session 2 on the restored state: still below threshold.
        session2 = restored_engine.start_session(
            restored_profile, world.stores[0].location
        )
        assert ("Store", "City") not in session2.selection.members

        # One more selection crosses the threshold; widening kicks in.
        session2.record_spatial_selection("GeoMD.Store.City", CONDITION)
        assert restored_profile.degree("AirportCity") == 4
        session2.rerun_instance_rules()
        assert ("Store", "City") in session2.selection.members
        session2.end()

    def test_restored_star_produces_identical_views(self, world, star, user_schema):
        engine = PersonalizationEngine(
            star,
            user_schema,
            geo_source=WorldGeoSource(world),
            parameters={"threshold": 3},
        )
        engine.add_rules(ALL_PAPER_RULES.values())
        profile = build_regional_manager_profile(user_schema)
        session = engine.start_session(profile, world.stores[0].location)
        original_rows = set(session.view().fact_rows)
        session.end()

        restored_star = star_from_dict(star_to_dict(star))
        restored_engine = PersonalizationEngine(
            restored_star,
            user_schema,
            geo_source=WorldGeoSource(world),
            parameters={"threshold": 3},
        )
        restored_engine.add_rules(ALL_PAPER_RULES.values())
        profile2 = build_regional_manager_profile(user_schema, name="Ana Two")
        session2 = restored_engine.start_session(
            profile2, world.stores[0].location
        )
        assert set(session2.view().fact_rows) == original_rows
        session2.end()
