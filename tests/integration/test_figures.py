"""Figure regeneration tests — one test class per paper figure.

The paper's evaluation artefacts are Figures 1-6; each class below rebuilds
the corresponding artefact programmatically and asserts its structure, so
"figure regenerated" is a checked property, not a screenshot.  The
benchmarks in ``benchmarks/`` time the same constructions.
"""

import pytest

from repro.data import (
    ALL_PAPER_RULES,
    build_motivating_user_model,
    build_sales_schema,
)
from repro.geomd import GeoMDSchema, GeometricType, geomd_to_uml
from repro.mdm import diff_schemas, schema_to_uml
from repro.prml import (
    AddLayerAction,
    BecomeSpatialAction,
    BinaryOp,
    BinaryOperator,
    ForeachStmt,
    GeomTypeLit,
    IfStmt,
    NumberLit,
    PathExpr,
    QuantityLit,
    Rule,
    SelectInstanceAction,
    SessionEndEvent,
    SessionStartEvent,
    SetContentAction,
    SpatialCall,
    SpatialFunction,
    SpatialSelectionEvent,
    StringLit,
    VarPath,
    parse_rule,
    print_rule,
)
from repro.sus import sus_metamodel
from repro.uml import to_plantuml


class TestFig2MDModel:
    """Fig. 2 — the MD model for sales analysis."""

    def test_uml_rendering_contains_paper_elements(self):
        model = schema_to_uml(build_sales_schema())
        text = to_plantuml(model)
        assert "class Sales <<Fact>>" in text
        for measure in ("UnitSales", "StoreCost", "StoreSales"):
            assert measure in text
        assert "class Store <<Base>>" in text
        assert "Rolls-upTo" not in text.split("class")[0]  # associations render

    def test_structure(self):
        schema = build_sales_schema()
        fact = schema.fact("Sales")
        assert fact.dimension_names == ("Customer", "Store", "Product", "Time")


class TestFig3SUSProfile:
    """Fig. 3 — the UML profile for the Spatial-aware User Model."""

    def test_stereotypes_and_enum(self):
        model = sus_metamodel()
        profile = model.profiles["SUS"]
        assert set(profile.stereotypes) == {
            "User",
            "Session",
            "Characteristic",
            "LocationContext",
            "SpatialSelection",
        }
        assert model.enumerations["GeometricTypes"].literals == (
            "POINT",
            "LINE",
            "POLYGON",
            "COLLECTION",
        )


class TestFig4UserModel:
    """Fig. 4 — the spatial-aware user model of the motivating example."""

    def test_uml_rendering(self):
        model = build_motivating_user_model().to_uml()
        text = to_plantuml(model)
        assert "class DecisionMaker <<User>>" in text
        assert "class AirportCity <<SpatialSelection>>" in text
        assert "degree : Integer" in text
        assert "s2location" in text
        assert "dm2airportcity" in text


class TestFig5PRMLMetamodel:
    """Fig. 5 — the PRML metamodel excerpt: every construct instantiable."""

    def test_all_constructs_instantiable_and_printable(self):
        rule = Rule(
            name="allConstructs",
            event=SpatialSelectionEvent(
                target=PathExpr("GeoMD", ("Store", "City")),
                condition=BinaryOp(
                    BinaryOperator.LT,
                    SpatialCall(
                        SpatialFunction.DISTANCE,
                        (
                            PathExpr("GeoMD", ("Store", "City", "geometry")),
                            PathExpr("GeoMD", ("Airport", "geometry")),
                        ),
                    ),
                    QuantityLit(20, "km"),
                ),
            ),
            body=(
                IfStmt(
                    condition=BinaryOp(
                        BinaryOperator.GT,
                        NumberLit(2),
                        NumberLit(1),
                    ),
                    then_body=(
                        AddLayerAction(StringLit("Train"), GeomTypeLit(GeometricType.LINE)),
                        BecomeSpatialAction(
                            PathExpr("MD", ("Sales", "Store", "geometry")),
                            GeomTypeLit(GeometricType.POINT),
                        ),
                        ForeachStmt(
                            variables=("s",),
                            sources=(PathExpr("GeoMD", ("Store",)),),
                            body=(SelectInstanceAction(VarPath("s")),),
                        ),
                        SetContentAction(
                            PathExpr(
                                "SUS",
                                ("DecisionMaker", "dm2airportcity", "degree"),
                            ),
                            NumberLit(1),
                        ),
                    ),
                    else_body=(),
                ),
            ),
        )
        text = print_rule(rule)
        assert parse_rule(text) == rule

    def test_all_spatial_operators_exist(self):
        names = {fn.value for fn in SpatialFunction}
        assert names == {
            "Intersect",
            "Disjoint",
            "Cross",
            "Inside",
            "Equals",
            "Distance",
            "Intersection",
        }

    def test_all_event_kinds_exist(self):
        assert SessionStartEvent() is not None
        assert SessionEndEvent() is not None


class TestFig6GeoMDModel:
    """Fig. 6 — the GeoMD model obtained after the schema rules."""

    @pytest.fixture()
    def fig6(self, engine, profile, world):
        # The schema rules fire at SessionStart (Example 5.1); the Train
        # layer appears once interest passed the threshold (Example 5.3).
        session = engine.start_session(profile, world.stores[0].location)
        condition = (
            "Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry)<20km"
        )
        for _ in range(4):
            session.record_spatial_selection("GeoMD.Store.City", condition)
        session.rerun_instance_rules()
        schema = session.view().schema
        session.end()
        return schema

    def test_store_is_spatial_level(self, fig6):
        assert fig6.is_spatial_level("Store.Store")
        assert fig6.level_geometric_type("Store.Store") is GeometricType.POINT

    def test_airport_and_train_layers(self, fig6):
        assert fig6.layer("Airport").geometric_type is GeometricType.POINT
        assert fig6.layer("Train").geometric_type is GeometricType.LINE

    def test_diff_from_fig2(self, fig6):
        diff = diff_schemas(GeoMDSchema.from_md(build_sales_schema()), fig6)
        assert set(diff.added_layers) == {"Airport", "Train"}
        assert set(diff.spatialized_levels) == {"Store.Store", "Store.City"}
        assert not diff.removed_levels
        assert not diff.added_facts

    def test_uml_rendering(self, fig6):
        text = to_plantuml(geomd_to_uml(fig6))
        assert "class Store <<SpatialLevel>>" in text
        assert "class Airport <<Layer>>" in text
        assert "class Train <<Layer>>" in text


class TestFig1Process:
    """Fig. 1 — the end-to-end spatial personalization process."""

    def test_md_to_geomd_to_instances(self, engine, profile, world):
        base = GeoMDSchema.from_md(build_sales_schema())
        assert not base.layers and not base.spatial_levels

        session = engine.start_session(profile, world.stores[0].location)
        view = session.view()
        # Step 1 (schema rules): spatiality was added.
        assert view.schema.layers
        assert view.schema.spatial_levels
        # Step 2 (instance rules): the instance got personalized.
        assert view.is_restricted
        assert 0 < len(view.fact_rows) < view.stats()["fact_rows_total"]
        session.end()

    def test_paper_rules_drive_the_whole_process(self, engine):
        assert {r.rule.name for r in engine.rules} == set(ALL_PAPER_RULES)
