"""Integration tests for the worked Examples 5.1, 5.2 and 5.3."""

import pytest

from repro.data import build_regional_manager_profile
from repro.geomd import GeometricType


class TestExample51SchemaRule:
    """addSpatiality: role-gated Airport layer + Store spatialization."""

    def test_regional_manager_triggers_rule(self, engine, profile):
        session = engine.start_session(profile)
        outcome = next(
            o for o in session.outcomes if o.rule_name == "addSpatiality"
        )
        assert outcome.layers_added == ["Airport"]
        assert outcome.levels_spatialized == ["Store.Store"]
        schema = session.view().schema
        assert schema.layer("Airport").geometric_type is GeometricType.POINT
        session.end()

    def test_other_role_does_not_trigger(self, engine, user_schema):
        analyst = build_regional_manager_profile(user_schema, name="Bob")
        analyst.set("DecisionMaker.dm2role.name", "Analyst")
        session = engine.start_session(analyst)
        outcome = next(
            o for o in session.outcomes if o.rule_name == "addSpatiality"
        )
        assert outcome.fired_actions == 0
        assert session.view().schema.layers == {}
        session.end()

    def test_airport_features_loaded(self, engine, profile, world):
        session = engine.start_session(profile)
        table = engine.star.layer_table("Airport")
        assert len(table) == len(world.airports)
        session.end()


class TestExample52InstanceRule:
    """5kmStores: select stores within 5 km of the session location."""

    def test_selection_is_exactly_the_5km_disc(self, engine, profile, world):
        location = world.cities[0].location
        session = engine.start_session(profile, location)
        selected = session.selection.members.get(("Store", "Store"), set())
        expected = {
            s.name
            for s in world.stores
            if s.location.distance_to(location) < 5_000.0
        }
        assert selected == expected
        session.end()

    def test_no_location_skips_rule_with_error(self, engine, profile):
        # Without a session location the rule's context data is missing:
        # the rule is skipped and the outcome records why.
        session = engine.start_session(profile, location=None)
        outcome = next(o for o in session.outcomes if o.rule_name == "5kmStores")
        assert outcome.error is not None
        assert outcome.selected_instances == 0
        assert ("Store", "Store") not in session.selection.members
        session.end()

    def test_succeeding_analysis_uses_only_selected_stores(
        self, engine, profile, world, star
    ):
        location = world.cities[0].location
        session = engine.start_session(profile, location)
        view = session.view()
        column = star.fact_table().key_column("Store")
        selected = session.selection.members[("Store", "Store")]
        assert all(column[row] in selected for row in view.fact_rows)
        session.end()


class TestExample53InterestRule:
    """IntAirportCity + TrainAirportCity: track interest, then widen."""

    CONDITION = (
        "Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry)<20km"
    )

    def test_degree_accumulates_per_matching_selection(
        self, engine, profile, world
    ):
        session = engine.start_session(profile, world.stores[0].location)
        for expected in (1, 2, 3):
            session.record_spatial_selection("GeoMD.Store.City", self.CONDITION)
            assert profile.degree("AirportCity") == expected
        session.end()

    def test_threshold_gates_train_rule(self, engine, profile, world):
        session = engine.start_session(profile, world.stores[0].location)
        # threshold = 3; degree 3 is NOT > 3.
        for _ in range(3):
            session.record_spatial_selection("GeoMD.Store.City", self.CONDITION)
        session.rerun_instance_rules()
        assert ("Store", "City") not in session.selection.members
        # One more pushes it over.
        session.record_spatial_selection("GeoMD.Store.City", self.CONDITION)
        session.rerun_instance_rules()
        assert ("Store", "City") in session.selection.members
        session.end()

    def test_train_layer_added_on_trigger(self, engine, profile, world):
        session = engine.start_session(profile, world.stores[0].location)
        schema = session.view().schema
        assert "Train" not in schema.layers
        for _ in range(4):
            session.record_spatial_selection("GeoMD.Store.City", self.CONDITION)
        session.rerun_instance_rules()
        assert schema.layer("Train").geometric_type is GeometricType.LINE
        session.end()

    def test_selected_cities_satisfy_50km_arc_condition(
        self, engine, profile, world
    ):
        session = engine.start_session(profile, world.stores[0].location)
        for _ in range(4):
            session.record_spatial_selection("GeoMD.Store.City", self.CONDITION)
        session.rerun_instance_rules()
        selected = session.selection.members[("Store", "City")]

        expected = set()
        for line in world.train_lines:
            airport_stops = [
                world.airport(s)
                for s in line.stops
                if any(a.name == s for a in world.airports)
            ]
            city_stops = [
                world.city(s)
                for s in line.stops
                if any(c.name == s for c in world.cities)
            ]
            for city in city_stops:
                for airport in airport_stops:
                    arc = line.path.arc_between(city.location, airport.location)
                    if arc < 50_000.0:
                        expected.add(city.name)
        assert selected == expected
        session.end()

    def test_interest_persists_across_sessions(self, engine, profile, world):
        session1 = engine.start_session(profile, world.stores[0].location)
        for _ in range(4):
            session1.record_spatial_selection("GeoMD.Store.City", self.CONDITION)
        session1.end()
        # New session: TrainAirportCity fires directly at SessionStart
        # because the degree survived in the user model.
        session2 = engine.start_session(profile, world.stores[0].location)
        assert ("Store", "City") in session2.selection.members
        session2.end()
