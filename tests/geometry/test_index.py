"""Tests for the spatial indexes (grid and STR-packed R-tree)."""

import random

import pytest

from repro.errors import GeometryError
from repro.geometry import (
    Envelope,
    GridIndex,
    LineString,
    Point,
    STRtree,
    brute_force_within_distance,
)


def _random_points(n, seed=7, extent=1000.0):
    rng = random.Random(seed)
    return [
        (Point(rng.uniform(0, extent), rng.uniform(0, extent)), i) for i in range(n)
    ]


@pytest.fixture(params=["grid", "strtree"])
def index_factory(request):
    if request.param == "grid":
        return GridIndex
    return STRtree


class TestConstruction:
    def test_empty_rejected(self, index_factory):
        with pytest.raises(GeometryError):
            index_factory([])

    def test_len(self, index_factory):
        idx = index_factory(_random_points(100))
        assert len(idx) == 100

    def test_grid_rejects_bad_cell_size(self):
        with pytest.raises(GeometryError):
            GridIndex(_random_points(10), cell_size=-1.0)

    def test_strtree_rejects_bad_capacity(self):
        with pytest.raises(GeometryError):
            STRtree(_random_points(10), node_capacity=1)

    def test_single_entry(self, index_factory):
        idx = index_factory([(Point(5, 5), "only")])
        assert idx.within_distance(Point(5, 5), 1.0) == ["only"]


class TestQueries:
    def test_envelope_query_matches_brute_force(self, index_factory):
        entries = _random_points(500)
        idx = index_factory(entries)
        env = Envelope(100, 100, 400, 300)
        expected = sorted(i for p, i in entries if env.contains_coord(p.coord))
        assert sorted(idx.query_envelope(env)) == expected

    def test_within_distance_matches_brute_force(self, index_factory):
        entries = _random_points(500)
        idx = index_factory(entries)
        center = Point(500, 500)
        for radius in (0.0, 50.0, 200.0, 2000.0):
            expected = sorted(brute_force_within_distance(entries, center, radius))
            assert sorted(idx.within_distance(center, radius)) == expected

    def test_negative_radius_rejected(self, index_factory):
        idx = index_factory(_random_points(10))
        with pytest.raises(GeometryError):
            idx.within_distance(Point(0, 0), -1)

    def test_lines_indexable(self, index_factory):
        entries = [
            (LineString([(i * 10, 0), (i * 10 + 5, 5)]), i) for i in range(50)
        ]
        idx = index_factory(entries)
        hits = idx.within_distance(Point(0, 0), 6.0)
        assert 0 in hits
        assert 40 not in hits

    def test_radius_zero_hits_coincident(self, index_factory):
        entries = _random_points(50) + [(Point(123, 456), "exact")]
        idx = index_factory(entries)
        assert "exact" in idx.within_distance(Point(123, 456), 0.0)


class TestNearest:
    def test_nearest_one(self):
        entries = _random_points(300)
        tree = STRtree(entries)
        center = Point(500, 500)
        (d, item), = tree.nearest(center, k=1)
        brute = min(entries, key=lambda e: e[0].distance_to(center))
        assert item == brute[1]
        assert d == pytest.approx(brute[0].distance_to(center))

    def test_nearest_k_sorted(self):
        entries = _random_points(300)
        tree = STRtree(entries)
        center = Point(250, 250)
        results = tree.nearest(center, k=10)
        assert len(results) == 10
        dists = [d for d, _item in results]
        assert dists == sorted(dists)
        brute = sorted(e[0].distance_to(center) for e in entries)[:10]
        assert dists == pytest.approx(brute)

    def test_k_larger_than_population(self):
        entries = _random_points(5)
        tree = STRtree(entries)
        assert len(tree.nearest(Point(0, 0), k=50)) == 5

    def test_invalid_k(self):
        tree = STRtree(_random_points(5))
        with pytest.raises(GeometryError):
            tree.nearest(Point(0, 0), k=0)


class TestSkewedData:
    def test_clustered_points(self, index_factory):
        rng = random.Random(13)
        cluster_a = [
            (Point(rng.gauss(100, 5), rng.gauss(100, 5)), f"a{i}") for i in range(200)
        ]
        cluster_b = [
            (Point(rng.gauss(900, 5), rng.gauss(900, 5)), f"b{i}") for i in range(200)
        ]
        idx = index_factory(cluster_a + cluster_b)
        hits = idx.within_distance(Point(100, 100), 30.0)
        assert all(h.startswith("a") for h in hits)
        assert len(hits) > 150
