"""Unit tests for the geometry object model."""

import math

import pytest

from repro.errors import GeometryError
from repro.geometry import (
    Envelope,
    GeometryCollection,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
    as_point,
)


class TestEnvelope:
    def test_properties(self):
        env = Envelope(0, 1, 4, 5)
        assert env.width == 4
        assert env.height == 4
        assert env.area == 16
        assert env.center == (2.0, 3.0)

    def test_rejects_inverted(self):
        with pytest.raises(GeometryError):
            Envelope(1, 0, 0, 0)

    def test_intersects_and_contains(self):
        a = Envelope(0, 0, 2, 2)
        b = Envelope(1, 1, 3, 3)
        c = Envelope(5, 5, 6, 6)
        assert a.intersects(b)
        assert not a.intersects(c)
        assert a.contains(Envelope(0.5, 0.5, 1.5, 1.5))
        assert not a.contains(b)

    def test_touching_envelopes_intersect(self):
        assert Envelope(0, 0, 1, 1).intersects(Envelope(1, 0, 2, 1))

    def test_union(self):
        u = Envelope(0, 0, 1, 1).union(Envelope(2, 2, 3, 3))
        assert (u.min_x, u.min_y, u.max_x, u.max_y) == (0, 0, 3, 3)

    def test_distance(self):
        assert Envelope(0, 0, 1, 1).distance(Envelope(4, 4, 5, 5)) == pytest.approx(
            math.hypot(3, 3)
        )
        assert Envelope(0, 0, 2, 2).distance(Envelope(1, 1, 3, 3)) == 0.0

    def test_expanded(self):
        env = Envelope(0, 0, 1, 1).expanded(2)
        assert (env.min_x, env.min_y, env.max_x, env.max_y) == (-2, -2, 3, 3)


class TestPoint:
    def test_basic(self):
        p = Point(1, 2)
        assert p.coord == (1.0, 2.0)
        assert p.dimension == 0
        assert not p.is_empty
        assert list(p.coords()) == [(1.0, 2.0)]

    def test_rejects_nan(self):
        with pytest.raises(GeometryError):
            Point(float("nan"), 0)

    def test_rejects_inf(self):
        with pytest.raises(GeometryError):
            Point(0, float("inf"))

    def test_equality_and_hash(self):
        assert Point(1, 2) == Point(1, 2)
        assert hash(Point(1, 2)) == hash(Point(1, 2))
        assert Point(1, 2) != Point(2, 1)

    def test_distance_to(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_as_point_coercion(self):
        assert as_point((1, 2)) == Point(1, 2)
        assert as_point(Point(3, 4)) == Point(3, 4)
        with pytest.raises(GeometryError):
            as_point("nope")


class TestLineString:
    def test_basic(self):
        line = LineString([(0, 0), (3, 0), (3, 4)])
        assert line.length == 7.0
        assert line.dimension == 1
        assert not line.is_closed
        assert len(list(line.segments())) == 2

    def test_requires_two_points(self):
        with pytest.raises(GeometryError):
            LineString([(0, 0)])

    def test_rejects_repeated_vertex(self):
        with pytest.raises(GeometryError):
            LineString([(0, 0), (0, 0), (1, 1)])

    def test_closed_ring_line(self):
        ring = LineString([(0, 0), (1, 0), (1, 1), (0, 0)])
        assert ring.is_closed

    def test_arc_between(self):
        line = LineString([(0, 0), (10, 0)])
        assert line.arc_between(Point(2, 1), Point(8, -1)) == pytest.approx(6.0)

    def test_envelope(self):
        env = LineString([(0, 0), (3, 4)]).envelope
        assert (env.min_x, env.min_y, env.max_x, env.max_y) == (0, 0, 3, 4)


class TestPolygon:
    def test_area_and_perimeter(self):
        square = Polygon([(0, 0), (2, 0), (2, 2), (0, 2)])
        assert square.area == 4.0
        assert square.perimeter == 8.0
        assert square.dimension == 2

    def test_orientation_normalized(self):
        cw = Polygon([(0, 0), (0, 1), (1, 1), (1, 0)])
        ccw = Polygon([(0, 0), (1, 0), (1, 1), (0, 1)])
        assert cw == ccw

    def test_closing_vertex_dropped(self):
        closed = Polygon([(0, 0), (1, 0), (1, 1), (0, 1), (0, 0)])
        assert len(closed.shell) == 4

    def test_hole_subtracts_area(self):
        donut = Polygon(
            [(0, 0), (4, 0), (4, 4), (0, 4)],
            holes=[[(1, 1), (3, 1), (3, 3), (1, 3)]],
        )
        assert donut.area == 16.0 - 4.0

    def test_point_classification_with_hole(self):
        donut = Polygon(
            [(0, 0), (4, 0), (4, 4), (0, 4)],
            holes=[[(1, 1), (3, 1), (3, 3), (1, 3)]],
        )
        assert donut.locate_coord((0.5, 0.5)) == "interior"
        assert donut.locate_coord((2, 2)) == "exterior"  # inside the hole
        assert donut.locate_coord((1, 2)) == "boundary"  # on the hole ring
        assert donut.locate_coord((5, 5)) == "exterior"

    def test_rejects_self_intersection(self):
        with pytest.raises(GeometryError):
            Polygon([(0, 0), (1, 1), (1, 0), (0, 1)])

    def test_rejects_degenerate(self):
        with pytest.raises(GeometryError):
            Polygon([(0, 0), (1, 1), (2, 2)])

    def test_rejects_too_few_vertices(self):
        with pytest.raises(GeometryError):
            Polygon([(0, 0), (1, 0)])


class TestCollections:
    def test_multipoint(self):
        mp = MultiPoint([Point(0, 0), Point(1, 1)])
        assert len(mp) == 2
        assert mp.dimension == 0

    def test_multipoint_type_check(self):
        with pytest.raises(GeometryError):
            MultiPoint([Point(0, 0), LineString([(0, 0), (1, 1)])])

    def test_multilinestring_length(self):
        mls = MultiLineString(
            [LineString([(0, 0), (1, 0)]), LineString([(0, 1), (2, 1)])]
        )
        assert mls.length == 3.0
        assert mls.dimension == 1

    def test_multipolygon_area(self):
        mpoly = MultiPolygon(
            [
                Polygon([(0, 0), (1, 0), (1, 1), (0, 1)]),
                Polygon([(2, 2), (4, 2), (4, 4), (2, 4)]),
            ]
        )
        assert mpoly.area == 5.0

    def test_geometry_collection_dimension(self):
        gc = GeometryCollection([Point(0, 0), LineString([(0, 0), (1, 1)])])
        assert gc.dimension == 1
        assert len(gc) == 2

    def test_empty_collection(self):
        gc = GeometryCollection(())
        assert gc.is_empty

    def test_collection_rejects_non_geometry(self):
        with pytest.raises(GeometryError):
            GeometryCollection([Point(0, 0), "oops"])

    def test_collection_equality(self):
        a = GeometryCollection([Point(0, 0)])
        b = GeometryCollection([Point(0, 0)])
        assert a == b
