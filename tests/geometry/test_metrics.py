"""Tests for distance metrics and unit conversion."""

import pytest

from repro.errors import GeometryError
from repro.geometry import (
    HaversineMetric,
    LineString,
    PlanarMetric,
    Point,
    convert_to_metres,
)


class TestUnits:
    def test_km(self):
        assert convert_to_metres(5, "km") == 5000.0

    def test_m(self):
        assert convert_to_metres(250, "m") == 250.0

    def test_mi(self):
        assert convert_to_metres(1, "mi") == pytest.approx(1609.344)

    def test_unknown_unit(self):
        with pytest.raises(GeometryError):
            convert_to_metres(1, "furlong")


class TestPlanarMetric:
    def test_point_distance(self):
        metric = PlanarMetric()
        assert metric.distance(Point(0, 0), Point(3, 4)) == 5.0

    def test_line_distance(self):
        metric = PlanarMetric()
        assert metric.distance(Point(0, 5), LineString([(0, 0), (10, 0)])) == 5.0


class TestHaversineMetric:
    def test_equator_degree(self):
        metric = HaversineMetric()
        d = metric.distance(Point(0, 0), Point(1, 0))
        # One degree of longitude at the equator is ~111.2 km.
        assert d == pytest.approx(111_195, rel=0.01)

    def test_known_city_pair(self):
        # Madrid (-3.70, 40.42) to Alicante (-0.48, 38.35): ~360-370 km.
        metric = HaversineMetric()
        d = metric.distance(Point(-3.70, 40.42), Point(-0.48, 38.35))
        assert 340_000 < d < 390_000

    def test_zero_distance(self):
        metric = HaversineMetric()
        assert metric.distance(Point(10, 20), Point(10, 20)) == 0.0

    def test_symmetry(self):
        metric = HaversineMetric()
        a, b = Point(2.15, 41.39), Point(-0.48, 38.35)
        assert metric.distance(a, b) == pytest.approx(metric.distance(b, a))

    def test_projected_line_distance_close_to_point_form(self):
        # A short line near a point: projected distance should be close to
        # the haversine point distance to the nearest line vertex.
        metric = HaversineMetric()
        p = Point(0.0, 38.0)
        line = LineString([(0.1, 38.0), (0.2, 38.0)])
        d_line = metric.distance(p, line)
        d_point = metric.distance(p, Point(0.1, 38.0))
        assert d_line == pytest.approx(d_point, rel=0.02)
