"""Unit tests for the low-level planar geometry routines."""

import math

import pytest

from repro.geometry import algorithms as alg


class TestOrientation:
    def test_counter_clockwise(self):
        assert alg.orientation((0, 0), (1, 0), (0, 1)) == 1

    def test_clockwise(self):
        assert alg.orientation((0, 0), (0, 1), (1, 0)) == -1

    def test_collinear(self):
        assert alg.orientation((0, 0), (1, 1), (2, 2)) == 0

    def test_collinear_with_large_coordinates(self):
        assert alg.orientation((1e6, 1e6), (2e6, 2e6), (3e6, 3e6)) == 0

    def test_near_collinear_is_collinear_within_eps(self):
        assert alg.orientation((0, 0), (1, 0), (2, 1e-12)) == 0


class TestOnSegment:
    def test_midpoint(self):
        assert alg.on_segment((0.5, 0.5), (0, 0), (1, 1))

    def test_endpoint(self):
        assert alg.on_segment((1, 1), (0, 0), (1, 1))

    def test_collinear_but_outside(self):
        assert not alg.on_segment((2, 2), (0, 0), (1, 1))

    def test_off_line(self):
        assert not alg.on_segment((0.5, 0.6), (0, 0), (1, 1))


class TestDistances:
    def test_point_distance(self):
        assert alg.distance((0, 0), (3, 4)) == 5.0

    def test_point_segment_perpendicular(self):
        assert alg.point_segment_distance((0, 1), (-1, 0), (1, 0)) == 1.0

    def test_point_segment_clamps_to_endpoint(self):
        assert alg.point_segment_distance((3, 4), (0, 0), (0, 0)) == 5.0
        assert alg.point_segment_distance((2, 0), (0, 0), (1, 0)) == 1.0

    def test_segment_segment_crossing_is_zero(self):
        assert alg.segment_segment_distance((0, -1), (0, 1), (-1, 0), (1, 0)) == 0.0

    def test_segment_segment_parallel(self):
        assert alg.segment_segment_distance((0, 0), (1, 0), (0, 1), (1, 1)) == 1.0


class TestSegmentIntersection:
    def test_proper_crossing(self):
        kind, pts = alg.segment_intersection((0, -1), (0, 1), (-1, 0), (1, 0))
        assert kind == "point"
        assert pts[0] == pytest.approx((0.0, 0.0))

    def test_touching_endpoint(self):
        kind, pts = alg.segment_intersection((0, 0), (1, 0), (1, 0), (2, 5))
        assert kind == "point"
        assert pts[0] == pytest.approx((1.0, 0.0))

    def test_disjoint(self):
        kind, pts = alg.segment_intersection((0, 0), (1, 0), (0, 1), (1, 1))
        assert kind == "none"
        assert pts == ()

    def test_collinear_overlap(self):
        kind, pts = alg.segment_intersection((0, 0), (2, 0), (1, 0), (3, 0))
        assert kind == "segment"
        assert sorted(pts) == [(1.0, 0.0), (2.0, 0.0)]

    def test_collinear_single_point_touch(self):
        kind, pts = alg.segment_intersection((0, 0), (1, 0), (1, 0), (2, 0))
        assert kind == "point"
        assert pts[0] == (1.0, 0.0)

    def test_collinear_disjoint(self):
        kind, _ = alg.segment_intersection((0, 0), (1, 0), (2, 0), (3, 0))
        assert kind == "none"

    def test_identical_segments(self):
        kind, pts = alg.segment_intersection((0, 0), (1, 1), (0, 0), (1, 1))
        assert kind == "segment"
        assert set(pts) == {(0.0, 0.0), (1.0, 1.0)}


class TestPolylines:
    def test_length(self):
        assert alg.polyline_length([(0, 0), (3, 0), (3, 4)]) == 7.0

    def test_point_polyline_distance(self):
        assert alg.point_polyline_distance((1, 1), [(0, 0), (2, 0)]) == 1.0

    def test_locate_on_polyline(self):
        arc, q = alg.locate_on_polyline((3, 1), [(0, 0), (3, 0), (3, 4)])
        assert arc == pytest.approx(4.0)
        assert q == pytest.approx((3.0, 1.0))

    def test_locate_snaps_off_line_points(self):
        arc, q = alg.locate_on_polyline((1.5, 2.0), [(0, 0), (3, 0)])
        assert arc == pytest.approx(1.5)
        assert q == pytest.approx((1.5, 0.0))

    def test_arc_between(self):
        line = [(0, 0), (10, 0)]
        assert alg.polyline_arc_between(line, (2, 0), (7, 0)) == pytest.approx(5.0)

    def test_arc_between_is_symmetric(self):
        line = [(0, 0), (5, 0), (5, 5)]
        d1 = alg.polyline_arc_between(line, (1, 0), (5, 3))
        d2 = alg.polyline_arc_between(line, (5, 3), (1, 0))
        assert d1 == pytest.approx(d2)
        assert d1 == pytest.approx(7.0)


class TestRings:
    UNIT_SQUARE = [(0, 0), (1, 0), (1, 1), (0, 1)]

    def test_signed_area_ccw_positive(self):
        assert alg.signed_area(self.UNIT_SQUARE) == 1.0

    def test_signed_area_cw_negative(self):
        assert alg.signed_area(list(reversed(self.UNIT_SQUARE))) == -1.0

    def test_signed_area_accepts_closed_ring(self):
        ring = self.UNIT_SQUARE + [(0, 0)]
        assert alg.signed_area(ring) == 1.0

    def test_centroid_of_square(self):
        assert alg.ring_centroid(self.UNIT_SQUARE) == pytest.approx((0.5, 0.5))

    def test_point_in_ring_interior(self):
        assert alg.point_in_ring((0.5, 0.5), self.UNIT_SQUARE) == "interior"

    def test_point_in_ring_boundary(self):
        assert alg.point_in_ring((0.5, 0.0), self.UNIT_SQUARE) == "boundary"
        assert alg.point_in_ring((0.0, 0.0), self.UNIT_SQUARE) == "boundary"

    def test_point_in_ring_exterior(self):
        assert alg.point_in_ring((1.5, 0.5), self.UNIT_SQUARE) == "exterior"

    def test_point_in_concave_ring(self):
        # A "U" shape: the notch is exterior.
        u_shape = [(0, 0), (3, 0), (3, 3), (2, 3), (2, 1), (1, 1), (1, 3), (0, 3)]
        assert alg.point_in_ring((1.5, 2.0), u_shape) == "exterior"
        assert alg.point_in_ring((0.5, 2.0), u_shape) == "interior"

    def test_simple_ring(self):
        assert alg.is_ring_simple(self.UNIT_SQUARE)

    def test_bowtie_not_simple(self):
        assert not alg.is_ring_simple([(0, 0), (1, 1), (1, 0), (0, 1)])


class TestConvexHull:
    def test_square_with_interior_point(self):
        pts = [(0, 0), (1, 0), (1, 1), (0, 1), (0.5, 0.5)]
        hull = alg.convex_hull(pts)
        assert set(hull) == {(0, 0), (1, 0), (1, 1), (0, 1)}
        assert alg.signed_area(hull) > 0  # counter-clockwise

    def test_collinear_points(self):
        assert alg.convex_hull([(0, 0), (1, 1), (2, 2)]) == [(0, 0), (2, 2)]

    def test_duplicates_collapse(self):
        assert alg.convex_hull([(1, 2), (1, 2), (1, 2)]) == [(1, 2)]

    def test_two_points(self):
        assert alg.convex_hull([(0, 0), (1, 0)]) == [(0, 0), (1, 0)]
