"""Tests for the topological predicates (the paper's PRML operators)."""

import pytest

from repro.geometry import (
    GeometryCollection,
    LineString,
    MultiPoint,
    Point,
    Polygon,
    contains,
    crosses,
    disjoint,
    equals,
    intersects,
    overlaps,
    touches,
    within,
)

SQUARE = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])
SMALL_SQUARE = Polygon([(2, 2), (4, 2), (4, 4), (2, 4)])
FAR_SQUARE = Polygon([(20, 20), (30, 20), (30, 30), (20, 30)])
DONUT = Polygon(
    [(0, 0), (10, 0), (10, 10), (0, 10)],
    holes=[[(4, 4), (6, 4), (6, 6), (4, 6)]],
)


class TestIntersects:
    def test_point_point(self):
        assert intersects(Point(1, 1), Point(1, 1))
        assert not intersects(Point(1, 1), Point(1, 2))

    def test_point_line(self):
        line = LineString([(0, 0), (10, 0)])
        assert intersects(Point(5, 0), line)
        assert intersects(line, Point(5, 0))
        assert not intersects(Point(5, 1), line)

    def test_point_polygon(self):
        assert intersects(Point(5, 5), SQUARE)
        assert intersects(Point(0, 5), SQUARE)  # boundary counts
        assert not intersects(Point(50, 50), SQUARE)

    def test_point_in_donut_hole_does_not_intersect(self):
        assert not intersects(Point(5, 5), DONUT)

    def test_line_line(self):
        a = LineString([(0, 0), (10, 10)])
        b = LineString([(0, 10), (10, 0)])
        c = LineString([(20, 20), (30, 30)])
        assert intersects(a, b)
        assert not intersects(a, c)

    def test_line_polygon(self):
        crossing = LineString([(-5, 5), (15, 5)])
        outside = LineString([(-5, -5), (-1, -1)])
        assert intersects(crossing, SQUARE)
        assert intersects(SQUARE, crossing)
        assert not intersects(outside, SQUARE)

    def test_line_through_polygon_without_interior_vertices(self):
        through = LineString([(-5, 5), (20, 5)])
        assert intersects(through, SQUARE)

    def test_polygon_polygon_nested(self):
        assert intersects(SQUARE, SMALL_SQUARE)

    def test_polygon_polygon_disjoint(self):
        assert not intersects(SQUARE, FAR_SQUARE)

    def test_collection(self):
        gc = GeometryCollection([Point(50, 50), Point(5, 5)])
        assert intersects(gc, SQUARE)

    def test_empty_geometry_never_intersects(self):
        assert not intersects(GeometryCollection(()), SQUARE)

    def test_disjoint_is_negation(self):
        assert disjoint(Point(50, 50), SQUARE)
        assert not disjoint(Point(5, 5), SQUARE)


class TestWithinContains:
    def test_point_in_polygon(self):
        assert within(Point(5, 5), SQUARE)
        assert contains(SQUARE, Point(5, 5))

    def test_boundary_point_not_within(self):
        # OGC: within requires an interior-interior intersection.
        assert not within(Point(0, 5), SQUARE)

    def test_point_on_line(self):
        line = LineString([(0, 0), (10, 0)])
        assert within(Point(5, 0), line)

    def test_line_endpoint_not_within(self):
        line = LineString([(0, 0), (10, 0)])
        assert not within(Point(0, 0), line)

    def test_line_in_polygon(self):
        inner = LineString([(2, 2), (8, 8)])
        assert within(inner, SQUARE)

    def test_poking_line_not_within(self):
        poking = LineString([(5, 5), (15, 5)])
        assert not within(poking, SQUARE)

    def test_chord_line_not_within_donut_hole_crossing(self):
        chord = LineString([(2, 5), (8, 5)])  # passes over the hole
        assert not within(chord, DONUT)

    def test_polygon_in_polygon(self):
        assert within(SMALL_SQUARE, SQUARE)
        assert not within(SQUARE, SMALL_SQUARE)

    def test_polygon_not_within_disjoint(self):
        assert not within(FAR_SQUARE, SQUARE)

    def test_line_within_line(self):
        long_line = LineString([(0, 0), (10, 0)])
        short_line = LineString([(2, 0), (6, 0)])
        assert within(short_line, long_line)
        assert not within(long_line, short_line)

    def test_multipoint_within(self):
        mp = MultiPoint([Point(3, 3), Point(7, 7)])
        assert within(mp, SQUARE)
        mp_mixed = MultiPoint([Point(3, 3), Point(50, 50)])
        assert not within(mp_mixed, SQUARE)


class TestCrosses:
    def test_line_crosses_line(self):
        a = LineString([(0, 0), (10, 10)])
        b = LineString([(0, 10), (10, 0)])
        assert crosses(a, b)

    def test_touching_lines_do_not_cross(self):
        a = LineString([(0, 0), (5, 5)])
        b = LineString([(5, 5), (10, 0)])
        assert not crosses(a, b)

    def test_t_junction_does_not_cross(self):
        # Endpoint of a lies in interior of b: boundary/interior, not crossing.
        a = LineString([(5, 0), (5, 5)])
        b = LineString([(0, 5), (10, 5)])
        assert not crosses(a, b)

    def test_overlapping_lines_do_not_cross(self):
        a = LineString([(0, 0), (10, 0)])
        b = LineString([(5, 0), (15, 0)])
        assert not crosses(a, b)

    def test_line_crosses_polygon(self):
        through = LineString([(-5, 5), (15, 5)])
        assert crosses(through, SQUARE)
        assert crosses(SQUARE, through)  # symmetric dispatch

    def test_interior_line_does_not_cross_polygon(self):
        inner = LineString([(2, 2), (8, 8)])
        assert not crosses(inner, SQUARE)

    def test_point_never_crosses(self):
        assert not crosses(Point(5, 5), SQUARE)
        assert not crosses(Point(5, 5), LineString([(0, 0), (10, 10)]))

    def test_multipoint_crosses_polygon(self):
        mp = MultiPoint([Point(5, 5), Point(50, 50)])
        assert crosses(mp, SQUARE)
        mp_all_in = MultiPoint([Point(5, 5), Point(6, 6)])
        assert not crosses(mp_all_in, SQUARE)


class TestTouches:
    def test_point_touches_polygon_boundary(self):
        assert touches(Point(0, 5), SQUARE)
        assert not touches(Point(5, 5), SQUARE)

    def test_point_touches_line_endpoint(self):
        line = LineString([(0, 0), (10, 0)])
        assert touches(Point(0, 0), line)
        assert not touches(Point(5, 0), line)  # interior point

    def test_lines_touching_at_endpoints(self):
        a = LineString([(0, 0), (5, 5)])
        b = LineString([(5, 5), (10, 0)])
        assert touches(a, b)

    def test_crossing_lines_do_not_touch(self):
        a = LineString([(0, 0), (10, 10)])
        b = LineString([(0, 10), (10, 0)])
        assert not touches(a, b)

    def test_adjacent_polygons_touch(self):
        left = Polygon([(0, 0), (5, 0), (5, 5), (0, 5)])
        right = Polygon([(5, 0), (10, 0), (10, 5), (5, 5)])
        assert touches(left, right)

    def test_overlapping_polygons_do_not_touch(self):
        a = Polygon([(0, 0), (6, 0), (6, 6), (0, 6)])
        b = Polygon([(3, 3), (9, 3), (9, 9), (3, 9)])
        assert not touches(a, b)

    def test_line_touching_polygon_edge(self):
        grazing = LineString([(0, -5), (0, 15)])  # runs along x=0 edge
        assert touches(grazing, SQUARE)


class TestOverlaps:
    def test_polygons_overlap(self):
        a = Polygon([(0, 0), (6, 0), (6, 6), (0, 6)])
        b = Polygon([(3, 3), (9, 3), (9, 9), (3, 9)])
        assert overlaps(a, b)
        assert overlaps(b, a)

    def test_nested_polygons_do_not_overlap(self):
        assert not overlaps(SQUARE, SMALL_SQUARE)

    def test_different_dimensions_never_overlap(self):
        assert not overlaps(SQUARE, LineString([(0, 0), (20, 20)]))

    def test_lines_overlap(self):
        a = LineString([(0, 0), (10, 0)])
        b = LineString([(5, 0), (15, 0)])
        assert overlaps(a, b)

    def test_crossing_lines_do_not_overlap(self):
        a = LineString([(0, 0), (10, 10)])
        b = LineString([(0, 10), (10, 0)])
        assert not overlaps(a, b)

    def test_multipoints_overlap(self):
        a = MultiPoint([Point(0, 0), Point(1, 1)])
        b = MultiPoint([Point(1, 1), Point(2, 2)])
        assert overlaps(a, b)

    def test_identical_multipoints_do_not_overlap(self):
        a = MultiPoint([Point(0, 0), Point(1, 1)])
        b = MultiPoint([Point(0, 0), Point(1, 1)])
        assert not overlaps(a, b)


class TestEquals:
    def test_points(self):
        assert equals(Point(1, 2), Point(1, 2))
        assert not equals(Point(1, 2), Point(2, 1))

    def test_reversed_line(self):
        assert equals(
            LineString([(0, 0), (5, 5), (10, 0)]),
            LineString([(10, 0), (5, 5), (0, 0)]),
        )

    def test_rotated_polygon_ring(self):
        a = Polygon([(0, 0), (1, 0), (1, 1), (0, 1)])
        b = Polygon([(1, 1), (0, 1), (0, 0), (1, 0)])
        assert equals(a, b)

    def test_opposite_orientation_polygons(self):
        a = Polygon([(0, 0), (1, 0), (1, 1), (0, 1)])
        b = Polygon([(0, 0), (0, 1), (1, 1), (1, 0)])
        assert equals(a, b)

    def test_different_polygons(self):
        assert not equals(SQUARE, SMALL_SQUARE)

    def test_multipoint_order_insensitive(self):
        a = MultiPoint([Point(0, 0), Point(1, 1)])
        b = MultiPoint([Point(1, 1), Point(0, 0)])
        assert equals(a, b)

    def test_mixed_types_not_equal(self):
        assert not equals(Point(0, 0), LineString([(0, 0), (1, 1)]))
