"""Tests for value-returning geometric operations."""

import math

import pytest

from repro.errors import GeometryError
from repro.geometry import (
    GeometryCollection,
    LineString,
    MultiLineString,
    MultiPoint,
    Point,
    Polygon,
    centroid,
    clip_line_to_polygon,
    clip_polygon_convex,
    convex_hull,
    distance,
    envelope_geometry,
    intersection,
    is_convex,
    point_buffer,
    split_line_at,
)

SQUARE = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])


class TestDistance:
    def test_point_point(self):
        assert distance(Point(0, 0), Point(3, 4)) == 5.0

    def test_point_line(self):
        assert distance(Point(5, 3), LineString([(0, 0), (10, 0)])) == 3.0

    def test_point_in_polygon_is_zero(self):
        assert distance(Point(5, 5), SQUARE) == 0.0

    def test_point_outside_polygon(self):
        assert distance(Point(15, 5), SQUARE) == 5.0

    def test_line_line(self):
        a = LineString([(0, 0), (10, 0)])
        b = LineString([(0, 3), (10, 3)])
        assert distance(a, b) == 3.0

    def test_crossing_lines_zero(self):
        a = LineString([(0, 0), (10, 10)])
        b = LineString([(0, 10), (10, 0)])
        assert distance(a, b) == 0.0

    def test_line_polygon(self):
        line = LineString([(15, 0), (15, 10)])
        assert distance(line, SQUARE) == 5.0
        assert distance(SQUARE, line) == 5.0

    def test_polygon_polygon(self):
        far = Polygon([(20, 0), (30, 0), (30, 10), (20, 10)])
        assert distance(SQUARE, far) == 10.0

    def test_overlapping_polygons_zero(self):
        other = Polygon([(5, 5), (15, 5), (15, 15), (5, 15)])
        assert distance(SQUARE, other) == 0.0

    def test_collection_takes_minimum(self):
        gc = GeometryCollection([Point(100, 100), Point(13, 4)])
        assert distance(gc, Point(10, 0)) == 5.0

    def test_empty_raises(self):
        with pytest.raises(GeometryError):
            distance(GeometryCollection(()), Point(0, 0))


class TestIntersection:
    def test_point_point_hit(self):
        result = intersection(Point(1, 1), Point(1, 1))
        assert result == Point(1, 1)

    def test_point_point_miss(self):
        assert intersection(Point(1, 1), Point(2, 2)).is_empty

    def test_point_line(self):
        result = intersection(Point(5, 0), LineString([(0, 0), (10, 0)]))
        assert result == Point(5, 0)

    def test_line_line_single_point(self):
        a = LineString([(0, 0), (10, 10)])
        b = LineString([(0, 10), (10, 0)])
        result = intersection(a, b)
        assert isinstance(result, Point)
        assert result.coord == pytest.approx((5.0, 5.0))

    def test_line_line_overlap(self):
        a = LineString([(0, 0), (10, 0)])
        b = LineString([(5, 0), (15, 0)])
        result = intersection(a, b)
        assert isinstance(result, LineString)
        assert result.length == pytest.approx(5.0)

    def test_line_line_multiple_crossings(self):
        zigzag = LineString([(0, -1), (2, 1), (4, -1), (6, 1)])
        axis = LineString([(-1, 0), (7, 0)])
        result = intersection(zigzag, axis)
        assert isinstance(result, MultiPoint)
        assert len(result) == 3

    def test_line_polygon_clips(self):
        line = LineString([(-5, 5), (15, 5)])
        result = intersection(line, SQUARE)
        assert isinstance(result, LineString)
        assert result.length == pytest.approx(10.0)

    def test_polygon_polygon_convex(self):
        other = Polygon([(5, 5), (15, 5), (15, 15), (5, 15)])
        result = intersection(SQUARE, other)
        assert isinstance(result, Polygon)
        assert result.area == pytest.approx(25.0)

    def test_polygon_polygon_concave_raises(self):
        concave = Polygon(
            [(0, 0), (10, 0), (10, 10), (5, 5), (0, 10)]
        )
        other_concave = Polygon(
            [(1, 1), (9, 1), (9, 9), (5, 4), (1, 9)]
        )
        with pytest.raises(GeometryError):
            intersection(concave, other_concave)

    def test_disjoint_returns_empty(self):
        assert intersection(Point(50, 50), SQUARE).is_empty


class TestCentroid:
    def test_point(self):
        assert centroid(Point(3, 4)) == Point(3, 4)

    def test_square(self):
        c = centroid(SQUARE)
        assert (c.x, c.y) == pytest.approx((5.0, 5.0))

    def test_line_is_length_weighted(self):
        line = LineString([(0, 0), (10, 0), (10, 2)])
        c = centroid(line)
        expected_x = (5.0 * 10 + 10.0 * 2) / 12
        expected_y = (0.0 * 10 + 1.0 * 2) / 12
        assert (c.x, c.y) == pytest.approx((expected_x, expected_y))

    def test_collection_uses_top_dimension(self):
        gc = GeometryCollection([Point(100, 100), SQUARE])
        c = centroid(gc)
        assert (c.x, c.y) == pytest.approx((5.0, 5.0))

    def test_empty_raises(self):
        with pytest.raises(GeometryError):
            centroid(GeometryCollection(()))


class TestConvexHull:
    def test_hull_of_points(self):
        geoms = [Point(0, 0), Point(4, 0), Point(4, 4), Point(0, 4), Point(2, 2)]
        hull = convex_hull(geoms)
        assert isinstance(hull, Polygon)
        assert hull.area == pytest.approx(16.0)

    def test_hull_of_single_geometry(self):
        hull = convex_hull(SQUARE)
        assert isinstance(hull, Polygon)
        assert hull.area == pytest.approx(100.0)

    def test_degenerate_hull_line(self):
        hull = convex_hull([Point(0, 0), Point(5, 5)])
        assert isinstance(hull, LineString)

    def test_degenerate_hull_point(self):
        assert convex_hull([Point(1, 1)]) == Point(1, 1)


class TestEnvelopeGeometry:
    def test_polygon_envelope(self):
        tri = Polygon([(0, 0), (4, 0), (0, 4)])
        env = envelope_geometry(tri)
        assert isinstance(env, Polygon)
        assert env.area == pytest.approx(16.0)

    def test_point_envelope_degenerates(self):
        assert envelope_geometry(Point(1, 2)) == Point(1, 2)

    def test_vertical_line_envelope(self):
        line = LineString([(0, 0), (0, 5)])
        env = envelope_geometry(line)
        assert isinstance(env, LineString)


class TestBuffer:
    def test_radius_and_area(self):
        disc = point_buffer(Point(0, 0), 10, segments=128)
        assert disc.area == pytest.approx(math.pi * 100, rel=0.01)

    def test_invalid_radius(self):
        with pytest.raises(GeometryError):
            point_buffer(Point(0, 0), -1)

    def test_contains_center(self):
        disc = point_buffer(Point(2, 3), 1)
        assert disc.contains_coord((2, 3))


class TestSplitAndClip:
    def test_split_line(self):
        line = LineString([(0, 0), (10, 0)])
        pieces = split_line_at(line, [Point(4, 0), Point(7, 0)])
        assert [round(p.length, 6) for p in pieces] == [4.0, 3.0, 3.0]

    def test_split_ignores_off_line_points(self):
        line = LineString([(0, 0), (10, 0)])
        pieces = split_line_at(line, [Point(5, 3)])
        assert len(pieces) == 1

    def test_split_at_vertex(self):
        line = LineString([(0, 0), (5, 0), (10, 0)])
        pieces = split_line_at(line, [Point(5, 0)])
        assert len(pieces) == 2

    def test_clip_line_keeps_inside_portion(self):
        line = LineString([(-5, 5), (5, 5)])
        pieces = clip_line_to_polygon(line, SQUARE)
        assert len(pieces) == 1
        assert pieces[0].length == pytest.approx(5.0)

    def test_clip_line_fully_outside(self):
        line = LineString([(-5, -5), (-1, -1)])
        assert clip_line_to_polygon(line, SQUARE) == []

    def test_clip_line_through_produces_one_piece(self):
        line = LineString([(-5, 5), (15, 5)])
        pieces = clip_line_to_polygon(line, SQUARE)
        assert sum(p.length for p in pieces) == pytest.approx(10.0)


class TestConvexClip:
    def test_is_convex(self):
        assert is_convex(SQUARE)
        concave = Polygon([(0, 0), (10, 0), (10, 10), (5, 5), (0, 10)])
        assert not is_convex(concave)

    def test_polygon_with_hole_not_convex(self):
        donut = Polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)],
            holes=[[(4, 4), (6, 4), (6, 6), (4, 6)]],
        )
        assert not is_convex(donut)

    def test_clip_partial(self):
        subject = Polygon([(5, 5), (15, 5), (15, 15), (5, 15)])
        clipped = clip_polygon_convex(subject, SQUARE)
        assert clipped is not None
        assert clipped.area == pytest.approx(25.0)

    def test_clip_disjoint_is_none(self):
        subject = Polygon([(20, 20), (30, 20), (30, 30), (20, 30)])
        assert clip_polygon_convex(subject, SQUARE) is None

    def test_clip_contained_returns_subject_area(self):
        subject = Polygon([(2, 2), (4, 2), (4, 4), (2, 4)])
        clipped = clip_polygon_convex(subject, SQUARE)
        assert clipped is not None
        assert clipped.area == pytest.approx(4.0)

    def test_clip_against_concave_raises(self):
        concave = Polygon([(0, 0), (10, 0), (10, 10), (5, 5), (0, 10)])
        with pytest.raises(GeometryError):
            clip_polygon_convex(SQUARE, concave)
