"""Property-based tests (hypothesis) for the geometry kernel invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    GridIndex,
    LineString,
    Point,
    Polygon,
    STRtree,
    centroid,
    convex_hull,
    distance,
    equals,
    intersects,
    point_buffer,
    wkt_dumps,
    wkt_loads,
    within,
)
from repro.geometry import algorithms as alg

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)
coords = st.tuples(finite, finite)
points = st.builds(Point, finite, finite)


def _dedupe_consecutive(pts):
    out = []
    for c in pts:
        if not out or not alg.coords_equal(out[-1], c):
            out.append(c)
    return out


linestrings = (
    st.lists(coords, min_size=2, max_size=8)
    .map(_dedupe_consecutive)
    .filter(lambda pts: len(pts) >= 2)
    .map(LineString)
)


def _hull_or_none(pts):
    hull = alg.convex_hull(pts)
    if len(hull) < 3:
        return None
    try:
        return Polygon(hull)
    except Exception:
        return None


convex_polygons = (
    st.lists(coords, min_size=3, max_size=12, unique=True)
    .map(_hull_or_none)
    # Extreme slivers fall outside the kernel's documented tolerance model
    # (see repro.geometry.algorithms); require well-conditioned shapes.
    .filter(lambda poly: poly is not None and poly.area >= 1e-9 * poly.perimeter**2)
)


class TestWKTRoundTrip:
    @given(points)
    def test_point(self, p):
        assert wkt_loads(wkt_dumps(p)) == p

    @given(linestrings)
    def test_linestring(self, line):
        assert wkt_loads(wkt_dumps(line)) == line

    @given(convex_polygons)
    def test_polygon(self, poly):
        assert equals(wkt_loads(wkt_dumps(poly)), poly)


class TestDistanceProperties:
    @given(points, points)
    def test_symmetry(self, a, b):
        assert distance(a, b) == distance(b, a)

    @given(points, points)
    def test_non_negative_and_identity(self, a, b):
        d = distance(a, b)
        assert d >= 0.0
        if a == b:
            assert d == 0.0

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        assert distance(a, c) <= distance(a, b) + distance(b, c) + 1e-6

    @given(points, linestrings)
    def test_point_line_bounded_by_vertices(self, p, line):
        d = distance(p, line)
        vertex_min = min(alg.distance(p.coord, v) for v in line.coord_list)
        assert d <= vertex_min + 1e-9


class TestPredicateProperties:
    @given(points, convex_polygons)
    def test_within_implies_intersects(self, p, poly):
        if within(p, poly):
            assert intersects(p, poly)

    @given(points, convex_polygons)
    def test_intersects_iff_distance_zero(self, p, poly):
        if intersects(p, poly):
            assert distance(p, poly) == 0.0
        else:
            assert distance(p, poly) > 0.0

    @given(convex_polygons)
    def test_centroid_within_convex_polygon(self, poly):
        c = centroid(poly)
        assert poly.locate_coord(c.coord) != "exterior"

    @given(linestrings, linestrings)
    def test_intersects_symmetric(self, a, b):
        assert intersects(a, b) == intersects(b, a)


class TestHullProperties:
    @given(st.lists(points, min_size=1, max_size=20))
    def test_hull_contains_all_points(self, pts):
        hull = convex_hull(pts)
        for p in pts:
            assert distance(p, hull) <= 1e-6 * max(
                1.0, *(abs(c) for pt in pts for c in pt.coord)
            )

    @given(st.lists(points, min_size=3, max_size=20))
    def test_hull_idempotent(self, pts):
        h1 = convex_hull(pts)
        h2 = convex_hull(h1)
        assert equals(h1, h2)


class TestBufferProperties:
    @given(points, st.floats(min_value=0.1, max_value=1e4))
    def test_buffer_contains_center(self, p, r):
        disc = point_buffer(p, r)
        assert disc.locate_coord(p.coord) == "interior"

    @given(points, st.floats(min_value=0.5, max_value=1e4))
    def test_buffer_area_below_circle(self, p, r):
        disc = point_buffer(p, r, segments=64)
        assert disc.area <= math.pi * r * r + 1e-6
        assert disc.area >= math.pi * r * r * 0.95


class TestIndexProperties:
    @settings(max_examples=25)
    @given(
        st.lists(points, min_size=1, max_size=80),
        points,
        st.floats(min_value=0.0, max_value=1e6),
    )
    def test_indexes_agree_with_brute_force(self, pts, center, radius):
        entries = [(p, i) for i, p in enumerate(pts)]
        expected = sorted(
            i for p, i in entries if distance(p, center) <= radius
        )
        for factory in (GridIndex, STRtree):
            idx = factory(entries)
            assert sorted(idx.within_distance(center, radius)) == expected

    @settings(max_examples=25)
    @given(st.lists(points, min_size=2, max_size=60), points)
    def test_nearest_matches_min(self, pts, center):
        entries = [(p, i) for i, p in enumerate(pts)]
        tree = STRtree(entries)
        (d, _item), = tree.nearest(center, k=1)
        assert d == min(distance(p, center) for p, _ in entries)
