"""Tests for WKT serialization and parsing."""

import pytest

from repro.errors import WKTError
from repro.geometry import (
    GeometryCollection,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
    wkt_dumps,
    wkt_loads,
)


class TestDumps:
    def test_point(self):
        assert wkt_dumps(Point(1, 2)) == "POINT (1 2)"

    def test_point_float(self):
        assert wkt_dumps(Point(1.5, -2.25)) == "POINT (1.5 -2.25)"

    def test_linestring(self):
        assert wkt_dumps(LineString([(0, 0), (1, 1)])) == "LINESTRING (0 0, 1 1)"

    def test_polygon_closes_ring(self):
        text = wkt_dumps(Polygon([(0, 0), (1, 0), (1, 1)]))
        assert text == "POLYGON ((0 0, 1 0, 1 1, 0 0))"

    def test_polygon_with_hole(self):
        donut = Polygon(
            [(0, 0), (4, 0), (4, 4), (0, 4)],
            holes=[[(1, 1), (3, 1), (3, 3), (1, 3)]],
        )
        text = wkt_dumps(donut)
        assert text.startswith("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0), (")

    def test_empty_collection(self):
        assert wkt_dumps(GeometryCollection(())) == "GEOMETRYCOLLECTION EMPTY"

    def test_empty_multipoint(self):
        assert wkt_dumps(MultiPoint(())) == "MULTIPOINT EMPTY"

    def test_nested_collection(self):
        gc = GeometryCollection([Point(1, 2), LineString([(0, 0), (1, 1)])])
        assert (
            wkt_dumps(gc)
            == "GEOMETRYCOLLECTION (POINT (1 2), LINESTRING (0 0, 1 1))"
        )


class TestLoads:
    def test_point(self):
        assert wkt_loads("POINT (1 2)") == Point(1, 2)

    def test_point_case_insensitive(self):
        assert wkt_loads("point(3 4)") == Point(3, 4)

    def test_scientific_notation(self):
        p = wkt_loads("POINT (1e3 -2.5E-2)")
        assert p == Point(1000.0, -0.025)

    def test_linestring(self):
        line = wkt_loads("LINESTRING (0 0, 1 0, 1 1)")
        assert isinstance(line, LineString)
        assert line.coord_list == ((0, 0), (1, 0), (1, 1))

    def test_polygon_with_hole(self):
        poly = wkt_loads(
            "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0), (1 1, 3 1, 3 3, 1 3, 1 1))"
        )
        assert isinstance(poly, Polygon)
        assert len(poly.holes) == 1

    def test_multipoint_plain_form(self):
        mp = wkt_loads("MULTIPOINT (1 2, 3 4)")
        assert isinstance(mp, MultiPoint)
        assert len(mp) == 2

    def test_multipoint_parenthesized_form(self):
        mp = wkt_loads("MULTIPOINT ((1 2), (3 4))")
        assert isinstance(mp, MultiPoint)
        assert len(mp) == 2

    def test_multilinestring(self):
        mls = wkt_loads("MULTILINESTRING ((0 0, 1 1), (2 2, 3 3))")
        assert isinstance(mls, MultiLineString)
        assert len(mls) == 2

    def test_multipolygon(self):
        mpoly = wkt_loads(
            "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 0)), ((5 5, 6 5, 6 6, 5 5)))"
        )
        assert isinstance(mpoly, MultiPolygon)
        assert len(mpoly) == 2

    def test_geometrycollection(self):
        gc = wkt_loads("GEOMETRYCOLLECTION (POINT (1 2), LINESTRING (0 0, 1 1))")
        assert isinstance(gc, GeometryCollection)
        assert len(gc) == 2

    def test_empty_keyword(self):
        assert wkt_loads("GEOMETRYCOLLECTION EMPTY").is_empty
        assert wkt_loads("MULTIPOINT EMPTY").is_empty

    def test_unknown_type(self):
        with pytest.raises(WKTError):
            wkt_loads("TRIANGLE ((0 0, 1 0, 0 1))")

    def test_trailing_garbage(self):
        with pytest.raises(WKTError):
            wkt_loads("POINT (1 2) extra")

    def test_truncated(self):
        with pytest.raises(WKTError):
            wkt_loads("LINESTRING (0 0, 1")

    def test_bad_character(self):
        with pytest.raises(WKTError):
            wkt_loads("POINT (1 @)")


class TestRoundTrip:
    FIXTURES = [
        Point(0, 0),
        Point(-12.5, 7.25),
        LineString([(0, 0), (10, 0), (10, 10)]),
        Polygon([(0, 0), (5, 0), (5, 5), (0, 5)]),
        Polygon(
            [(0, 0), (8, 0), (8, 8), (0, 8)],
            holes=[[(2, 2), (4, 2), (4, 4), (2, 4)]],
        ),
        MultiPoint([Point(1, 1), Point(2, 2)]),
        MultiLineString([LineString([(0, 0), (1, 1)])]),
        MultiPolygon([Polygon([(0, 0), (1, 0), (1, 1)])]),
        GeometryCollection([Point(3, 3), LineString([(0, 0), (2, 0)])]),
        GeometryCollection(()),
    ]

    @pytest.mark.parametrize("geom", FIXTURES, ids=lambda g: g.geom_type)
    def test_round_trip(self, geom):
        assert wkt_loads(wkt_dumps(geom)) == geom
