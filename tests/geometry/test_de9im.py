"""Tests for the DE-9IM relate() matrix, incl. predicate consistency."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry import (
    LineString,
    MultiPoint,
    Point,
    Polygon,
    contains,
    equals,
    intersects,
    touches,
    within,
)
from repro.geometry import algorithms as alg
from repro.geometry.de9im import dim_char, matches, relate

SQUARE = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])


class TestMatrixBasics:
    def test_dim_char(self):
        assert dim_char(None) == "F"
        assert dim_char(0) == "0"
        assert dim_char(2) == "2"
        with pytest.raises(GeometryError):
            dim_char(3)

    def test_matches_patterns(self):
        assert matches("212FF1FF2", "T*F**FFF*" ) is False
        assert matches("0FFFFF0F2", "0********")
        assert matches("0FFFFF0F2", "T********")
        assert not matches("FFFFFFFF2", "T********")
        with pytest.raises(GeometryError):
            matches("short", "T********")

    def test_multi_rejected(self):
        with pytest.raises(GeometryError):
            relate(MultiPoint([Point(0, 0)]), SQUARE)


class TestKnownMatrices:
    def test_equal_points(self):
        assert relate(Point(1, 1), Point(1, 1)) == "0FFFFFFF2"

    def test_distinct_points(self):
        assert relate(Point(1, 1), Point(2, 2)) == "FF0FFF0F2"

    def test_point_inside_polygon(self):
        assert relate(Point(5, 5), SQUARE) == "0FFFFF212"

    def test_point_on_polygon_boundary(self):
        assert relate(Point(0, 5), SQUARE) == "F0FFFF212"

    def test_point_outside_polygon(self):
        assert relate(Point(50, 5), SQUARE) == "FF0FFF212"

    def test_point_in_line_interior(self):
        line = LineString([(0, 0), (10, 0)])
        assert relate(Point(5, 0), line) == "0FFFFF102"

    def test_point_at_line_endpoint(self):
        line = LineString([(0, 0), (10, 0)])
        assert relate(Point(0, 0), line) == "F0FFFF102"

    def test_crossing_lines(self):
        a = LineString([(0, -5), (0, 5)])
        b = LineString([(-5, 0), (5, 0)])
        assert relate(a, b) == "0F1FF0102"

    def test_overlapping_lines(self):
        a = LineString([(0, 0), (10, 0)])
        b = LineString([(5, 0), (15, 0)])
        matrix = relate(a, b)
        assert matrix[0] == "1"  # 1-dimensional interior overlap

    def test_line_within_polygon(self):
        line = LineString([(2, 2), (8, 8)])
        assert relate(line, SQUARE) == "1FF0FF212"

    def test_line_crossing_polygon(self):
        line = LineString([(-5, 5), (15, 5)])
        matrix = relate(line, SQUARE)
        assert matrix[0] == "1"  # interior/interior
        assert matrix[1] == "0"  # crosses the boundary at points
        assert matrix[2] == "1"  # interior extends outside

    def test_identical_polygons(self):
        other = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])
        matrix = relate(SQUARE, other)
        # interiors coincide (2), boundaries coincide (1), nothing escapes.
        assert matrix == "2FFF1FFF2"
        assert matches(matrix, "T*F**FFF*")  # the OGC equals pattern

    def test_overlapping_polygons(self):
        other = Polygon([(5, 5), (15, 5), (15, 15), (5, 15)])
        matrix = relate(SQUARE, other)
        assert matrix[0] == "2"
        assert matrix[2] == "2"
        assert matrix[6] == "2"

    def test_touching_polygons(self):
        other = Polygon([(10, 0), (20, 0), (20, 10), (10, 10)])
        matrix = relate(SQUARE, other)
        assert matrix[0] == "F"
        assert matrix[4] == "1"  # boundaries share an edge

    def test_disjoint_polygons(self):
        far = Polygon([(50, 50), (60, 50), (60, 60), (50, 60)])
        assert relate(SQUARE, far) == "FF2FF1212"

    def test_nested_polygons(self):
        inner = Polygon([(2, 2), (4, 2), (4, 4), (2, 4)])
        matrix = relate(inner, SQUARE)
        assert matches(matrix, "2FF1FF***")  # within pattern
        assert matches(relate(SQUARE, inner), "212FF1FF2".replace("1", "*"))


class TestOGCDefinitionalPatterns:
    """The OGC named predicates, defined via their DE-9IM patterns."""

    def _check(self, a, b):
        matrix = relate(a, b)
        # intersects <=> any of II, IB, BI, BB non-empty
        pattern_hit = any(matrix[i] != "F" for i in (0, 1, 3, 4))
        assert pattern_hit == intersects(a, b), (matrix, a, b)
        # within <=> II != F and IE == F and BE == F
        within_matrix = matrix[0] != "F" and matrix[2] == "F" and matrix[5] == "F"
        assert within_matrix == within(a, b), (matrix, a, b)
        # touches <=> II == F but some contact exists
        touches_matrix = matrix[0] == "F" and any(
            matrix[i] != "F" for i in (1, 3, 4)
        )
        assert touches_matrix == touches(a, b), (matrix, a, b)

    POINTS = [Point(5, 5), Point(0, 5), Point(50, 50), Point(0, 0)]
    LINES = [
        LineString([(2, 2), (8, 8)]),
        LineString([(-5, 5), (15, 5)]),
        LineString([(0, -5), (0, 15)]),
        LineString([(50, 50), (60, 60)]),
        LineString([(0, 0), (10, 0)]),
    ]
    POLYGONS = [
        SQUARE,
        Polygon([(5, 5), (15, 5), (15, 15), (5, 15)]),
        Polygon([(10, 0), (20, 0), (20, 10), (10, 10)]),
        Polygon([(2, 2), (4, 2), (4, 4), (2, 4)]),
        Polygon([(50, 50), (60, 50), (60, 60), (50, 60)]),
    ]

    @pytest.mark.parametrize("p", POINTS, ids=lambda g: g.wkt)
    def test_point_vs_square(self, p):
        self._check(p, SQUARE)

    @pytest.mark.parametrize("line", LINES, ids=range(len(LINES)))
    def test_line_vs_square(self, line):
        self._check(line, SQUARE)

    @pytest.mark.parametrize("poly", POLYGONS, ids=range(len(POLYGONS)))
    def test_polygon_vs_square(self, poly):
        self._check(poly, SQUARE)

    @pytest.mark.parametrize("p", POINTS, ids=lambda g: g.wkt)
    @pytest.mark.parametrize("line", LINES[:3], ids=range(3))
    def test_point_vs_line(self, p, line):
        self._check(p, line)


class TestTransposeSymmetry:
    CASES = [
        (Point(5, 5), SQUARE),
        (LineString([(2, 2), (8, 8)]), SQUARE),
        (Point(5, 0), LineString([(0, 0), (10, 0)])),
        (
            LineString([(0, -5), (0, 5)]),
            LineString([(-5, 0), (5, 0)]),
        ),
        (SQUARE, Polygon([(5, 5), (15, 5), (15, 15), (5, 15)])),
    ]

    @pytest.mark.parametrize("a, b", CASES, ids=range(len(CASES)))
    def test_relate_transposes(self, a, b):
        forward = relate(a, b)
        backward = relate(b, a)
        transposed = "".join(
            forward[row * 3 + col] for col in range(3) for row in range(3)
        )
        assert backward == transposed


finite = st.floats(min_value=-100, max_value=100, allow_nan=False).map(
    lambda v: round(v, 2)
)
points = st.builds(Point, finite, finite)


class TestPropertyConsistency:
    @settings(max_examples=100)
    @given(points, points)
    def test_point_point_consistency(self, a, b):
        matrix = relate(a, b)
        assert (matrix[0] != "F") == equals(a, b)
        assert (matrix[0] != "F") == intersects(a, b)

    @settings(max_examples=100)
    @given(points)
    def test_point_vs_fixed_polygon(self, p):
        matrix = relate(p, SQUARE)
        hit = any(matrix[i] != "F" for i in (0, 1, 3, 4))
        assert hit == intersects(p, SQUARE)
        within_matrix = (
            matrix[0] != "F" and matrix[2] == "F" and matrix[5] == "F"
        )
        assert within_matrix == within(p, SQUARE)
        assert within_matrix == contains(SQUARE, p)
