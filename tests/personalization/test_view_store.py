"""Tests for the shared materialized-view store (PR 4).

The contract: views are shared warehouse objects keyed on ``(fact,
selection fingerprint, star generation)`` — one build serves every
session with content-equal selections; datamarts and differing
selections stay isolated; member/feature/schema mutations invalidate;
fact appends are *patched* (delta rows filtered through each view's
selection) and the patched view is indistinguishable from a full
rebuild; a session's memo access is safe under the threaded HTTP
adapter; and selections holding since-vanished keys degrade instead of
raising on the request path.
"""

import threading

import pytest

from repro.data import (
    ALL_PAPER_RULES,
    WorldGeoSource,
    build_regional_manager_profile,
    build_sales_star,
)
from repro.personalization import PersonalizationEngine, ViewStore
from repro.prml.evaluator import SelectionSet


@pytest.fixture()
def session(engine, profile, world):
    return engine.start_session(profile, location=world.stores[0].location)


def _twin_session(engine, user_schema, world, name="Bo Li"):
    return engine.start_session(
        build_regional_manager_profile(user_schema, name=name),
        location=world.stores[0].location,
    )


def _append_copy_of(star, row_id, store_key=None):
    """Append a fact row copying ``row_id``'s coordinates/measures
    (optionally rebinding the Store key)."""
    table = star.fact_table()
    row = table.row(row_id)
    coordinates = {d: row[d] for d in table.fact.dimension_names}
    if store_key is not None:
        coordinates["Store"] = store_key
    measures = {m: row[m] for m in table.fact.measures}
    return star.insert_fact(table.fact.name, coordinates, measures)


class TestSharing:
    def test_n_sessions_one_build(self, engine, user_schema, world, session):
        session.view()
        builds = engine.view_store.stats()["builds"]
        peers = [
            _twin_session(engine, user_schema, world, name=f"peer-{i}")
            for i in range(4)
        ]
        views = {id(peer.view()) for peer in peers}
        assert views == {id(session.view())}
        assert engine.view_store.stats()["builds"] == builds

    def test_store_entry_counts_hits(self, engine, session):
        session.view()
        first_stats = engine.view_store.stats()
        session.selection.add_member(
            "Store", "Store", next(iter(session.selection.members[("Store", "Store")]))
        )  # no growth: generation unchanged, memo still valid
        session.view()
        assert engine.view_store.stats()["builds"] == first_stats["builds"]

    def test_datamarts_never_share(self, world, user_schema):
        """Two tenants over twin stars: structural isolation — each engine
        owns its own store, even for identical selection content."""
        engines = [
            PersonalizationEngine(
                build_sales_star(world),
                user_schema,
                geo_source=WorldGeoSource(world),
                parameters={"threshold": 3},
            )
            for _ in range(2)
        ]
        for engine in engines:
            engine.add_rules(ALL_PAPER_RULES.values())
        sessions = [
            engine.start_session(
                build_regional_manager_profile(user_schema),
                location=world.stores[0].location,
            )
            for engine in engines
        ]
        first, second = (s.view() for s in sessions)
        assert first is not second
        assert first.fact_rows == second.fact_rows
        assert engines[0].view_store is not engines[1].view_store


class TestInvalidation:
    def test_unreferenced_member_mutation_carries(self, engine, session):
        """PR 9 bugfix pin: a member mutation on a dimension the view's
        selection does not reference used to throw the view away; it must
        carry to the new generation without a rebuild."""
        warm = session.view()
        builds = engine.view_store.stats()["builds"]
        assert not any(
            dim == "Product" for dim, _level in session.selection.members
        )
        session.context.star.add_member("Product", "Family", "Exotic")
        fresh = session.view()
        assert fresh is warm
        stats = engine.view_store.stats()
        assert stats["builds"] == builds
        assert stats["carries"] >= 1

    def test_referenced_member_update_invalidates(self, engine, session):
        """An in-place member update inside a referenced dimension has no
        delta shape — the view must be dropped and rebuilt."""
        warm = session.view()
        assert any(
            dim == "Store" for dim, _level in session.selection.members
        )
        session.context.star.note_member_change("Store", op="update")
        fresh = session.view()
        assert fresh is not warm
        assert engine.view_store.stats()["invalidations"] >= 1

    def test_referenced_member_add_carries(self, engine, session, world):
        """A member *add* inside a referenced dimension carries: a new
        member is referenced by no existing fact row, so the view's rows
        are provably unchanged (the patch filter is re-derived lazily)."""
        warm = session.view()
        builds = engine.view_store.stats()["builds"]
        session.context.star.add_member(
            "Store", "Store", "S-new", parents={"City": world.cities[0].name}
        )
        fresh = session.view()
        assert fresh is warm
        assert engine.view_store.stats()["builds"] == builds
        rebuilt = session._build_view(warm.fact)
        assert fresh.fact_rows == rebuilt.fact_rows

    def test_feature_mutation_carries(self, engine, session, world):
        from repro.geometry import Point

        warm = session.view()
        builds = engine.view_store.stats()["builds"]
        session.context.star.add_feature("Airport", "Test Field", Point(1.0, 2.0))
        fresh = session.view()
        assert fresh is warm
        assert engine.view_store.stats()["builds"] == builds
        assert fresh.fact_rows == warm.fact_rows

    def test_incremental_off_member_mutation_invalidates(self, engine, session):
        """With the transparency switch off every kind degrades to the
        pre-PR 9 behaviour: full invalidation (EXT8's baseline mode)."""
        engine.view_store.incremental = False
        warm = session.view()
        session.context.star.add_member("Product", "Family", "Exotic2")
        fresh = session.view()
        assert fresh is not warm
        assert engine.view_store.stats()["invalidations"] >= 1

    def test_lru_bound_evicts(self, star, user_schema, world, profile):
        engine = PersonalizationEngine(
            star,
            user_schema,
            geo_source=WorldGeoSource(world),
            parameters={"threshold": 3},
            view_store_size=1,
        )
        engine.add_rules(ALL_PAPER_RULES.values())
        first = engine.start_session(profile, location=world.stores[0].location)
        second = _twin_session(engine, user_schema, world)
        first.view()
        # Grow the second session's selection: a distinct fingerprint that
        # evicts the first entry from the size-1 store.
        column = star.fact_table().key_column("Store")
        unselected = next(
            key
            for key in column
            if key not in second.selection.members[("Store", "Store")]
        )
        second.selection.add_member("Store", "Store", unselected)
        second.view()
        assert len(engine.view_store) == 1
        assert engine.view_store.stats()["evictions"] == 1

    def test_store_rejects_zero_size(self):
        with pytest.raises(ValueError):
            ViewStore(max_size=0)

    def test_detach_stops_maintenance(self, engine, session):
        store = engine.view_store
        warm = session.view()
        engine.detach()
        assert len(store) == 0
        patches = store.stats()["patches"]
        _append_copy_of(session.context.star, warm.fact_rows[0])
        assert store.stats()["patches"] == patches  # no longer listening


class TestIncrementalMaintenance:
    def test_append_patches_instead_of_rebuilding(self, engine, session):
        star = session.context.star
        warm = session.view()
        builds = engine.view_store.stats()["builds"]
        _append_copy_of(star, warm.fact_rows[0])
        patched = session.view()
        stats = engine.view_store.stats()
        assert stats["builds"] == builds  # no rebuild
        assert stats["patches"] >= 1
        assert len(patched.fact_rows) == len(warm.fact_rows) + 1

    def test_non_matching_append_is_filtered(self, engine, session, world):
        star = session.context.star
        warm = session.view()
        selected = session.selection.members[("Store", "Store")]
        outside = next(
            store.name for store in world.stores if store.name not in selected
        )
        _append_copy_of(star, warm.fact_rows[0], store_key=outside)
        patched = session.view()
        assert engine.view_store.stats()["patches"] >= 1
        assert patched.fact_rows == warm.fact_rows

    def test_patched_equals_rebuilt(self, engine, session, world):
        """Property-style equivalence: after a mixed append workload the
        patched view must equal a from-scratch rebuild, row for row."""
        star = session.context.star
        warm = session.view()
        selected = session.selection.members[("Store", "Store")]
        outside = next(
            store.name for store in world.stores if store.name not in selected
        )
        for i in range(8):
            _append_copy_of(
                star,
                warm.fact_rows[i % len(warm.fact_rows)],
                store_key=outside if i % 3 == 0 else None,
            )
        patched = session.view()
        rebuilt = session._build_view(patched.fact)
        assert patched.fact_rows == rebuilt.fact_rows
        assert patched.stats() == rebuilt.stats()
        assert engine.view_store.stats()["builds"] == 1

    def test_incremental_off_switch_rebuilds(self, engine, session):
        engine.view_store.incremental = False
        star = session.context.star
        warm = session.view()
        builds = engine.view_store.stats()["builds"]
        _append_copy_of(star, warm.fact_rows[0])
        fresh = session.view()
        stats = engine.view_store.stats()
        assert stats["patches"] == 0
        assert stats["builds"] == builds + 1
        assert len(fresh.fact_rows) == len(warm.fact_rows) + 1
        assert fresh.fact_rows == session._build_view(fresh.fact).fact_rows

    def test_multi_fact_append_carries_other_views(
        self, dual_fact_star, user_schema
    ):
        engine = PersonalizationEngine(dual_fact_star, user_schema)
        session = engine.start_session(
            build_regional_manager_profile(user_schema)
        )
        sales_warm = session.view("Sales")
        returns_warm = session.view("Returns")
        dual_fact_star.insert_fact("Sales", {"Product": "P1"}, {"Units": 2})
        assert len(session.view("Sales").fact_rows) == len(sales_warm.fact_rows) + 1
        # The Returns view was unaffected: carried, not rebuilt or patched.
        assert session.view("Returns").fact_rows == returns_warm.fact_rows
        assert engine.view_store.stats()["carries"] >= 1
        assert engine.view_store.stats()["builds"] == 2


class TestConcurrency:
    def test_concurrent_view_calls_share_one_build(self, engine, session):
        """Satellite regression: ``view()``'s memo used to be an unlocked
        check-then-act; the threaded HTTP server can hit one session
        concurrently.  Every thread must get the same materialization and
        the store must build at most once."""
        barrier = threading.Barrier(8)
        results: list[object] = []
        errors: list[BaseException] = []

        def hammer():
            try:
                barrier.wait()
                for _ in range(50):
                    results.append(session.view())
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len({id(view) for view in results}) == 1
        assert engine.view_store.stats()["builds"] == 1

    def test_concurrent_views_during_appends_stay_consistent(
        self, engine, session
    ):
        """Readers racing fact appends: every returned view must equal a
        from-scratch rebuild at *some* prefix of the append sequence
        (monotonic row counts, no duplicated or phantom rows)."""
        star = session.context.star
        warm = session.view()
        template = warm.fact_rows[0]
        stop = threading.Event()
        seen: list[list[int]] = []
        errors: list[BaseException] = []

        def read():
            try:
                while not stop.is_set():
                    seen.append(list(session.view().fact_rows))
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        reader = threading.Thread(target=read)
        reader.start()
        for _ in range(20):
            _append_copy_of(star, template)
        stop.set()
        reader.join()
        assert not errors
        final = session._build_view(warm.fact)
        for rows in seen:
            # Ascending, duplicate-free, and a subset of the final rows.
            assert rows == sorted(set(rows))
            assert set(rows) <= set(final.fact_rows)
        assert session.view().fact_rows == final.fact_rows


class TestStaleSelections:
    def test_stale_member_keys_are_dropped(self, session):
        """A selection can outlive the members it named (snapshot reloads,
        replayed journals): stale keys must degrade, not raise, on the
        request path."""
        star = session.context.star
        selection = session.selection
        live_rows = list(session.view().fact_rows)
        selection.add_member("Store", "Store", "vanished-store")
        selection.add_member("Store", "City", "vanished-city")
        allowed = selection.allowed_leaf_keys(star)
        assert "vanished-store" not in allowed["Store"]
        assert session.view().fact_rows == live_rows

    def test_all_stale_keys_leave_dimension_unrestricted(self, star):
        selection = SelectionSet()
        selection.add_member("Store", "Store", "vanished-store")
        assert selection.allowed_leaf_keys(star) == {}
        assert list(selection.fact_row_ids(star)) == list(
            star.fact_table().row_ids()
        )

    def test_stale_dimension_and_level_are_dropped(self, star):
        selection = SelectionSet()
        selection.add_member("NoSuchDimension", "Leaf", "x")
        selection.add_member("Store", "NoSuchLevel", "x")
        assert selection.allowed_leaf_keys(star) == {}

    def test_scan_path_agrees(self, star):
        selection = SelectionSet()
        selection.add_member("Store", "Store", "vanished-store")
        star.use_indexes = False
        assert selection.allowed_leaf_keys(star) == {}


class TestFingerprint:
    def test_fingerprint_is_content_based(self):
        first, second = SelectionSet(), SelectionSet()
        first.add_member("Store", "Store", "a")
        first.add_member("Store", "Store", "b")
        second.add_member("Store", "Store", "b")
        second.add_member("Store", "Store", "a")
        assert first.uid != second.uid
        assert first.fingerprint() == second.fingerprint()

    def test_fingerprint_changes_on_growth(self):
        selection = SelectionSet()
        selection.add_member("Store", "Store", "a")
        before = selection.fingerprint()
        selection.add_member("Store", "Store", "a")  # no growth
        assert selection.fingerprint() == before
        selection.add_feature("Airport", "X")
        assert selection.fingerprint() != before

    def test_snapshot_is_detached(self):
        selection = SelectionSet()
        selection.add_member("Store", "Store", "a")
        frozen = selection.snapshot()
        assert frozen.fingerprint() == selection.fingerprint()
        selection.add_member("Store", "Store", "b")
        assert frozen.member_triples() == [("Store", "Store", "a")]
        assert frozen.fingerprint() != selection.fingerprint()
