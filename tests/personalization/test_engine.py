"""Tests for the personalization engine (phases, sessions, matching)."""

import pytest

from repro.data import (
    ADD_SPATIALITY,
    FIVE_KM_STORES,
    INT_AIRPORT_CITY,
    TRAIN_AIRPORT_CITY,
    WorldGeoSource,
    build_motivating_user_model,
    build_regional_manager_profile,
    build_sales_schema,
)
from repro.errors import PersonalizationError, PRMLSemanticError
from repro.geometry import Point
from repro.mdm import MDSchema
from repro.personalization import (
    PersonalizationEngine,
    RulePhase,
    classify_rule,
)
from repro.prml import parse_rule
from repro.storage import StarSchema


class TestClassification:
    def test_schema_rule(self):
        assert classify_rule(parse_rule(ADD_SPATIALITY)) is RulePhase.SCHEMA

    def test_instance_rule(self):
        assert classify_rule(parse_rule(FIVE_KM_STORES)) is RulePhase.INSTANCE

    def test_acquisition_rule(self):
        assert classify_rule(parse_rule(INT_AIRPORT_CITY)) is RulePhase.ACQUISITION

    def test_mixed_rule_is_instance(self):
        # TrainAirportCity has AddLayer AND SelectInstance -> instance phase.
        assert classify_rule(parse_rule(TRAIN_AIRPORT_CITY)) is RulePhase.INSTANCE


class TestRegistration:
    def test_duplicate_name_rejected(self, engine):
        with pytest.raises(PersonalizationError, match="duplicate"):
            engine.add_rule(ADD_SPATIALITY)

    def test_semantic_validation_runs(self, world, star, user_schema):
        engine = PersonalizationEngine(
            star, user_schema, geo_source=WorldGeoSource(world)
        )
        with pytest.raises(PRMLSemanticError):
            engine.add_rule(
                "Rule:bad When SessionStart do "
                "BecomeSpatial(MD.Sales.Galaxy.geometry, POINT) endWhen"
            )

    def test_validation_can_be_disabled(self, world, star, user_schema):
        engine = PersonalizationEngine(
            star,
            user_schema,
            geo_source=WorldGeoSource(world),
            validate_rules=False,
        )
        registered = engine.add_rule(
            "Rule:lax When SessionStart do "
            "BecomeSpatial(MD.Sales.Galaxy.geometry, POINT) endWhen"
        )
        assert registered.rule.name == "lax"

    def test_phase_override(self, world, star, user_schema):
        engine = PersonalizationEngine(
            star, user_schema, geo_source=WorldGeoSource(world)
        )
        registered = engine.add_rule(ADD_SPATIALITY, phase=RulePhase.INSTANCE)
        assert registered.phase is RulePhase.INSTANCE

    def test_rule_lookup(self, engine):
        assert engine.rule("addSpatiality").phase is RulePhase.SCHEMA
        with pytest.raises(PersonalizationError):
            engine.rule("ghost")

    def test_requires_geomd_star(self, user_schema):
        md_star = StarSchema(MDSchema.from_dict(build_sales_schema().to_dict()))
        with pytest.raises(PersonalizationError, match="GeoMD"):
            PersonalizationEngine(md_star, user_schema)


class TestSessionLifecycle:
    def test_schema_rules_run_before_instance_rules(self, engine, profile, world):
        session = engine.start_session(
            profile, location=world.stores[0].location
        )
        names = [o.rule_name for o in session.outcomes]
        assert names.index("addSpatiality") < names.index("5kmStores")
        session.end()

    def test_double_end_rejected(self, engine, profile):
        session = engine.start_session(profile)
        session.end()
        with pytest.raises(PersonalizationError):
            session.end()

    def test_closed_session_rejects_selection(self, engine, profile):
        session = engine.start_session(profile)
        session.end()
        with pytest.raises(PersonalizationError):
            session.record_spatial_selection("GeoMD.Store.City", "1 < 2")

    def test_view_without_selection_keeps_everything(
        self, world, star, user_schema
    ):
        engine = PersonalizationEngine(
            star, user_schema, geo_source=WorldGeoSource(world)
        )
        engine.add_rule(ADD_SPATIALITY)  # schema-only personalization
        profile = build_regional_manager_profile(user_schema)
        session = engine.start_session(profile)
        view = session.view()
        assert not view.is_restricted
        assert view.stats()["fact_rows_kept"] == view.stats()["fact_rows_total"]
        session.end()

    def test_unauthorized_role_gets_no_spatiality(self, engine, user_schema):
        profile = build_regional_manager_profile(user_schema, name="Plain User")
        profile.set("DecisionMaker.dm2role.name", "Analyst")
        session = engine.start_session(profile)
        assert session.view().schema.layers == {}
        session.end()


class TestSpatialSelectionMatching:
    CONDITION = (
        "Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry)<20km"
    )

    def test_matching_event_fires_rule(self, engine, profile, world):
        session = engine.start_session(profile, world.stores[0].location)
        outcomes = session.record_spatial_selection(
            "GeoMD.Store.City", self.CONDITION
        )
        assert [o.rule_name for o in outcomes] == ["IntAirportCity"]
        assert profile.degree("AirportCity") == 1
        session.end()

    def test_formatting_insensitive_matching(self, engine, profile, world):
        session = engine.start_session(profile, world.stores[0].location)
        spaced = (
            "Distance( GeoMD.Store.City.geometry ,\n"
            "          GeoMD.Airport.geometry ) < 20km"
        )
        outcomes = session.record_spatial_selection("GeoMD.Store.City", spaced)
        assert len(outcomes) == 1
        session.end()

    def test_non_matching_event_ignored(self, engine, profile, world):
        session = engine.start_session(profile, world.stores[0].location)
        outcomes = session.record_spatial_selection(
            "GeoMD.Store.City",
            "Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry)<25km",
        )
        assert outcomes == []
        assert profile.degree("AirportCity") == 0
        session.end()

    def test_wrong_target_ignored(self, engine, profile, world):
        session = engine.start_session(profile, world.stores[0].location)
        outcomes = session.record_spatial_selection(
            "GeoMD.Store", self.CONDITION
        )
        assert outcomes == []
        session.end()

    def test_event_pattern_canonicalized_at_registration(self, engine):
        """Acquisition rules carry their canonical event pattern so a
        selection report compares strings instead of re-printing ASTs."""
        registered = engine.rule("IntAirportCity")
        assert registered.event_target == "GeoMD.Store.City"
        assert registered.event_condition is not None
        assert "20" in registered.event_condition
        schema_rule = next(
            r for r in engine.rules if r.phase is not RulePhase.ACQUISITION
        )
        assert schema_rule.event_target is None
        assert schema_rule.event_condition is None


class TestDisabledRules:
    def test_disabled_rule_skipped(self, engine, profile, world):
        engine.rule("5kmStores").enabled = False
        session = engine.start_session(profile, world.stores[0].location)
        names = [o.rule_name for o in session.outcomes]
        assert "5kmStores" not in names
        session.end()
