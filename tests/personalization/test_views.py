"""Tests for personalized views feeding non-spatial BI queries."""

import pytest

from repro.geometry import Point
from repro.mdm import Aggregator
from repro.olap import AggSpec


class TestPersonalizedView:
    @pytest.fixture()
    def session(self, engine, profile, world):
        return engine.start_session(profile, location=world.stores[0].location)

    def test_restriction_smaller_than_full(self, session, star):
        view = session.view()
        assert view.is_restricted
        assert 0 < len(view.fact_rows) < len(star.fact_table())

    def test_cube_respects_selection(self, session, star):
        view = session.view()
        count = view.cube().count()
        assert count == len(view.fact_rows)

    def test_selected_rows_only_contain_selected_stores(self, session, star):
        view = session.view()
        selected_stores = view.selection.members[("Store", "Store")]
        column = star.fact_table().key_column("Store")
        for row in view.fact_rows:
            assert column[row] in selected_stores

    def test_non_spatial_query_over_view(self, session):
        """The Section 4.2.4 scenario: a plain OLAP query, no spatial ops,
        yet results are already spatially personalized."""
        view = session.view()
        result = (
            view.cube()
            .measures(AggSpec(Aggregator.SUM, "StoreSales"))
            .by("Product.Family")
            .result()
        )
        assert result.fact_rows_scanned == len(view.fact_rows)

    def test_stats_shape(self, session):
        stats = session.view().stats()
        assert set(stats) == {
            "fact_rows_total",
            "fact_rows_kept",
            "members_selected",
            "layers",
            "spatial_levels",
        }

    def test_5km_selection_is_correct(self, session, world, engine):
        """Every selected store is within 5 km; every unselected farther."""
        location = world.stores[0].location
        selected = session.view().selection.members[("Store", "Store")]
        for store in world.stores:
            distance = store.location.distance_to(location)
            if distance < 5_000.0:
                assert store.name in selected
            else:
                assert store.name not in selected


class TestInterestWidening:
    def test_degree_threshold_drives_widening(self, engine, profile, world):
        session = engine.start_session(profile, world.stores[0].location)
        before = len(session.view().fact_rows)

        condition = (
            "Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry)<20km"
        )
        for _ in range(4):  # threshold is 3
            session.record_spatial_selection("GeoMD.Store.City", condition)
        session.rerun_instance_rules()
        after = len(session.view().fact_rows)
        assert after > before
        # The widening added city-level selections.
        assert ("Store", "City") in session.selection.members
        session.end()

    def test_below_threshold_no_widening(self, engine, profile, world):
        session = engine.start_session(profile, world.stores[0].location)
        before = len(session.view().fact_rows)
        condition = (
            "Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry)<20km"
        )
        for _ in range(2):  # below threshold of 3
            session.record_spatial_selection("GeoMD.Store.City", condition)
        session.rerun_instance_rules()
        assert ("Store", "City") not in session.selection.members
        # 5kmStores re-ran but its selections are the same members.
        assert len(session.view().fact_rows) == before
        session.end()

    def test_widened_cities_have_train_connection(self, engine, profile, world):
        session = engine.start_session(profile, world.stores[0].location)
        condition = (
            "Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry)<20km"
        )
        for _ in range(4):
            session.record_spatial_selection("GeoMD.Store.City", condition)
        session.rerun_instance_rules()
        selected_cities = session.selection.members.get(("Store", "City"), set())
        assert selected_cities
        # Every selected city must be a stop on some train line that also
        # serves an airport within 50km of travel.
        for city_name in selected_cities:
            city = world.city(city_name)
            on_some_line = False
            for line in world.train_lines:
                if city_name not in line.stops:
                    continue
                for airport in world.airports:
                    if airport.name not in line.stops:
                        continue
                    arc = line.path.arc_between(city.location, airport.location)
                    if arc < 50_000.0:
                        on_some_line = True
            assert on_some_line, f"{city_name} has no qualifying train link"
        session.end()
