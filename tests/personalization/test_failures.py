"""Failure-injection tests: broken geo sources, hostile inputs, edge cases."""

import pytest

from repro.data import (
    ADD_SPATIALITY,
    ALL_PAPER_RULES,
    WorldGeoSource,
    build_motivating_user_model,
    build_regional_manager_profile,
    build_sales_star,
)
from repro.errors import PRMLRuntimeError, PRMLSyntaxError
from repro.geometry import LineString, Point
from repro.personalization import PersonalizationEngine


class _BrokenGeoSource:
    """A source returning the wrong geometry type for store points."""

    def layer_features(self, layer_name):
        if layer_name == "Airport":
            return [("ALC", Point(0, 0), {})]
        return None

    def level_geometries(self, dimension, level):
        if dimension == "Store" and level == "Store":
            # LINE where POINT was declared by BecomeSpatial.
            return {"anything": LineString([(0, 0), (1, 1)])}
        return None


class _EmptyGeoSource:
    def layer_features(self, layer_name):
        return None

    def level_geometries(self, dimension, level):
        return None


class TestGeoSourceFailures:
    def test_type_mismatch_from_source_is_reported(self, world, user_schema):
        star = build_sales_star(world)
        first_store = star.dimension_table("Store").members("Store")[0].key
        source = _BrokenGeoSource()
        source.level_geometries = lambda d, l: (  # noqa: E731 - test shim
            {first_store: LineString([(0, 0), (1, 1)])}
            if (d, l) == ("Store", "Store")
            else None
        )
        engine = PersonalizationEngine(star, user_schema, geo_source=source)
        engine.add_rule(ADD_SPATIALITY)
        profile = build_regional_manager_profile(user_schema)
        session = engine.start_session(profile)
        outcome = next(o for o in session.outcomes if o.rule_name == "addSpatiality")
        assert outcome.error is not None
        assert "declared POINT" in outcome.error
        session.end()

    def test_missing_source_data_leaves_members_bare(self, world, user_schema):
        star = build_sales_star(world)
        engine = PersonalizationEngine(
            star, user_schema, geo_source=_EmptyGeoSource()
        )
        engine.add_rule(ADD_SPATIALITY)
        profile = build_regional_manager_profile(user_schema)
        session = engine.start_session(profile)
        # Schema change applied; no geometries backfilled; no crash.
        assert session.view().schema.is_spatial_level("Store.Store")
        member = star.dimension_table("Store").members("Store")[0]
        assert member.geometry is None
        session.end()

    def test_no_source_at_all(self, world, user_schema):
        star = build_sales_star(world)
        engine = PersonalizationEngine(star, user_schema, geo_source=None)
        engine.add_rule(ADD_SPATIALITY)
        profile = build_regional_manager_profile(user_schema)
        session = engine.start_session(profile)
        assert session.view().schema.is_spatial_level("Store.Store")
        session.end()


class TestHostileInputs:
    def test_malformed_rule_source(self, engine):
        with pytest.raises(PRMLSyntaxError):
            engine.add_rule("Rule: When banana do endWhen")

    def test_malformed_selection_report(self, engine, profile, world):
        session = engine.start_session(profile, world.stores[0].location)
        with pytest.raises(PRMLSyntaxError):
            session.record_spatial_selection("GeoMD.Store.City", "<<<nope")
        session.end()

    def test_selection_with_bad_target_path(self, engine, profile, world):
        session = engine.start_session(profile, world.stores[0].location)
        with pytest.raises(PRMLSyntaxError):
            session.record_spatial_selection("not-a-path!!", "1 < 2")
        session.end()


class TestMultiUser:
    def test_interleaved_sessions_have_independent_selections(
        self, world, star, user_schema
    ):
        engine = PersonalizationEngine(
            star,
            user_schema,
            geo_source=WorldGeoSource(world),
            parameters={"threshold": 3},
        )
        engine.add_rules(ALL_PAPER_RULES.values())

        ana = build_regional_manager_profile(user_schema, name="Ana")
        bea = build_regional_manager_profile(user_schema, name="Bea")
        # Two managers standing at stores of different cities, concurrently
        # (a store location guarantees a non-empty 5 km selection).
        store_a = world.stores[0]
        store_b = next(s for s in world.stores if s.city != store_a.city)
        session_a = engine.start_session(ana, store_a.location)
        session_b = engine.start_session(bea, store_b.location)

        stores_a = session_a.selection.members.get(("Store", "Store"), set())
        stores_b = session_b.selection.members.get(("Store", "Store"), set())
        assert stores_a and stores_b
        assert stores_a != stores_b  # different neighbourhoods

        # Interest accrues per profile, not globally.
        condition = (
            "Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry)<20km"
        )
        for _ in range(4):
            session_a.record_spatial_selection("GeoMD.Store.City", condition)
        assert ana.degree("AirportCity") == 4
        assert bea.degree("AirportCity") == 0
        session_a.rerun_instance_rules()
        session_b.rerun_instance_rules()
        assert ("Store", "City") in session_a.selection.members
        assert ("Store", "City") not in session_b.selection.members
        session_a.end()
        session_b.end()

    def test_schema_mutations_are_idempotent_across_users(
        self, world, star, user_schema
    ):
        engine = PersonalizationEngine(
            star,
            user_schema,
            geo_source=WorldGeoSource(world),
            parameters={"threshold": 3},
        )
        engine.add_rules(ALL_PAPER_RULES.values())
        for name in ("Ana", "Bea", "Cris"):
            profile = build_regional_manager_profile(user_schema, name=name)
            session = engine.start_session(profile, world.cities[0].location)
            session.end()
        schema = engine.geomd_schema
        assert list(schema.layers) == ["Airport"]
        assert len(star.layer_table("Airport")) == len(world.airports)


class TestEmptyWarehouse:
    def test_rules_over_empty_world(self, user_schema):
        from repro.data import WorldConfig, generate_world

        tiny = generate_world(
            WorldConfig(
                seed=5,
                states_x=1,
                states_y=1,
                cities_per_state=1,
                stores_per_city=1,
                customers_per_city=1,
                airport_city_ratio=1.0,
                train_lines=1,
                cities_per_train_line=2,
                days=2,
                sales=1,
            )
        )
        star = build_sales_star(tiny)
        engine = PersonalizationEngine(
            star,
            user_schema,
            geo_source=WorldGeoSource(tiny),
            parameters={"threshold": 0},
        )
        engine.add_rules(ALL_PAPER_RULES.values())
        profile = build_regional_manager_profile(user_schema)
        session = engine.start_session(profile, tiny.cities[0].location)
        stats = session.view().stats()
        assert stats["fact_rows_total"] == 1
        session.end()
