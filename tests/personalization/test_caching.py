"""Tests for the generation-keyed view memo and its invalidation protocol.

The contract under test: ``session.view()`` may serve a memoized
:class:`PersonalizedView` only while *neither* the session's selection
generation *nor* the star generation has moved; any selection growth
(acquisition rules, instance re-runs) or star mutation (member/fact/
feature inserts, schema personalization) must produce a rebuilt view —
and with ``engine.enable_caches = False`` the responses must be
identical, just rebuilt every time.
"""

import pytest

from repro.data import build_regional_manager_profile
from repro.errors import PersonalizationError
from repro.geometry import Point

WIDEN_CONDITION = (
    "Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry)<20km"
)


@pytest.fixture()
def session(engine, profile, world):
    return engine.start_session(profile, location=world.stores[0].location)


class TestViewMemo:
    def test_steady_state_serves_memoized_view(self, session):
        first = session.view()
        second = session.view()
        assert second is first

    def test_memo_disabled_rebuilds_identical_views(self, engine, session):
        engine.enable_caches = False
        first = session.view()
        second = session.view()
        assert second is not first
        assert second.fact_rows == first.fact_rows

    def test_cached_and_uncached_views_agree(self, engine, session):
        cached = session.view()
        engine.enable_caches = False
        uncached = session.view()
        assert uncached.fact_rows == cached.fact_rows
        assert uncached.stats() == cached.stats()

    def test_equal_selections_share_one_view_across_sessions(
        self, engine, user_schema, world
    ):
        """PR 4 semantics: the shared view store serves one materialization
        to any number of sessions whose selections hold the same content —
        the uid stays per-session, the *fingerprint* is the cache key."""
        first = engine.start_session(
            build_regional_manager_profile(user_schema),
            location=world.stores[0].location,
        )
        second = engine.start_session(
            build_regional_manager_profile(user_schema, name="Bo Li"),
            location=world.stores[0].location,
        )
        assert first.selection.uid != second.selection.uid
        assert first.selection.fingerprint() == second.selection.fingerprint()
        assert first.view() is second.view()
        # The shared view aliases neither session's live selection.
        assert first.view().selection is not first.selection
        assert first.view().selection is not second.selection

    def test_differing_selections_never_share_a_view(
        self, engine, user_schema, world
    ):
        first = engine.start_session(
            build_regional_manager_profile(user_schema),
            location=world.stores[0].location,
        )
        second = engine.start_session(
            build_regional_manager_profile(user_schema, name="Bo Li"),
            location=world.stores[0].location,
        )
        column = second.context.star.fact_table().key_column("Store")
        unselected = next(
            key
            for key in column
            if key not in second.selection.members[("Store", "Store")]
        )
        second.selection.add_member("Store", "Store", unselected)
        assert first.selection.fingerprint() != second.selection.fingerprint()
        assert first.view() is not second.view()

    def test_view_store_disabled_falls_back_to_private_memo(
        self, world, star, user_schema
    ):
        from repro.data import ALL_PAPER_RULES, WorldGeoSource
        from repro.personalization import PersonalizationEngine

        engine = PersonalizationEngine(
            star,
            user_schema,
            geo_source=WorldGeoSource(world),
            parameters={"threshold": 3},
            view_store_size=0,
        )
        engine.add_rules(ALL_PAPER_RULES.values())
        assert engine.view_store is None
        first = engine.start_session(
            build_regional_manager_profile(user_schema),
            location=world.stores[0].location,
        )
        second = engine.start_session(
            build_regional_manager_profile(user_schema, name="Bo Li"),
            location=world.stores[0].location,
        )
        assert first.view() is first.view()  # memo still works
        assert first.view() is not second.view()  # but nothing is shared
        assert first.view().fact_rows == second.view().fact_rows

    def test_selection_generation_counts_only_growth(self, session):
        selection = session.selection
        (dimension, level), keys = next(iter(selection.members.items()))
        key = next(iter(keys))
        before = selection.generation
        selection.add_member(dimension, level, key)  # already selected
        assert selection.generation == before
        selection.add_member(dimension, level, "never-seen-before")
        assert selection.generation == before + 1


class TestInvalidation:
    def test_selection_report_and_rerun_refresh_view(self, session):
        stale = session.view()
        for _ in range(4):  # interest threshold is 3
            session.record_spatial_selection("GeoMD.Store.City", WIDEN_CONDITION)
        session.rerun_instance_rules()
        fresh = session.view()
        assert fresh is not stale
        assert len(fresh.fact_rows) > len(stale.fact_rows)

    def test_manual_selection_growth_refreshes_view(self, session):
        stale = session.view()
        column = session.context.star.fact_table().key_column("Store")
        unselected = next(
            key
            for key in column
            if key not in session.selection.members[("Store", "Store")]
        )
        session.selection.add_member("Store", "Store", unselected)
        fresh = session.view()
        assert fresh is not stale
        assert len(fresh.fact_rows) > len(stale.fact_rows)

    def test_fact_insert_refreshes_view(self, session):
        star = session.context.star
        stale = session.view()
        fact_table = star.fact_table()
        row = fact_table.row(stale.fact_rows[0])
        coordinates = {d: row[d] for d in fact_table.fact.dimension_names}
        measures = {m: row[m] for m in fact_table.fact.measures}
        star.insert_fact(fact_table.fact.name, coordinates, measures)
        fresh = session.view()
        assert fresh is not stale
        assert len(fresh.fact_rows) == len(stale.fact_rows) + 1

    def test_feature_insert_carries_view(self, session):
        """PR 9: feature inserts no longer rebuild views — the store
        carries the (provably unchanged) view to the new generation and
        the session memo revalidates against it."""
        star = session.context.star
        stale = session.view()
        generation = star.generation
        star.add_feature("Airport", "Test Field", Point(1.0, 2.0))
        assert star.generation == generation + 1
        fresh = session.view()
        assert fresh is stale
        assert fresh.fact_rows == session._build_view(fresh.fact).fact_rows

    def test_member_insert_carries_view(self, session):
        """PR 9: a member add on an unreferenced dimension carries the
        view instead of rebuilding; content must equal a fresh build."""
        star = session.context.star
        stale = session.view()
        star.add_member("Product", "Family", "Exotic")
        fresh = session.view()
        assert fresh is stale
        assert fresh.fact_rows == session._build_view(fresh.fact).fact_rows

    def test_member_update_refreshes_view(self, session):
        """An in-place member update on a referenced dimension still
        invalidates (no delta shape to patch through)."""
        stale = session.view()
        session.context.star.note_member_change("Store", op="update")
        fresh = session.view()
        assert fresh is not stale
        assert fresh.fact_rows == stale.fact_rows

    def test_layer_table_creation_carries_view(self, session):
        star = session.context.star
        schema = session.context.geomd_schema
        stale = session.view()
        schema.add_layer("Harbour", schema.layers["Airport"].geometric_type)
        star.ensure_layer_table("Harbour")
        fresh = session.view()
        assert fresh is stale
        assert fresh.fact_rows == session._build_view(fresh.fact).fact_rows

    def test_idempotent_session_start_keeps_other_sessions_warm(
        self, engine, user_schema, world
    ):
        """A second login re-fires the (idempotent) schema rules; that must
        not bump the star generation and evict every session's memo."""
        first = engine.start_session(
            build_regional_manager_profile(user_schema),
            location=world.stores[0].location,
        )
        warm = first.view()
        engine.start_session(
            build_regional_manager_profile(user_schema, name="Bo Li"),
            location=world.stores[0].location,
        )
        assert first.view() is warm


class TestMultiFactViews:
    @pytest.fixture()
    def dual_session(self, dual_fact_star, user_schema):
        from repro.personalization import PersonalizationEngine

        engine = PersonalizationEngine(dual_fact_star, user_schema)
        return engine.start_session(
            build_regional_manager_profile(user_schema)
        )

    def test_view_requires_explicit_fact_when_ambiguous(self, dual_session):
        with pytest.raises(PersonalizationError, match="fact tables"):
            dual_session.view()

    def test_views_per_fact(self, dual_session):
        dual_session.selection.add_member("Product", "Product", "P2")
        sales = dual_session.view("Sales")
        returns = dual_session.view("Returns")
        assert sales.fact == "Sales"
        assert returns.fact == "Returns"
        assert len(sales.fact_rows) == 1
        assert len(returns.fact_rows) == 1
        assert sales.stats()["fact_rows_total"] == 2
        assert returns.stats()["fact_rows_total"] == 1
        assert sales.cube().count() == 1.0

    def test_per_fact_memos_are_independent(self, dual_session):
        sales = dual_session.view("Sales")
        returns = dual_session.view("Returns")
        assert dual_session.view("Sales") is sales
        assert dual_session.view("Returns") is returns

    def test_cube_for_other_fact_recomputes_rows(self, dual_session):
        """A view's fact_rows are row ids of its own fact table; a cube
        over another fact must not misapply them."""
        dual_session.selection.add_member("Product", "Product", "P2")
        sales = dual_session.view("Sales")
        assert sales.cube("Returns").count() == 1.0  # Returns row for P2
        assert sales.cube().count() == 1.0  # Sales row for P2
