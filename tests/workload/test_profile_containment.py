"""Satellite: journal-seeded synthetic traffic is statistically faithful.

``profile_from_journal()`` over the demo workload's journal must yield
cohorts whose *replayed* traffic touches the same vocabulary the organic
sessions touched: every synthetic query/layer/selection comes from the
organic vocabulary (containment), the replayed selection reports select
members from the same dimensions and overlapping footprints the organic
reports selected, and — statistically, not exactly — the synthetic
replay covers the organic vocabulary rather than collapsing onto one
corner of it.
"""

import pytest

from repro.data import (
    ALL_PAPER_RULES,
    WorldConfig,
    WorldGeoSource,
    build_motivating_user_model,
    build_regional_manager_profile,
    build_sales_star,
    generate_world,
    replay_demo_workload,
)
from repro.personalization import PersonalizationEngine
from repro.web import PortalApp
from repro.workload import (
    GeneratorConfig,
    InProcessTarget,
    ReplayDriver,
    WorkloadGenerator,
    build_workload_portal,
    profile_from_journal,
)
from repro.workload.cohorts import candidate_locations

THRESHOLD = 3


def _journal_vocabulary(journal, datamart):
    queries, layers, selections, members = set(), set(), set(), set()
    for user_id in journal.users(datamart):
        for event in journal.events(datamart, user_id):
            if event.kind == "query":
                queries.add(event.payload["q"])
            elif event.kind == "layer":
                layers.add(event.payload["layer"])
            elif event.kind == "selection":
                selections.add(
                    (event.payload["target"], event.payload["condition"])
                )
                members.update(
                    tuple(member) for member in event.payload["members"]
                )
    return queries, layers, selections, members


@pytest.fixture(scope="module")
def organic():
    """The demo workload replayed on a single-tenant portal: the world,
    the recorded journal, and the organic vocabulary mined from it."""
    world = generate_world(WorldConfig(seed=7))
    engine = PersonalizationEngine(
        build_sales_star(world),
        build_motivating_user_model(),
        geo_source=WorldGeoSource(world),
        parameters={"threshold": THRESHOLD},
    )
    engine.add_rules(ALL_PAPER_RULES.values())
    app = PortalApp(engine, datamart_name="sales")
    app.register_user(
        build_regional_manager_profile(build_motivating_user_model())
    )
    replay_demo_workload(app, world)
    journal = app.service.journal
    return world, journal, _journal_vocabulary(journal, "sales")


@pytest.fixture(scope="module")
def synthetic(organic):
    """Traffic generated from the mined profile, replayed on a fresh
    portal: the fresh portal's journal records what it touched."""
    world, journal, _vocabulary = organic
    profile = profile_from_journal(journal, "sales")
    config = GeneratorConfig(
        seed=11,
        users=60,
        sessions=24,
        events_per_session=(6, 10),
        concurrency=4,
        datamarts=("sales",),
    )
    generator = WorkloadGenerator(
        profile,
        config,
        candidate_locations(store.location for store in world.stores),
    )
    stream = generator.stream()
    portal = build_workload_portal(
        world, stream.active_users(), datamarts=("sales",)
    )
    driver = ReplayDriver(InProcessTarget(portal))
    driver.resolve_as_of()
    report, _ = driver.replay_serial(stream)
    assert report.errors == 0, report.error_statuses
    return _journal_vocabulary(portal.service.journal, "sales")


class TestContainment:
    def test_synthetic_queries_drawn_from_organic_vocabulary(
        self, organic, synthetic
    ):
        _, _, (queries, _, _, _) = organic
        synthetic_queries = synthetic[0]
        assert synthetic_queries and synthetic_queries <= queries

    def test_synthetic_layers_are_the_organic_layers(self, organic, synthetic):
        _, _, (_, layers, _, _) = organic
        synthetic_layers = synthetic[1]
        assert synthetic_layers and synthetic_layers <= layers

    def test_synthetic_selections_match_organic_reports(
        self, organic, synthetic
    ):
        _, _, (_, _, selections, members) = organic
        synthetic_selections, synthetic_members = synthetic[2], synthetic[3]
        assert synthetic_selections and synthetic_selections <= selections
        # The member snapshot in a selection report includes members the
        # spatiality rules acquired from each session's login location, so
        # synthetic sessions logging in at other stores legitimately carry
        # members outside the three organic sessions' footprint. The
        # statistical claim: same dimensions, overlapping footprints.
        assert synthetic_members
        organic_dimensions = {dimension for dimension, _, _ in members}
        synthetic_dimensions = {
            dimension for dimension, _, _ in synthetic_members
        }
        assert synthetic_dimensions == organic_dimensions
        assert synthetic_members & members

    def test_statistical_coverage_not_collapse(self, organic, synthetic):
        """The synthetic replay covers most of the organic vocabulary —
        a degenerate generator that only ever replays one query would
        pass containment but fail here."""
        _, _, (queries, layers, selections, _) = organic
        organic_vocabulary = (
            {("query", q) for q in queries}
            | {("layer", layer) for layer in layers}
            | {("selection",) + pair for pair in selections}
        )
        synthetic_vocabulary = (
            {("query", q) for q in synthetic[0]}
            | {("layer", layer) for layer in synthetic[1]}
            | {("selection",) + pair for pair in synthetic[2]}
        )
        covered = organic_vocabulary & synthetic_vocabulary
        assert len(covered) >= 0.75 * len(organic_vocabulary)
