"""Generator determinism: the single-rng, byte-identical-stream contract."""

import dataclasses
import json

import pytest

from repro.errors import ReproError
from repro.workload import (
    AS_OF_EPOCH,
    STREAM_FORMAT,
    EventStream,
    GeneratorConfig,
    WorkloadGenerator,
    default_profile,
)


def _generator(config):
    return WorkloadGenerator(
        default_profile(), config, [(0.0, 0.0), (100.0, 50.0), (30.0, 80.0)]
    )


class TestDeterminism:
    def test_same_seed_and_params_byte_identical(self, tiny_config):
        config = tiny_config
        one = _generator(config).stream().to_jsonl()
        two = _generator(config).stream().to_jsonl()
        assert one == two

    def test_repeated_stream_calls_on_one_generator_identical(self, tiny_config):
        generator = _generator(tiny_config)
        assert generator.stream().to_jsonl() == generator.stream().to_jsonl()

    def test_different_seed_differs(self, tiny_config):
        base = _generator(tiny_config).stream().to_jsonl()
        other = (
            _generator(dataclasses.replace(tiny_config, seed=tiny_config.seed + 1))
            .stream()
            .to_jsonl()
        )
        assert base != other

    def test_header_records_seed_and_config(self, tiny_stream, tiny_config):
        header = tiny_stream.header
        assert header["format"] == STREAM_FORMAT
        assert header["seed"] == tiny_config.seed
        assert header["config"]["users"] == tiny_config.users
        assert tiny_stream.seed == tiny_config.seed


class TestStreamShape:
    def test_every_session_framed_by_login(self, tiny_stream):
        first_event = {}
        for event in tiny_stream:
            first_event.setdefault(event.session, event.kind)
        assert set(first_event.values()) == {"login"}

    def test_sessions_round_robin_datamarts(self, tiny_stream, tiny_config):
        datamarts = {event.datamart for event in tiny_stream}
        assert datamarts == set(tiny_config.datamarts)

    def test_concurrency_bounds_open_sessions(self, tiny_stream, tiny_config):
        open_now = set()
        peak = 0
        for event in tiny_stream:
            if event.kind == "login":
                open_now.add(event.session)
            peak = max(peak, len(open_now))
            if event.kind == "logout":
                open_now.discard(event.session)
        assert peak <= tiny_config.concurrency

    def test_population_is_lazy_million_users_cheap(self):
        config = GeneratorConfig(
            seed=3, users=1_000_000, sessions=5, events_per_session=(2, 3)
        )
        stream = _generator(config).stream()
        assert len(stream.active_users()) <= 5
        assert all(event.user.startswith("wl-") for event in stream)

    def test_as_of_reads_carry_symbolic_epoch(self):
        profile = default_profile()
        analysts = profile.cohort("analysts")
        hot = dataclasses.replace(analysts, as_of_rate=1.0)
        forced = dataclasses.replace(
            profile, cohorts=(hot,) + tuple(
                c for c in profile.cohorts if c.name != "analysts"
            )
        )
        config = GeneratorConfig(seed=5, users=20, sessions=10)
        stream = WorkloadGenerator(forced, config, [(0.0, 0.0)]).stream()
        markers = [
            event.payload["as_of"]
            for event in stream
            if event.kind == "query" and "as_of" in event.payload
        ]
        assert markers and set(markers) == {AS_OF_EPOCH}


class TestSerialization:
    def test_jsonl_round_trip(self, tiny_stream):
        text = tiny_stream.to_jsonl()
        back = EventStream.from_jsonl(text)
        assert back.to_jsonl() == text
        assert len(back) == len(tiny_stream)

    def test_from_jsonl_rejects_foreign_documents(self):
        with pytest.raises(ReproError):
            EventStream.from_jsonl(json.dumps({"format": "something-else"}))
        with pytest.raises(ReproError):
            EventStream.from_jsonl("")

    def test_describe_prices_in_facts_equivalent(self, tiny_stream):
        summary = tiny_stream.describe(fact_rows=500)
        queries = summary["events_by_kind"].get("query", 0)
        assert summary["facts_equivalent"] == queries * 500
        assert summary["sessions"] == 8


class TestConfigValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"users": 0},
            {"sessions": 0},
            {"events_per_session": (5, 2)},
            {"concurrency": 0},
            {"datamarts": ()},
            {"fact_multiplier": 0},
            {"abandon_rate": 1.5},
        ],
    )
    def test_bad_config_rejected(self, overrides):
        with pytest.raises(ReproError):
            GeneratorConfig(**overrides)

    def test_config_round_trips(self, tiny_config):
        assert GeneratorConfig.from_dict(tiny_config.to_dict()) == tiny_config
