"""Workload-subsystem fixtures: a tiny tier, its world and stream."""

import dataclasses

import pytest

from repro.data import WorldConfig, generate_world
from repro.workload import (
    WORKLOAD_TENANTS,
    GeneratorConfig,
    WorkloadGenerator,
    build_workload_portal,
    default_profile,
)
from repro.workload.cohorts import candidate_locations


@pytest.fixture(scope="module")
def tiny_world():
    """A small deterministic world shared by replay tests."""
    return generate_world(WorldConfig(seed=7, sales=500))


@pytest.fixture(scope="module")
def tiny_config():
    return GeneratorConfig(
        seed=42,
        users=50,
        sessions=8,
        events_per_session=(4, 7),
        concurrency=3,
        datamarts=WORKLOAD_TENANTS[:2],
    )


@pytest.fixture(scope="module")
def tiny_stream(tiny_world, tiny_config):
    generator = WorkloadGenerator(
        default_profile(),
        tiny_config,
        candidate_locations(store.location for store in tiny_world.stores),
    )
    return generator.stream()


@pytest.fixture()
def tiny_portal(tiny_world, tiny_stream):
    """A fresh in-process portal matching the tiny stream."""
    return build_workload_portal(
        tiny_world,
        tiny_stream.active_users(),
        datamarts=WORKLOAD_TENANTS[:2],
    )


def fresh_config(config, **overrides):
    return dataclasses.replace(config, **overrides)
