"""Replay driver: serial/closed/open modes against the in-process target."""

import pytest

from repro.errors import ReproError
from repro.workload import (
    WORKLOAD_TENANTS,
    InProcessTarget,
    LatencyStats,
    ReplayDriver,
    build_workload_portal,
    health_window,
    merge_health,
)


def _driver(portal):
    driver = ReplayDriver(InProcessTarget(portal))
    driver.resolve_as_of()
    return driver


class TestSerialReplay:
    def test_replays_without_errors(self, tiny_portal, tiny_stream):
        report, bodies = _driver(tiny_portal).replay_serial(
            tiny_stream, collect_bodies=True
        )
        assert report.errors == 0, report.error_statuses
        assert report.requests == len(tiny_stream)
        assert len(bodies) == len(tiny_stream)
        assert report.by_kind["login"] == 8

    def test_login_bodies_token_stripped(self, tiny_portal, tiny_stream):
        _report, bodies = _driver(tiny_portal).replay_serial(
            tiny_stream, collect_bodies=True
        )
        logins = [
            body
            for event, body in zip(tiny_stream, bodies)
            if event.kind == "login"
        ]
        assert logins and all("token" not in body for body in logins)

    def test_gate_reproducible_across_fresh_portals(
        self, tiny_world, tiny_stream
    ):
        bodies = []
        for _ in range(2):
            portal = build_workload_portal(
                tiny_world,
                tiny_stream.active_users(),
                datamarts=WORKLOAD_TENANTS[:2],
            )
            report, collected = _driver(portal).replay_serial(
                tiny_stream, collect_bodies=True
            )
            assert report.errors == 0, report.error_statuses
            bodies.append(collected)
        assert bodies[0] == bodies[1]

    def test_report_shape(self, tiny_portal, tiny_stream):
        report, _ = _driver(tiny_portal).replay_serial(tiny_stream)
        data = report.to_dict()
        assert data["mode"] == "serial"
        assert data["target"] == "in_process"
        assert set(data["latency"]) == {
            "count",
            "mean_ms",
            "p50_ms",
            "p95_ms",
            "p99_ms",
            "max_ms",
        }
        assert data["latency"]["count"] == len(tiny_stream)


class TestConcurrentReplay:
    def test_closed_loop_error_free(self, tiny_portal, tiny_stream):
        report = _driver(tiny_portal).replay_closed(tiny_stream, actors=3)
        assert report.errors == 0, report.error_statuses
        assert report.requests == len(tiny_stream)
        assert report.mode == "closed"
        assert report.latency.count == len(tiny_stream)

    def test_open_loop_error_free_and_reports_lag(
        self, tiny_portal, tiny_stream
    ):
        report = _driver(tiny_portal).replay_open(
            tiny_stream, rate_per_s=400.0, senders=2
        )
        assert report.errors == 0, report.error_statuses
        assert report.requests == len(tiny_stream)
        assert report.arrival_rate_per_s == 400.0
        assert report.dispatch_lag_ms is not None
        assert report.to_dict()["arrival_rate_per_s"] == 400.0

    def test_actor_validation(self, tiny_portal, tiny_stream):
        driver = _driver(tiny_portal)
        with pytest.raises(ReproError):
            driver.replay_closed(tiny_stream, actors=0)
        with pytest.raises(ReproError):
            driver.replay_open(tiny_stream, rate_per_s=0.0)


class TestAsOfResolution:
    def test_resolve_as_of_scrapes_star_generations(self, tiny_portal):
        driver = ReplayDriver(InProcessTarget(tiny_portal))
        generations = driver.resolve_as_of()
        assert set(generations) == set(WORKLOAD_TENANTS[:2])
        assert all(g > 0 for g in generations.values())

    def test_epoch_read_without_resolution_fails_loudly(
        self, tiny_portal, tiny_stream
    ):
        has_epoch = any(
            event.payload.get("as_of") == "epoch"
            for event in tiny_stream
            if event.kind == "query"
        )
        if not has_epoch:
            pytest.skip("stream drew no as-of reads at this seed")
        driver = ReplayDriver(InProcessTarget(tiny_portal))
        with pytest.raises(ReproError, match="resolve_as_of"):
            driver.replay_serial(tiny_stream)


class TestLatencyStats:
    def test_percentiles_over_known_samples(self):
        stats = LatencyStats.from_samples([i / 1000.0 for i in range(1, 101)])
        assert stats.count == 100
        assert stats.p50_ms == pytest.approx(50.0, abs=1.0)
        assert stats.p95_ms == pytest.approx(95.0, abs=1.0)
        assert stats.max_ms == pytest.approx(100.0)

    def test_empty_samples(self):
        stats = LatencyStats.from_samples([])
        assert stats.count == 0 and stats.p99_ms == 0.0


class TestHealthMetrics:
    def test_window_counts_only_the_run(self, tiny_portal, tiny_stream):
        target = InProcessTarget(tiny_portal)
        driver = ReplayDriver(target)
        driver.resolve_as_of()
        driver.replay_serial(tiny_stream)  # warm-up outside the window
        before = merge_health(target.health())
        report, _ = driver.replay_serial(tiny_stream)
        after = merge_health(target.health())
        window = health_window(before, after)
        queries = report.by_kind.get("query", 0)
        assert (
            window["query_cache"]["hits"] + window["query_cache"]["misses"]
            == queries
        )
        assert window["journal_events"] > 0

    def test_merge_health_single_snapshot_passthrough(self, tiny_portal):
        merged = merge_health(InProcessTarget(tiny_portal).health())
        assert merged["workers"] == 1
        assert {d["name"] for d in merged["datamarts"]} == set(
            WORKLOAD_TENANTS[:2]
        )
