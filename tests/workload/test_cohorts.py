"""Cohort blueprints: validation, round-trips, journal reverse-ETL."""

import pytest

from repro.errors import ReproError
from repro.reco.journal import WorkloadJournal
from repro.workload import (
    CohortSpec,
    WorkloadProfile,
    default_profile,
    profile_from_journal,
)


class TestCohortSpec:
    def test_empty_vocabulary_kinds_dropped_from_mix(self):
        cohort = CohortSpec(
            name="c", weight=1.0, queries=("SELECT 1",), layers=(), selections=()
        )
        weights = cohort.mix_weights()
        assert "layer" not in weights
        assert "selection" not in weights
        assert weights["view"] > 0 and weights["query"] > 0

    def test_validation(self):
        with pytest.raises(ReproError):
            CohortSpec(name="c", weight=0.0, queries=("q",))
        with pytest.raises(ReproError):
            CohortSpec(name="c", weight=1.0, queries=())
        with pytest.raises(ReproError):
            CohortSpec(
                name="c", weight=1.0, queries=("q",), query_weights=(1.0, 2.0)
            )
        with pytest.raises(ReproError):
            CohortSpec(
                name="c", weight=1.0, queries=("q",), mix=(("teleport", 1.0),)
            )

    def test_round_trip(self):
        profile = default_profile()
        back = WorkloadProfile.from_dict(profile.to_dict())
        assert back == profile

    def test_duplicate_cohort_names_rejected(self):
        cohort = CohortSpec(name="dup", weight=1.0, queries=("q",))
        with pytest.raises(ReproError):
            WorkloadProfile(cohorts=(cohort, cohort))


class TestDefaultProfile:
    def test_three_cohorts_cover_the_event_vocabulary(self):
        profile = default_profile()
        assert {c.name for c in profile.cohorts} == {
            "analysts",
            "planners",
            "wanderers",
        }
        analysts = profile.cohort("analysts")
        assert analysts.layers and analysts.selections
        assert analysts.anchor is not None
        assert profile.cohort("wanderers").anchor is None


def _journal_with_demo_shape() -> WorkloadJournal:
    """The demo workload's journal shape, written directly: ana and
    bruno share the roll-up + airport selection (bruno adds the city
    query and the Airport layer), carla only runs noise queries."""
    shared = "SELECT SUM(UnitSales) FROM Sales BY Product.Family"
    city = "SELECT SUM(StoreSales) FROM Sales BY Store.City"
    selection = (
        "GeoMD.Store.City",
        "Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry)<20km",
    )
    journal = WorkloadJournal()
    for _ in range(3):
        journal.record_query("sales", "ana", shared)
    members = [("Store", "City", "Madrid")]
    journal.record_selection("sales", "ana", selection[0], selection[1], members)
    journal.record_query("sales", "bruno", shared)
    journal.record_query("sales", "bruno", city)
    journal.record_selection(
        "sales", "bruno", selection[0], selection[1], members
    )
    journal.record_layer("sales", "bruno", "Airport")
    journal.record_query(
        "sales", "carla", "SELECT SUM(StoreCost) FROM Sales BY Time.Month"
    )
    journal.record_query(
        "sales", "carla", "SELECT SUM(UnitSales) FROM Sales BY Customer.City"
    )
    return journal


class TestProfileFromJournal:
    def test_clusters_similar_users_and_separates_noise(self):
        profile = profile_from_journal(_journal_with_demo_shape(), "sales")
        by_origin = {cohort.origin_users: cohort for cohort in profile.cohorts}
        assert ("ana", "bruno") in by_origin
        assert ("carla",) in by_origin
        together = by_origin[("ana", "bruno")]
        assert together.weight == pytest.approx(2 / 3)
        assert "Airport" in together.layers
        assert together.selections

    def test_query_weights_follow_observed_frequencies(self):
        profile = profile_from_journal(_journal_with_demo_shape(), "sales")
        cohort = next(
            c for c in profile.cohorts if c.origin_users == ("ana", "bruno")
        )
        weights = dict(zip(cohort.queries, cohort.query_weights))
        shared = "SELECT SUM(UnitSales) FROM Sales BY Product.Family"
        city = "SELECT SUM(StoreSales) FROM Sales BY Store.City"
        assert weights[shared] == 4.0  # ana 3x + bruno 1x
        assert weights[city] == 1.0

    def test_source_names_the_datamart(self):
        profile = profile_from_journal(_journal_with_demo_shape(), "sales")
        assert profile.source == "journal:sales"

    def test_empty_journal_rejected(self):
        with pytest.raises(ReproError):
            profile_from_journal(WorkloadJournal(), "sales")

    def test_similarity_one_splits_everyone(self):
        profile = profile_from_journal(
            _journal_with_demo_shape(), "sales", similarity=1.01
        )
        assert len(profile.cohorts) == 3
