"""Lock-order sanitizer: graph recording, cycle detection, stats, factories."""

import threading

import pytest

from repro.analysis import sanitizer
from repro.analysis.sanitizer import LockOrderSanitizer, SanitizedLock, SanitizedRLock
from repro.concurrency import make_lock, make_rlock


@pytest.fixture()
def san():
    return LockOrderSanitizer()


class TestOrderGraph:
    def test_nested_acquisition_records_an_edge(self, san):
        a, b = san.lock("A"), san.lock("B")
        with a:
            with b:
                pass
        assert san.edges() == {"A": {"B": san.edges()["A"]["B"]}}
        assert "test_sanitizer.py" in san.edges()["A"]["B"]
        assert san.cycles() == []

    def test_ab_ba_is_a_cycle(self, san):
        a, b = san.lock("A"), san.lock("B")
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        assert san.cycles() == [["A", "B"]]

    def test_cycle_detected_across_threads(self, san):
        # The classic deadlock shape, sequenced so the test never hangs:
        # thread 1 takes A then B, thread 2 takes B then A — at
        # different times.  The order graph still convicts the pair.
        a, b = san.lock("A"), san.lock("B")
        first_done = threading.Event()

        def one():
            with a:
                with b:
                    pass
            first_done.set()

        def two():
            first_done.wait(5)
            with b:
                with a:
                    pass

        threads = [threading.Thread(target=one), threading.Thread(target=two)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(5)
        assert san.cycles() == [["A", "B"]]

    def test_two_instances_of_one_class_make_a_self_loop(self, san):
        # All instances created under one name share a node (the
        # lockdep convention): nesting two of them is a self-deadlock
        # risk between two objects of the same class.
        first, second = san.lock("L"), san.lock("L")
        with first:
            with second:
                pass
        assert san.cycles() == [["L"]]

    def test_rlock_reentry_records_no_edge(self, san):
        lock = san.rlock("R")
        with lock:
            with lock:
                pass
        assert san.edges() == {}
        assert san.cycles() == []

    def test_three_party_cycle(self, san):
        a, b, c = san.lock("A"), san.lock("B"), san.lock("C")
        for outer, inner in ((a, b), (b, c), (c, a)):
            with outer:
                with inner:
                    pass
        assert san.cycles() == [["A", "B", "C"]]


class TestStats:
    def test_acquisition_and_instance_counters(self, san):
        lock = san.lock("L")
        san.lock("L")  # second instance, never acquired
        with lock:
            pass
        with lock:
            pass
        stats = san.stats()
        assert stats["enabled"] is True
        assert stats["locks"]["L"]["instances"] == 2
        assert stats["locks"]["L"]["acquisitions"] == 2
        assert stats["locks"]["L"]["max_hold_s"] >= 0.0

    def test_contention_counted(self, san):
        lock = san.lock("L")
        lock.acquire()
        try:
            in_thread = []

            def contend():
                in_thread.append(lock.acquire(blocking=False))

            thread = threading.Thread(target=contend)
            thread.start()
            thread.join(5)
            assert in_thread == [False]
        finally:
            lock.release()
        assert san.stats()["locks"]["L"]["contentions"] == 1

    def test_graph_artifact_shape(self, san):
        a, b = san.lock("A"), san.lock("B")
        with a:
            with b:
                pass
        graph = san.graph()
        assert set(graph) == {"locks", "edges", "cycles"}
        (edge,) = graph["edges"]
        assert edge["held"] == "A" and edge["acquired"] == "B"
        assert " in " in edge["site"]


class TestFactories:
    def test_inactive_factories_return_plain_primitives(self, monkeypatch):
        monkeypatch.delenv(sanitizer.ENV_SWITCH, raising=False)
        monkeypatch.setattr(sanitizer, "_active", None)
        assert not isinstance(make_lock("X"), SanitizedLock)
        assert not isinstance(make_rlock("X"), SanitizedLock)

    def test_active_factories_return_instrumented_locks(self, monkeypatch):
        monkeypatch.setattr(sanitizer, "_active", None)
        active = sanitizer.activate()
        try:
            lock = make_lock("X")
            rlock = make_rlock("Y")
            assert isinstance(lock, SanitizedLock)
            assert isinstance(rlock, SanitizedRLock)
            with lock:
                with rlock:
                    pass
            assert active.edges() == {"X": {"Y": active.edges()["X"]["Y"]}}
        finally:
            sanitizer.deactivate()

    def test_env_switch_activates_on_demand(self, monkeypatch):
        monkeypatch.setattr(sanitizer, "_active", None)
        monkeypatch.setenv(sanitizer.ENV_SWITCH, "1")
        first = sanitizer.current()
        assert first is not None
        assert sanitizer.current() is first
        monkeypatch.setattr(sanitizer, "_active", None)
        monkeypatch.setenv(sanitizer.ENV_SWITCH, "0")
        assert sanitizer.current() is None

    def test_deactivate_restores_previous(self, monkeypatch):
        monkeypatch.delenv(sanitizer.ENV_SWITCH, raising=False)
        monkeypatch.setattr(sanitizer, "_active", None)
        outer = sanitizer.activate()
        inner = sanitizer.activate()
        assert sanitizer.current() is inner
        sanitizer.deactivate(outer)
        assert sanitizer.current() is outer
        sanitizer.deactivate()
        assert sanitizer.current() is None

    def test_sanitized_lock_is_a_context_manager_lock(self, san):
        lock = san.lock("L")
        assert lock.locked() is False
        with lock:
            assert lock.locked() is True
        assert lock.locked() is False

    def test_sanitized_rlock_locked_probe(self, san):
        lock = san.rlock("R")
        assert lock.locked() is False
        with lock:
            held = []

            def probe():
                held.append(lock.locked())

            thread = threading.Thread(target=probe)
            thread.start()
            thread.join(5)
            assert held == [True]
