"""The ``repro lint`` subcommand end to end (argparse -> report -> exit)."""

import json
import textwrap

import pytest

from repro.cli import main

RACY = textwrap.dedent(
    """
    import threading

    class Registry:
        def __init__(self):
            self._lock = threading.Lock()
            self._items = {}

        def racy(self, key):
            if key not in self._items:
                self._items[key] = object()
            return self._items[key]
    """
)

CLEAN = textwrap.dedent(
    """
    import threading

    class Registry:
        def __init__(self):
            self._lock = threading.Lock()
            self._items = {}

        def safe(self, key):
            with self._lock:
                if key not in self._items:
                    self._items[key] = object()
                return self._items[key]
    """
)


@pytest.fixture()
def fixture_file(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text(RACY)
    return path


def _lint(*argv):
    return main(["lint", *argv])


class TestReporting:
    def test_new_violation_fails_with_file_line(self, fixture_file, tmp_path, capsys):
        code = _lint(str(fixture_file), "--baseline", str(tmp_path / "bl.json"))
        assert code == 1
        out = capsys.readouterr()
        assert f"{fixture_file}:11: check-then-act:" in out.out
        assert "lint: FAIL" in out.err

    def test_clean_tree_passes(self, tmp_path, capsys):
        path = tmp_path / "mod.py"
        path.write_text(CLEAN)
        assert _lint(str(path), "--baseline", str(tmp_path / "bl.json")) == 0
        assert "lint: ok (0 new, 0 grandfathered, 0 stale)" in capsys.readouterr().out

    def test_json_format(self, fixture_file, tmp_path, capsys):
        code = _lint(
            str(fixture_file),
            "--baseline",
            str(tmp_path / "bl.json"),
            "--format",
            "json",
        )
        assert code == 1
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is False
        (violation,) = report["new"]
        assert violation["rule"] == "check-then-act"
        assert violation["line"] == 11


class TestBaselineWorkflow:
    def test_write_then_check_grandfathers(self, fixture_file, tmp_path, capsys):
        baseline = tmp_path / "bl.json"
        assert _lint(str(fixture_file), "--baseline", str(baseline), "--write-baseline") == 0
        assert baseline.exists()
        assert (
            _lint(str(fixture_file), "--baseline", str(baseline), "--check-baseline")
            == 0
        )
        assert "1 grandfathered" in capsys.readouterr().out

    def test_no_baseline_reports_grandfathered_as_new(self, fixture_file, tmp_path):
        baseline = tmp_path / "bl.json"
        _lint(str(fixture_file), "--baseline", str(baseline), "--write-baseline")
        assert (
            _lint(str(fixture_file), "--baseline", str(baseline), "--no-baseline")
            == 1
        )

    def test_stale_entry_fails_only_under_check_baseline(
        self, fixture_file, tmp_path, capsys
    ):
        baseline = tmp_path / "bl.json"
        _lint(str(fixture_file), "--baseline", str(baseline), "--write-baseline")
        fixture_file.write_text(CLEAN)  # the finding is fixed...
        # ...without --check-baseline the stale entry is informational,
        assert _lint(str(fixture_file), "--baseline", str(baseline)) == 0
        assert "stale baseline entry" in capsys.readouterr().err
        # ...with it the baseline must be regenerated.
        assert (
            _lint(str(fixture_file), "--baseline", str(baseline), "--check-baseline")
            == 1
        )
        assert "lint: FAIL (0 new, 0 grandfathered, 1 stale)" in capsys.readouterr().err
