"""Shared helper: lint an inline fixture source string."""

import textwrap

import pytest

from repro.analysis.core import LintRunner, ModuleSource


@pytest.fixture()
def lint():
    """``lint(source) -> [Violation]`` over a dedented fixture module."""

    def run(source: str, path: str = "fixture.py"):
        module = ModuleSource(path, textwrap.dedent(source))
        return LintRunner().run_modules([module])

    return run
