"""Fixture corpora for the lint rules: one positive + one negative each."""


def _by_rule(violations, rule):
    return [v for v in violations if v.rule == rule]


class TestGenKey:
    def test_generationless_memo_store_is_flagged(self, lint):
        violations = lint(
            """
            class Engine:
                def __init__(self):
                    self._view_memo = {}

                def build(self, star, name):
                    view = object()
                    self._view_memo[name] = view
                    return view
            """
        )
        (violation,) = _by_rule(violations, "gen-key")
        assert violation.line == 8
        assert "fixture.py:8" in violation.format()
        assert "_view_memo" in violation.message

    def test_generation_stamped_key_passes(self, lint):
        violations = lint(
            """
            class Engine:
                def __init__(self):
                    self._view_memo = {}

                def build(self, star, name):
                    key = (name, star.generation)
                    self._view_memo[key] = object()
            """
        )
        assert _by_rule(violations, "gen-key") == []

    def test_generation_stamped_value_passes(self, lint):
        # Memo-dict idiom: plain key, the stored value carries the
        # stamp that reads compare against.
        violations = lint(
            """
            class Engine:
                def __init__(self):
                    self._view_memo = {}

                def build(self, star, name):
                    self._view_memo[name] = (star.generation, object())
            """
        )
        assert _by_rule(violations, "gen-key") == []

    def test_stamped_value_put_passes(self, lint):
        # PR 9 query-cache idiom: the key drops the generation (so as-of
        # and live reads share one namespace) and the stored payload
        # carries per-dimension generation stamps revalidated on read.
        violations = lint(
            """
            class Service:
                def __init__(self):
                    self._query_cache = ThreadSafeLRU(64)

                def run(self, q, star):
                    key = (q, star.datamart)
                    stamps = self._generation_stamps(star, q)
                    self._query_cache.put(key, (stamps, object()))
            """
        )
        assert _by_rule(violations, "gen-key") == []

    def test_lru_put_without_generation_is_flagged(self, lint):
        violations = lint(
            """
            class Service:
                def __init__(self):
                    self._query_cache = ThreadSafeLRU(64)

                def run(self, q, star):
                    self._query_cache.put((q, star.generation), 1)
                    self._query_cache.put(q, 2)
            """
        )
        (violation,) = _by_rule(violations, "gen-key")
        assert violation.line == 8

    def test_generationless_translation_store_is_flagged(self, lint):
        # Translation-table caches (the star's roll-up translations)
        # are cache-shaped attrs: a store without a generation in the
        # key or value must be flagged like any memo dict.
        violations = lint(
            """
            class Star:
                def __init__(self):
                    self._rollup_translations = {}

                def translation(self, fact, dimension, level):
                    table = object()
                    self._rollup_translations[(fact, dimension, level)] = table
                    return table
            """
        )
        (violation,) = _by_rule(violations, "gen-key")
        assert "_rollup_translations" in violation.message

    def test_generation_stamped_translation_value_passes(self, lint):
        violations = lint(
            """
            class Star:
                def __init__(self):
                    self._rollup_translations = {}

                def translation(self, fact, dimension, level):
                    member_generation = self._member_generations.get(dimension, 0)
                    table = _RollupTranslation(member_generation)
                    self._rollup_translations[(fact, dimension, level)] = table
                    return table
            """
        )
        assert _by_rule(violations, "gen-key") == []


class TestLockGuard:
    SOURCE = """
    import threading

    class Store:
        def __init__(self):
            self._lock = threading.Lock()
            # guarded-by: _lock
            self._entries = {}

        def get(self, key):
            return self._entries.get(key)

        def put(self, key, value):
            with self._lock:
                self._entries[key] = value

        def _trim(self):  # guarded-by-caller: _lock
            self._entries.clear()
    """

    def test_unguarded_access_flagged_guarded_and_caller_guard_pass(self, lint):
        violations = _by_rule(lint(self.SOURCE), "lock-guard")
        assert [v.line for v in violations] == [11]
        assert "self._entries" in violations[0].message
        assert "_lock" in violations[0].message

    def test_unguarded_view_memo_write_is_flagged(self, lint):
        # The ISSUE acceptance fixture: an unguarded `_view_memo` write.
        violations = lint(
            """
            import threading

            class Engine:
                def __init__(self):
                    self._memo_lock = threading.Lock()
                    # guarded-by: _memo_lock
                    self._view_memo = {}

                def seed(self, key, view, generation):
                    self._view_memo[(key, generation)] = view
            """
        )
        flagged = _by_rule(violations, "lock-guard")
        assert [v.line for v in flagged] == [11]
        assert "fixture.py:11" in flagged[0].format()


class TestFrozenPayload:
    def test_mutating_a_namedtuple_field_is_flagged(self, lint):
        violations = lint(
            """
            from typing import NamedTuple

            class Snapshot(NamedTuple):
                rows: list

            def poison(cache):
                snap = Snapshot(rows=[])
                snap.rows.append(1)
            """
        )
        (violation,) = _by_rule(violations, "frozen-payload")
        assert violation.line == 9
        assert "Snapshot" in violation.message

    def test_frozen_dataclass_item_assignment_is_flagged(self, lint):
        violations = lint(
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Payload:
                attrs: dict

            def poison():
                payload = Payload(attrs={})
                payload.attrs["k"] = 1
            """
        )
        (violation,) = _by_rule(violations, "frozen-payload")
        assert violation.line == 10

    def test_mutating_annotated_frozen_parameter_is_flagged(self, lint):
        # PR 9: mutation-log consumers receive StarMutation-shaped frozen
        # payloads as parameters — mutating their fields is poison even
        # though the construction site is in another function.
        violations = lint(
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class StarMutation:
                payload: tuple

            def poison(mutation: StarMutation):
                mutation.payload.append(("extra", 1))
            """
        )
        (violation,) = _by_rule(violations, "frozen-payload")
        assert violation.line == 9
        assert "StarMutation" in violation.message

    def test_thawed_payload_copy_passes(self, lint):
        violations = lint(
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class StarMutation:
                payload: tuple

            def fine(mutation: StarMutation):
                details = thaw_payload(mutation.payload)
                details["extra"] = 1
                return details
            """
        )
        assert _by_rule(violations, "frozen-payload") == []

    def test_copying_before_mutation_passes(self, lint):
        violations = lint(
            """
            from typing import NamedTuple

            class Snapshot(NamedTuple):
                rows: list

            def fine():
                snap = Snapshot(rows=[])
                rows = list(snap.rows)
                rows.append(1)
                return rows
            """
        )
        assert _by_rule(violations, "frozen-payload") == []


class TestCheckThenAct:
    def test_unguarded_test_and_store_is_flagged(self, lint):
        violations = lint(
            """
            import threading

            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}

                def racy(self, key):
                    if key not in self._items:
                        self._items[key] = object()
                    return self._items[key]
            """
        )
        (violation,) = _by_rule(violations, "check-then-act")
        assert violation.line == 11
        assert "self._items" in violation.message

    def test_double_checked_store_under_lock_passes(self, lint):
        violations = lint(
            """
            import threading

            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}

                def safe(self, key):
                    if key not in self._items:
                        with self._lock:
                            if key not in self._items:
                                self._items[key] = object()
                    return self._items[key]
            """
        )
        assert _by_rule(violations, "check-then-act") == []

    def test_lockless_class_is_out_of_scope(self, lint):
        violations = lint(
            """
            class SingleThreaded:
                def __init__(self):
                    self._items = {}

                def racy_but_private(self, key):
                    if key not in self._items:
                        self._items[key] = object()
                    return self._items[key]
            """
        )
        assert _by_rule(violations, "check-then-act") == []


class TestSwallowedError:
    def test_bare_except_is_flagged(self, lint):
        violations = lint(
            """
            def bad():
                try:
                    risky()
                except:
                    pass
            """
        )
        flagged = _by_rule(violations, "swallowed-error")
        assert [v.line for v in flagged] == [5]
        assert "bare" in flagged[0].message

    def test_pass_only_storage_error_handler_is_flagged(self, lint):
        violations = lint(
            """
            def bad():
                try:
                    risky()
                except StorageError:
                    pass
            """
        )
        (violation,) = _by_rule(violations, "swallowed-error")
        assert "StorageError" in violation.message

    def test_deliberate_handler_passes(self, lint):
        violations = lint(
            """
            def fine(log):
                try:
                    return risky()
                except StorageError as exc:
                    log.warning("degraded: %s", exc)
                    return None
            """
        )
        assert _by_rule(violations, "swallowed-error") == []

    def test_lint_ok_suppression(self, lint):
        violations = lint(
            """
            def documented():
                try:
                    return risky()
                except StorageError:  # lint-ok: swallowed-error - stale keys degrade
                    pass
            """
        )
        assert _by_rule(violations, "swallowed-error") == []

    def test_star_suppression_covers_every_rule(self, lint):
        violations = lint(
            """
            def documented():
                try:
                    return risky()
                except:  # lint-ok: * - fixture
                    pass
            """
        )
        assert violations == []
