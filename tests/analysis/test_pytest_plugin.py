"""The sanitizer pytest plugin, exercised in a subprocess for isolation."""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]

CYCLE_TEST = textwrap.dedent(
    """
    from repro.concurrency import make_lock

    def test_seeded_cycle():
        a = make_lock("SeedA")
        b = make_lock("SeedB")
        with a:
            with b:
                pass
        with b:
            with a:
                pass
    """
)


def _run_pytest(tmp_path, *, env_extra, baseline=None):
    (tmp_path / "test_cycle.py").write_text(CYCLE_TEST)
    if baseline is not None:
        (tmp_path / "lock-order-baseline.json").write_text(json.dumps(baseline))
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    # The outer run may itself be sanitized (CI's instrumented job);
    # each subprocess decides purely from env_extra.
    env.pop("REPRO_SANITIZE", None)
    env.pop("REPRO_SANITIZE_GRAPH", None)
    env.pop("PYTEST_CURRENT_TEST", None)
    env.update(env_extra)
    return subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            "test_cycle.py",
            "-q",
            "-p",
            "repro.analysis.pytest_plugin",
            "-p",
            "no:cacheprovider",
        ],
        cwd=tmp_path,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


def test_seeded_cycle_fails_the_run_and_writes_the_graph(tmp_path):
    graph_path = tmp_path / "lock-order-graph.json"
    result = _run_pytest(
        tmp_path,
        env_extra={
            "REPRO_SANITIZE": "1",
            "REPRO_SANITIZE_GRAPH": str(graph_path),
        },
    )
    assert result.returncode == 1, result.stdout + result.stderr
    assert "lock-order cycles not grandfathered" in result.stdout
    assert "SeedA <-> SeedB" in result.stdout
    graph = json.loads(graph_path.read_text())
    assert ["SeedA", "SeedB"] in graph["cycles"]
    held = {(edge["held"], edge["acquired"]) for edge in graph["edges"]}
    assert {("SeedA", "SeedB"), ("SeedB", "SeedA")} <= held


def test_grandfathered_cycle_passes(tmp_path):
    result = _run_pytest(
        tmp_path,
        env_extra={"REPRO_SANITIZE": "1"},
        baseline={"cycles": [["SeedA", "SeedB"]]},
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "lock-order sanitizer:" in result.stdout


def test_plugin_is_inert_without_the_env_switch(tmp_path):
    graph_path = tmp_path / "lock-order-graph.json"
    result = _run_pytest(
        tmp_path,
        env_extra={"REPRO_SANITIZE_GRAPH": str(graph_path)},
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "lock-order sanitizer" not in result.stdout
    assert not graph_path.exists()
