"""The acceptance gate, run as a test: the real tree is lint-clean.

This is the same check CI's lint job runs (``repro lint src
--check-baseline``): zero new findings over ``src/`` and zero stale
entries in the committed ``lint-baseline.json``.  Keeping it inside
tier-1 means a violation fails the ordinary test run too, not just the
dedicated CI job.
"""

from pathlib import Path

from repro.analysis.baseline import Baseline
from repro.analysis.core import LintRunner

REPO_ROOT = Path(__file__).resolve().parents[2]


def _relative_src_violations():
    # Lint with repo-root-relative paths so fingerprints match the
    # committed baseline regardless of the invocation directory.
    import os

    cwd = os.getcwd()
    os.chdir(REPO_ROOT)
    try:
        return LintRunner().run(["src"])
    finally:
        os.chdir(cwd)


def test_src_is_clean_against_committed_baseline():
    violations = _relative_src_violations()
    baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
    new, grandfathered, stale = baseline.split(violations)
    assert [v.format() for v in new] == []
    assert [entry["fingerprint"] for entry in stale] == []
    # The grandfather set is the small, deliberate double-checked
    # fast-path reads; it only ever shrinks.
    assert len(grandfathered) == len(baseline)


def test_baseline_is_empty():
    # PR 8 retired the last grandfathered double-checked fast paths by
    # moving their reads under the declared locks; the baseline only
    # ever shrinks and is now pinned at zero entries.
    baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
    assert len(baseline) == 0


def test_lock_order_baseline_is_empty():
    import json

    data = json.loads((REPO_ROOT / "lock-order-baseline.json").read_text())
    assert data["cycles"] == []
