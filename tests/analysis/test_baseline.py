"""Baseline fingerprints: line-drift stability, split semantics, I/O."""

import json
import textwrap

import pytest

from repro.analysis.baseline import Baseline, fingerprint_all
from repro.analysis.core import LintRunner, ModuleSource

RACY = """
import threading

class Registry:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = {}

    def racy(self, key):
        if key not in self._items:
            self._items[key] = object()
        return self._items[key]
"""


def _lint(source: str, path: str = "pkg/mod.py"):
    return LintRunner().run_modules(
        [ModuleSource(path, textwrap.dedent(source))]
    )


class TestFingerprints:
    def test_stable_under_line_drift(self):
        before = _lint(RACY)
        # Insert code above the finding: the line number moves, the
        # fingerprint must not.
        drifted = _lint("\nimport os\n\nX = 1\n" + RACY.lstrip("\n"))
        assert [v.line for v in before] != [v.line for v in drifted]
        assert [f for f, _ in fingerprint_all(before)] == [
            f for f, _ in fingerprint_all(drifted)
        ]

    def test_editing_the_flagged_line_changes_the_fingerprint(self):
        before = fingerprint_all(_lint(RACY))
        after = fingerprint_all(
            _lint(RACY.replace("self._items[key] = object()", "self._items[key] = dict()"))
        )
        assert [f for f, _ in before] != [f for f, _ in after]

    def test_identical_findings_get_distinct_occurrence_fingerprints(self):
        doubled = RACY + textwrap.dedent(
            """
            class Registry2:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}

                def racy(self, key):
                    if key not in self._items:
                        self._items[key] = object()
                    return self._items[key]
            """
        )
        fingerprints = [f for f, _ in fingerprint_all(_lint(doubled))]
        assert len(fingerprints) == len(set(fingerprints)) == 2


class TestSplit:
    def test_new_grandfathered_stale(self):
        violations = _lint(RACY)
        baseline = Baseline.from_violations(violations)
        new, grandfathered, stale = baseline.split(violations)
        assert (new, stale) == ([], [])
        assert grandfathered == violations

        # A fixed finding leaves a stale entry behind.
        new, grandfathered, stale = baseline.split([])
        assert new == [] and grandfathered == []
        assert len(stale) == 1
        assert stale[0]["rule"] == "check-then-act"
        assert "fingerprint" in stale[0]

        # A fresh finding in unbaselined code is new.
        other = _lint(RACY, path="pkg/other.py")
        new, _, _ = baseline.split(other)
        assert new == other


class TestIO:
    def test_save_load_roundtrip(self, tmp_path):
        baseline = Baseline.from_violations(_lint(RACY))
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        assert loaded.entries == baseline.entries

    def test_missing_file_is_empty(self, tmp_path):
        assert len(Baseline.load(tmp_path / "nope.json")) == 0

    def test_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "violations": {}}))
        with pytest.raises(ValueError, match="version"):
            Baseline.load(path)
