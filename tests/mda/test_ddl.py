"""Tests for the GeoMD -> SQL DDL transformation."""

import re

import pytest

from repro.data import build_sales_schema
from repro.errors import ModelError
from repro.geomd import GeoMDSchema, GeometricType
from repro.mda import DIALECTS, generate_ddl


@pytest.fixture()
def fig6_schema():
    geo = GeoMDSchema.from_md(build_sales_schema())
    geo.become_spatial("Store.Store", GeometricType.POINT)
    geo.add_layer("Airport", GeometricType.POINT)
    geo.add_layer("Train", GeometricType.LINE)
    return geo


class TestStructure:
    def test_one_table_per_level(self, fig6_schema):
        ddl = generate_ddl(fig6_schema)
        tables = re.findall(r"CREATE TABLE (\w+)", ddl)
        level_count = sum(
            len(d.levels) for d in fig6_schema.dimensions.values()
        )
        # levels + 1 fact + 2 layers
        assert len(tables) == level_count + 1 + 2

    def test_fact_table_foreign_keys(self, fig6_schema):
        ddl = generate_ddl(fig6_schema)
        fact_block = ddl[ddl.index("CREATE TABLE sales") :]
        fact_block = fact_block[: fact_block.index(";")]
        for dim in ("customer", "store", "product", "time"):
            assert f"{dim}_" in fact_block
        for measure in ("unit_sales", "store_cost", "store_sales"):
            assert measure in fact_block

    def test_rollup_foreign_keys(self, fig6_schema):
        ddl = generate_ddl(fig6_schema)
        store_block = ddl[ddl.index("CREATE TABLE store_store") :]
        store_block = store_block[: store_block.index(";")]
        assert "REFERENCES store_city(city_id)" in store_block

    def test_coarse_levels_created_before_fine(self, fig6_schema):
        ddl = generate_ddl(fig6_schema)
        assert ddl.index("CREATE TABLE store_state") < ddl.index(
            "CREATE TABLE store_city"
        )
        assert ddl.index("CREATE TABLE store_city") < ddl.index(
            "CREATE TABLE store_store"
        )

    def test_key_attribute_unique(self, fig6_schema):
        ddl = generate_ddl(fig6_schema)
        store_block = ddl[ddl.index("CREATE TABLE store_store") :]
        store_block = store_block[: store_block.index(";")]
        assert "name VARCHAR(255) NOT NULL UNIQUE" in store_block


class TestGeometryColumns:
    def test_generic_dialect_uses_wkt_text(self, fig6_schema):
        ddl = generate_ddl(fig6_schema, "generic")
        assert "geometry TEXT /* WKT, declared POINT */" in ddl
        assert "geometry TEXT /* WKT, declared LINE */" in ddl

    def test_postgis_dialect_uses_typed_geometry(self, fig6_schema):
        ddl = generate_ddl(fig6_schema, "postgis")
        assert "geometry geometry(Point)" in ddl
        assert "geometry geometry(LineString)" in ddl
        assert "USING GIST" in ddl

    def test_spatial_index_per_geometry_column(self, fig6_schema):
        ddl = generate_ddl(fig6_schema, "postgis")
        # Store level + two layers = three spatial indexes.
        assert ddl.count("USING GIST") == 3

    def test_non_spatial_schema_has_no_geometry(self):
        ddl = generate_ddl(GeoMDSchema.from_md(build_sales_schema()))
        assert "geometry" not in ddl


class TestLayers:
    def test_layer_tables(self, fig6_schema):
        ddl = generate_ddl(fig6_schema)
        assert "CREATE TABLE layer_airport" in ddl
        assert "CREATE TABLE layer_train" in ddl
        assert "name VARCHAR(255) NOT NULL UNIQUE" in ddl


class TestDialects:
    def test_unknown_dialect(self, fig6_schema):
        with pytest.raises(ModelError):
            generate_ddl(fig6_schema, "oracle")

    @pytest.mark.parametrize("dialect", DIALECTS)
    def test_deterministic(self, fig6_schema, dialect):
        assert generate_ddl(fig6_schema, dialect) == generate_ddl(
            fig6_schema, dialect
        )

    def test_plain_md_schema_supported(self):
        ddl = generate_ddl(build_sales_schema())
        assert "CREATE TABLE sales" in ddl
