"""Tests for the web portal: the full web-personalization loop."""

import pytest

from repro.web import PortalApp


@pytest.fixture()
def portal(engine, profile):
    app = PortalApp(engine)
    app.register_user(profile)
    return app


def _login(portal, profile, world, with_location=True):
    body = {"user": profile.user_id}
    if with_location:
        location = world.stores[0].location
        body["location"] = [location.x, location.y]
    response = portal.handle("POST", "/login", body)
    assert response.ok, response.body
    return response.json()["token"]


class TestLogin:
    def test_login_fires_rules(self, portal, profile, world):
        response = portal.handle(
            "POST",
            "/login",
            {
                "user": profile.user_id,
                "location": [world.stores[0].location.x, world.stores[0].location.y],
            },
        )
        assert response.ok
        payload = response.json()
        assert "addSpatiality" in payload["rules_fired"]
        assert payload["view"]["fact_rows_kept"] < payload["view"]["fact_rows_total"]

    def test_unknown_user(self, portal):
        assert portal.handle("POST", "/login", {"user": "nobody"}).status == 404

    def test_missing_user_field(self, portal):
        assert portal.handle("POST", "/login", {}).status == 400

    def test_bad_location(self, portal, profile):
        response = portal.handle(
            "POST", "/login", {"user": profile.user_id, "location": [1]}
        )
        assert response.status == 400

    def test_request_without_token(self, portal):
        assert portal.handle("GET", "/view").status == 401

    def test_invalid_token(self, portal):
        assert portal.handle("GET", "/view", token="tok-999").status == 401


class TestAnalysisFlow:
    def test_view_and_schema(self, portal, profile, world):
        token = _login(portal, profile, world)
        view = portal.handle("GET", "/view", token=token)
        assert view.ok
        assert view.json()["members_selected"] >= 1
        schema = portal.handle("GET", "/schema", token=token)
        assert schema.ok
        layer_names = [layer["name"] for layer in schema.json()["layers"]]
        assert "Airport" in layer_names

    def test_query_over_personalized_view(self, portal, profile, world):
        token = _login(portal, profile, world)
        response = portal.handle(
            "POST",
            "/query",
            {"q": "SELECT SUM(UnitSales) FROM Sales BY Product.Family"},
            token=token,
        )
        assert response.ok
        payload = response.json()
        view = portal.handle("GET", "/view", token=token).json()
        assert payload["fact_rows_scanned"] == view["fact_rows_kept"]

    def test_bad_query(self, portal, profile, world):
        token = _login(portal, profile, world)
        response = portal.handle(
            "POST", "/query", {"q": "SELEKT nothing"}, token=token
        )
        assert response.status == 400  # QueryError -> structured query_error
        assert response.json()["error"]["code"] == "query_error"

    def test_layer_endpoint(self, portal, profile, world):
        token = _login(portal, profile, world)
        response = portal.handle("GET", "/layers/Airport", token=token)
        assert response.ok
        features = response.json()["features"]
        assert len(features) == len(world.airports)
        assert features[0]["wkt"].startswith("POINT")

    def test_unknown_layer(self, portal, profile, world):
        token = _login(portal, profile, world)
        assert portal.handle("GET", "/layers/Rivers", token=token).status == 404

    def test_me_endpoint(self, portal, profile, world):
        token = _login(portal, profile, world)
        me = portal.handle("GET", "/me", token=token)
        assert me.json()["user_id"] == profile.user_id


class TestSelectionLoop:
    CONDITION = (
        "Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry)<20km"
    )

    def test_selection_event_updates_profile(self, portal, profile, world):
        token = _login(portal, profile, world)
        response = portal.handle(
            "POST",
            "/selection",
            {"target": "GeoMD.Store.City", "condition": self.CONDITION},
            token=token,
        )
        assert response.ok
        assert response.json()["matched_rules"] == ["IntAirportCity"]

    def test_full_widening_loop(self, portal, profile, world):
        token = _login(portal, profile, world)
        before = portal.handle("GET", "/view", token=token).json()["fact_rows_kept"]
        for _ in range(4):
            portal.handle(
                "POST",
                "/selection",
                {"target": "GeoMD.Store.City", "condition": self.CONDITION},
                token=token,
            )
        rerun = portal.handle("POST", "/selection/rerun", token=token)
        assert rerun.ok
        after = rerun.json()["view"]["fact_rows_kept"]
        assert after > before

    def test_missing_fields(self, portal, profile, world):
        token = _login(portal, profile, world)
        assert (
            portal.handle("POST", "/selection", {"target": "x"}, token=token).status
            == 400
        )


class TestLogout:
    def test_logout_invalidates_token(self, portal, profile, world):
        token = _login(portal, profile, world)
        response = portal.handle("POST", "/logout", token=token)
        assert response.ok
        assert portal.handle("GET", "/view", token=token).status == 401

    def test_two_sequential_sessions(self, portal, profile, world):
        token1 = _login(portal, profile, world)
        portal.handle("POST", "/logout", token=token1)
        token2 = _login(portal, profile, world)
        assert token1 != token2
        assert portal.handle("GET", "/view", token=token2).ok
