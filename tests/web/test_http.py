"""Tests for the micro web framework."""

import pytest

from repro.errors import WebError
from repro.web import Request, Router, json_response, parse_json_body


def _ok(request):
    return json_response({"path": request.path, "params": request.params})


class TestRouter:
    def test_exact_route(self):
        router = Router()
        router.get("/hello", _ok)
        response = router.dispatch(Request("GET", "/hello"))
        assert response.ok
        assert response.json()["path"] == "/hello"

    def test_param_capture(self):
        router = Router()
        router.get("/layers/{name}", _ok)
        response = router.dispatch(Request("GET", "/layers/Airport"))
        assert response.json()["params"] == {"name": "Airport"}

    def test_404(self):
        router = Router()
        router.get("/a", _ok)
        assert router.dispatch(Request("GET", "/b")).status == 404

    def test_405(self):
        router = Router()
        router.get("/a", _ok)
        assert router.dispatch(Request("POST", "/a")).status == 405

    def test_weberror_becomes_400(self):
        router = Router()

        def boom(request):
            raise WebError("bad input")

        router.get("/x", boom)
        response = router.dispatch(Request("GET", "/x"))
        assert response.status == 400
        assert "bad input" in response.json()["error"]["message"]

    def test_crash_becomes_500(self):
        router = Router()

        def crash(request):
            raise RuntimeError("boom")

        router.get("/x", crash)
        response = router.dispatch(Request("GET", "/x"))
        assert response.status == 500

    def test_pattern_must_be_rooted(self):
        with pytest.raises(WebError):
            Router().get("no-slash", _ok)


class TestBodyParsing:
    def test_valid(self):
        assert parse_json_body('{"a": 1}') == {"a": 1}
        assert parse_json_body(b'{"a": 1}') == {"a": 1}

    def test_empty(self):
        assert parse_json_body("") == {}

    def test_malformed(self):
        with pytest.raises(WebError):
            parse_json_body("{nope")

    def test_non_object(self):
        with pytest.raises(WebError):
            parse_json_body("[1, 2]")


class TestResponse:
    def test_text_rendering(self):
        response = json_response({"b": 2, "a": 1})
        assert '"a": 1' in response.text()
