"""Tests for the versioned /api/v1 surface: envelopes, tenancy, paging,
and the legacy-route deprecation shim."""

import pytest

from repro.data import (
    WorldGeoSource,
    build_regional_manager_profile,
    build_sales_star,
)
from repro.personalization import PersonalizationEngine
from repro.service import (
    DatamartRegistry,
    InMemorySessionStore,
    PersonalizationService,
)
from repro.web import PortalApp

CONDITION = "Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry)<20km"


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture()
def clock():
    return Clock()


@pytest.fixture()
def portal(engine, world, user_schema, profile, clock):
    """A two-tenant portal with a deterministic, short-TTL session store."""
    registry = DatamartRegistry()
    sales = registry.register("sales", engine, description="paper scenario")
    sales.register_user(profile)
    bare = registry.register(
        "bare",
        PersonalizationEngine(
            build_sales_star(world),
            user_schema,
            geo_source=WorldGeoSource(world),
        ),
    )
    bare.register_user(
        build_regional_manager_profile(user_schema, name="Bo Li")
    )
    service = PersonalizationService(
        registry, session_store=InMemorySessionStore(ttl=100.0, clock=clock)
    )
    return PortalApp(service=service)


def _login(portal, profile, world, **extra):
    location = world.stores[0].location
    body = {"user": profile.user_id, "location": [location.x, location.y]}
    body.update(extra)
    response = portal.handle("POST", "/api/v1/login", body)
    assert response.ok, response.body
    return response.json()["token"]


def _assert_envelope(response, status, code=None):
    assert response.status == status, response.body
    assert set(response.body) == {"error"}
    envelope = response.body["error"]
    assert set(envelope) == {"code", "message", "detail"}
    if code is not None:
        assert envelope["code"] == code
    assert isinstance(envelope["message"], str) and envelope["message"]


class TestErrorEnvelope:
    """Every failure path shares {"error": {code, message, detail}}."""

    def test_missing_token(self, portal):
        _assert_envelope(
            portal.handle("GET", "/api/v1/view"), 401, "missing_token"
        )

    def test_invalid_token(self, portal):
        _assert_envelope(
            portal.handle("GET", "/api/v1/view", token="tok-nope"),
            401,
            "invalid_session",
        )

    def test_expired_session(self, portal, profile, world, clock):
        token = _login(portal, profile, world)
        clock.advance(101.0)
        _assert_envelope(
            portal.handle("GET", "/api/v1/view", token=token),
            401,
            "session_expired",
        )

    def test_unknown_user(self, portal):
        _assert_envelope(
            portal.handle("POST", "/api/v1/login", {"user": "nobody"}),
            404,
            "unknown_user",
        )

    def test_unknown_datamart(self, portal, profile):
        _assert_envelope(
            portal.handle(
                "POST",
                "/api/v1/login",
                {"user": profile.user_id, "datamart": "marketing"},
            ),
            404,
            "unknown_datamart",
        )

    def test_missing_user_field(self, portal):
        _assert_envelope(
            portal.handle("POST", "/api/v1/login", {}), 400, "bad_request"
        )

    def test_bad_location(self, portal, profile):
        _assert_envelope(
            portal.handle(
                "POST",
                "/api/v1/login",
                {"user": profile.user_id, "location": [1]},
            ),
            400,
            "bad_request",
        )

    def test_bad_query(self, portal, profile, world):
        token = _login(portal, profile, world)
        _assert_envelope(
            portal.handle(
                "POST", "/api/v1/query", {"q": "SELEKT nope"}, token=token
            ),
            400,
            "query_error",
        )

    def test_missing_selection_fields(self, portal, profile, world):
        token = _login(portal, profile, world)
        _assert_envelope(
            portal.handle(
                "POST", "/api/v1/selection", {"target": "x"}, token=token
            ),
            400,
            "bad_request",
        )

    def test_unknown_layer(self, portal, profile, world):
        token = _login(portal, profile, world)
        _assert_envelope(
            portal.handle("GET", "/api/v1/layers/Rivers", token=token),
            404,
            "unknown_layer",
        )

    def test_unknown_route(self, portal):
        _assert_envelope(
            portal.handle("GET", "/api/v1/nowhere"), 404, "not_found"
        )

    def test_method_not_allowed(self, portal):
        _assert_envelope(
            portal.handle("GET", "/api/v1/login"), 405, "method_not_allowed"
        )

    def test_bad_pagination_value(self, portal, profile, world):
        token = _login(portal, profile, world)
        _assert_envelope(
            portal.handle(
                "GET",
                "/api/v1/layers/Airport",
                token=token,
                query={"limit": "many"},
            ),
            400,
            "invalid_request",
        )

    @pytest.mark.parametrize(
        "params",
        [
            {"limit": "-1"},
            {"offset": "-3"},
            {"limit": "1.5"},
            {"offset": "many"},
        ],
    )
    def test_invalid_pagination_shared_across_endpoints(
        self, portal, profile, world, params
    ):
        """Negative/non-integer limit/offset is a 400 `invalid_request`
        everywhere paging exists — layers, query rows, recommendations —
        never a 500."""
        token = _login(portal, profile, world)
        for method, path, body in [
            ("GET", "/api/v1/layers/Airport", None),
            ("POST", "/api/v1/query", {"q": "q"}),
            ("GET", "/api/v1/recommendations/queries", None),
        ]:
            if body is not None:
                merged = dict(body)
                merged.update(params)
                response = portal.handle(method, path, merged, token=token)
            else:
                response = portal.handle(
                    method, path, token=token, query=dict(params)
                )
            _assert_envelope(response, 400, "invalid_request")

    def test_invalid_neighbourhood_size(self, portal, profile, world):
        token = _login(portal, profile, world)
        for k in ("0", "-2", "few"):
            _assert_envelope(
                portal.handle(
                    "GET",
                    "/api/v1/recommendations/queries",
                    token=token,
                    query={"k": k},
                ),
                400,
                "invalid_request",
            )


class TestMultiDatamart:
    def test_login_routes_to_named_datamart(self, portal, world):
        response = portal.handle(
            "POST", "/api/v1/login", {"user": "bo-li", "datamart": "bare"}
        )
        assert response.ok
        payload = response.json()
        assert payload["datamart"] == "bare"
        assert payload["rules_fired"] == []

    def test_default_datamart_fires_paper_rules(self, portal, profile, world):
        response = portal.handle(
            "POST",
            "/api/v1/login",
            {
                "user": profile.user_id,
                "location": [
                    world.stores[0].location.x,
                    world.stores[0].location.y,
                ],
            },
        )
        payload = response.json()
        assert payload["datamart"] == "sales"
        assert "addSpatiality" in payload["rules_fired"]

    def test_datamarts_endpoint_is_public(self, portal, profile, world):
        _login(portal, profile, world)
        response = portal.handle("GET", "/api/v1/datamarts")
        assert response.ok
        datamarts = {d["name"]: d for d in response.json()["datamarts"]}
        assert set(datamarts) == {"sales", "bare"}
        assert datamarts["sales"]["default"] is True
        assert datamarts["sales"]["sessions_started"] == 1
        assert datamarts["sales"]["rules"] == 5

    def test_users_are_tenant_scoped(self, portal):
        _assert_envelope(
            portal.handle(
                "POST", "/api/v1/login", {"user": "bo-li", "datamart": "sales"}
            ),
            404,
            "unknown_user",
        )


class TestPagination:
    def test_layer_window(self, portal, profile, world):
        token = _login(portal, profile, world)
        full = portal.handle("GET", "/api/v1/layers/Airport", token=token)
        total = full.json()["page"]["total"]
        assert total == len(world.airports)
        assert full.json()["page"]["limit"] is None

        page = portal.handle(
            "GET",
            "/api/v1/layers/Airport",
            token=token,
            query={"limit": "1", "offset": "1"},
        )
        payload = page.json()
        assert len(payload["features"]) == 1
        assert payload["page"] == {
            "total": total,
            "offset": 1,
            "limit": 1,
            "returned": 1,
        }
        assert payload["features"][0] == full.json()["features"][1]

    def test_offset_past_end_is_empty(self, portal, profile, world):
        token = _login(portal, profile, world)
        response = portal.handle(
            "GET",
            "/api/v1/layers/Airport",
            token=token,
            query={"offset": "9999"},
        )
        assert response.ok
        assert response.json()["features"] == []
        assert response.json()["page"]["returned"] == 0

    def test_limit_zero_is_empty(self, portal, profile, world):
        token = _login(portal, profile, world)
        response = portal.handle(
            "GET",
            "/api/v1/layers/Airport",
            token=token,
            query={"limit": "0"},
        )
        assert response.ok
        assert response.json()["features"] == []
        assert response.json()["page"]["total"] == len(world.airports)

    def test_query_rows_paginate(self, portal, profile, world):
        token = _login(portal, profile, world)
        body = {"q": "SELECT SUM(UnitSales) FROM Sales BY Product.Family"}
        full = portal.handle("POST", "/api/v1/query", body, token=token).json()
        paged = portal.handle(
            "POST",
            "/api/v1/query",
            {**body, "limit": 1, "offset": 1},
            token=token,
        ).json()
        assert paged["rows"] == full["rows"][1:2]
        assert paged["page"]["total"] == len(full["rows"])
        # Scan statistics describe the query, not the page window.
        assert paged["fact_rows_scanned"] == full["fact_rows_scanned"]


class TestLegacyShim:
    LEGACY_TO_V1 = {
        ("POST", "/login"): "/api/v1/login",
        ("GET", "/view"): "/api/v1/view",
        ("GET", "/me"): "/api/v1/me",
    }

    def test_legacy_login_parity(self, portal, profile, world):
        location = world.stores[0].location
        body = {
            "user": profile.user_id,
            "location": [location.x, location.y],
        }
        legacy = portal.handle("POST", "/login", body)
        assert legacy.ok
        assert legacy.headers["Deprecation"] == "true"
        assert legacy.headers["X-Successor"] == "/api/v1/login"
        v1 = portal.handle("POST", "/api/v1/login", body)
        assert v1.ok
        assert v1.headers.get("Deprecation") is None
        # Same shape, same personalization outcome; only tokens differ.
        legacy_body = {k: v for k, v in legacy.json().items() if k != "token"}
        v1_body = {k: v for k, v in v1.json().items() if k != "token"}
        assert legacy_body == v1_body

    def test_legacy_flow_round_trip(self, portal, profile, world):
        token = portal.handle(
            "POST", "/login", {"user": profile.user_id}
        ).json()["token"]
        view = portal.handle("GET", "/view", token=token)
        assert view.ok
        assert view.headers["X-Successor"] == "/api/v1/view"
        assert view.json() == portal.handle(
            "GET", "/api/v1/view", token=token
        ).json()
        assert portal.handle("POST", "/logout", token=token).ok

    def test_legacy_errors_share_envelope(self, portal):
        _assert_envelope(portal.handle("GET", "/view"), 401, "missing_token")


class TestHeaderHandling:
    def test_handle_passes_extra_headers(self, portal, profile, world):
        # The seed's handle() dropped everything except the token kwarg.
        token = _login(portal, profile, world)
        response = portal.handle(
            "GET", "/api/v1/view", headers={"X-Session": token}
        )
        assert response.ok

    def test_header_names_are_case_insensitive(self, portal, profile, world):
        # Real HTTP clients may lowercase header names.
        token = _login(portal, profile, world)
        assert portal.handle(
            "GET", "/api/v1/view", headers={"x-session": token}
        ).ok
        assert portal.handle(
            "GET", "/api/v1/view", headers={"authorization": f"Bearer {token}"}
        ).ok

    def test_authorization_bearer_is_accepted(self, portal, profile, world):
        token = _login(portal, profile, world)
        response = portal.handle(
            "GET",
            "/api/v1/view",
            headers={"Authorization": f"Bearer {token}"},
        )
        assert response.ok

    def test_token_kwarg_does_not_clobber_header(self, portal, profile, world):
        token = _login(portal, profile, world)
        response = portal.handle(
            "GET",
            "/api/v1/view",
            token="tok-should-lose",
            headers={"X-Session": token},
        )
        assert response.ok


class TestSelectionSafety:
    #: An acquisition rule that needs the session location at fire time —
    #: logging in without one makes its evaluation raise PRMLRuntimeError.
    NEEDS_LOCATION = """\
Rule:needsLocation When
  SpatialSelection(GeoMD.Store.City,
    Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry) < 20km) do
  Foreach s in (GeoMD.Store)
    If (Distance(s.geometry,
        SUS.DecisionMaker.dm2session.s2location.geometry) < 5km) then
      SelectInstance(s)
    endIf
  endForeach
endWhen
"""

    def test_raising_acquisition_rule_records_outcome(
        self, portal, world, profile
    ):
        """A rule that fails at fire time must not 500 the request: it now
        goes through the same ECA-safe path as the other phases, so the
        report succeeds and the errored rule still counts as matched."""
        engine = portal.registry.get("sales").engine
        engine.add_rule(self.NEEDS_LOCATION)
        token = portal.handle(
            "POST", "/api/v1/login", {"user": profile.user_id}
        ).json()["token"]  # no location: the new rule will raise when fired
        response = portal.handle(
            "POST",
            "/api/v1/selection",
            {"target": "GeoMD.Store.City", "condition": CONDITION},
            token=token,
        )
        assert response.ok, response.body
        assert response.json()["matched_rules"] == [
            "IntAirportCity",
            "needsLocation",
        ]


class TestAsOfQueries:
    """PR 9: ``as_of`` reads — body field or ``?as_of=`` query param —
    answer against the star as it stood at a past generation, through
    the same error envelope as every other failure."""

    BODY = {"q": "SELECT SUM(UnitSales) FROM Sales BY Product.Family"}

    def _churn(self, engine, world, profile):
        """Append a copy of a fact row that is *inside* the personalized
        view, so the live answer provably moves."""
        star = engine.star
        session = engine.start_session(
            profile, location=world.stores[0].location
        )
        fact_table = star.fact_table()
        row = fact_table.row(session.view().fact_rows[0])
        star.insert_fact(
            fact_table.fact.name,
            {d: row[d] for d in fact_table.fact.dimension_names},
            {m: row[m] for m in fact_table.fact.measures},
        )

    def test_as_of_param_answers_past_generation(
        self, portal, profile, world, engine
    ):
        token = _login(portal, profile, world)
        generation = engine.star.generation
        recorded = portal.handle(
            "POST", "/api/v1/query", self.BODY, token=token
        ).json()
        self._churn(engine, world, profile)
        live = portal.handle(
            "POST", "/api/v1/query", self.BODY, token=token
        ).json()
        assert live["rows"] != recorded["rows"]
        replayed = portal.handle(
            "POST",
            "/api/v1/query",
            self.BODY,
            token=token,
            query={"as_of": str(generation)},
        ).json()
        # Bit-identical to the answer recorded at that generation.
        assert replayed == recorded

    def test_as_of_body_field_equivalent(self, portal, profile, world, engine):
        token = _login(portal, profile, world)
        generation = engine.star.generation
        recorded = portal.handle(
            "POST", "/api/v1/query", self.BODY, token=token
        ).json()
        self._churn(engine, world, profile)
        replayed = portal.handle(
            "POST",
            "/api/v1/query",
            {**self.BODY, "as_of": generation},
            token=token,
        ).json()
        assert replayed == recorded

    def test_unavailable_generation_envelope(self, portal, profile, world):
        token = _login(portal, profile, world)
        _assert_envelope(
            portal.handle(
                "POST",
                "/api/v1/query",
                self.BODY,
                token=token,
                query={"as_of": "0"},
            ),
            400,
            "as_of_unavailable",
        )

    def test_future_generation_envelope(self, portal, profile, world, engine):
        token = _login(portal, profile, world)
        _assert_envelope(
            portal.handle(
                "POST",
                "/api/v1/query",
                {**self.BODY, "as_of": engine.star.generation + 1000},
                token=token,
            ),
            400,
            "as_of_unavailable",
        )

    def test_invalid_as_of_value_envelope(self, portal, profile, world):
        token = _login(portal, profile, world)
        for bad in ("soon", "-1", "1.5"):
            _assert_envelope(
                portal.handle(
                    "POST",
                    "/api/v1/query",
                    self.BODY,
                    token=token,
                    query={"as_of": bad},
                ),
                400,
                "invalid_request",
            )

    def test_as_of_answers_are_cached_separately(
        self, portal, profile, world, engine
    ):
        token = _login(portal, profile, world)
        generation = engine.star.generation
        portal.handle("POST", "/api/v1/query", self.BODY, token=token)
        self._churn(engine, world, profile)
        query = {"as_of": str(generation)}
        portal.handle(
            "POST", "/api/v1/query", self.BODY, token=token, query=query
        )
        hits_before = portal.service.query_cache_hits
        repeat = portal.handle(
            "POST", "/api/v1/query", self.BODY, token=token, query=query
        )
        assert repeat.ok
        assert portal.service.query_cache_hits == hits_before + 1
