"""Tests for the stdlib HTTP adapter over a real loopback socket."""

import http.client
import json
import threading

import pytest

from repro.web import PortalApp
from repro.web.server import make_server


@pytest.fixture()
def http_portal(engine, profile):
    app = PortalApp(engine)
    app.register_user(profile)
    server = make_server(app, "127.0.0.1", 0)  # port 0: pick a free port
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server.server_address
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def _request(address, method, path, body=None, token=None):
    host, port = address
    connection = http.client.HTTPConnection(host, port, timeout=10)
    headers = {"Content-Type": "application/json"}
    if token:
        headers["X-Session"] = token
    payload = json.dumps(body) if body is not None else None
    connection.request(method, path, body=payload, headers=headers)
    response = connection.getresponse()
    data = json.loads(response.read().decode("utf-8"))
    connection.close()
    return response.status, data


class TestHTTPAdapter:
    def test_full_flow_over_sockets(self, http_portal, profile, world):
        location = world.stores[0].location
        status, login = _request(
            http_portal,
            "POST",
            "/login",
            {"user": profile.user_id, "location": [location.x, location.y]},
        )
        assert status == 200
        token = login["token"]

        status, view = _request(http_portal, "GET", "/view", token=token)
        assert status == 200
        assert view["fact_rows_kept"] < view["fact_rows_total"]

        status, result = _request(
            http_portal,
            "POST",
            "/query",
            {"q": "SELECT COUNT(*) FROM Sales"},
            token=token,
        )
        assert status == 200
        assert result["fact_rows_scanned"] == view["fact_rows_kept"]

        status, _out = _request(http_portal, "POST", "/logout", token=token)
        assert status == 200

    def test_error_status_codes_propagate(self, http_portal):
        status, body = _request(http_portal, "GET", "/view")
        assert status == 401
        assert set(body["error"]) == {"code", "message", "detail"}
        status, _body = _request(http_portal, "GET", "/nowhere")
        assert status == 404

    def test_pagination_and_deprecation_over_sockets(
        self, http_portal, profile, world
    ):
        location = world.stores[0].location
        _status, login = _request(
            http_portal,
            "POST",
            "/api/v1/login",
            {"user": profile.user_id, "location": [location.x, location.y]},
        )
        token = login["token"]
        status, layer = _request(
            http_portal, "GET", "/api/v1/layers/Airport?limit=1", token=token
        )
        assert status == 200
        assert layer["page"]["returned"] == 1
        assert layer["page"]["total"] == len(world.airports)
