"""The shared thread-safe LRU behind the query cache and reco memos."""

import threading

import pytest

from repro.lru import ThreadSafeLRU


def test_lru_eviction_order_and_counters():
    lru = ThreadSafeLRU(2)
    lru.put("a", 1)
    lru.put("b", 2)
    assert lru.get("a") == 1  # refreshes "a"; "b" is now LRU
    lru.put("c", 3)
    assert len(lru) == 2
    assert lru.get("b") is None
    assert lru.get("a") == 1 and lru.get("c") == 3
    assert (lru.hits, lru.misses) == (3, 1)


def test_put_respects_override_bound():
    lru = ThreadSafeLRU(10)
    for i in range(5):
        lru.put(i, i)
    lru.put("last", 1, max_size=2)
    assert len(lru) == 2


def test_clear_keeps_counters():
    lru = ThreadSafeLRU(4)
    lru.put("a", 1)
    assert lru.get("a") == 1
    lru.clear()
    assert len(lru) == 0
    assert lru.get("a") is None
    assert (lru.hits, lru.misses) == (1, 1)


def test_negative_bound_rejected():
    with pytest.raises(ValueError):
        ThreadSafeLRU(-1)


def test_concurrent_access_stays_bounded():
    lru = ThreadSafeLRU(8)

    def worker(base):
        for i in range(200):
            lru.put((base, i), i)
            lru.get((base, i))

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(lru) <= 8
