"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestDemo:
    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "personalized view:" in out
        assert "rule addSpatiality" in out

    def test_seed_changes_world(self, capsys):
        main(["--seed", "7", "demo"])
        out_a = capsys.readouterr().out
        main(["--seed", "8", "demo"])
        out_b = capsys.readouterr().out
        assert out_a != out_b


class TestRules:
    def test_paper_rules_check_clean(self, capsys):
        assert main(["rules", "--paper"]) == 0
        out = capsys.readouterr().out
        assert out.count("[OK ]") == 5

    def test_print_canonical(self, capsys):
        main(["rules", "--paper", "--print"])
        out = capsys.readouterr().out
        assert "Rule:addSpatiality When SessionStart do" in out

    def test_bad_rule_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.prml"
        bad.write_text("Rule:x When SessionStart do AddLayer('A' POINT) endWhen")
        assert main(["rules", str(bad)]) == 1
        assert "syntax error" in capsys.readouterr().err

    def test_semantic_issue_reported(self, tmp_path, capsys):
        rule = tmp_path / "r.prml"
        rule.write_text(
            "Rule:x When SessionStart do "
            "BecomeSpatial(MD.Sales.Galaxy.geometry, POINT) endWhen"
        )
        assert main(["rules", str(rule)]) == 1
        out = capsys.readouterr().out
        assert "[ERR]" in out


class TestDDL:
    @pytest.mark.parametrize("dialect", ["generic", "postgis"])
    def test_ddl_contains_personalized_layers(self, dialect, capsys):
        assert main(["ddl", "--dialect", dialect]) == 0
        out = capsys.readouterr().out
        assert "CREATE TABLE sales" in out
        assert "layer_airport" in out


class TestMap:
    def test_map_written(self, tmp_path, capsys):
        target = tmp_path / "m.svg"
        assert main(["map", "-o", str(target)]) == 0
        assert target.read_text().startswith("<svg")


class TestQuery:
    def test_query_over_personalized_view(self, capsys):
        assert main(["query", "SELECT COUNT(*) FROM Sales"]) == 0
        out = capsys.readouterr().out
        assert "COUNT(*)" in out

    def test_bad_query(self, capsys):
        assert main(["query", "SELEKT"]) == 1
        assert "query error" in capsys.readouterr().err
