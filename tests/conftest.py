"""Shared fixtures: the motivating-example world, star and engine."""

import pytest

from repro.data import (
    ALL_PAPER_RULES,
    WorldConfig,
    WorldGeoSource,
    build_motivating_user_model,
    build_regional_manager_profile,
    build_sales_star,
    generate_world,
)
from repro.personalization import PersonalizationEngine

#: Interest threshold used by Example 5.3 in the whole test suite.
THRESHOLD = 3


@pytest.fixture(scope="session")
def world():
    """The default deterministic world (module-scope: it is immutable-ish)."""
    return generate_world(WorldConfig(seed=7))


@pytest.fixture()
def star(world):
    """A freshly loaded star schema (mutated by personalization tests)."""
    return build_sales_star(world)


@pytest.fixture()
def user_schema():
    return build_motivating_user_model()


@pytest.fixture()
def profile(user_schema):
    return build_regional_manager_profile(user_schema)


@pytest.fixture()
def engine(world, star, user_schema):
    """Engine with every paper rule registered."""
    eng = PersonalizationEngine(
        star,
        user_schema,
        geo_source=WorldGeoSource(world),
        parameters={"threshold": THRESHOLD},
    )
    eng.add_rules(ALL_PAPER_RULES.values())
    return eng


@pytest.fixture()
def dual_fact_star():
    """A minimal two-fact star (Sales + Returns over Product) for
    multi-fact view/query tests."""
    from repro.geomd import GeoMDSchema
    from repro.mdm import Dimension, Fact, Hierarchy, Level
    from repro.mdm.model import Measure
    from repro.storage import StarSchema
    from repro.uml.core import INTEGER

    product = Dimension(
        "Product",
        [Level("Product"), Level("Family")],
        [Hierarchy("h", ["Product", "Family"])],
        leaf="Product",
    )
    schema = GeoMDSchema(
        "Dual",
        [product],
        [
            Fact("Sales", ["Product"], [Measure("Units", INTEGER)]),
            Fact("Returns", ["Product"], [Measure("Count", INTEGER)]),
        ],
    )
    star = StarSchema(schema)
    star.add_member("Product", "Family", "Food")
    star.add_member("Product", "Product", "P1", parents={"Family": "Food"})
    star.add_member("Product", "Product", "P2", parents={"Family": "Food"})
    star.insert_fact("Sales", {"Product": "P1"}, {"Units": 3})
    star.insert_fact("Sales", {"Product": "P2"}, {"Units": 5})
    star.insert_fact("Returns", {"Product": "P2"}, {"Count": 1})
    return star
