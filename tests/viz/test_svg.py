"""Tests for the SVG drawing substrate."""

import pytest

from repro.errors import ReproError
from repro.geometry import Envelope
from repro.viz import SVGCanvas, Viewport


@pytest.fixture()
def viewport():
    return Viewport(Envelope(0, 0, 1000, 500), width=800, height=600, margin=20)


class TestViewport:
    def test_aspect_preserved(self, viewport):
        # 1000x500 world into 760x560 usable: scale limited by width.
        assert viewport.scale == pytest.approx(760 / 1000)

    def test_world_origin_maps_to_bottom_left(self, viewport):
        sx, sy = viewport.to_screen(0, 0)
        assert sx == 20
        assert sy == 580  # y-up world -> y-down screen

    def test_y_axis_flipped(self, viewport):
        _sx, sy_low = viewport.to_screen(0, 0)
        _sx, sy_high = viewport.to_screen(0, 500)
        assert sy_high < sy_low

    def test_length_scaling(self, viewport):
        assert viewport.length(1000) == pytest.approx(760)

    def test_margin_validation(self):
        with pytest.raises(ReproError):
            Viewport(Envelope(0, 0, 1, 1), width=30, height=600, margin=20)

    def test_degenerate_world_extent(self):
        vp = Viewport(Envelope(5, 5, 5, 5), width=100, height=100, margin=10)
        sx, sy = vp.to_screen(5, 5)
        assert 0 <= sx <= 100 and 0 <= sy <= 100


class TestCanvas:
    def test_document_structure(self, viewport):
        canvas = SVGCanvas(viewport, title="demo")
        canvas.circle(0, 0, 4, fill="#ff0000")
        text = canvas.render()
        assert text.startswith("<svg")
        assert text.endswith("</svg>")
        assert "<title>demo</title>" in text
        assert '<circle cx="20.0" cy="580.0" r="4" fill="#ff0000"/>' in text

    def test_polyline_points(self, viewport):
        canvas = SVGCanvas(viewport)
        canvas.polyline([(0, 0), (1000, 500)], stroke="#000")
        text = canvas.render()
        assert "<polyline points=" in text
        assert 'fill="none"' in text

    def test_attribute_underscore_conversion(self, viewport):
        canvas = SVGCanvas(viewport)
        canvas.circle(0, 0, 2, stroke_width=3)
        assert 'stroke-width="3"' in canvas.render()

    def test_text_escaping(self, viewport):
        canvas = SVGCanvas(viewport)
        canvas.text(0, 0, "<'&'>")
        assert "&lt;" in canvas.render()
        assert "&amp;" in canvas.render()

    def test_world_circle_radius(self, viewport):
        canvas = SVGCanvas(viewport)
        canvas.world_circle(500, 250, 100, fill="none")
        assert f'r="{viewport.length(100)}"' in canvas.render()
