"""Tests for session map rendering (the visualization extension)."""

import pytest

from repro.errors import ReproError
from repro.viz import render_session_map, render_world_map

CONDITION = "Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry)<20km"


class TestWorldMap:
    def test_renders_all_base_features(self, world):
        svg = render_world_map(world)
        assert svg.count("<polygon") == len(world.states)
        # Highways are polylines; cities have labels.
        assert svg.count("<polyline") >= len(world.highways)
        assert world.cities[0].name in svg

    def test_deterministic(self, world):
        assert render_world_map(world) == render_world_map(world)


class TestSessionMap:
    def test_selected_stores_highlighted(self, engine, profile, world):
        session = engine.start_session(profile, world.cities[0].location)
        svg = render_session_map(session, world)
        selected = session.selection.members[("Store", "Store")]
        # One marker per selected store plus the legend swatch.
        assert svg.count('fill="#d62728"') == len(selected) + 1
        # The user marker and 5km zone are drawn.
        assert 'fill="#ff7f0e"' in svg
        assert "stroke-dasharray" in svg
        session.end()

    def test_airport_layer_drawn_after_schema_rule(self, engine, profile, world):
        session = engine.start_session(profile, world.cities[0].location)
        svg = render_session_map(session, world)
        # One marker per airport plus the legend swatch.
        assert svg.count('fill="#7a43b6"') == len(world.airports) + 1
        session.end()

    def test_train_layer_appears_after_widening(self, engine, profile, world):
        session = engine.start_session(profile, world.cities[0].location)
        before = render_session_map(session, world)
        assert '#2ca02c' not in before.replace("widened", "")
        for _ in range(4):
            session.record_spatial_selection("GeoMD.Store.City", CONDITION)
        session.rerun_instance_rules()
        after = render_session_map(session, world)
        assert 'stroke="#2ca02c"' in after  # train lines + widened cities
        widened = session.selection.members[("Store", "City")]
        assert len(widened) > 0
        session.end()

    def test_closed_session_rejected(self, engine, profile, world):
        session = engine.start_session(profile, world.cities[0].location)
        session.end()
        with pytest.raises(ReproError):
            render_session_map(session, world)

    def test_svg_well_formed(self, engine, profile, world):
        import xml.etree.ElementTree as ET

        session = engine.start_session(profile, world.cities[0].location)
        svg = render_session_map(session, world)
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")
        session.end()
