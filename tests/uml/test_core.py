"""Tests for the UML metamodel core."""

import pytest

from repro.errors import ModelError, ProfileError
from repro.uml import (
    Association,
    AssociationEnd,
    Enumeration,
    INTEGER,
    Model,
    Profile,
    Property,
    STRING,
    Stereotype,
    UMLClass,
)


def _sample_model():
    model = Model("Sample")
    user = model.add_class(UMLClass("User", [Property("name", STRING)]))
    role = model.add_class(UMLClass("Role", [Property("name", STRING)]))
    model.add_association(
        Association(
            "user_role",
            AssociationEnd("user", user, 1, 1),
            AssociationEnd("dm2role", role, 0, 1),
        )
    )
    return model


class TestElements:
    def test_empty_name_rejected(self):
        with pytest.raises(ModelError):
            UMLClass("")

    def test_duplicate_property_rejected(self):
        cls = UMLClass("C", [Property("x", STRING)])
        with pytest.raises(ModelError):
            cls.add_property(Property("x", INTEGER))

    def test_property_qualified_name(self):
        cls = UMLClass("C", [Property("x", STRING)])
        assert cls.property("x").qualified_name == "C.x"

    def test_unknown_property(self):
        with pytest.raises(ModelError):
            UMLClass("C").property("missing")

    def test_property_bounds(self):
        with pytest.raises(ModelError):
            Property("p", STRING, lower=-1)
        with pytest.raises(ModelError):
            Property("p", STRING, lower=2, upper=1)


class TestEnumeration:
    def test_contains(self):
        enum = Enumeration("E", ["A", "B"])
        assert "A" in enum
        assert "C" not in enum

    def test_duplicates_rejected(self):
        with pytest.raises(ModelError):
            Enumeration("E", ["A", "A"])

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            Enumeration("E", [])


class TestModel:
    def test_duplicate_class_rejected(self):
        model = Model("M")
        model.add_class(UMLClass("C"))
        with pytest.raises(ModelError):
            model.add_class(UMLClass("C"))

    def test_association_requires_registered_classes(self):
        model = Model("M")
        a = UMLClass("A")
        model.add_class(a)
        ghost = UMLClass("Ghost")
        with pytest.raises(ModelError):
            model.add_association(
                Association(
                    "bad",
                    AssociationEnd("a", a),
                    AssociationEnd("g", ghost),
                )
            )

    def test_navigation_by_property(self):
        model = _sample_model()
        feature = model.navigate(model.cls("User"), "name")
        assert isinstance(feature, Property)

    def test_navigation_by_role(self):
        model = _sample_model()
        end = model.navigate(model.cls("User"), "dm2role")
        assert isinstance(end, AssociationEnd)
        assert end.type.name == "Role"

    def test_navigation_error_lists_options(self):
        model = _sample_model()
        with pytest.raises(ModelError, match="dm2role"):
            model.navigate(model.cls("User"), "bogus")

    def test_resolve_path(self):
        model = _sample_model()
        feature = model.resolve_path(model.cls("User"), ["dm2role", "name"])
        assert isinstance(feature, Property)
        assert feature.owner.name == "Role"

    def test_cls_error(self):
        with pytest.raises(ModelError):
            Model("M").cls("missing")


class TestProfiles:
    def test_apply_stereotype(self):
        profile = Profile("P", [Stereotype("Fact", "Class")])
        cls = UMLClass("Sales")
        profile.apply(cls, "Fact")
        assert cls.has_stereotype("Fact")

    def test_metaclass_mismatch(self):
        profile = Profile("P", [Stereotype("Descriptor", "Property")])
        with pytest.raises(ProfileError):
            profile.apply(UMLClass("C"), "Descriptor")

    def test_unknown_stereotype(self):
        profile = Profile("P")
        with pytest.raises(ProfileError):
            profile.apply(UMLClass("C"), "Nope")

    def test_duplicate_stereotype_rejected(self):
        profile = Profile("P", [Stereotype("S")])
        with pytest.raises(ProfileError):
            profile.add(Stereotype("S"))

    def test_invalid_metaclass(self):
        with pytest.raises(ProfileError):
            Stereotype("S", "Banana")

    def test_classes_with_stereotype(self):
        model = _sample_model()
        profile = Profile("P", [Stereotype("User", "Class")])
        model.apply_profile(profile)
        profile.apply(model.cls("User"), "User")
        assert model.classes_with_stereotype("User") == [model.cls("User")]


class TestValidation:
    def test_clean_model(self):
        model = _sample_model()
        assert model.validate() == []

    def test_orphan_stereotype_reported(self):
        model = _sample_model()
        model.cls("User").stereotypes.add("Phantom")
        problems = model.validate()
        assert any("Phantom" in p for p in problems)
