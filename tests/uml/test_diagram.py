"""Tests for PlantUML rendering."""

from repro.uml import (
    Association,
    AssociationEnd,
    Enumeration,
    Model,
    Profile,
    Property,
    STRING,
    Stereotype,
    UMLClass,
    class_signature,
    to_plantuml,
)


def _model():
    model = Model("Demo")
    model.add_enumeration(Enumeration("GeometricTypes", ["POINT", "LINE"]))
    cls = UMLClass("Store", [Property("name", STRING)])
    model.add_class(cls)
    profile = Profile("P", [Stereotype("SpatialLevel", "Class")])
    model.apply_profile(profile)
    profile.apply(cls, "SpatialLevel")
    other = model.add_class(UMLClass("City"))
    model.add_association(
        Association(
            "rollsup",
            AssociationEnd("d", cls, 1, None),
            AssociationEnd("r", other, 1, 1),
        )
    )
    return model


class TestPlantUML:
    def test_contains_all_sections(self):
        text = to_plantuml(_model())
        assert text.startswith("@startuml")
        assert text.endswith("@enduml")
        assert "enum GeometricTypes" in text
        assert "class Store <<SpatialLevel>>" in text
        assert "name : String" in text
        assert '"d 1..*"' in text and '"r 1"' in text

    def test_deterministic(self):
        assert to_plantuml(_model()) == to_plantuml(_model())

    def test_class_signature(self):
        model = _model()
        signature = class_signature(model.cls("Store"))
        assert signature == "Store <<SpatialLevel>>(name)"
