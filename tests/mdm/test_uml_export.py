"""Tests for MD schema -> UML compilation (Fig. 2 regeneration path)."""

from repro.data import build_sales_schema
from repro.mdm import md_profile, schema_to_uml
from repro.uml import to_plantuml


class TestProfile:
    def test_stereotype_set(self):
        profile = md_profile()
        for name in (
            "Fact",
            "Dimension",
            "Base",
            "FactAttribute",
            "Descriptor",
            "DimensionAttribute",
            "Rolls-upTo",
        ):
            assert name in profile.stereotypes


class TestExport:
    def test_fact_class(self):
        model = schema_to_uml(build_sales_schema())
        sales = model.cls("Sales")
        assert sales.has_stereotype("Fact")
        assert set(sales.properties) == {"UnitSales", "StoreCost", "StoreSales"}
        assert all(
            "FactAttribute" in p.stereotypes for p in sales.properties.values()
        )

    def test_levels_are_base_classes(self):
        model = schema_to_uml(build_sales_schema())
        # Store dimension's own class is suffixed to avoid the name clash
        # with its leaf level class.
        assert model.cls("StoreDim").has_stereotype("Dimension")
        assert model.cls("Store").has_stereotype("Base")
        assert model.cls("State").has_stereotype("Base")

    def test_descriptor_stereotypes(self):
        model = schema_to_uml(build_sales_schema())
        store = model.cls("Store")
        assert "Descriptor" in store.property("name").stereotypes
        assert "DimensionAttribute" in store.property("address").stereotypes

    def test_rollup_roles(self):
        model = schema_to_uml(build_sales_schema())
        rollup = model.associations["Store_rollsup_City"]
        assert rollup.stereotypes == {"Rolls-upTo"}
        roles = {rollup.source.role, rollup.target.role}
        assert roles == {"d", "r"}

    def test_shared_level_names_qualified(self):
        # Customer and Store both have a City level; the second one gets a
        # dimension-qualified class name.
        model = schema_to_uml(build_sales_schema())
        assert "City" in model.classes
        assert "Store_City" in model.classes or "Customer_City" in model.classes

    def test_validates_and_renders(self):
        model = schema_to_uml(build_sales_schema())
        assert model.validate() == []
        text = to_plantuml(model)
        assert "class Sales <<Fact>>" in text
