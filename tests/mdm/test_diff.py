"""Tests for schema diffing (used to assert Fig. 2 -> Fig. 6 changes)."""

from repro.data import build_sales_schema
from repro.geomd import GeoMDSchema, GeometricType
from repro.mdm import diff_schemas


class TestDiff:
    def test_identical_schemas(self):
        a = build_sales_schema()
        b = build_sales_schema()
        diff = diff_schemas(a, b)
        assert diff.is_empty
        assert diff.summary() == "(no changes)"

    def test_layer_addition_detected(self):
        before = GeoMDSchema.from_md(build_sales_schema())
        after = GeoMDSchema.from_md(build_sales_schema())
        after.add_layer("Airport", GeometricType.POINT)
        diff = diff_schemas(before, after)
        assert diff.added_layers == ["Airport"]
        assert not diff.removed_layers

    def test_spatialization_detected(self):
        before = GeoMDSchema.from_md(build_sales_schema())
        after = GeoMDSchema.from_md(build_sales_schema())
        after.become_spatial("Store.Store", GeometricType.POINT)
        diff = diff_schemas(before, after)
        assert diff.spatialized_levels == ["Store.Store"]
        # become_spatial also adds the geometry attribute.
        assert "Store.Store.geometry" in diff.added_attributes

    def test_md_vs_geomd_comparison(self):
        md = build_sales_schema()
        geo = GeoMDSchema.from_md(md)
        geo.add_layer("Train", GeometricType.LINE)
        diff = diff_schemas(md, geo)
        assert diff.added_layers == ["Train"]

    def test_summary_mentions_changes(self):
        before = GeoMDSchema.from_md(build_sales_schema())
        after = GeoMDSchema.from_md(build_sales_schema())
        after.add_layer("Airport", GeometricType.POINT)
        text = diff_schemas(before, after).summary()
        assert "Airport" in text
