"""Tests for the multidimensional metamodel."""

import pytest

from repro.errors import SchemaError
from repro.mdm import (
    Additivity,
    Aggregator,
    Attribute,
    AttributeKind,
    Dimension,
    Fact,
    Hierarchy,
    Level,
    MDSchema,
    Measure,
    ResolvedAttribute,
    ResolvedLevel,
)
from repro.data import build_sales_schema
from repro.uml.core import INTEGER, REAL, STRING


class TestLevel:
    def test_auto_key(self):
        level = Level("City")
        assert level.key == "name"
        assert level.attributes["name"].kind is AttributeKind.DESCRIPTOR

    def test_explicit_key_promoted_to_descriptor(self):
        level = Level("City", [Attribute("code", STRING)], key="code")
        assert level.attributes["code"].kind is AttributeKind.DESCRIPTOR

    def test_unknown_key_rejected(self):
        with pytest.raises(SchemaError):
            Level("City", [Attribute("name", STRING)], key="missing")

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError):
            Level("City", [Attribute("a", STRING), Attribute("a", STRING)])

    def test_attribute_lookup_error(self):
        with pytest.raises(SchemaError, match="available"):
            Level("City").attribute("missing")


class TestHierarchy:
    def test_rollup_edges(self):
        h = Hierarchy("geo", ["Store", "City", "State"])
        assert list(h.rollup_edges()) == [("Store", "City"), ("City", "State")]

    def test_repeated_level_rejected(self):
        with pytest.raises(SchemaError):
            Hierarchy("h", ["A", "B", "A"])

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            Hierarchy("h", [])


class TestDimension:
    def _dim(self):
        return Dimension(
            "Store",
            [Level("Store"), Level("City"), Level("State")],
            [Hierarchy("geo", ["Store", "City", "State"])],
            leaf="Store",
        )

    def test_leaf_level(self):
        assert self._dim().leaf_level.name == "Store"

    def test_default_hierarchy_created(self):
        dim = Dimension("Time", [Level("Day")])
        assert "default" in dim.hierarchies

    def test_hierarchy_must_start_at_leaf(self):
        with pytest.raises(SchemaError):
            Dimension(
                "Store",
                [Level("Store"), Level("City")],
                [Hierarchy("bad", ["City", "Store"])],
                leaf="Store",
            )

    def test_hierarchy_unknown_level(self):
        with pytest.raises(SchemaError):
            Dimension(
                "Store",
                [Level("Store")],
                [Hierarchy("bad", ["Store", "Ghost"])],
            )

    def test_rollup_path(self):
        assert self._dim().rollup_path("State") == ("Store", "City", "State")

    def test_rollup_path_unknown(self):
        with pytest.raises(SchemaError):
            self._dim().rollup_path("Country")

    def test_parent_level(self):
        dim = self._dim()
        assert dim.parent_level("Store") == "City"
        assert dim.parent_level("State") is None

    def test_opposing_hierarchies_rejected(self):
        with pytest.raises(SchemaError):
            Dimension(
                "D",
                [Level("D"), Level("A"), Level("B")],
                [
                    Hierarchy("h1", ["D", "A", "B"]),
                    Hierarchy("h2", ["D", "B", "A"]),
                ],
            )


class TestMeasure:
    def test_requires_numeric_type(self):
        with pytest.raises(SchemaError):
            Measure("bad", STRING)

    def test_non_additive_sum_rejected(self):
        with pytest.raises(SchemaError):
            Measure(
                "ratio",
                REAL,
                Aggregator.SUM,
                Additivity.NON_ADDITIVE,
            )

    def test_non_additive_avg_allowed(self):
        measure = Measure("ratio", REAL, Aggregator.AVG, Additivity.NON_ADDITIVE)
        assert measure.default_aggregator is Aggregator.AVG


class TestFact:
    def test_requires_dimension(self):
        with pytest.raises(SchemaError):
            Fact("F", [], [Measure("m", INTEGER)])

    def test_requires_measure(self):
        with pytest.raises(SchemaError):
            Fact("F", ["D"], [])

    def test_duplicate_dimension_rejected(self):
        with pytest.raises(SchemaError):
            Fact("F", ["D", "D"], [Measure("m", INTEGER)])


class TestSchemaResolve:
    @pytest.fixture()
    def schema(self):
        return build_sales_schema()

    def test_fact_measure(self, schema):
        resolved = schema.resolve(["Sales", "UnitSales"])
        assert isinstance(resolved, ResolvedAttribute)
        assert resolved.qualified_name == "Sales.UnitSales"

    def test_fact_dimension_leaf(self, schema):
        resolved = schema.resolve(["Sales", "Store"])
        assert isinstance(resolved, ResolvedLevel)
        assert resolved.qualified_name == "Store.Store"

    def test_fact_dimension_level_attr(self, schema):
        resolved = schema.resolve(["Sales", "Store", "State", "name"])
        assert isinstance(resolved, ResolvedAttribute)
        assert resolved.qualified_name == "Store.State.name"

    def test_leaf_attr_without_level_step(self, schema):
        resolved = schema.resolve(["Sales", "Store", "address"])
        assert isinstance(resolved, ResolvedAttribute)
        assert resolved.level.level.name == "Store"

    def test_dimension_first_path(self, schema):
        resolved = schema.resolve(["Store", "City"])
        assert isinstance(resolved, ResolvedLevel)
        assert resolved.level.name == "City"

    def test_unknown_step(self, schema):
        with pytest.raises(SchemaError):
            schema.resolve(["Sales", "Store", "Galaxy"])

    def test_path_past_attribute(self, schema):
        with pytest.raises(SchemaError):
            schema.resolve(["Sales", "Store", "name", "extra"])

    def test_wrong_fact_dimension_pair(self, schema):
        lonely = MDSchema(
            "S2",
            [Dimension("D", [Level("D")]), Dimension("E", [Level("E")])],
            [Fact("F", ["D"], [Measure("m", INTEGER)])],
        )
        with pytest.raises(SchemaError):
            lonely.resolve(["F", "E"])

    def test_empty_path(self, schema):
        with pytest.raises(SchemaError):
            schema.resolve([])

    def test_default_fact(self, schema):
        assert schema.default_fact().name == "Sales"


class TestSerialization:
    def test_round_trip(self):
        schema = build_sales_schema()
        rebuilt = MDSchema.from_dict(schema.to_dict())
        assert rebuilt.to_dict() == schema.to_dict()

    def test_round_trip_preserves_resolution(self):
        schema = MDSchema.from_dict(build_sales_schema().to_dict())
        resolved = schema.resolve(["Sales", "Store", "City", "population"])
        assert isinstance(resolved, ResolvedAttribute)
