"""Spatial profiles and the hierarchy+geometry similarity measure."""

import pytest

from repro.reco import (
    build_spatial_profile,
    geometry_similarity,
    hierarchy_similarity,
    user_similarity,
)


@pytest.fixture()
def spatial_star(world, star):
    """The sales star with store geometries backfilled (what the
    BecomeSpatial schema rule does at session start)."""
    table = star.dimension_table("Store")
    for store in world.stores:
        table.member("Store", store.name).attributes["geometry"] = store.location
    star.note_member_change("Store")
    return star


def profile_for(star, stores):
    return build_spatial_profile(star, {("Store", "Store"): set(stores)})


class TestProfile:
    def test_leaf_selection_lifts_to_every_ancestor_level(
        self, world, spatial_star
    ):
        store = world.stores[0]
        profile = profile_for(spatial_star, [store.name])
        assert profile.level_keys[("Store", "Store")] == {store.name}
        assert profile.level_keys[("Store", "City")] == {store.city}
        state = next(c.state for c in world.cities if c.name == store.city)
        assert profile.level_keys[("Store", "State")] == {state}
        # Coarser levels weigh less than the leaf.
        weights = profile.level_weights
        assert weights[("Store", "Store")] == 1.0
        assert weights[("Store", "City")] < 1.0
        assert weights[("Store", "State")] < weights[("Store", "City")]

    def test_non_leaf_selection_expands_through_rollup_index(
        self, world, spatial_star
    ):
        city = world.stores[0].city
        profile = build_spatial_profile(
            spatial_star, {("Store", "City"): {city}}
        )
        expected = {s.name for s in world.stores if s.city == city}
        assert profile.level_keys[("Store", "Store")] == expected

    def test_geometry_summary(self, world, spatial_star):
        names = [s.name for s in world.stores[:3]]
        profile = profile_for(spatial_star, names)
        assert profile.envelope is not None
        for store in world.stores[:3]:
            assert profile.envelope.contains_coord(store.location.coord)
        assert profile.centroid is not None

    def test_profile_is_identical_without_indexes(self, world, spatial_star):
        """The rollup-index fast path must be transparent (use_indexes)."""
        names = [s.name for s in world.stores[:4]]
        indexed = profile_for(spatial_star, names)
        spatial_star.use_indexes = False
        try:
            scanned = profile_for(spatial_star, names)
        finally:
            spatial_star.use_indexes = True
        assert scanned.level_keys == indexed.level_keys
        assert scanned.level_weights == indexed.level_weights
        assert scanned.envelope == indexed.envelope

    def test_unknown_dimension_and_empty_selection_are_tolerated(
        self, spatial_star
    ):
        profile = build_spatial_profile(
            spatial_star, {("Nope", "Level"): {"x"}}
        )
        assert profile.is_empty
        assert build_spatial_profile(spatial_star, {}).is_empty

    def test_stale_journaled_keys_are_dropped_not_fatal(
        self, world, spatial_star
    ):
        """Journals outlive star reloads: unknown member keys are skipped."""
        store = world.stores[0]
        profile = build_spatial_profile(
            spatial_star,
            {("Store", "Store"): {store.name, "Demolished Store 99"}},
        )
        assert profile.level_keys[("Store", "Store")] == {store.name}
        all_stale = build_spatial_profile(
            spatial_star, {("Store", "Store"): {"Demolished Store 99"}}
        )
        assert all_stale.is_empty


class TestSimilarity:
    def test_identical_footprints_are_maximally_similar(
        self, world, spatial_star
    ):
        names = [s.name for s in world.stores[:3]]
        a = profile_for(spatial_star, names)
        b = profile_for(spatial_star, names)
        assert hierarchy_similarity(a, b) == pytest.approx(1.0)
        assert geometry_similarity(a, b) == pytest.approx(1.0)
        assert user_similarity(a, b) == pytest.approx(1.0)

    def test_symmetry(self, world, spatial_star):
        a = profile_for(spatial_star, [world.stores[0].name])
        b = profile_for(spatial_star, [s.name for s in world.stores[1:4]])
        assert user_similarity(a, b) == pytest.approx(user_similarity(b, a))

    def test_disjoint_stores_in_one_city_still_overlap_via_rollup(
        self, world, spatial_star
    ):
        city = world.stores[0].city
        same_city = [s.name for s in world.stores if s.city == city]
        assert len(same_city) >= 2
        a = profile_for(spatial_star, [same_city[0]])
        b = profile_for(spatial_star, [same_city[1]])
        # No shared store, but the shared City (and State) ancestors make
        # the hierarchy component nonzero.
        assert not (
            a.level_keys[("Store", "Store")] & b.level_keys[("Store", "Store")]
        )
        assert hierarchy_similarity(a, b) > 0.0

    def test_near_beats_far(self, world, spatial_star):
        anchor = world.stores[0]
        neighbour = next(
            s for s in world.stores[1:] if s.city == anchor.city
        )
        far = max(
            world.stores,
            key=lambda s: anchor.location.distance_to(s.location),
        )
        assert far.city != anchor.city
        target = profile_for(spatial_star, [anchor.name])
        near_sim = user_similarity(
            target, profile_for(spatial_star, [neighbour.name])
        )
        far_sim = user_similarity(target, profile_for(spatial_star, [far.name]))
        assert near_sim > far_sim

    def test_empty_profiles_have_zero_similarity(self, spatial_star, world):
        empty = build_spatial_profile(spatial_star, {})
        full = profile_for(spatial_star, [world.stores[0].name])
        assert user_similarity(empty, full) == 0.0
        assert user_similarity(empty, empty) == 0.0

    def test_hierarchy_weight_bounds(self, spatial_star, world):
        a = profile_for(spatial_star, [world.stores[0].name])
        with pytest.raises(ValueError):
            user_similarity(a, a, hierarchy_weight=1.5)
