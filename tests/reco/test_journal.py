"""WorkloadJournal: append-only semantics, per-user histories, generations,
bounded memory and thread-safety."""

import threading

import pytest

from repro.reco import WorkloadJournal


@pytest.fixture()
def journal():
    return WorkloadJournal()


class TestRecording:
    def test_sequence_is_monotonic_across_users_and_tenants(self, journal):
        a = journal.record_query("sales", "ana", "Q1")
        b = journal.record_layer("sales", "bob", "Airport")
        c = journal.record_query("eu", "ana", "Q2")
        assert [a.seq, b.seq, c.seq] == [1, 2, 3]
        assert len(journal) == 3

    def test_histories_are_per_datamart_and_user(self, journal):
        journal.record_query("sales", "ana", "Q1")
        journal.record_query("sales", "bob", "Q2")
        journal.record_query("eu", "ana", "Q3")
        assert [e.payload["q"] for e in journal.events("sales", "ana")] == ["Q1"]
        assert journal.users("sales") == ["ana", "bob"]
        assert journal.users("eu") == ["ana"]
        assert journal.events("sales", "nobody") == []

    def test_query_text_is_stripped_and_deduped_in_order(self, journal):
        journal.record_query("sales", "ana", "  Q2  ")
        journal.record_query("sales", "ana", "Q1")
        journal.record_query("sales", "ana", "Q2")
        assert journal.queries("sales", "ana") == ["Q2", "Q1"]

    def test_selection_members_accumulate_into_profile(self, journal):
        journal.record_selection(
            "sales",
            "ana",
            "GeoMD.Store.City",
            "c1",
            members=[("Store", "Store", "S1"), ("Store", "City", "Alicante")],
        )
        journal.record_selection(
            "sales",
            "ana",
            "GeoMD.Store.City",
            "c2",
            members=[("Store", "Store", "S2")],
        )
        assert journal.member_profile("sales", "ana") == {
            ("Store", "Store"): {"S1", "S2"},
            ("Store", "City"): {"Alicante"},
        }

    def test_layer_fetches(self, journal):
        journal.record_layer("sales", "ana", "Airport")
        journal.record_layer("sales", "ana", "Airport")
        journal.record_layer("sales", "ana", "Train")
        assert journal.layers("sales", "ana") == {"Airport", "Train"}

    def test_unknown_kind_rejected(self, journal):
        with pytest.raises(ValueError, match="unknown workload event kind"):
            journal.record("sales", "ana", "scroll")

    def test_payload_is_immutable(self, journal):
        event = journal.record_query("sales", "ana", "Q1")
        with pytest.raises(TypeError):
            event.payload["q"] = "tampered"

    def test_payload_freeze_is_deep(self, journal):
        members = [["Store", "Store", "S1"]]
        event = journal.record(
            "sales", "ana", "selection", {"members": members}
        )
        members[0][2] = "tampered"  # the caller's copy, not the journal's
        assert event.payload["members"] == (("Store", "Store", "S1"),)
        with pytest.raises(TypeError):
            event.payload["members"][0][2] = "tampered"


class TestGenerations:
    def test_every_append_bumps_only_its_tenant(self, journal):
        assert journal.generation("sales") == 0
        journal.record_query("sales", "ana", "Q1")
        journal.record_layer("sales", "bob", "Airport")
        assert journal.generation("sales") == 2
        assert journal.generation("eu") == 0
        journal.record_query("eu", "cara", "Q9")
        assert journal.generation("sales") == 2
        assert journal.generation("eu") == 1


class TestBoundsAndConcurrency:
    def test_per_user_history_is_capped_oldest_first(self):
        journal = WorkloadJournal(max_events_per_user=3)
        for i in range(5):
            journal.record_query("sales", "ana", f"Q{i}")
        kept = [e.payload["q"] for e in journal.events("sales", "ana")]
        assert kept == ["Q2", "Q3", "Q4"]
        # The generation keeps counting even when old events are dropped.
        assert journal.generation("sales") == 5

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            WorkloadJournal(max_events_per_user=0)

    def test_concurrent_appends_lose_nothing(self, journal):
        threads = [
            threading.Thread(
                target=lambda user=f"u{i}": [
                    journal.record_query("sales", user, f"Q{j}")
                    for j in range(50)
                ],
            )
            for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(journal) == 8 * 50
        assert journal.generation("sales") == 8 * 50
        seqs = [
            e.seq for u in journal.users("sales") for e in journal.events("sales", u)
        ]
        assert len(set(seqs)) == len(seqs)  # no duplicated sequence numbers
