"""Recommender ranking, exclusions and the generation-keyed memo."""

import pytest

from repro.reco import Recommender, WorkloadJournal

DM = "sales"


@pytest.fixture()
def spatial_star(world, star):
    table = star.dimension_table("Store")
    for store in world.stores:
        table.member("Store", store.name).attributes["geometry"] = store.location
    star.note_member_change("Store")
    return star


@pytest.fixture()
def seeded(world, spatial_star):
    """Journal with ana+bob on neighbouring stores, cara far away."""
    journal = WorkloadJournal()
    anchor = world.stores[0]
    neighbour = next(s for s in world.stores[1:] if s.city == anchor.city)
    far = max(
        world.stores, key=lambda s: anchor.location.distance_to(s.location)
    )

    def select(user, store):
        journal.record_selection(
            DM, user, "GeoMD.Store.City", "c", [("Store", "Store", store.name)]
        )

    select("ana", anchor)
    select("bob", neighbour)
    select("cara", far)
    journal.record_query(DM, "ana", "Q_SHARED")
    journal.record_query(DM, "bob", "Q_SHARED")
    journal.record_query(DM, "bob", "Q_BOB")
    journal.record_query(DM, "cara", "Q_NOISE")
    journal.record_layer(DM, "bob", "Airport")
    journal.record_layer(DM, "cara", "Train")
    return journal, Recommender(journal)


class TestRanking:
    def test_similar_users_ranked_and_self_excluded(self, seeded, spatial_star):
        _journal, recommender = seeded
        ranked = recommender.similar_users(DM, "ana", spatial_star)
        assert [user for user, _ in ranked] == ["bob", "cara"]
        assert ranked[0][1] > ranked[1][1] > 0.0

    def test_query_recommendations_rank_peer_over_noise(
        self, seeded, spatial_star
    ):
        _journal, recommender = seeded
        items, neighbours = recommender.recommend(DM, "ana", spatial_star, "queries")
        texts = [r.item["q"] for r in items]
        # Q_SHARED is excluded (ana ran it); bob's query outranks cara's.
        assert texts == ["Q_BOB", "Q_NOISE"]
        assert items[0].supporters == ("bob",)
        assert items[0].score > items[1].score
        assert [u for u, _ in neighbours] == ["bob", "cara"]

    def test_supporter_votes_accumulate(self, seeded, spatial_star):
        journal, recommender = seeded
        journal.record_query(DM, "cara", "Q_BOB")
        items, _ = recommender.recommend(DM, "ana", spatial_star, "queries")
        top = items[0]
        assert top.item["q"] == "Q_BOB"
        assert top.supporters == ("bob", "cara")

    def test_layer_recommendations_respect_allowed_set(
        self, seeded, spatial_star
    ):
        _journal, recommender = seeded
        items, _ = recommender.recommend(DM, "ana", spatial_star, "layers")
        assert [r.item["layer"] for r in items] == ["Airport", "Train"]
        confined, _ = recommender.recommend(
            DM, "ana", spatial_star, "layers", allowed_layers={"Airport"}
        )
        assert [r.item["layer"] for r in confined] == ["Airport"]

    def test_member_recommendations_exclude_own_and_live_selection(
        self, seeded, spatial_star, world
    ):
        _journal, recommender = seeded
        anchor = world.stores[0]
        neighbour = next(s for s in world.stores[1:] if s.city == anchor.city)
        items, _ = recommender.recommend(DM, "ana", spatial_star, "members")
        keys = {r.item["key"] for r in items}
        assert anchor.name not in keys  # journaled own selection
        assert neighbour.name in keys
        items, _ = recommender.recommend(
            DM,
            "ana",
            spatial_star,
            "members",
            exclude_members=[("Store", "Store", neighbour.name)],
        )
        assert neighbour.name not in {r.item["key"] for r in items}

    def test_unknown_kind_rejected(self, seeded, spatial_star):
        _journal, recommender = seeded
        with pytest.raises(ValueError, match="unknown recommendation kind"):
            recommender.recommend(DM, "ana", spatial_star, "facts")

    def test_user_without_history_gets_nothing(self, seeded, spatial_star):
        _journal, recommender = seeded
        items, neighbours = recommender.recommend(
            DM, "nobody", spatial_star, "queries"
        )
        assert items == [] and neighbours == []


class TestMemo:
    def test_repeat_call_hits_and_returns_identical_results(
        self, seeded, spatial_star
    ):
        _journal, recommender = seeded
        cold = recommender.recommend(DM, "ana", spatial_star, "queries")
        assert recommender.stats()["memo_misses"] == 1
        warm = recommender.recommend(DM, "ana", spatial_star, "queries")
        assert recommender.stats()["memo_hits"] == 1
        assert warm == cold
        # The transparency switch recomputes but must agree.
        recommender.enable_memo = False
        assert recommender.recommend(DM, "ana", spatial_star, "queries") == cold

    def test_journal_append_invalidates(self, seeded, spatial_star):
        journal, recommender = seeded
        recommender.recommend(DM, "ana", spatial_star, "queries")
        journal.record_query(DM, "bob", "Q_NEW")
        items, _ = recommender.recommend(DM, "ana", spatial_star, "queries")
        assert recommender.stats()["memo_hits"] == 0
        assert "Q_NEW" in [r.item["q"] for r in items]

    def test_star_mutation_invalidates(self, seeded, spatial_star, world):
        _journal, recommender = seeded
        recommender.recommend(DM, "ana", spatial_star, "queries")
        spatial_star.note_member_change("Store")
        recommender.recommend(DM, "ana", spatial_star, "queries")
        assert recommender.stats()["memo_misses"] == 2

    def test_context_key_partitions_entries(self, seeded, spatial_star):
        _journal, recommender = seeded
        recommender.recommend(
            DM, "ana", spatial_star, "queries", context_key=(1, 0)
        )
        recommender.recommend(
            DM, "ana", spatial_star, "queries", context_key=(2, 0)
        )
        assert recommender.stats()["memo_misses"] == 2

    def test_memo_size_zero_disables(self, seeded, spatial_star):
        journal, _ = seeded
        recommender = Recommender(journal, memo_size=0)
        recommender.recommend(DM, "ana", spatial_star, "queries")
        recommender.recommend(DM, "ana", spatial_star, "queries")
        assert recommender.stats() == {
            "memo_size": 0,
            "memo_hits": 0,
            "memo_misses": 0,
        }

    def test_lru_bound(self, seeded, spatial_star):
        journal, _ = seeded
        recommender = Recommender(journal, memo_size=2)
        for kind in ("queries", "layers", "members"):
            recommender.recommend(DM, "ana", spatial_star, kind)
        assert recommender.stats()["memo_size"] == 2
