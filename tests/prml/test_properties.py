"""Property-based tests: PRML parse/print round trips over generated ASTs."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.geomd import GeometricType
from repro.prml import (
    AddLayerAction,
    BecomeSpatialAction,
    BinaryOp,
    BinaryOperator,
    ForeachStmt,
    GeomTypeLit,
    IfStmt,
    NotOp,
    NumberLit,
    ParameterRef,
    PathExpr,
    QuantityLit,
    Rule,
    SelectInstanceAction,
    SessionEndEvent,
    SessionStartEvent,
    SetContentAction,
    SpatialCall,
    SpatialFunction,
    SpatialSelectionEvent,
    StringLit,
    VarPath,
    parse_expression,
    parse_rule,
    print_expr,
    print_rule,
)

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

idents = st.from_regex(r"[a-zA-Z_][a-zA-Z_0-9]{0,8}", fullmatch=True).filter(
    # Exclude keywords, model roots, spatial function and action names, and
    # geometric type literals — the grammar reserves those spellings.
    lambda s: s
    not in {
        "Rule", "When", "do", "endWhen", "If", "then", "else", "endIf",
        "Foreach", "in", "endForeach", "and", "or", "not",
        "SUS", "MD", "GeoMD",
        "SessionStart", "SessionEnd", "SpatialSelection",
        "SetContent", "SelectInstance", "BecomeSpatial", "AddLayer",
        "Intersect", "Disjoint", "Cross", "Inside", "Equals",
        "Distance", "Intersection",
        "POINT", "LINE", "POLYGON", "COLLECTION",
    }
)

model_paths = st.builds(
    PathExpr,
    root=st.sampled_from(["SUS", "MD", "GeoMD"]),
    steps=st.lists(idents, min_size=1, max_size=4).map(tuple),
)

numbers = st.builds(
    NumberLit,
    st.floats(min_value=0, max_value=1e6, allow_nan=False).map(
        lambda v: float(round(v, 3))
    ),
)
quantities = st.builds(
    QuantityLit,
    st.floats(min_value=0.001, max_value=1e4, allow_nan=False).map(
        lambda v: float(round(v, 3))
    ),
    st.sampled_from(["m", "km", "mi"]),
)
strings = st.builds(
    StringLit, st.text(alphabet="abcDEF '12", min_size=0, max_size=10)
)
geom_types = st.builds(GeomTypeLit, st.sampled_from(list(GeometricType)))
parameters = st.builds(ParameterRef, idents)
# A bare identifier is context-sensitive (ParameterRef unless Foreach-bound),
# so generated VarPaths carry at least one step to stay syntactically
# unambiguous; ParameterRef covers the bare spelling.
var_paths = st.builds(
    VarPath, idents, st.lists(idents, min_size=1, max_size=1).map(tuple)
)

atoms = st.one_of(
    numbers, quantities, strings, geom_types, parameters, model_paths, var_paths
)


def _exprs(children):
    geometryish = st.one_of(model_paths, var_paths)
    return st.one_of(
        st.builds(
            BinaryOp,
            st.sampled_from(list(BinaryOperator)),
            children,
            children,
        ),
        st.builds(NotOp, children),
        st.builds(
            SpatialCall,
            st.sampled_from(
                [
                    SpatialFunction.INTERSECT,
                    SpatialFunction.DISJOINT,
                    SpatialFunction.CROSS,
                    SpatialFunction.INSIDE,
                    SpatialFunction.EQUALS,
                    SpatialFunction.INTERSECTION,
                ]
            ),
            st.tuples(geometryish, geometryish),
        ),
        st.builds(
            SpatialCall,
            st.just(SpatialFunction.DISTANCE),
            st.one_of(
                st.tuples(geometryish, geometryish),
                st.tuples(geometryish),
            ),
        ),
    )


expressions = st.recursive(atoms, _exprs, max_leaves=12)

actions = st.one_of(
    st.builds(SetContentAction, model_paths, expressions),
    # SelectInstance over a stepped var path keeps the text unambiguous
    # outside a Foreach scope (see var_paths note above).
    st.builds(SelectInstanceAction, var_paths),
    st.builds(BecomeSpatialAction, model_paths, geom_types),
    st.builds(AddLayerAction, st.builds(StringLit, st.text("abcXYZ 1", min_size=1, max_size=8)), geom_types),
)


@st.composite
def _foreach(draw, children):
    n = draw(st.integers(min_value=1, max_value=3))
    variables = draw(
        st.lists(idents, min_size=n, max_size=n, unique=True).map(tuple)
    )
    sources = draw(st.lists(model_paths, min_size=n, max_size=n).map(tuple))
    body = draw(st.lists(children, min_size=1, max_size=2).map(tuple))
    return ForeachStmt(variables=variables, sources=sources, body=body)


def _stmts(children):
    bodies = st.lists(children, min_size=1, max_size=2).map(tuple)
    return st.one_of(
        st.builds(
            IfStmt,
            expressions,
            bodies,
            st.one_of(st.just(()), bodies),
        ),
        _foreach(children),
    )


statements = st.recursive(actions, _stmts, max_leaves=6)

events = st.one_of(
    st.just(SessionStartEvent()),
    st.just(SessionEndEvent()),
    st.builds(SpatialSelectionEvent, model_paths, expressions),
)

rules = st.builds(
    Rule,
    name=idents,
    event=events,
    body=st.lists(statements, min_size=1, max_size=4).map(tuple),
)


# ---------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------


class TestRoundTrip:
    @settings(max_examples=200)
    @given(expressions)
    def test_expression_round_trip(self, expr):
        assert parse_expression(print_expr(expr)) == expr

    @settings(max_examples=100, suppress_health_check=[HealthCheck.too_slow])
    @given(rules)
    def test_rule_round_trip(self, rule):
        assert parse_rule(print_rule(rule)) == rule

    @settings(max_examples=75, suppress_health_check=[HealthCheck.too_slow])
    @given(rules)
    def test_print_is_fixed_point(self, rule):
        once = print_rule(rule)
        assert print_rule(parse_rule(once)) == once
