"""Tests for the canonical PRML printer (including full round trips)."""

import pytest

from repro.data import ALL_PAPER_RULES
from repro.prml import parse_expression, parse_rule, print_expr, print_rule


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(ALL_PAPER_RULES))
    def test_paper_rules_round_trip(self, name):
        rule = parse_rule(ALL_PAPER_RULES[name])
        text = print_rule(rule)
        assert parse_rule(text) == rule

    def test_print_is_stable(self):
        rule = parse_rule(ALL_PAPER_RULES["TrainAirportCity"])
        once = print_rule(rule)
        assert print_rule(parse_rule(once)) == once


class TestExpressions:
    @pytest.mark.parametrize(
        "source, expected",
        [
            ("1+2*3", "1+2*3"),
            ("(1+2)*3", "(1+2)*3"),
            ("1<2 and 3<4", "1<2 and 3<4"),
            ("not (1<2 or 2<3)", "not (1<2 or 2<3)"),
            ("Distance(MD.Sales.Store.geometry, MD.Sales.Store.geometry)",
             "Distance(MD.Sales.Store.geometry, MD.Sales.Store.geometry)"),
            ("5km", "5km"),
            ("2.5km", "2.5km"),
            ("'it''s'", "'it''s'"),
            ("POINT", "POINT"),
        ],
    )
    def test_canonical_forms(self, source, expected):
        assert print_expr(parse_expression(source)) == expected

    @pytest.mark.parametrize(
        "source",
        [
            "1+2*3",
            "(1+2)*3-4/5",
            "1<2 and (3<4 or 5<6)",
            "Distance(Intersection(Intersection(GeoMD.Train.geometry, "
            "GeoMD.Store.City.geometry), GeoMD.Airport.geometry))<50km",
            "SUS.DecisionMaker.dm2airportcity.degree+1",
        ],
    )
    def test_expression_round_trip(self, source):
        expr = parse_expression(source)
        assert parse_expression(print_expr(expr)) == expr

    def test_minimal_parenthesization(self):
        # Right-associative grouping must keep explicit parens when needed.
        expr = parse_expression("1-(2-3)")
        printed = print_expr(expr)
        assert parse_expression(printed) == expr
        assert printed == "1-(2-3)"
