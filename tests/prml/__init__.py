"""Test subpackage (unique module paths for pytest collection)."""
