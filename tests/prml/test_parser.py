"""Tests for the PRML parser over the paper's rules and edge cases."""

import pytest

from repro.data import (
    ADD_SPATIALITY,
    FIVE_KM_STORES,
    INT_AIRPORT_CITY,
    TRAIN_AIRPORT_CITY,
)
from repro.errors import PRMLSyntaxError
from repro.geomd import GeometricType
from repro.prml import (
    AddLayerAction,
    BecomeSpatialAction,
    BinaryOp,
    BinaryOperator,
    ForeachStmt,
    IfStmt,
    NotOp,
    NumberLit,
    ParameterRef,
    PathExpr,
    QuantityLit,
    SelectInstanceAction,
    SessionEndEvent,
    SessionStartEvent,
    SetContentAction,
    SpatialCall,
    SpatialFunction,
    SpatialSelectionEvent,
    StringLit,
    VarPath,
    parse_expression,
    parse_path,
    parse_rule,
    parse_rules,
)


class TestPaperRules:
    def test_add_spatiality(self):
        rule = parse_rule(ADD_SPATIALITY)
        assert rule.name == "addSpatiality"
        assert isinstance(rule.event, SessionStartEvent)
        (if_stmt,) = rule.body
        assert isinstance(if_stmt, IfStmt)
        add_layer, become = if_stmt.then_body
        assert isinstance(add_layer, AddLayerAction)
        assert add_layer.layer_name.value == "Airport"
        assert add_layer.geometric_type.value is GeometricType.POINT
        assert isinstance(become, BecomeSpatialAction)
        assert str(become.element) == "MD.Sales.Store.geometry"

    def test_five_km_stores(self):
        rule = parse_rule(FIVE_KM_STORES)
        assert rule.name == "5kmStores"
        (foreach,) = rule.body
        assert isinstance(foreach, ForeachStmt)
        assert foreach.variables == ("s",)
        assert str(foreach.sources[0]) == "GeoMD.Store"
        (if_stmt,) = foreach.body
        condition = if_stmt.condition
        assert isinstance(condition, BinaryOp)
        assert condition.op is BinaryOperator.LT
        assert isinstance(condition.left, SpatialCall)
        assert condition.left.function is SpatialFunction.DISTANCE
        assert isinstance(condition.right, QuantityLit)
        assert condition.right.metres == 5_000.0
        (select,) = if_stmt.then_body
        assert isinstance(select, SelectInstanceAction)

    def test_int_airport_city(self):
        rule = parse_rule(INT_AIRPORT_CITY)
        event = rule.event
        assert isinstance(event, SpatialSelectionEvent)
        assert str(event.target) == "GeoMD.Store.City"
        assert isinstance(event.condition, BinaryOp)
        (set_content,) = rule.body
        assert isinstance(set_content, SetContentAction)
        assert isinstance(set_content.value, BinaryOp)
        assert set_content.value.op is BinaryOperator.ADD

    def test_train_airport_city(self):
        rule = parse_rule(TRAIN_AIRPORT_CITY)
        (if_stmt,) = rule.body
        condition = if_stmt.condition
        assert isinstance(condition.right, ParameterRef)
        assert condition.right.name == "threshold"
        add_layer, foreach = if_stmt.then_body
        assert isinstance(add_layer, AddLayerAction)
        assert add_layer.geometric_type.value is GeometricType.LINE
        assert isinstance(foreach, ForeachStmt)
        assert foreach.variables == ("t", "c", "a")
        inner_if = foreach.body[0]
        distance = inner_if.condition.left
        assert distance.function is SpatialFunction.DISTANCE
        assert len(distance.args) == 1
        nested = distance.args[0]
        assert nested.function is SpatialFunction.INTERSECTION
        assert nested.args[0].function is SpatialFunction.INTERSECTION

    def test_parse_rules_batch(self):
        rules = parse_rules(ADD_SPATIALITY + FIVE_KM_STORES)
        assert [r.name for r in rules] == ["addSpatiality", "5kmStores"]


class TestEvents:
    def test_session_end(self):
        rule = parse_rule("Rule:r When SessionEnd do AddLayer('X', POINT) endWhen")
        assert isinstance(rule.event, SessionEndEvent)

    def test_unknown_event(self):
        with pytest.raises(PRMLSyntaxError):
            parse_rule("Rule:r When Sunrise do AddLayer('X', POINT) endWhen")


class TestStatements:
    def test_if_else(self):
        rule = parse_rule(
            "Rule:r When SessionStart do "
            "If (1 < 2) then AddLayer('A', POINT) "
            "else AddLayer('B', LINE) endIf endWhen"
        )
        (if_stmt,) = rule.body
        assert len(if_stmt.then_body) == 1
        assert len(if_stmt.else_body) == 1

    def test_unterminated_if(self):
        with pytest.raises(PRMLSyntaxError):
            parse_rule(
                "Rule:r When SessionStart do If (1<2) then "
                "AddLayer('A', POINT) endWhen"
            )

    def test_foreach_variable_source_mismatch(self):
        with pytest.raises(PRMLSyntaxError, match="variables"):
            parse_rule(
                "Rule:r When SessionStart do "
                "Foreach a, b in (GeoMD.X) SelectInstance(a) endForeach endWhen"
            )

    def test_foreach_duplicate_variables(self):
        with pytest.raises(PRMLSyntaxError, match="duplicate"):
            parse_rule(
                "Rule:r When SessionStart do "
                "Foreach a, a in (GeoMD.X, GeoMD.Y) SelectInstance(a) "
                "endForeach endWhen"
            )

    def test_add_layer_requires_string(self):
        with pytest.raises(PRMLSyntaxError):
            parse_rule(
                "Rule:r When SessionStart do AddLayer(Airport, POINT) endWhen"
            )

    def test_geom_type_required(self):
        with pytest.raises(PRMLSyntaxError):
            parse_rule(
                "Rule:r When SessionStart do AddLayer('A', CIRCLE) endWhen"
            )

    def test_trailing_input_rejected(self):
        with pytest.raises(PRMLSyntaxError):
            parse_rule(
                "Rule:r When SessionStart do AddLayer('A', POINT) endWhen extra"
            )


class TestExpressions:
    def test_precedence_and_or(self):
        expr = parse_expression("1 < 2 and 3 < 4 or not 5 < 6")
        assert isinstance(expr, BinaryOp)
        assert expr.op is BinaryOperator.OR
        assert expr.left.op is BinaryOperator.AND
        assert isinstance(expr.right, NotOp)

    def test_arithmetic_precedence(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr.op is BinaryOperator.ADD
        assert expr.right.op is BinaryOperator.MUL

    def test_parentheses(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op is BinaryOperator.MUL
        assert expr.left.op is BinaryOperator.ADD

    def test_unary_minus(self):
        expr = parse_expression("-5")
        assert isinstance(expr, BinaryOp)
        assert expr.op is BinaryOperator.SUB
        assert isinstance(expr.left, NumberLit)
        assert expr.left.value == 0.0

    def test_model_path(self):
        path = parse_path("SUS.DecisionMaker.dm2role.name")
        assert path.root == "SUS"
        assert path.steps == ("DecisionMaker", "dm2role", "name")

    def test_non_model_path_rejected(self):
        with pytest.raises(PRMLSyntaxError):
            parse_path("Foo.bar")

    def test_bare_identifier_is_parameter(self):
        expr = parse_expression("threshold")
        assert isinstance(expr, ParameterRef)

    def test_spatial_call_arity(self):
        with pytest.raises(PRMLSyntaxError):
            parse_expression("Intersect(GeoMD.A.geometry)")
        with pytest.raises(PRMLSyntaxError):
            parse_expression("Distance(MD.A, MD.B, MD.C)")

    def test_string_literal(self):
        expr = parse_expression("'hello'")
        assert isinstance(expr, StringLit)
        assert expr.value == "hello"

    def test_geom_type_literal(self):
        expr = parse_expression("POLYGON")
        assert expr.value is GeometricType.POLYGON
