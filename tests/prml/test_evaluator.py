"""Tests for PRML rule evaluation against a runtime context."""

import pytest

from repro.data import (
    WorldGeoSource,
    build_motivating_user_model,
    build_regional_manager_profile,
)
from repro.errors import PRMLRuntimeError
from repro.geomd import GeometricType
from repro.geometry import Point
from repro.prml import Evaluator, RuntimeContext, SelectionSet, parse_rule


@pytest.fixture()
def context(world, star, user_schema):
    profile = build_regional_manager_profile(user_schema)
    profile.open_session(Point(0.0, 0.0))
    return RuntimeContext(
        user_profile=profile,
        md_schema=star.schema,
        geomd_schema=star.schema,
        star=star,
        parameters={"threshold": 3},
        geo_source=WorldGeoSource(world),
    )


def run(context, source):
    return Evaluator(context).execute(parse_rule(source))


class TestSchemaActions:
    def test_add_layer_populates_from_source(self, context):
        outcome = run(
            context,
            "Rule:r When SessionStart do AddLayer('Airport', POINT) endWhen",
        )
        assert outcome.layers_added == ["Airport"]
        table = context.star.layer_table("Airport")
        assert len(table) == len(context.geo_source.world.airports)

    def test_add_layer_without_source_data(self, context):
        outcome = run(
            context,
            "Rule:r When SessionStart do AddLayer('Rivers', LINE) endWhen",
        )
        assert outcome.layers_added == ["Rivers"]
        assert len(context.star.layer_table("Rivers")) == 0

    def test_become_spatial_backfills_geometries(self, context):
        outcome = run(
            context,
            "Rule:r When SessionStart do "
            "BecomeSpatial(MD.Sales.Store.geometry, POINT) endWhen",
        )
        assert outcome.levels_spatialized == ["Store.Store"]
        member = context.star.dimension_table("Store").members("Store")[0]
        assert member.geometry is not None
        assert context.geomd_schema.is_spatial_level("Store.Store")

    def test_become_spatial_unknown_level(self, context):
        with pytest.raises(PRMLRuntimeError):
            run(
                context,
                "Rule:r When SessionStart do "
                "BecomeSpatial(MD.Sales.Nebula.geometry, POINT) endWhen",
            )


class TestConditions:
    def test_role_condition_gates_actions(self, context):
        source = (
            "Rule:r When SessionStart do "
            "If (SUS.DecisionMaker.dm2role.name='Intern') then "
            "AddLayer('Airport', POINT) endIf endWhen"
        )
        outcome = run(context, source)
        assert outcome.fired_actions == 0

    def test_else_branch(self, context):
        source = (
            "Rule:r When SessionStart do "
            "If (SUS.DecisionMaker.dm2role.name='Intern') then "
            "AddLayer('A', POINT) else AddLayer('B', POINT) endIf endWhen"
        )
        outcome = run(context, source)
        assert outcome.layers_added == ["B"]

    def test_non_boolean_condition_rejected(self, context):
        with pytest.raises(PRMLRuntimeError, match="boolean"):
            run(
                context,
                "Rule:r When SessionStart do "
                "If (1 + 1) then AddLayer('A', POINT) endIf endWhen",
            )

    def test_logical_short_circuit(self, context):
        # The right operand would fail (unset value); 'and' short-circuits.
        source = (
            "Rule:r When SessionStart do "
            "If (1 > 2 and SUS.DecisionMaker.dm2session.s2location.geometry = 1) "
            "then AddLayer('A', POINT) endIf endWhen"
        )
        outcome = run(context, source)
        assert outcome.fired_actions == 0

    def test_parameter_resolution(self, context):
        source = (
            "Rule:r When SessionStart do "
            "If (threshold = 3) then AddLayer('A', POINT) endIf endWhen"
        )
        assert run(context, source).fired_actions == 1

    def test_missing_parameter(self, context):
        context.parameters = {}
        with pytest.raises(PRMLRuntimeError, match="parameter"):
            run(
                context,
                "Rule:r When SessionStart do "
                "If (threshold = 3) then AddLayer('A', POINT) endIf endWhen",
            )

    def test_division_by_zero(self, context):
        with pytest.raises(PRMLRuntimeError, match="division"):
            run(
                context,
                "Rule:r When SessionStart do "
                "If (1 / 0 > 1) then AddLayer('A', POINT) endIf endWhen",
            )


class TestForeachAndSelection:
    def _spatialize_stores(self, context):
        run(
            context,
            "Rule:setup When SessionStart do "
            "BecomeSpatial(MD.Sales.Store.geometry, POINT) endWhen",
        )

    def test_foreach_iterates_level(self, context):
        self._spatialize_stores(context)
        outcome = run(
            context,
            "Rule:r When SessionStart do "
            "Foreach s in (GeoMD.Store) SelectInstance(s) endForeach endWhen",
        )
        n_stores = len(context.star.dimension_table("Store").members("Store"))
        assert outcome.iterations == n_stores
        assert outcome.selected_instances == n_stores

    def test_distance_filtered_selection(self, context):
        self._spatialize_stores(context)
        # Put the user exactly at the first store.
        first = context.star.dimension_table("Store").members("Store")[0]
        context.user_profile.close_session()
        context.user_profile.open_session(first.geometry)
        outcome = run(
            context,
            "Rule:r When SessionStart do Foreach s in (GeoMD.Store) "
            "If (Distance(s.geometry, "
            "SUS.DecisionMaker.dm2session.s2location.geometry) < 1m) then "
            "SelectInstance(s) endIf endForeach endWhen",
        )
        assert outcome.selected_instances == 1
        assert context.selection.members[("Store", "Store")] == {first.key}

    def test_cartesian_product(self, context):
        run(
            context,
            "Rule:a When SessionStart do AddLayer('Airport', POINT) endWhen",
        )
        run(
            context,
            "Rule:t When SessionStart do AddLayer('Train', LINE) endWhen",
        )
        outcome = run(
            context,
            "Rule:r When SessionStart do "
            "Foreach t, a in (GeoMD.Train, GeoMD.Airport) "
            "SelectInstance(a) endForeach endWhen",
        )
        n_trains = len(context.star.layer_table("Train"))
        n_airports = len(context.star.layer_table("Airport"))
        assert outcome.iterations == n_trains * n_airports

    def test_member_geometry_missing_error(self, context):
        # Stores are not spatialized here: s.geometry must fail clearly.
        with pytest.raises(PRMLRuntimeError, match="no geometry"):
            run(
                context,
                "Rule:r When SessionStart do Foreach s in (GeoMD.Store) "
                "If (Distance(s.geometry, s.geometry) < 1m) then "
                "SelectInstance(s) endIf endForeach endWhen",
            )

    def test_feature_selection(self, context):
        run(
            context,
            "Rule:a When SessionStart do AddLayer('Airport', POINT) endWhen",
        )
        outcome = run(
            context,
            "Rule:r When SessionStart do Foreach a in (GeoMD.Airport) "
            "SelectInstance(a) endForeach endWhen",
        )
        assert outcome.selected_instances == len(
            context.star.layer_table("Airport")
        )
        assert "Airport" in context.selection.features


class TestSetContent:
    def test_increment(self, context):
        source = (
            "Rule:r When SessionStart do "
            "SetContent(SUS.DecisionMaker.dm2airportcity.degree, "
            "SUS.DecisionMaker.dm2airportcity.degree+1) endWhen"
        )
        run(context, source)
        run(context, source)
        assert context.user_profile.degree("AirportCity") == 2

    def test_set_string(self, context):
        run(
            context,
            "Rule:r When SessionStart do "
            "SetContent(SUS.DecisionMaker.name, 'Maria') endWhen",
        )
        assert context.user_profile.get("DecisionMaker.name") == "Maria"

    def test_md_target_rejected(self, context):
        with pytest.raises(PRMLRuntimeError, match="SUS path"):
            run(
                context,
                "Rule:r When SessionStart do "
                "SetContent(MD.Sales.Store.name, 'X') endWhen",
            )


class TestSelectionSet:
    def test_fact_rows_unrestricted_when_empty(self, star):
        selection = SelectionSet()
        assert selection.is_empty
        assert len(selection.fact_row_ids(star)) == len(star.fact_table())

    def test_fact_rows_filtered_by_leaf_member(self, star):
        selection = SelectionSet()
        key = star.fact_table().key_column("Store")[0]
        selection.add_member("Store", "Store", key)
        rows = selection.fact_row_ids(star)
        assert 0 < len(rows) < len(star.fact_table())
        column = star.fact_table().key_column("Store")
        assert all(column[row] == key for row in rows)

    def test_union_across_levels(self, star):
        selection = SelectionSet()
        store_key = star.fact_table().key_column("Store")[0]
        other_city = star.rollup_member(
            "Store", star.fact_table().key_column("Store")[1], "City"
        ).key
        selection.add_member("Store", "Store", store_key)
        only_store = len(selection.fact_row_ids(star))
        selection.add_member("Store", "City", other_city)
        both = len(selection.fact_row_ids(star))
        assert both >= only_store

    def test_intersection_across_dimensions(self, star):
        selection = SelectionSet()
        store_key = star.fact_table().key_column("Store")[0]
        selection.add_member("Store", "Store", store_key)
        store_only = len(selection.fact_row_ids(star))
        customer_key = star.fact_table().key_column("Customer")[0]
        selection.add_member("Customer", "Customer", customer_key)
        both = len(selection.fact_row_ids(star))
        assert both <= store_only
