"""Tests for the PRML lexer."""

import pytest

from repro.errors import PRMLSyntaxError
from repro.prml import TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)][:-1]  # drop EOF


def values(source):
    return [t.value for t in tokenize(source)][:-1]


class TestBasics:
    def test_keywords_vs_identifiers(self):
        tokens = tokenize("Rule When do endWhen myIdent")
        assert [t.kind for t in tokens[:-1]] == [
            TokenKind.KEYWORD,
            TokenKind.KEYWORD,
            TokenKind.KEYWORD,
            TokenKind.KEYWORD,
            TokenKind.IDENT,
        ]

    def test_case_sensitivity(self):
        # 'rule' (lowercase) is not a keyword in the paper's syntax.
        assert kinds("rule") == [TokenKind.IDENT]

    def test_punctuation_and_operators(self):
        assert values("(a.b, c) <= 5 <> 3") == [
            "(", "a", ".", "b", ",", "c", ")", "<=", "5", "<>", "3",
        ]

    def test_eof_token(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind == TokenKind.EOF


class TestLiterals:
    def test_number(self):
        tokens = tokenize("42 3.25")
        assert [t.kind for t in tokens[:-1]] == [TokenKind.NUMBER] * 2

    def test_quantity(self):
        tokens = tokenize("5km 250m 2mi")
        assert [t.kind for t in tokens[:-1]] == [TokenKind.QUANTITY] * 3
        assert [t.value for t in tokens[:-1]] == ["5km", "250m", "2mi"]

    def test_quantity_case_insensitive_unit(self):
        tokens = tokenize("5KM")
        assert tokens[0].kind == TokenKind.QUANTITY
        assert tokens[0].value == "5km"

    def test_non_unit_suffix_splits(self):
        # Rule names like 5kmStores: NUMBER followed by IDENT.
        tokens = tokenize("5kmStores")
        assert [t.kind for t in tokens[:-1]] == [
            TokenKind.NUMBER,
            TokenKind.IDENT,
        ]

    def test_string(self):
        tokens = tokenize("'Regional Sales Manager'")
        assert tokens[0].kind == TokenKind.STRING
        assert tokens[0].value == "Regional Sales Manager"

    def test_string_escape(self):
        tokens = tokenize("'O''Hare'")
        assert tokens[0].value == "O'Hare"

    def test_unterminated_string(self):
        with pytest.raises(PRMLSyntaxError):
            tokenize("'oops")

    def test_decimal_quantity(self):
        tokens = tokenize("2.5km")
        assert tokens[0].kind == TokenKind.QUANTITY
        assert tokens[0].value == "2.5km"


class TestPositions:
    def test_line_and_column(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_error_carries_position(self):
        with pytest.raises(PRMLSyntaxError) as excinfo:
            tokenize("a\n  @")
        assert excinfo.value.line == 2


class TestComments:
    def test_hash_comment(self):
        assert values("a # comment\nb") == ["a", "b"]

    def test_double_slash_comment(self):
        assert values("a // comment\nb") == ["a", "b"]


class TestPathDots:
    def test_dot_after_number_is_punct_when_not_decimal(self):
        # "GeoMD.Store" style paths after numbers must not eat the dot.
        assert values("1.x") == ["1", ".", "x"]
