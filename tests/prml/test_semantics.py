"""Tests for PRML static semantic analysis."""

import pytest

from repro.data import (
    ALL_PAPER_RULES,
    build_motivating_user_model,
    build_sales_schema,
)
from repro.errors import PRMLSemanticError
from repro.geomd import GeoMDSchema, GeometricType
from repro.prml import SemanticAnalyzer, parse_rule


@pytest.fixture()
def analyzer():
    geo = GeoMDSchema.from_md(build_sales_schema())
    return SemanticAnalyzer(
        build_motivating_user_model(),
        geo,
        geo,
        parameters={"threshold": 3},
    )


class TestPaperRulesClean:
    def test_each_paper_rule_is_clean(self, analyzer):
        analyzer.known_layers = {"Airport", "Train"}
        for name, source in ALL_PAPER_RULES.items():
            issues = analyzer.analyze(parse_rule(source))
            assert issues == [], f"{name}: {issues}"


class TestSUSPaths:
    def test_wrong_user_class(self, analyzer):
        rule = parse_rule(
            "Rule:r When SessionStart do "
            "If (SUS.Nobody.name='x') then AddLayer('A', POINT) endIf endWhen"
        )
        issues = analyzer.analyze(rule)
        assert any("user class" in issue for issue in issues)

    def test_unknown_role(self, analyzer):
        rule = parse_rule(
            "Rule:r When SessionStart do "
            "If (SUS.DecisionMaker.dm2ghost.name='x') then "
            "AddLayer('A', POINT) endIf endWhen"
        )
        assert analyzer.analyze(rule)

    def test_path_past_property(self, analyzer):
        rule = parse_rule(
            "Rule:r When SessionStart do "
            "If (SUS.DecisionMaker.name.more='x') then "
            "AddLayer('A', POINT) endIf endWhen"
        )
        assert any("past property" in issue for issue in analyzer.analyze(rule))

    def test_set_content_target_must_be_property(self, analyzer):
        rule = parse_rule(
            "Rule:r When SessionStart do "
            "SetContent(SUS.DecisionMaker.dm2role, 'x') endWhen"
        )
        assert any("property" in issue for issue in analyzer.analyze(rule))


class TestMDPaths:
    def test_unknown_dimension(self, analyzer):
        rule = parse_rule(
            "Rule:r When SessionStart do "
            "BecomeSpatial(MD.Sales.Galaxy.geometry, POINT) endWhen"
        )
        assert analyzer.analyze(rule)

    def test_become_spatial_on_attribute_rejected(self, analyzer):
        rule = parse_rule(
            "Rule:r When SessionStart do "
            "BecomeSpatial(MD.Sales.Store.City.name, POINT) endWhen"
        )
        assert analyzer.analyze(rule)

    def test_become_spatial_plain_level_ok(self, analyzer):
        rule = parse_rule(
            "Rule:r When SessionStart do "
            "BecomeSpatial(MD.Sales.Store, POINT) endWhen"
        )
        assert analyzer.analyze(rule) == []

    def test_geometry_on_non_spatial_level_tolerated(self, analyzer):
        # Event patterns reference .geometry before spatialization.
        rule = parse_rule(
            "Rule:r When SpatialSelection(GeoMD.Store.City, "
            "Distance(GeoMD.Store.City.geometry, GeoMD.Store.City.geometry)<1km) do "
            "SetContent(SUS.DecisionMaker.dm2airportcity.degree, 1) endWhen"
        )
        assert analyzer.analyze(rule) == []


class TestForeach:
    def test_unknown_source(self, analyzer):
        rule = parse_rule(
            "Rule:r When SessionStart do "
            "Foreach x in (GeoMD.Nebula) SelectInstance(x) endForeach endWhen"
        )
        assert any("level or layer" in issue for issue in analyzer.analyze(rule))

    def test_known_layer_source(self, analyzer):
        analyzer.known_layers = {"Airport"}
        rule = parse_rule(
            "Rule:r When SessionStart do "
            "Foreach x in (GeoMD.Airport) SelectInstance(x) endForeach endWhen"
        )
        assert analyzer.analyze(rule) == []

    def test_layer_added_in_same_rule(self, analyzer):
        rule = parse_rule(
            "Rule:r When SessionStart do AddLayer('Metro', LINE) "
            "Foreach x in (GeoMD.Metro) SelectInstance(x) endForeach endWhen"
        )
        assert analyzer.analyze(rule) == []

    def test_unknown_level_attribute_on_variable(self, analyzer):
        rule = parse_rule(
            "Rule:r When SessionStart do "
            "Foreach s in (GeoMD.Store) "
            "If (s.altitude=1) then SelectInstance(s) endIf endForeach endWhen"
        )
        assert any("altitude" in issue for issue in analyzer.analyze(rule))

    def test_select_instance_needs_variable(self, analyzer):
        rule = parse_rule(
            "Rule:r When SessionStart do "
            "Foreach s in (GeoMD.Store) SelectInstance(GeoMD.Store) "
            "endForeach endWhen"
        )
        assert any("Foreach-bound" in issue for issue in analyzer.analyze(rule))


class TestTyping:
    def test_if_condition_must_be_boolean(self, analyzer):
        rule = parse_rule(
            "Rule:r When SessionStart do "
            "If (1 + 2) then AddLayer('A', POINT) endIf endWhen"
        )
        assert any("expected boolean" in issue for issue in analyzer.analyze(rule))

    def test_arithmetic_on_strings_flagged(self, analyzer):
        rule = parse_rule(
            "Rule:r When SessionStart do "
            "If (SUS.DecisionMaker.name + 1 > 2) then "
            "AddLayer('A', POINT) endIf endWhen"
        )
        assert any("arithmetic" in issue for issue in analyzer.analyze(rule))

    def test_mixed_equality_flagged(self, analyzer):
        rule = parse_rule(
            "Rule:r When SessionStart do "
            "If (SUS.DecisionMaker.name = 3) then "
            "AddLayer('A', POINT) endIf endWhen"
        )
        assert any("mixes" in issue for issue in analyzer.analyze(rule))

    def test_undefined_parameter_flagged(self, analyzer):
        analyzer.parameters = {}
        rule = parse_rule(
            "Rule:r When SessionStart do "
            "If (SUS.DecisionMaker.dm2airportcity.degree > missing) then "
            "AddLayer('A', POINT) endIf endWhen"
        )
        assert any("parameter" in issue for issue in analyzer.analyze(rule))

    def test_unary_distance_requires_intersection(self, analyzer):
        rule = parse_rule(
            "Rule:r When SessionStart do "
            "Foreach s in (GeoMD.Store) "
            "If (Distance(s.geometry) < 5km) then SelectInstance(s) endIf "
            "endForeach endWhen"
        )
        assert any("Intersection" in issue for issue in analyzer.analyze(rule))

    def test_spatial_predicate_arg_type(self, analyzer):
        rule = parse_rule(
            "Rule:r When SessionStart do "
            "Foreach s in (GeoMD.Store) "
            "If (Inside(s.name, s.geometry)) then SelectInstance(s) endIf "
            "endForeach endWhen"
        )
        assert any("expected geometry" in issue for issue in analyzer.analyze(rule))


class TestCheckRaises:
    def test_check_raises_with_all_issues(self, analyzer):
        rule = parse_rule(
            "Rule:bad When SessionStart do "
            "If (SUS.Nobody.x='1') then SetContent(SUS.Nobody.y, 2) endIf endWhen"
        )
        with pytest.raises(PRMLSemanticError, match="bad"):
            analyzer.check(rule)
