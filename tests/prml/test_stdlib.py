"""Tests for the PRML spatial-operator runtime semantics."""

import math

import pytest

from repro.errors import PRMLRuntimeError
from repro.geometry import (
    GeometryCollection,
    LineString,
    MultiPoint,
    PlanarMetric,
    Point,
    Polygon,
)
from repro.prml import (
    LineAnchoredCollection,
    SpatialFunction,
    prml_distance,
    prml_intersection,
    prml_predicate,
)

LINE = LineString([(0, 0), (100, 0), (100, 100)])


class TestOrderDependentIntersection:
    def test_line_point_gives_sublines(self):
        result = prml_intersection(LINE, Point(50, 0))
        assert isinstance(result, LineAnchoredCollection)
        assert len(result.anchors) == 1
        sublines = result.sublines
        assert len(sublines) == 2
        assert sublines[0].length == pytest.approx(50.0)

    def test_point_line_gives_points(self):
        result = prml_intersection(Point(50, 0), LINE)
        assert isinstance(result, MultiPoint)
        assert len(result) == 1

    def test_point_off_line_empty(self):
        result = prml_intersection(Point(50, 50), LINE)
        assert isinstance(result, GeometryCollection)
        assert result.is_empty

    def test_line_point_off_line_empty_collection(self):
        result = prml_intersection(LINE, Point(50, 50))
        assert isinstance(result, LineAnchoredCollection)
        assert result.is_empty

    def test_snap_tolerance(self):
        near = Point(50, 0.5)
        strict = prml_intersection(LINE, near, snap_tolerance=0.1)
        assert strict.is_empty
        loose = prml_intersection(LINE, near, snap_tolerance=1.0)
        assert not loose.is_empty

    def test_chained_intersection_accumulates_anchors(self):
        first = prml_intersection(LINE, Point(20, 0))
        second = prml_intersection(first, Point(100, 50))
        assert isinstance(second, LineAnchoredCollection)
        assert len(second.anchors) == 2

    def test_chained_with_off_line_point_empties(self):
        first = prml_intersection(LINE, Point(20, 0))
        second = prml_intersection(first, Point(500, 500))
        assert second.is_empty

    def test_anchored_with_non_point_rejected(self):
        first = prml_intersection(LINE, Point(20, 0))
        with pytest.raises(PRMLRuntimeError):
            prml_intersection(first, LINE)

    def test_generic_fallback_is_kernel(self):
        square = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])
        clipped = prml_intersection(LineString([(-5, 5), (15, 5)]), square)
        assert isinstance(clipped, LineString)
        assert clipped.length == pytest.approx(10.0)

    def test_non_geometry_rejected(self):
        with pytest.raises(PRMLRuntimeError):
            prml_intersection("nope", LINE)


class TestDistance:
    def test_binary(self):
        metric = PlanarMetric()
        assert prml_distance([Point(0, 0), Point(3, 4)], metric) == 5.0

    def test_unary_arc_along_line(self):
        metric = PlanarMetric()
        anchored = prml_intersection(LINE, Point(20, 0))
        anchored = prml_intersection(anchored, Point(100, 50))
        # Travel 20 -> corner (80) -> up 50: arc = 130.
        assert prml_distance([anchored], metric) == pytest.approx(130.0)

    def test_unary_single_anchor_is_infinite(self):
        metric = PlanarMetric()
        anchored = prml_intersection(LINE, Point(20, 0))
        assert prml_distance([anchored], metric) == math.inf

    def test_unary_empty_geometry_is_infinite(self):
        metric = PlanarMetric()
        assert prml_distance([GeometryCollection(())], metric) == math.inf

    def test_unary_plain_geometry_rejected(self):
        metric = PlanarMetric()
        with pytest.raises(PRMLRuntimeError):
            prml_distance([Point(0, 0)], metric)

    def test_binary_non_geometry_rejected(self):
        with pytest.raises(PRMLRuntimeError):
            prml_distance([Point(0, 0), 5], PlanarMetric())

    def test_wrong_arity(self):
        with pytest.raises(PRMLRuntimeError):
            prml_distance([], PlanarMetric())


class TestPredicates:
    SQUARE = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])

    def test_inside(self):
        assert prml_predicate(SpatialFunction.INSIDE, Point(5, 5), self.SQUARE)
        assert not prml_predicate(
            SpatialFunction.INSIDE, Point(50, 50), self.SQUARE
        )

    def test_intersect_disjoint_duality(self):
        a, b = Point(5, 5), self.SQUARE
        assert prml_predicate(SpatialFunction.INTERSECT, a, b) != prml_predicate(
            SpatialFunction.DISJOINT, a, b
        )

    def test_cross(self):
        line = LineString([(-5, 5), (15, 5)])
        assert prml_predicate(SpatialFunction.CROSS, line, self.SQUARE)

    def test_equals(self):
        assert prml_predicate(SpatialFunction.EQUALS, Point(1, 1), Point(1, 1))

    def test_anchored_collection_coerced(self):
        anchored = prml_intersection(LINE, Point(50, 0))
        assert prml_predicate(SpatialFunction.INTERSECT, anchored, LINE)

    def test_empty_operand_only_disjoint(self):
        empty = GeometryCollection(())
        assert prml_predicate(SpatialFunction.DISJOINT, empty, self.SQUARE)
        assert not prml_predicate(SpatialFunction.INTERSECT, empty, self.SQUARE)

    def test_non_predicate_rejected(self):
        with pytest.raises(PRMLRuntimeError):
            prml_predicate(SpatialFunction.DISTANCE, Point(0, 0), Point(1, 1))

    def test_non_geometry_rejected(self):
        with pytest.raises(PRMLRuntimeError):
            prml_predicate(SpatialFunction.INSIDE, "x", self.SQUARE)
