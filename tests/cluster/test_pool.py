"""End-to-end tests for the pre-fork worker pool.

A real 2-worker pool over a shared sqlite file, driven over HTTP with
the affinity-aware :class:`ClusterClient`: every worker answers health
with its own worker id, a token issued by one worker resolves in the
other (rehydration through the shared backend), and responses are
identical to a single-process portal's.
"""

import argparse
import http.client
import json

import pytest

from repro.cli import _build_portal_app
from repro.cluster.backend import SqliteBackend
from repro.cluster.pool import ClusterClient, WorkerPool

QUERY = "SELECT SUM(UnitSales) FROM Sales BY Product.Family"


def _args():
    return argparse.Namespace(
        datamart="sales", seed=7, threshold=1000, session_ttl=1800.0
    )


@pytest.fixture(scope="module")
def pool(tmp_path_factory):
    backend = SqliteBackend(
        str(tmp_path_factory.mktemp("pool") / "state.sqlite")
    )
    args = _args()
    pool = WorkerPool(
        lambda worker_id: _build_portal_app(args, backend=backend),
        workers=2,
    )
    pool.wait_ready(timeout=120.0)
    yield pool
    pool.stop()
    backend.close()


@pytest.fixture(scope="module")
def client(pool):
    client = ClusterClient(pool)
    yield client
    client.close()


def _shard_request(pool, worker, method, path, token=None):
    host, port = pool.shard_addresses[worker]
    conn = http.client.HTTPConnection(host, port, timeout=30)
    headers = {"X-Session": token} if token else {}
    conn.request(method, path, headers=headers)
    response = conn.getresponse()
    data = json.loads(response.read())
    conn.close()
    return response.status, data


class TestWorkerPool:
    def test_every_worker_reports_its_id(self, pool):
        ids = set()
        for worker in range(pool.workers):
            status, health = _shard_request(
                pool, worker, "GET", "/api/v1/health"
            )
            assert status == 200
            block = health["state_backend"]
            assert block["kind"] == "sqlite"
            ids.add(block["worker_id"])
        assert ids == {0, 1}

    def test_all_workers_alive(self, pool):
        assert pool.alive == pool.workers

    def test_token_resolves_in_every_worker(self, pool, client):
        status, login = client.request(
            "POST",
            "/api/v1/login",
            body={"user": "ana-garcia", "datamart": "sales"},
            datamart="sales",
        )
        assert status == 200
        token = login["token"]
        for worker in range(pool.workers):
            status, me = _shard_request(
                pool, worker, "GET", "/api/v1/me", token=token
            )
            assert status == 200
            assert me["user_id"] == "ana-garcia"

    def test_identical_query_responses_across_workers(self, pool, client):
        status, login = client.request(
            "POST",
            "/api/v1/login",
            body={"user": "ana-garcia", "datamart": "sales"},
            datamart="sales",
        )
        token = login["token"]
        rows = []
        for worker in range(pool.workers):
            host, port = pool.shard_addresses[worker]
            conn = http.client.HTTPConnection(host, port, timeout=30)
            conn.request(
                "POST",
                "/api/v1/query",
                body=json.dumps({"q": QUERY}).encode(),
                headers={
                    "X-Session": token,
                    "Content-Type": "application/json",
                },
            )
            response = conn.getresponse()
            data = json.loads(response.read())
            conn.close()
            assert response.status == 200
            rows.append(data["rows"])
        assert rows[0] == rows[1]

    def test_ring_affinity_is_stable(self, pool, client):
        worker = client.worker_for_tenant("sales")
        assert worker == client.worker_for_tenant("sales")
        assert 0 <= worker < pool.workers

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            WorkerPool(lambda worker_id: None, workers=0)
