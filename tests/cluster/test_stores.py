"""Tests for the backend-backed two-tier stores.

The contracts under test: tokens resolve in any store instance over the
shared backend (rehydration), spilled live sessions keep valid tokens,
expired sessions never resolve (live, cold, or mid-eviction — the TTL
hardening satellite), query/view entries published by one instance are
adopted by another, and the journal's sequence numbers and per-tenant
generations are backend counters, so they stay coherent across
instances.
"""

import pytest

from repro.cluster.backend import InMemoryBackend
from repro.cluster.stores import (
    BackendQueryCache,
    BackendSessionStore,
    BackendViewStore,
    BackendWorkloadJournal,
)
from repro.errors import UnauthorizedError
from repro.service import InMemorySessionStore
from repro.service.facade import CellSetPayload


class StubSession:
    def __init__(self):
        self.closed = False
        self.ended = 0

    def end(self):
        self.ended += 1
        self.closed = True


class Clock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture()
def clock():
    return Clock()


@pytest.fixture()
def backend():
    return InMemoryBackend()


def make_store(backend, clock, resolver=None, **kwargs):
    kwargs.setdefault("ttl", 10.0)
    kwargs.setdefault("max_live", 4)
    return BackendSessionStore(
        backend, namespace="t", clock=clock, resolver=resolver, **kwargs
    )


class TestBackendSessionStore:
    def test_put_get_roundtrip(self, backend, clock):
        store = make_store(backend, clock)
        session = StubSession()
        record = store.put(
            session, datamart="sales", user_id="ana", meta={"journal": True}
        )
        got = store.get(record.token)
        assert got.session is session
        assert got.datamart == "sales"
        assert got.meta == {"journal": True}
        assert len(store) == 1

    def test_cold_token_without_resolver_is_invalid(self, backend, clock):
        store = make_store(backend, clock, max_live=1)
        first = store.put(StubSession(), datamart="d", user_id="u1")
        store.put(StubSession(), datamart="d", user_id="u2")  # spills first
        assert store.stats()["spills"] == 1
        with pytest.raises(UnauthorizedError) as excinfo:
            store.get(first.token)
        assert excinfo.value.code == "invalid_session"

    def test_spilled_token_rehydrates_through_resolver(self, backend, clock):
        resolved = []

        def resolver(datamart, user_id, meta):
            resolved.append((datamart, user_id, dict(meta)))
            return StubSession()

        store = make_store(backend, clock, resolver=resolver, max_live=1)
        original = StubSession()
        first = store.put(
            original, datamart="d", user_id="u1", meta={"journal": False}
        )
        store.put(StubSession(), datamart="d", user_id="u2")
        assert original.ended == 1  # spill = in-heap eviction semantic
        record = store.get(first.token)  # rehydrates
        assert record.token == first.token
        assert record.user_id == "u1"
        assert record.meta == {"journal": False}
        assert resolved == [("d", "u1", {"journal": False})]
        assert store.stats()["rehydrations"] == 1

    def test_cross_instance_resolution(self, backend, clock):
        """A second store over the same backend+namespace (another
        worker) resolves tokens the first one issued."""
        first_store = make_store(backend, clock)
        record = first_store.put(
            StubSession(), datamart="d", user_id="u", meta={"n": 1}
        )
        second_store = make_store(
            backend, clock, resolver=lambda *a: StubSession()
        )
        got = second_store.get(record.token)
        assert got.user_id == "u"
        assert got.meta == {"n": 1}
        assert second_store.stats()["rehydrations"] == 1

    def test_persist_flushes_meta_mutations(self, backend, clock):
        store = make_store(backend, clock)
        record = store.put(StubSession(), datamart="d", user_id="u")
        with record.lock:
            record.meta["selections"] = [["t", "c"]]
            store.persist(record)
        other = make_store(backend, clock, resolver=lambda *a: StubSession())
        assert other.get(record.token).meta["selections"] == [["t", "c"]]

    def test_remove_deletes_both_tiers(self, backend, clock):
        store = make_store(backend, clock, resolver=lambda *a: StubSession())
        record = store.put(StubSession(), datamart="d", user_id="u")
        store.remove(record.token)
        assert len(store) == 0
        with pytest.raises(UnauthorizedError):
            store.get(record.token)

    def test_iter_yields_live_only(self, backend, clock):
        store = make_store(backend, clock, max_live=1)
        store.put(StubSession(), datamart="d", user_id="u1")
        keep = store.put(StubSession(), datamart="d", user_id="u2")
        assert [r.token for r in store] == [keep.token]
        assert len(store) == 2  # both records persisted

    def test_access_refresh_is_throttled(self, backend, clock):
        from repro.cluster.codecs import decode_session_record

        store = make_store(backend, clock, ttl=100.0)
        record = store.put(StubSession(), datamart="d", user_id="u")

        def persisted_access():
            return decode_session_record(
                backend.get("t:sessions", record.token)
            )["last_access"]

        clock.advance(2.0)  # < 5% of the TTL: read-only hot path
        store.get(record.token)
        assert persisted_access() == 0.0
        clock.advance(4.0)  # cumulative 6s >= 5s: refresh is due
        store.get(record.token)
        assert persisted_access() == 6.0

    def test_purge_expired_sweeps_cold_records(self, backend, clock):
        store = make_store(backend, clock, max_live=1, ttl=10.0)
        store.put(StubSession(), datamart="d", user_id="u1")
        store.put(StubSession(), datamart="d", user_id="u2")
        clock.advance(11.0)
        store.purge_expired()
        assert len(store) == 0

    def test_constructor_validation(self, backend, clock):
        with pytest.raises(ValueError):
            make_store(backend, clock, ttl=0)
        with pytest.raises(ValueError):
            make_store(backend, clock, max_live=0)


class TestTTLHardening:
    """Expired-but-not-yet-evicted sessions must not resolve by token —
    pinned for the in-heap store and both paths (live, cold) of the
    backend store."""

    @pytest.fixture(params=["memory", "backend"])
    def store(self, request, clock, backend):
        if request.param == "memory":
            return InMemorySessionStore(ttl=10.0, max_sessions=8, clock=clock)
        return make_store(
            backend, clock, ttl=10.0, resolver=lambda *a: StubSession()
        )

    def test_expired_live_session_does_not_resolve(self, store, clock):
        session = StubSession()
        record = store.put(session, datamart="d", user_id="u")
        clock.advance(10.5)  # expired, but no purge has run
        with pytest.raises(UnauthorizedError) as excinfo:
            store.get(record.token)
        assert excinfo.value.code == "session_expired"
        assert session.ended == 1
        # And the token stays dead afterwards, on every path.
        with pytest.raises(UnauthorizedError):
            store.get(record.token)

    def test_expired_cold_record_does_not_rehydrate(self, backend, clock):
        """The backend-specific race: a record whose live session was
        spilled must still honor the TTL — an available resolver must
        not resurrect an expired record."""
        store = make_store(
            backend,
            clock,
            ttl=10.0,
            max_live=1,
            resolver=lambda *a: StubSession(),
        )
        first = store.put(StubSession(), datamart="d", user_id="u1")
        store.put(StubSession(), datamart="d", user_id="u2")  # spills first
        clock.advance(10.5)
        with pytest.raises(UnauthorizedError) as excinfo:
            store.get(first.token)
        assert excinfo.value.code == "session_expired"
        assert store.stats()["rehydrations"] == 0
        # The expired record was dropped from the backend too.
        assert backend.get("t:sessions", first.token) is None


def _payload(value):
    return CellSetPayload(
        axes=("Family",),
        labels=(("Drink",),),
        rows=((value, 1.0),),
        fact_rows_scanned=10,
        fact_rows_matched=5,
    )


class TestBackendQueryCache:
    def test_l1_hit(self, backend):
        cache = BackendQueryCache(backend, namespace="t", max_size=4)
        key = ("sales", "Q", "fp", 3)
        assert cache.get(key) is None
        cache.put(key, _payload("a"))
        assert cache.get(key) == _payload("a")
        assert cache.hits == 1
        assert cache.misses == 1

    def test_peer_instance_gets_l2_hit(self, backend):
        first = BackendQueryCache(backend, namespace="t", max_size=4)
        key = ("sales", "Q", "fp", 3)
        first.put(key, _payload("a"))
        second = BackendQueryCache(backend, namespace="t", max_size=4)
        got = second.get(key)
        assert got == _payload("a")
        assert second.l2_hits == 1
        # Promoted into the L1: the next hit is heap-speed.
        assert second.get(key) == _payload("a")
        assert second.l2_hits == 1

    def test_namespaces_isolate(self, backend):
        first = BackendQueryCache(backend, namespace="a", max_size=4)
        second = BackendQueryCache(backend, namespace="b", max_size=4)
        key = ("sales", "Q", "fp", 1)
        first.put(key, _payload("a"))
        assert second.get(key) is None

    def test_corrupt_l2_entry_is_dropped(self, backend):
        cache = BackendQueryCache(backend, namespace="t", max_size=4)
        key = ("sales", "Q", "fp", 3)
        backend.put("t:qcache", cache._key_text(key), "{corrupt")
        assert cache.get(key) is None
        assert backend.get("t:qcache", cache._key_text(key)) is None

    def test_clear_clears_both_tiers(self, backend):
        cache = BackendQueryCache(backend, namespace="t", max_size=4)
        key = ("sales", "Q", "fp", 3)
        cache.put(key, _payload("a"))
        cache.clear()
        assert len(cache) == 0
        assert backend.count("t:qcache") == 0

    def test_l2_is_pruned(self, backend):
        cache = BackendQueryCache(
            backend, namespace="t", max_size=2, l2_max_rows=8
        )
        for i in range(64):  # 32-put prune cadence fires twice
            cache.put(("d", f"q{i}", "fp", 1), _payload(i))
        assert backend.count("t:qcache") <= 8
        assert len(cache) <= 2  # L1 keeps ThreadSafeLRU's bound


class TestBackendViewStore:
    @pytest.fixture()
    def selection(self, engine, profile, world):
        session = engine.start_session(
            profile, location=world.stores[0].location
        )
        return session.selection

    def test_peer_build_is_adopted(self, backend, star, selection):
        fact = star.fact_table().fact.name
        first = BackendViewStore(backend, namespace="t", max_size=8)
        built = first.get_or_build(star, star.schema, fact, selection)
        assert first.stats()["builds"] == 1
        assert first.stats()["l2_publishes"] == 1
        second = BackendViewStore(backend, namespace="t", max_size=8)
        adopted = second.get_or_build(star, star.schema, fact, selection)
        assert second.stats()["builds"] == 0
        assert second.stats()["l2_hits"] == 1
        assert adopted.fact_rows == built.fact_rows
        assert adopted.selection.fingerprint() == selection.fingerprint()

    def test_l1_hit_beats_l2(self, backend, star, selection):
        fact = star.fact_table().fact.name
        store = BackendViewStore(backend, namespace="t", max_size=8)
        store.get_or_build(star, star.schema, fact, selection)
        store.get_or_build(star, star.schema, fact, selection)
        stats = store.stats()
        assert stats["builds"] == 1
        assert stats["hits"] == 1
        assert stats["l2_hits"] == 0

    def test_invalidate_clears_published_entries(self, backend, star, selection):
        fact = star.fact_table().fact.name
        store = BackendViewStore(backend, namespace="t", max_size=8)
        store.get_or_build(star, star.schema, fact, selection)
        assert backend.count("t:views") == 1
        store.invalidate()
        assert backend.count("t:views") == 0
        assert store.stats()["entries"] == 0

    def test_stale_generation_is_unreachable(self, backend, star, selection):
        """A peer's entry for an older star state is never adopted — the
        generation in the key is the invalidation protocol."""
        fact = star.fact_table().fact.name
        first = BackendViewStore(backend, namespace="t", max_size=8)
        first.get_or_build(star, star.schema, fact, selection)
        star.note_member_change("Store")  # bump the generation
        second = BackendViewStore(backend, namespace="t", max_size=8)
        second.get_or_build(star, star.schema, fact, selection)
        assert second.stats()["l2_hits"] == 0
        assert second.stats()["builds"] == 1


class TestBackendWorkloadJournal:
    def test_round_trip_in_order(self, backend):
        journal = BackendWorkloadJournal(backend, namespace="t")
        journal.record_query("sales", "ana", "  SELECT X  ")
        journal.record_layer("sales", "ana", "airports")
        journal.record_selection(
            "sales", "ana", "GeoMD.Store.City", "cond",
            members=[("Store", "City", "madrid")],
        )
        events = journal.events("sales", "ana")
        assert [e.kind for e in events] == ["query", "layer", "selection"]
        assert events[0].payload["q"] == "SELECT X"
        assert events[2].payload["members"] == (("Store", "City", "madrid"),)
        assert journal.queries("sales", "ana") == ["SELECT X"]
        assert journal.layers("sales", "ana") == {"airports"}
        assert journal.member_profile("sales", "ana") == {
            ("Store", "City"): {"madrid"}
        }

    def test_generations_are_per_tenant(self, backend):
        journal = BackendWorkloadJournal(backend, namespace="t")
        assert journal.generation("sales") == 0
        journal.record_query("sales", "ana", "q1")
        journal.record_query("sales", "bo", "q2")
        journal.record_query("twin", "ana", "q3")
        assert journal.generation("sales") == 2
        assert journal.generation("twin") == 1

    def test_cross_instance_history(self, backend):
        """Another worker's journal over the same namespace appends to
        the same history with globally unique sequence numbers."""
        first = BackendWorkloadJournal(backend, namespace="t")
        second = BackendWorkloadJournal(backend, namespace="t")
        e1 = first.record_query("sales", "ana", "q1")
        e2 = second.record_query("sales", "ana", "q2")
        assert e2.seq > e1.seq
        assert [e.payload["q"] for e in first.events("sales", "ana")] == [
            "q1",
            "q2",
        ]
        assert second.generation("sales") == 2

    def test_per_user_cap_drops_oldest(self, backend):
        journal = BackendWorkloadJournal(
            backend, namespace="t", max_events_per_user=3
        )
        for i in range(5):
            journal.record_query("sales", "ana", f"q{i}")
        assert journal.queries("sales", "ana") == ["q2", "q3", "q4"]
        assert len(journal) == 3

    def test_users_and_stats(self, backend):
        journal = BackendWorkloadJournal(backend, namespace="t")
        journal.record_query("sales", "ana", "q")
        journal.record_query("sales", "bo", "q")
        journal.record_layer("twin", "carla", "rivers")
        assert journal.users("sales") == ["ana", "bo"]
        stats = journal.stats()
        assert stats["sales"] == {"users": 2, "events": 2, "generation": 2}
        assert stats["twin"] == {"users": 1, "events": 1, "generation": 1}

    def test_corrupt_event_degrades_not_raises(self, backend):
        journal = BackendWorkloadJournal(backend, namespace="t")
        journal.record_query("sales", "ana", "good")
        backend.put("t:journal", "sales\x1fana\x1f9999999999999999", "{bad")
        assert [e.payload["q"] for e in journal.events("sales", "ana")] == [
            "good"
        ]

    def test_unknown_kind_rejected(self, backend):
        journal = BackendWorkloadJournal(backend, namespace="t")
        with pytest.raises(ValueError):
            journal.record("sales", "ana", "clicks")
        with pytest.raises(ValueError):
            BackendWorkloadJournal(backend, namespace="t", max_events_per_user=0)
