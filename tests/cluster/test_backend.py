"""Tests for the pluggable state backends.

Both implementations must be interchangeable: everything here runs
against the in-memory backend and the sqlite file, plus a handful of
sqlite-only durability/fork cases (reopen the file, use the object on
both sides of a ``fork``).
"""

import multiprocessing

import pytest

from repro.cluster.backend import InMemoryBackend, SqliteBackend
from repro.errors import StorageError


@pytest.fixture(params=["memory", "sqlite"])
def backend(request, tmp_path):
    if request.param == "memory":
        yield InMemoryBackend()
    else:
        backend = SqliteBackend(str(tmp_path / "state.sqlite"))
        yield backend
        backend.close()


class TestKeyValue:
    def test_put_get_delete(self, backend):
        backend.put("s", "k", "v1")
        assert backend.get("s", "k") == "v1"
        backend.put("s", "k", "v2")
        assert backend.get("s", "k") == "v2"
        backend.delete("s", "k")
        assert backend.get("s", "k") is None
        backend.delete("s", "k")  # idempotent

    def test_values_must_be_text(self, backend):
        with pytest.raises(StorageError):
            backend.put("s", "k", {"not": "text"})
        with pytest.raises(StorageError):
            backend.put("s", "k", b"bytes")

    def test_stores_are_disjoint(self, backend):
        backend.put("a", "k", "in-a")
        backend.put("b", "k", "in-b")
        assert backend.get("a", "k") == "in-a"
        assert backend.get("b", "k") == "in-b"
        backend.clear("a")
        assert backend.get("a", "k") is None
        assert backend.get("b", "k") == "in-b"

    def test_items_sorted_and_prefix_scoped(self, backend):
        for key in ("u1\x1f003", "u1\x1f001", "u2\x1f002", "u1\x1f002"):
            backend.put("s", key, key)
        assert [k for k, _ in backend.items("s", "u1\x1f")] == [
            "u1\x1f001",
            "u1\x1f002",
            "u1\x1f003",
        ]
        assert backend.keys("s", "u2\x1f") == ["u2\x1f002"]
        assert len(backend.items("s")) == 4

    def test_count(self, backend):
        assert backend.count("s") == 0
        for i in range(5):
            backend.put("s", f"a{i}", "x")
        backend.put("s", "b0", "x")
        assert backend.count("s") == 6
        assert backend.count("s", "a") == 5
        assert backend.count("s", "nope") == 0

    def test_prune_drops_oldest_written(self, backend):
        for i in range(6):
            backend.put("s", f"k{i}", "x")
        assert backend.prune("s", 4) == 2
        assert backend.keys("s") == ["k2", "k3", "k4", "k5"]
        assert backend.prune("s", 4) == 0

    def test_re_put_refreshes_prune_age(self, backend):
        for i in range(4):
            backend.put("s", f"k{i}", "x")
        backend.put("s", "k0", "fresh")  # k0 is now youngest
        backend.prune("s", 2)
        assert backend.keys("s") == ["k0", "k3"]

    def test_prune_missing_store(self, backend):
        assert backend.prune("nope", 10) == 0


class TestCounters:
    def test_incr_and_read(self, backend):
        assert backend.counter("c") == 0
        assert backend.incr("c") == 1
        assert backend.incr("c", 5) == 6
        assert backend.counter("c") == 6

    def test_counters_prefix(self, backend):
        backend.incr("gen:sales", 3)
        backend.incr("gen:twin")
        backend.incr("seq", 9)
        assert backend.counters("gen:") == {"gen:sales": 3, "gen:twin": 1}
        assert len(backend.counters()) == 3


class TestIntrospection:
    def test_store_names_and_stats(self, backend):
        backend.put("b", "k", "x")
        backend.put("a", "k", "x")
        backend.incr("c")
        assert backend.store_names() == ["a", "b"]
        stats = backend.stats()
        assert stats["kind"] == backend.kind
        assert stats["stores"] == {"a": 1, "b": 1}
        assert stats["counters"] == 1


class TestSqliteDurability:
    def test_state_survives_reopen(self, tmp_path):
        path = str(tmp_path / "state.sqlite")
        first = SqliteBackend(path)
        first.put("s", "k", "v")
        first.incr("c", 7)
        first.close()
        second = SqliteBackend(path)
        try:
            assert second.get("s", "k") == "v"
            assert second.counter("c") == 7
            assert second.stats()["path"] == path
        finally:
            second.close()

    def test_usable_after_close(self, tmp_path):
        backend = SqliteBackend(str(tmp_path / "state.sqlite"))
        backend.put("s", "k", "v")
        backend.close()
        assert backend.get("s", "k") == "v"  # reopens lazily
        backend.close()

    def test_shared_across_fork(self, tmp_path):
        """The pre-fork pool's contract: the same backend object works in
        parent and child, and the child's writes are visible."""
        backend = SqliteBackend(str(tmp_path / "state.sqlite"))
        backend.put("s", "parent", "1")
        backend.incr("seq", 2)

        def child(b):
            b.put("s", "child", str(b.incr("seq")))

        context = multiprocessing.get_context("fork")
        process = context.Process(target=child, args=(backend,))
        process.start()
        process.join(timeout=30)
        assert process.exitcode == 0
        try:
            assert backend.get("s", "parent") == "1"
            assert backend.get("s", "child") == "3"
            assert backend.counter("seq") == 3
        finally:
            backend.close()
