"""Cross-version migration: a live in-memory portal moves to sqlite.

The satellite scenario end to end: a portal that grew up on the
(backend-backed) in-memory tier is migrated with
:func:`repro.cluster.migrate.migrate_backend` to a sqlite file, and a
*freshly constructed* service — new engines, new stores, a stand-in for
a new process — over the destination backend resumes it: the old
session token resolves through rehydration with its selection reports
replayed, the journal keeps its history and per-tenant generation
counters, and the migrated query cache still answers.
"""

import pytest

from repro.cluster.backend import InMemoryBackend, SqliteBackend
from repro.cluster.migrate import migrate_backend
from repro.cluster.stores import (
    BackendQueryCache,
    BackendSessionStore,
    BackendWorkloadJournal,
)
from repro.data import (
    ALL_PAPER_RULES,
    WorldConfig,
    WorldGeoSource,
    build_motivating_user_model,
    build_regional_manager_profile,
    build_sales_star,
    generate_world,
)
from repro.errors import UnauthorizedError
from repro.personalization import PersonalizationEngine
from repro.service import (
    DatamartRegistry,
    LoginRequest,
    PersonalizationService,
    QueryRequest,
    SelectionRequest,
)

QUERY = "SELECT SUM(UnitSales) FROM Sales BY Product.Family"
WIDEN_CONDITION = (
    "Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry)<20km"
)


def build_portal(backend):
    """A deterministic one-tenant portal over ``backend`` with fixed
    namespaces (the wiring the worker pool uses)."""
    world = generate_world(WorldConfig(seed=7))
    engine = PersonalizationEngine(
        build_sales_star(world),
        build_motivating_user_model(),
        geo_source=WorldGeoSource(world),
        parameters={"threshold": 3},
    )
    engine.add_rules(ALL_PAPER_RULES.values())
    registry = DatamartRegistry()
    sales = registry.register("sales", engine, description="paper scenario")
    sales.register_user(build_regional_manager_profile())
    store = BackendSessionStore(backend, namespace="portal", ttl=1800.0)
    service = PersonalizationService(
        registry,
        session_store=store,
        query_cache=BackendQueryCache(backend, namespace="portal"),
        journal=BackendWorkloadJournal(backend, namespace="portal"),
    )
    store.resolver = service._rehydrate_session
    return world, service


class TestLivePortalMigration:
    @pytest.fixture()
    def migrated(self, tmp_path):
        source = InMemoryBackend()
        world, old_service = build_portal(source)
        token = old_service.login(
            LoginRequest(
                user="ana-garcia",
                datamart=None,
                location=world.stores[0].location,
            )
        ).token
        baseline = old_service.query(token, QueryRequest(q=QUERY))
        old_service.record_selection(
            token,
            SelectionRequest(
                target="GeoMD.Store.City", condition=WIDEN_CONDITION
            ),
        )
        generation = old_service.journal.generation("sales")
        assert generation > 0

        destination = SqliteBackend(str(tmp_path / "migrated.sqlite"))
        counts = migrate_backend(source, destination)
        _world, new_service = build_portal(destination)
        yield {
            "token": token,
            "baseline": baseline,
            "generation": generation,
            "counts": counts,
            "old_service": old_service,
            "new_service": new_service,
        }
        destination.close()

    def test_every_store_row_copied(self, migrated):
        counts = migrated["counts"]
        assert counts["portal:sessions"] == 1
        assert counts["portal:journal"] == 2  # query + selection events
        assert counts["portal:qcache"] >= 1
        assert counts["counters"] >= 2  # journal seq + tenant generation

    def test_old_token_resolves_in_new_process(self, migrated):
        record = migrated["new_service"].sessions.get(migrated["token"])
        assert record.user_id == "ana-garcia"
        assert record.datamart == "sales"
        # The selection report was replayed into the rebuilt session.
        assert record.meta["selections"] == [
            ["GeoMD.Store.City", WIDEN_CONDITION]
        ]
        assert migrated["new_service"].sessions.stats()["rehydrations"] == 1

    def test_queries_resume_with_identical_results(self, migrated):
        result = migrated["new_service"].query(
            migrated["token"], QueryRequest(q=QUERY)
        )
        assert result.rows == migrated["baseline"].rows
        assert result.axes == migrated["baseline"].axes

    def test_journal_history_and_generations_survive(self, migrated):
        new_journal = migrated["new_service"].journal
        assert new_journal.generation("sales") == migrated["generation"]
        events = new_journal.events("sales", "ana-garcia")
        assert [e.kind for e in events] == ["query", "selection"]
        assert events[0].payload["q"] == QUERY
        # New traffic keeps counting from the migrated counters: the
        # recommender's generation-keyed memos stay strictly ordered.
        new_journal.record_query("sales", "ana-garcia", "q2")
        assert new_journal.generation("sales") == migrated["generation"] + 1
        assert events[-1].seq < new_journal.events("sales", "ana-garcia")[-1].seq

    def test_logout_in_new_process_kills_the_token(self, migrated):
        migrated["new_service"].logout(migrated["token"])
        with pytest.raises(UnauthorizedError):
            migrated["new_service"].sessions.get(migrated["token"])
