"""The health endpoint's per-backend state tier stats (``state_backend``).

The cluster mode's load balancer (and CI's cluster job) reads this
block: backend kind, rows per store, and the pool worker id.  Default
mode must report ``memory`` *without* creating any state file.
"""

import pytest

from repro.cluster.backend import InMemoryBackend
from repro.cluster.stores import (
    BackendQueryCache,
    BackendSessionStore,
    BackendWorkloadJournal,
)
from repro.data import build_regional_manager_profile
from repro.service import (
    DatamartRegistry,
    LoginRequest,
    PersonalizationService,
    QueryRequest,
)

QUERY = "SELECT SUM(UnitSales) FROM Sales BY Product.Family"


@pytest.fixture()
def registry(engine, user_schema):
    registry = DatamartRegistry()
    sales = registry.register("sales", engine, description="paper scenario")
    sales.register_user(build_regional_manager_profile(user_schema))
    return registry


class TestDefaultMode:
    def test_health_reports_memory_tier(self, registry, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        monkeypatch.delenv("REPRO_WORKER_ID", raising=False)
        service = PersonalizationService(registry)
        block = service.health()["state_backend"]
        assert block["kind"] == "memory"
        assert block["worker_id"] is None
        assert block["stores"] == {}


class TestBackendMode:
    @pytest.fixture()
    def service(self, registry):
        backend = InMemoryBackend()
        store = BackendSessionStore(backend, namespace="portal", ttl=1800.0)
        service = PersonalizationService(
            registry,
            session_store=store,
            query_cache=BackendQueryCache(backend, namespace="portal"),
            journal=BackendWorkloadJournal(backend, namespace="portal"),
        )
        store.resolver = service._rehydrate_session
        return service

    def test_health_reports_per_store_rows(self, registry, service, world):
        token = service.login(
            LoginRequest(
                user="ana-garcia",
                datamart=None,
                location=world.stores[0].location,
            )
        ).token
        service.query(token, QueryRequest(q=QUERY))
        block = service.health()["state_backend"]
        assert block["kind"] == "memory"
        assert block["stores"]["portal:sessions"] == 1
        assert block["stores"]["portal:qcache"] == 1
        assert block["stores"]["portal:journal"] == 1
        sessions = block["sessions"]
        assert sessions["live"] == 1
        assert sessions["persisted"] == 1
        assert sessions["rehydrations"] == 0

    def test_worker_id_travels_through(self, registry, service, monkeypatch):
        monkeypatch.setenv("REPRO_WORKER_ID", "3")
        assert service.health()["state_backend"]["worker_id"] == 3

    def test_health_is_served_by_the_portal(self, service):
        """The block reaches the HTTP surface unfiltered."""
        from repro.web import PortalApp

        response = PortalApp(service=service).handle("GET", "/api/v1/health")
        assert response.ok
        block = response.json()["state_backend"]
        assert set(block) >= {"kind", "stores", "worker_id"}
