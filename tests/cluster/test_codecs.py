"""Round-trip property tests for the serialization codecs.

Every entry kind a backend holds must decode back to an equal live
object (hypothesis-generated payloads), and every corrupt payload must
be rejected with :class:`CodecError` — never decoded into garbage.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster.codecs import (
    CodecError,
    decode_journal_event,
    decode_mutation_event,
    decode_query_payload,
    decode_session_record,
    decode_view_entry,
    encode_journal_event,
    encode_mutation_event,
    encode_query_payload,
    encode_session_record,
    encode_view_entry,
)
from repro.reco.journal import WorkloadEvent
from repro.service.facade import CellSetPayload
from repro.storage.star import StarMutation, freeze_payload

# JSON-exact scalars: finite floats round-trip bit-for-bit through
# json.dumps/loads, NaN would break equality checks.
_scalar = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=20),
)

_json_value = st.recursive(
    _scalar,
    lambda inner: st.one_of(
        st.lists(inner, max_size=4),
        st.dictionaries(st.text(max_size=10), inner, max_size=4),
    ),
    max_leaves=12,
)

_meta = st.dictionaries(st.text(max_size=16), _json_value, max_size=5)


class TestSessionRecordCodec:
    @given(
        token=st.text(min_size=1, max_size=30),
        datamart=st.text(min_size=1, max_size=20),
        user_id=st.text(min_size=1, max_size=20),
        created_at=st.floats(min_value=0, max_value=1e9),
        last_access=st.floats(min_value=0, max_value=1e9),
        meta=_meta,
    )
    @settings(max_examples=80, suppress_health_check=[HealthCheck.too_slow])
    def test_round_trip(
        self, token, datamart, user_id, created_at, last_access, meta
    ):
        encoded = encode_session_record(
            token=token,
            datamart=datamart,
            user_id=user_id,
            created_at=created_at,
            last_access=last_access,
            meta=meta,
        )
        fields = decode_session_record(encoded)
        assert fields["token"] == token
        assert fields["datamart"] == datamart
        assert fields["user_id"] == user_id
        assert fields["created_at"] == created_at
        assert fields["last_access"] == last_access
        assert fields["meta"] == json.loads(json.dumps(meta))

    @pytest.mark.parametrize(
        "text",
        [
            "not json {",
            "[1, 2, 3]",
            '"a string"',
            json.dumps({"v": 99, "token": "t"}),
            json.dumps({"token": "t"}),  # no version at all
            json.dumps({"v": 1, "token": 17, "datamart": "d", "user_id": "u",
                        "created_at": 0, "last_access": 0, "meta": {}}),
            json.dumps({"v": 1, "token": "t", "datamart": "d", "user_id": "u",
                        "created_at": "soon", "last_access": 0, "meta": {}}),
            json.dumps({"v": 1, "token": "t", "datamart": "d", "user_id": "u",
                        "created_at": 0, "last_access": 0, "meta": [1]}),
        ],
    )
    def test_corrupt_rejected(self, text):
        with pytest.raises(CodecError):
            decode_session_record(text)


class TestJournalEventCodec:
    @given(
        seq=st.integers(min_value=1, max_value=2**40),
        kind=st.sampled_from(["query", "selection", "layer"]),
        datamart=st.text(min_size=1, max_size=20),
        user_id=st.text(min_size=1, max_size=20),
        payload=st.dictionaries(st.text(max_size=10), _json_value, max_size=4),
    )
    @settings(max_examples=80, suppress_health_check=[HealthCheck.too_slow])
    def test_round_trip(self, seq, kind, datamart, user_id, payload):
        event = WorkloadEvent(
            seq=seq, kind=kind, datamart=datamart, user_id=user_id,
            payload=payload,
        )
        decoded = decode_journal_event(encode_journal_event(event))
        assert decoded.seq == event.seq
        assert decoded.kind == event.kind
        assert decoded.datamart == event.datamart
        assert decoded.user_id == event.user_id
        # Both payloads went through _freeze; equality is deep.
        assert decoded.payload == event.payload

    def test_decoded_payload_is_frozen(self):
        event = WorkloadEvent(
            seq=1, kind="query", datamart="d", user_id="u",
            payload={"q": "SELECT", "tags": ["a", "b"]},
        )
        decoded = decode_journal_event(encode_journal_event(event))
        with pytest.raises(TypeError):
            decoded.payload["q"] = "overwritten"
        assert isinstance(decoded.payload["tags"], tuple)

    @pytest.mark.parametrize(
        "text",
        [
            "garbage",
            json.dumps({"v": 2, "seq": 1}),
            json.dumps({"v": 1, "seq": "one", "kind": "query",
                        "datamart": "d", "user_id": "u", "payload": {}}),
            json.dumps({"v": 1, "seq": 1, "kind": "query",
                        "datamart": "d", "user_id": "u", "payload": "no"}),
        ],
    )
    def test_corrupt_rejected(self, text):
        with pytest.raises(CodecError):
            decode_journal_event(text)


class TestQueryPayloadCodec:
    @given(
        axes=st.lists(st.text(min_size=1, max_size=10), max_size=3).map(tuple),
        labels=st.lists(
            st.lists(st.text(max_size=8), max_size=3).map(tuple), max_size=3
        ).map(tuple),
        rows=st.lists(
            st.lists(_scalar, max_size=4).map(tuple), max_size=6
        ).map(tuple),
        scanned=st.integers(min_value=0, max_value=10**6),
        matched=st.integers(min_value=0, max_value=10**6),
        stamps=st.lists(
            st.tuples(
                st.sampled_from(["fact", "schema", "member", "layer"]),
                st.text(max_size=10),
                st.integers(min_value=0, max_value=10**6),
            ),
            max_size=4,
        ).map(tuple),
    )
    @settings(max_examples=80, suppress_health_check=[HealthCheck.too_slow])
    def test_round_trip(self, axes, labels, rows, scanned, matched, stamps):
        payload = CellSetPayload(
            axes=axes,
            labels=labels,
            rows=rows,
            fact_rows_scanned=scanned,
            fact_rows_matched=matched,
            stamps=stamps,
        )
        decoded = decode_query_payload(encode_query_payload(payload))
        assert decoded == payload
        # Frozen all the way down: rows stay tuples of tuples.
        assert all(isinstance(row, tuple) for row in decoded.rows)
        assert all(isinstance(stamp, tuple) for stamp in decoded.stamps)

    def test_v1_rows_are_version_skew_misses(self):
        """A pre-PR 9 (v1) row carries no stamps and therefore no proof
        of freshness — the version check must reject it so the caller
        treats it as a miss and rebuilds."""
        v1 = json.dumps(
            {"v": 1, "axes": [], "labels": [], "rows": [],
             "fact_rows_scanned": 0, "fact_rows_matched": 0}
        )
        with pytest.raises(CodecError):
            decode_query_payload(v1)

    @pytest.mark.parametrize(
        "text",
        [
            "nope",
            json.dumps({"v": 2, "axes": [1], "labels": [], "rows": [],
                        "fact_rows_scanned": 0, "fact_rows_matched": 0,
                        "stamps": []}),
            json.dumps({"v": 2, "axes": [], "labels": [], "rows": ["flat"],
                        "fact_rows_scanned": 0, "fact_rows_matched": 0,
                        "stamps": []}),
            json.dumps({"v": 2, "axes": [], "labels": [], "rows": [],
                        "fact_rows_scanned": "lots", "fact_rows_matched": 0,
                        "stamps": []}),
            json.dumps({"v": 2, "axes": [], "labels": [], "rows": [],
                        "fact_rows_scanned": 0, "fact_rows_matched": 0,
                        "stamps": [["fact", "Sales"]]}),
            json.dumps({"v": 2, "axes": [], "labels": [], "rows": [],
                        "fact_rows_scanned": 0, "fact_rows_matched": 0,
                        "stamps": [["fact", "Sales", "new"]]}),
        ],
    )
    def test_corrupt_rejected(self, text):
        with pytest.raises(CodecError):
            decode_query_payload(text)


class TestViewEntryCodec:
    @pytest.fixture()
    def view(self, engine, profile, world):
        session = engine.start_session(
            profile, location=world.stores[0].location
        )
        return session.view()

    def test_round_trip(self, view, star):
        fingerprint = view.selection.fingerprint()
        encoded = encode_view_entry(view)
        decoded = decode_view_entry(encoded, star, star.schema, fingerprint)
        assert decoded.fact == view.fact
        assert decoded.fact_rows == list(view.fact_rows)
        assert decoded.selection.members == view.selection.members
        assert decoded.selection.features == view.selection.features
        assert decoded.selection.fingerprint() == fingerprint
        assert decoded.star is star

    def test_fingerprint_mismatch_rejected(self, view, star):
        encoded = encode_view_entry(view)
        with pytest.raises(CodecError):
            decode_view_entry(encoded, star, star.schema, "sha1:not-it")

    def test_tampered_members_rejected(self, view, star):
        """Corruption the field checks miss still fails the fingerprint
        content check."""
        fingerprint = view.selection.fingerprint()
        data = json.loads(encode_view_entry(view))
        data["members"] = data["members"][1:]  # drop one entry
        with pytest.raises(CodecError):
            decode_view_entry(
                json.dumps(data), star, star.schema, fingerprint
            )

    def test_non_integer_fact_rows_rejected(self, view, star):
        fingerprint = view.selection.fingerprint()
        data = json.loads(encode_view_entry(view))
        data["fact_rows"] = ["zero", 1]
        with pytest.raises(CodecError):
            decode_view_entry(
                json.dumps(data), star, star.schema, fingerprint
            )

    @pytest.mark.parametrize(
        "text", ["{broken", json.dumps({"v": 5}), json.dumps([1, 2])]
    )
    def test_corrupt_rejected(self, text, star):
        with pytest.raises(CodecError):
            decode_view_entry(text, star, star.schema, "fp")


class TestMutationEventCodec:
    @given(
        kind=st.sampled_from(["fact", "member", "feature", "schema"]),
        generation=st.integers(min_value=1, max_value=2**40),
        dimension=st.one_of(st.none(), st.text(min_size=1, max_size=12)),
        layer=st.one_of(st.none(), st.text(min_size=1, max_size=12)),
        fact=st.one_of(st.none(), st.text(min_size=1, max_size=12)),
        row_ids=st.lists(
            st.integers(min_value=0, max_value=10**6), max_size=5
        ).map(tuple),
        op=st.one_of(
            st.none(),
            st.sampled_from(
                ["add", "update", "append", "bulk", "add_layer",
                 "become_spatial"]
            ),
        ),
        details=st.dictionaries(
            st.text(min_size=1, max_size=10), _json_value, max_size=4
        ),
    )
    @settings(max_examples=80, suppress_health_check=[HealthCheck.too_slow])
    def test_round_trip(
        self, kind, generation, dimension, layer, fact, row_ids, op, details
    ):
        mutation = StarMutation(
            kind=kind,
            generation=generation,
            dimension=dimension,
            layer=layer,
            fact=fact,
            row_ids=row_ids,
            op=op,
            payload=freeze_payload(details),
        )
        decoded = decode_mutation_event(encode_mutation_event(mutation))
        assert decoded == mutation

    def test_geometry_payload_round_trips(self):
        from repro.geometry import Point

        mutation = StarMutation(
            kind="feature",
            generation=7,
            layer="Airport",
            op="add",
            payload=freeze_payload(
                {"name": "Test Field", "geometry": Point(1.5, -2.25),
                 "attributes": {"iata": "TST"}}
            ),
        )
        decoded = decode_mutation_event(encode_mutation_event(mutation))
        assert decoded == mutation
        assert decoded.is_feature_add
        geometry = decoded.payload_dict()["geometry"]
        assert geometry == Point(1.5, -2.25)

    def test_version_skew_rejected(self):
        """A future-layout row must decode to a miss, not to garbage —
        the PR 8 codec contract applied to the mutation log."""
        data = json.loads(
            encode_mutation_event(
                StarMutation(kind="fact", generation=1, fact="Sales",
                             row_ids=(0,), op="append")
            )
        )
        data["v"] = 99
        with pytest.raises(CodecError):
            decode_mutation_event(json.dumps(data))

    @pytest.mark.parametrize(
        "text",
        [
            "{broken",
            json.dumps([1]),
            json.dumps({"v": 1, "kind": 3, "generation": 1,
                        "row_ids": [], "payload": []}),
            json.dumps({"v": 1, "kind": "fact", "generation": "one",
                        "row_ids": [], "payload": []}),
            json.dumps({"v": 1, "kind": "fact", "generation": 1,
                        "row_ids": ["zero"], "payload": []}),
            json.dumps({"v": 1, "kind": "member", "generation": 1,
                        "dimension": 9, "row_ids": [], "payload": []}),
            json.dumps({"v": 1, "kind": "feature", "generation": 1,
                        "row_ids": [], "payload": [["geometry",
                        {"__wkt__": "POINT (broken"}]]}),
            json.dumps({"v": 1, "kind": "feature", "generation": 1,
                        "row_ids": [], "payload": [["geometry",
                        {"x": 1, "y": 2}]]}),
        ],
    )
    def test_corrupt_rejected(self, text):
        with pytest.raises(CodecError):
            decode_mutation_event(text)
