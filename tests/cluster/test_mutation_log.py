"""PR 9: the mutation log across the persistent state tier.

Contracts under test, against both ``REPRO_BACKEND`` tiers (memory and
sqlite): every mutation a star appends to a :class:`BackendMutationLog`
is published as a versioned event a *peer* instance over the same
backend can fetch and decode back to an equal typed delta; a gap,
corrupt row or version-skewed row breaks the chain and decodes to a
miss (``None`` — the caller rebuilds rather than silently skipping a
change); and the snapshot checkpoint + log-replay round trip holds with
the backend-backed log in place: answers recorded at generation ``g``
are served bit-identical by ``as_of=g`` after further churn.
"""

import json

import pytest

from repro.cluster.backend import InMemoryBackend, SqliteBackend
from repro.cluster.stores import BackendMutationLog
from repro.olap.gmdql import parse_query
from repro.olap.query import execute
from repro.storage.snapshot import StarHistory

QUERY = "SELECT SUM(UnitSales) FROM Sales BY Product.Family"


@pytest.fixture(params=["memory", "sqlite"])
def backend(request, tmp_path):
    if request.param == "memory":
        yield InMemoryBackend()
    else:
        backend = SqliteBackend(str(tmp_path / "state.sqlite"))
        yield backend
        backend.close()


@pytest.fixture()
def log(star, backend):
    return BackendMutationLog.adopt(star, backend, namespace="t")


_MUTATION_ROUND = 0


def _mutate(star):
    """One mutation of each replayable kind (member, schema, feature,
    fact append); member/feature names vary per call so repeated rounds
    stay genuine inserts."""
    global _MUTATION_ROUND
    _MUTATION_ROUND += 1
    from repro.geomd import GeometricType
    from repro.geometry import Point

    star.add_member("Product", "Family", f"Exotic-{_MUTATION_ROUND}")
    star.schema.add_layer("Harbour", GeometricType.POINT)
    star.ensure_layer_table("Harbour")
    star.add_feature(
        "Harbour", f"Pier {_MUTATION_ROUND}", Point(3.0, float(_MUTATION_ROUND))
    )
    fact_table = star.fact_table()
    row = fact_table.row(0)
    star.insert_fact(
        fact_table.fact.name,
        {d: row[d] for d in fact_table.fact.dimension_names},
        {m: row[m] for m in fact_table.fact.measures},
    )


class TestBackendMutationLog:
    def test_adopt_swaps_and_publishes(self, star, backend):
        star.add_member("Product", "Family", "Exotic")
        retained = star.mutation_log.entries()
        log = BackendMutationLog.adopt(star, backend, namespace="t")
        assert star.mutation_log is log
        assert log.entries() == retained
        # The pre-adoption entries were published too.
        assert backend.count("t:mutations") == len(retained)

    def test_peer_fetches_equal_deltas(self, star, log, backend):
        start = star.generation
        _mutate(star)
        end = star.generation
        # A fresh instance over the same backend, no local entries.
        peer = BackendMutationLog(backend, namespace="t")
        assert len(peer) == 0
        fetched = peer.fetch(start, end)
        assert fetched == log.between(start, end)
        assert [m.generation for m in fetched] == list(
            range(start + 1, end + 1)
        )

    def test_gap_is_a_miss(self, star, log, backend):
        start = star.generation
        _mutate(star)
        end = star.generation
        backend.delete("t:mutations", f"{start + 2:012d}")
        assert log.fetch(start, end) is None

    def test_corrupt_row_is_a_miss_and_deleted(self, star, log, backend):
        start = star.generation
        _mutate(star)
        end = star.generation
        key = f"{start + 1:012d}"
        backend.put("t:mutations", key, "{broken")
        assert log.fetch(start, end) is None
        # Poisoned rows are dropped, mirroring every other codec consumer.
        assert backend.get("t:mutations", key) is None

    def test_version_skew_row_is_a_miss(self, star, log, backend):
        start = star.generation
        _mutate(star)
        end = star.generation
        key = f"{end:012d}"
        data = json.loads(backend.get("t:mutations", key))
        data["v"] = 99
        backend.put("t:mutations", key, json.dumps(data))
        assert log.fetch(start, end) is None

    def test_stats_cover_the_l2(self, star, log, backend):
        before = log.kind_counts()
        _mutate(star)
        stats = log.stats()
        assert stats["l2_publishes"] == stats["length"]
        assert stats["persisted"] == backend.count("t:mutations")
        deltas = {
            kind: count - before.get(kind, 0)
            for kind, count in stats["kinds"].items()
            if count != before.get(kind, 0)
        }
        assert deltas == {"member": 1, "schema": 1, "feature": 1, "fact": 1}


class TestAsOfRoundTrip:
    def test_checkpoint_plus_replay_round_trip(self, star, log):
        """Answers recorded at generation ``g`` are bit-identical under
        ``as_of=g`` after member/feature/fact churn, with the star's log
        riding the persistent backend."""
        history = StarHistory.attach(star)
        query = parse_query(QUERY, star.schema)
        recorded = {}
        for _ in range(3):
            generation = star.generation
            recorded[generation] = execute(star, query).to_rows()
            _mutate(star)
        recorded[star.generation] = execute(star, query).to_rows()
        assert len(recorded) == 4
        for generation, rows in recorded.items():
            replayed = execute(star, query, as_of=generation)
            assert replayed.to_rows() == rows
        assert history.stats()["replays"] > 0
