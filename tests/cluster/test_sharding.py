"""Tests for the tenant-affinity consistent-hash ring."""

import pytest

from repro.cluster.sharding import ConsistentHashRing

TENANTS = [f"datamart-{i}" for i in range(64)]


class TestConsistentHashRing:
    def test_lookup_is_deterministic(self):
        first = ConsistentHashRing(range(4))
        second = ConsistentHashRing(range(4))
        assert [first.lookup(t) for t in TENANTS] == [
            second.lookup(t) for t in TENANTS
        ]

    def test_lookup_stays_on_the_ring(self):
        ring = ConsistentHashRing(range(3))
        assert {ring.lookup(t) for t in TENANTS} <= {0, 1, 2}

    def test_every_node_owns_something(self):
        ring = ConsistentHashRing(range(4))
        assignments = ring.assignments(TENANTS)
        assert set(assignments) == {0, 1, 2, 3}

    def test_resize_remaps_a_bounded_fraction(self):
        """The property the ring exists for: adding a worker must remap
        only the tenants the new worker takes over — every other tenant
        keeps its warm worker."""
        before = ConsistentHashRing(range(4))
        after = ConsistentHashRing(range(5))
        moved = [t for t in TENANTS if before.lookup(t) != after.lookup(t)]
        assert all(after.lookup(t) == 4 for t in moved)
        assert len(moved) < len(TENANTS) / 2

    def test_remove_reassigns_only_the_lost_node(self):
        ring = ConsistentHashRing(range(4))
        owned_by_2 = [t for t in TENANTS if ring.lookup(t) == 2]
        others = {t: ring.lookup(t) for t in TENANTS if ring.lookup(t) != 2}
        ring.remove(2)
        assert len(ring) == 3
        for tenant, owner in others.items():
            assert ring.lookup(tenant) == owner
        for tenant in owned_by_2:
            assert ring.lookup(tenant) != 2

    def test_empty_ring_raises(self):
        with pytest.raises(LookupError):
            ConsistentHashRing().lookup("x")
        with pytest.raises(ValueError):
            ConsistentHashRing(replicas=0)
