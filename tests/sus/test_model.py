"""Tests for the spatial-aware user model (schema + runtime profile)."""

import pytest

from repro.data import build_motivating_user_model
from repro.errors import UserModelError
from repro.geometry import Point
from repro.sus import (
    SUSStereotype,
    UserAssociation,
    UserClass,
    UserModelSchema,
    UserProfile,
)
from repro.uml.core import STRING


class TestSchema:
    def test_requires_exactly_one_user_class(self):
        with pytest.raises(UserModelError):
            UserModelSchema(
                "M", [UserClass("Role", SUSStereotype.CHARACTERISTIC)]
            )
        with pytest.raises(UserModelError):
            UserModelSchema(
                "M",
                [
                    UserClass("A", SUSStereotype.USER),
                    UserClass("B", SUSStereotype.USER),
                ],
            )

    def test_spatial_selection_gets_degree(self):
        cls = UserClass("AirportCity", SUSStereotype.SPATIAL_SELECTION)
        assert cls.properties["degree"].name == "Integer"
        assert cls.defaults["degree"] == 0

    def test_location_context_gets_geometry(self):
        cls = UserClass("Location", SUSStereotype.LOCATION_CONTEXT)
        assert cls.properties["geometry"].name == "Geometry"

    def test_association_validation(self):
        with pytest.raises(UserModelError):
            UserModelSchema(
                "M",
                [UserClass("U", SUSStereotype.USER)],
                [UserAssociation("U", "r", "Ghost")],
            )

    def test_duplicate_role_rejected(self):
        schema = build_motivating_user_model()
        with pytest.raises(UserModelError):
            schema.add_association(
                UserAssociation("DecisionMaker", "dm2role", "Role")
            )

    def test_navigate(self):
        schema = build_motivating_user_model()
        assert schema.navigate("DecisionMaker", "name") == ("property", "String")
        assert schema.navigate("DecisionMaker", "dm2role") == (
            "association",
            "Role",
        )
        with pytest.raises(UserModelError, match="roles"):
            schema.navigate("DecisionMaker", "bogus")

    def test_to_uml_has_stereotypes(self):
        model = build_motivating_user_model().to_uml()
        assert model.cls("DecisionMaker").has_stereotype("User")
        assert model.cls("AirportCity").has_stereotype("SpatialSelection")
        assert model.cls("Location").has_stereotype("LocationContext")
        assert "GeometricTypes" in model.enumerations

    def test_default_for_unknown_property_rejected(self):
        with pytest.raises(UserModelError):
            UserClass(
                "C",
                SUSStereotype.CHARACTERISTIC,
                properties={"a": STRING},
                defaults={"b": 1},
            )


class TestProfilePaths:
    @pytest.fixture()
    def profile(self):
        return UserProfile(build_motivating_user_model(), "u1")

    def test_set_and_get(self, profile):
        profile.set("DecisionMaker.name", "Ana")
        assert profile.get("DecisionMaker.name") == "Ana"

    def test_nested_set_auto_creates(self, profile):
        profile.set("DecisionMaker.dm2role.name", "Manager")
        assert profile.get("DecisionMaker.dm2role.name") == "Manager"

    def test_get_unset_value_fails(self, profile):
        with pytest.raises(UserModelError, match="has not been set"):
            profile.get("DecisionMaker.name")

    def test_degree_defaults_to_zero_on_read(self, profile):
        assert profile.get("DecisionMaker.dm2airportcity.degree") == 0

    def test_path_must_start_at_user_class(self, profile):
        with pytest.raises(UserModelError):
            profile.get("Role.name")

    def test_path_past_property_fails(self, profile):
        with pytest.raises(UserModelError):
            profile.set("DecisionMaker.name.extra", "x")

    def test_assign_to_role_fails(self, profile):
        with pytest.raises(UserModelError):
            profile.set("DecisionMaker.dm2role", "oops")

    def test_geometry_type_enforced(self, profile):
        profile.open_session()
        with pytest.raises(UserModelError):
            profile.set("DecisionMaker.dm2session.s2location.geometry", "here")

    def test_integer_coercion(self, profile):
        profile.set("DecisionMaker.dm2airportcity.degree", 2.0)
        assert profile.get("DecisionMaker.dm2airportcity.degree") == 2
        with pytest.raises(UserModelError):
            profile.set("DecisionMaker.dm2airportcity.degree", 2.5)

    def test_has(self, profile):
        assert not profile.has("DecisionMaker.name")
        profile.set("DecisionMaker.name", "Ana")
        assert profile.has("DecisionMaker.name")


class TestInterestTracking:
    @pytest.fixture()
    def profile(self):
        return UserProfile(build_motivating_user_model(), "u1")

    def test_increment_degree(self, profile):
        assert profile.degree("AirportCity") == 0
        assert profile.increment_degree("AirportCity") == 1
        assert profile.increment_degree("AirportCity", by=2) == 3
        assert profile.degree("AirportCity") == 3

    def test_increment_non_selection_class_fails(self, profile):
        with pytest.raises(UserModelError):
            profile.increment_degree("Role")


class TestSessions:
    @pytest.fixture()
    def profile(self):
        return UserProfile(build_motivating_user_model(), "u1")

    def test_open_with_location(self, profile):
        profile.open_session(Point(10, 20))
        assert profile.in_session
        geometry = profile.get("DecisionMaker.dm2session.s2location.geometry")
        assert geometry == Point(10, 20)

    def test_close(self, profile):
        profile.open_session(Point(0, 0))
        profile.close_session()
        assert not profile.in_session
        with pytest.raises(UserModelError):
            profile.get("DecisionMaker.dm2session.s2location.geometry")

    def test_open_without_location(self, profile):
        profile.open_session()
        assert profile.in_session

    def test_snapshot(self, profile):
        profile.set("DecisionMaker.name", "Ana")
        profile.open_session(Point(1, 2))
        snapshot = profile.to_dict()
        assert snapshot["user_id"] == "u1"
        assert snapshot["root"]["values"]["name"] == "Ana"
        location = snapshot["root"]["links"]["dm2session"]["links"]["s2location"]
        assert location["values"]["geometry"] == "POINT (1 2)"
