"""Tests for the SUS profile (Fig. 3 metamodel)."""

from repro.sus import SUSStereotype, sus_metamodel, sus_profile


class TestProfile:
    def test_all_paper_stereotypes_present(self):
        profile = sus_profile()
        for name in (
            "User",
            "Session",
            "Characteristic",
            "LocationContext",
            "SpatialSelection",
        ):
            assert name in profile.stereotypes
            assert profile.stereotype(name).metaclass == "Class"

    def test_stereotype_enum_matches_profile(self):
        profile = sus_profile()
        assert {st.value for st in SUSStereotype} == set(profile.stereotypes)


class TestMetamodel:
    def test_includes_geometric_types(self):
        model = sus_metamodel()
        enum = model.enumerations["GeometricTypes"]
        assert enum.literals == ("POINT", "LINE", "POLYGON", "COLLECTION")

    def test_profile_applied(self):
        model = sus_metamodel()
        assert "SUS" in model.profiles
