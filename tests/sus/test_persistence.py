"""Tests for user-profile snapshot persistence."""

import json

import pytest

from repro.data import build_motivating_user_model
from repro.errors import UserModelError
from repro.geometry import Point
from repro.sus import UserProfile


@pytest.fixture()
def schema():
    return build_motivating_user_model()


@pytest.fixture()
def populated(schema):
    profile = UserProfile(schema, "ana")
    profile.set("DecisionMaker.name", "Ana Garcia")
    profile.set("DecisionMaker.dm2role.name", "RegionalSalesManager")
    profile.open_session(Point(100.0, 200.0))
    for _ in range(5):
        profile.increment_degree("AirportCity")
    return profile


class TestRoundTrip:
    def test_values_survive(self, schema, populated):
        restored = UserProfile.from_dict(schema, populated.to_dict())
        assert restored.user_id == "ana"
        assert restored.get("DecisionMaker.name") == "Ana Garcia"
        assert (
            restored.get("DecisionMaker.dm2role.name") == "RegionalSalesManager"
        )
        assert restored.degree("AirportCity") == 5

    def test_geometry_survives(self, schema, populated):
        restored = UserProfile.from_dict(schema, populated.to_dict())
        location = restored.get("DecisionMaker.dm2session.s2location.geometry")
        assert location == Point(100.0, 200.0)
        assert restored.in_session

    def test_json_serializable(self, populated):
        text = json.dumps(populated.to_dict())
        assert "RegionalSalesManager" in text

    def test_double_round_trip_stable(self, schema, populated):
        once = populated.to_dict()
        twice = UserProfile.from_dict(schema, once).to_dict()
        assert once == twice

    def test_fresh_profile_round_trip(self, schema):
        fresh = UserProfile(schema, "new")
        restored = UserProfile.from_dict(schema, fresh.to_dict())
        assert restored.degree("AirportCity") == 0


class TestCorruption:
    def test_wrong_class_rejected(self, schema, populated):
        data = populated.to_dict()
        data["root"]["class"] = "Impostor"
        with pytest.raises(UserModelError, match="does not match"):
            UserProfile.from_dict(schema, data)

    def test_unknown_value_rejected(self, schema, populated):
        data = populated.to_dict()
        data["root"]["values"]["shoe_size"] = 42
        with pytest.raises(UserModelError, match="unknown"):
            UserProfile.from_dict(schema, data)

    def test_bad_link_rejected(self, schema, populated):
        data = populated.to_dict()
        data["root"]["links"]["name"] = {"class": "Role", "values": {}, "links": {}}
        with pytest.raises(UserModelError, match="association"):
            UserProfile.from_dict(schema, data)
