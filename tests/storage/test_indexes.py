"""Tests for the storage-layer index hierarchy and its invalidation.

Covers the fact-table posting lists, the inverted roll-up index, the
lazy per-layer/per-level grid indexes and the star generation counter —
each must agree exactly with the scan it replaces and must never serve
stale data after a mutation.
"""

import pytest

from repro.data import FACT_NAME, build_sales_schema
from repro.geomd import GeoMDSchema, GeometricType
from repro.geometry import Point
from repro.storage import StarSchema


@pytest.fixture()
def loaded_star():
    star = StarSchema(GeoMDSchema.from_md(build_sales_schema()))
    star.add_member("Store", "State", "Valencia")
    for city in ("Alicante", "Elche"):
        star.add_member("Store", "City", city, parents={"State": "Valencia"})
    star.add_member("Store", "Store", "S1", parents={"City": "Alicante"})
    star.add_member("Store", "Store", "S2", parents={"City": "Elche"})
    star.add_member("Customer", "City", "Alicante")
    star.add_member("Customer", "Customer", "C1", parents={"City": "Alicante"})
    star.add_member("Product", "Family", "Food")
    star.add_member("Product", "Product", "P1", parents={"Family": "Food"})
    star.add_member("Time", "Year", "2009")
    star.add_member("Time", "Quarter", "2009-Q1", parents={"Year": "2009"})
    star.add_member("Time", "Month", "2009-01", parents={"Quarter": "2009-Q1"})
    star.add_member("Time", "Day", "2009-01-05", parents={"Month": "2009-01"})
    for store in ("S1", "S2", "S1"):
        star.insert_fact(
            FACT_NAME,
            {"Store": store, "Customer": "C1", "Product": "P1", "Time": "2009-01-05"},
            {"UnitSales": 1, "StoreCost": 2.0, "StoreSales": 3.0},
        )
    return star


class TestKeyPostings:
    def test_postings_match_column_scan(self, loaded_star):
        table = loaded_star.fact_table()
        postings = table.key_postings("Store")
        column = table.key_column("Store")
        for key, rows in postings.items():
            assert rows == [i for i, k in enumerate(column) if k == key]
        assert sum(len(rows) for rows in postings.values()) == len(table)

    def test_postings_maintained_after_insert(self, loaded_star):
        table = loaded_star.fact_table()
        before = dict(table.key_postings("Store"))
        assert before["S2"] == [1]
        row_id = loaded_star.insert_fact(
            FACT_NAME,
            {"Store": "S2", "Customer": "C1", "Product": "P1", "Time": "2009-01-05"},
            {"UnitSales": 4, "StoreCost": 1.0, "StoreSales": 2.0},
        )
        assert table.key_postings("Store")["S2"] == [1, row_id]


class TestRollupIndex:
    def test_index_matches_scan(self, loaded_star):
        index = loaded_star.rollup_index("Store", "City")
        assert index == {"Alicante": {"S1"}, "Elche": {"S2"}}

    def test_leaf_keys_rolled_to_agrees_with_scan_path(self, loaded_star):
        fast = loaded_star.leaf_keys_rolled_to("Store", "State", ["Valencia"])
        loaded_star.use_indexes = False
        slow = loaded_star.leaf_keys_rolled_to("Store", "State", ["Valencia"])
        assert fast == slow == {"S1", "S2"}

    def test_index_invalidated_by_member_insert(self, loaded_star):
        assert loaded_star.rollup_index("Store", "City") == {
            "Alicante": {"S1"},
            "Elche": {"S2"},
        }
        loaded_star.add_member("Store", "Store", "S3", parents={"City": "Elche"})
        assert loaded_star.rollup_index("Store", "City")["Elche"] == {"S2", "S3"}

    def test_unknown_ancestor_key_rolls_to_nothing(self, loaded_star):
        assert loaded_star.leaf_keys_rolled_to("Store", "City", ["Atlantis"]) == set()


class TestGenerationCounter:
    def test_mutations_bump_generation(self, loaded_star):
        start = loaded_star.generation
        loaded_star.add_member("Product", "Family", "Drink")
        assert loaded_star.generation == start + 1
        loaded_star.insert_fact(
            FACT_NAME,
            {"Store": "S1", "Customer": "C1", "Product": "P1", "Time": "2009-01-05"},
            {"UnitSales": 1, "StoreCost": 1.0, "StoreSales": 1.0},
        )
        assert loaded_star.generation == start + 2
        loaded_star.note_schema_change()
        assert loaded_star.generation == start + 3

    def test_reads_do_not_bump_generation(self, loaded_star):
        start = loaded_star.generation
        loaded_star.rollup_index("Store", "City")
        loaded_star.fact_table().key_postings("Store")
        loaded_star.leaf_keys_rolled_to("Store", "State", ["Valencia"])
        assert loaded_star.generation == start


class TestConcurrency:
    def test_posting_map_consistent_under_concurrent_inserts(self, loaded_star):
        """A posting build racing inserts from another thread must never
        install a map missing (or double-counting) a row."""
        import threading

        table = loaded_star.fact_table()

        def inserter():
            for _ in range(300):
                loaded_star.insert_fact(
                    FACT_NAME,
                    {
                        "Store": "S1",
                        "Customer": "C1",
                        "Product": "P1",
                        "Time": "2009-01-05",
                    },
                    {"UnitSales": 1, "StoreCost": 1.0, "StoreSales": 1.0},
                )

        thread = threading.Thread(target=inserter)
        thread.start()
        while thread.is_alive():
            with table._lock:
                table._postings.clear()
            table.key_postings("Store")
        thread.join()
        postings = table.key_postings("Store")
        column = table.key_column("Store")
        expected: dict[str, list[int]] = {}
        for row_id, key in enumerate(column):
            expected.setdefault(key, []).append(row_id)
        assert postings == expected


class TestGridIndexCaches:
    def _spatialize(self, star):
        schema = star.schema
        schema.become_spatial("Store.Store", GeometricType.POINT)
        for i, key in enumerate(("S1", "S2")):
            member = star.dimension_table("Store").member("Store", key)
            member.attributes["geometry"] = Point(float(i), float(i))
        star.note_member_change("Store")

    def test_level_grid_index_cached_and_invalidated(self, loaded_star):
        self._spatialize(loaded_star)
        cached = loaded_star.level_grid_index("Store", "Store")
        assert cached is not None
        index, geometry_of = cached
        assert set(geometry_of) == {"S1", "S2"}
        assert loaded_star.level_grid_index("Store", "Store") is cached
        loaded_star.add_member(
            "Store",
            "Store",
            "S3",
            {"geometry": Point(5.0, 5.0)},
            parents={"City": "Elche"},
        )
        rebuilt = loaded_star.level_grid_index("Store", "Store")
        assert rebuilt is not cached
        assert set(rebuilt[1]) == {"S1", "S2", "S3"}

    def test_level_grid_index_none_without_geometry(self, loaded_star):
        assert loaded_star.level_grid_index("Store", "Store") is None

    def test_layer_grid_index_cached_and_invalidated(self, loaded_star):
        schema = loaded_star.schema
        schema.add_layer("Airport", GeometricType.POINT)
        loaded_star.ensure_layer_table("Airport")
        assert loaded_star.layer_grid_index("Airport") is None
        loaded_star.add_feature("Airport", "ALC", Point(0.5, 0.5))
        cached = loaded_star.layer_grid_index("Airport")
        assert cached is not None
        assert loaded_star.layer_grid_index("Airport") is cached
        # Feature adds patch the built grid in place (layers are
        # append-only) instead of dropping it.
        loaded_star.add_feature("Airport", "VLC", Point(3.0, 3.0))
        patched = loaded_star.layer_grid_index("Airport")
        assert patched is cached
        assert len(patched[1]) == 2
        assert len(patched[0]) == 2
        hits = patched[0].query_envelope(Point(3.0, 3.0).envelope)
        assert any(patched[1][i] == Point(3.0, 3.0) for i in hits)
        # A payload-less bulk notification degrades to drop-and-rebuild.
        loaded_star.note_feature_change("Airport")
        rebuilt = loaded_star.layer_grid_index("Airport")
        assert rebuilt is not patched
        assert len(rebuilt[1]) == 2
