"""Tests for the bound star schema."""

import pytest

from repro.data import FACT_NAME, build_sales_schema
from repro.errors import StorageError
from repro.geomd import GeoMDSchema, GeometricType
from repro.geometry import LineString, Point
from repro.storage import StarSchema


@pytest.fixture()
def empty_star():
    return StarSchema(GeoMDSchema.from_md(build_sales_schema()))


def _load_minimal(star):
    star.add_member("Store", "State", "Valencia")
    star.add_member("Store", "City", "Alicante", parents={"State": "Valencia"})
    star.add_member("Store", "Store", "S1", parents={"City": "Alicante"})
    star.add_member("Customer", "City", "Alicante")
    star.add_member("Customer", "Customer", "C1", parents={"City": "Alicante"})
    star.add_member("Product", "Family", "Food")
    star.add_member("Product", "Product", "P1", parents={"Family": "Food"})
    star.add_member("Time", "Year", "2009")
    star.add_member("Time", "Quarter", "2009-Q1", parents={"Year": "2009"})
    star.add_member("Time", "Month", "2009-01", parents={"Quarter": "2009-Q1"})
    star.add_member("Time", "Day", "2009-01-05", parents={"Month": "2009-01"})


class TestIntegrity:
    def test_fact_insert_checks_leaf_keys(self, empty_star):
        _load_minimal(empty_star)
        empty_star.insert_fact(
            FACT_NAME,
            {"Store": "S1", "Customer": "C1", "Product": "P1", "Time": "2009-01-05"},
            {"UnitSales": 1, "StoreCost": 2.0, "StoreSales": 3.0},
        )
        with pytest.raises(StorageError, match="unknown"):
            empty_star.insert_fact(
                FACT_NAME,
                {
                    "Store": "Ghost",
                    "Customer": "C1",
                    "Product": "P1",
                    "Time": "2009-01-05",
                },
                {"UnitSales": 1, "StoreCost": 2.0, "StoreSales": 3.0},
            )

    def test_spatial_level_geometry_type_checked(self, empty_star):
        schema = empty_star.schema
        schema.become_spatial("Store.Store", GeometricType.POINT)
        _load_minimal(empty_star)
        with pytest.raises(StorageError, match="declared POINT"):
            empty_star.add_member(
                "Store",
                "Store",
                "S2",
                {"geometry": LineString([(0, 0), (1, 1)])},
                parents={"City": "Alicante"},
            )

    def test_geometry_accepted_when_conforming(self, empty_star):
        empty_star.schema.become_spatial("Store.Store", GeometricType.POINT)
        _load_minimal(empty_star)
        member = empty_star.add_member(
            "Store",
            "Store",
            "S2",
            {"geometry": Point(3, 4)},
            parents={"City": "Alicante"},
        )
        assert member.geometry == Point(3, 4)

    def test_unknown_tables(self, empty_star):
        with pytest.raises(StorageError):
            empty_star.dimension_table("Ghost")
        with pytest.raises(StorageError):
            empty_star.fact_table("Ghost")
        with pytest.raises(StorageError):
            empty_star.layer_table("Airport")


class TestLayers:
    def test_ensure_layer_table_after_schema_change(self, empty_star):
        empty_star.schema.add_layer("Airport", GeometricType.POINT)
        table = empty_star.ensure_layer_table("Airport")
        assert empty_star.layer_table("Airport") is table
        table.add_feature("ALC", Point(0, 0))
        assert len(empty_star.layer_table("Airport")) == 1

    def test_ensure_is_idempotent(self, empty_star):
        empty_star.schema.add_layer("Airport", GeometricType.POINT)
        first = empty_star.ensure_layer_table("Airport")
        second = empty_star.ensure_layer_table("Airport")
        assert first is second


class TestRollupCache:
    def test_rollup_member(self, empty_star):
        _load_minimal(empty_star)
        ancestor = empty_star.rollup_member("Store", "S1", "State")
        assert ancestor.key == "Valencia"
        # Cached path returns the identical object.
        assert empty_star.rollup_member("Store", "S1", "State") is ancestor

    def test_member_change_refreshes_rollup_cache(self, empty_star):
        # Pins the PR-6 fix: the roll-up member cache is generation-
        # keyed, so an in-place hierarchy edit followed by
        # note_member_change must not serve the stale ancestor.
        _load_minimal(empty_star)
        assert empty_star.rollup_member("Store", "S1", "State").key == "Valencia"
        empty_star.add_member("Store", "State", "Murcia")
        table = empty_star.dimension_table("Store")
        table.member("City", "Alicante").parents["State"] = "Murcia"
        empty_star.note_member_change("Store")
        assert empty_star.rollup_member("Store", "S1", "State").key == "Murcia"

    def test_leaf_keys_rolled_to(self, empty_star):
        _load_minimal(empty_star)
        keys = empty_star.leaf_keys_rolled_to("Store", "City", {"Alicante"})
        assert keys == {"S1"}
        assert empty_star.leaf_keys_rolled_to("Store", "City", {"Madrid"}) == set()


class TestWorldLoad:
    def test_loaded_star_statistics(self, world, star):
        stats = star.stats()
        assert stats["fact:Sales"] == world.config.sales
        assert stats["dim:Store.Store"] == len(world.stores)
        assert stats["dim:Store.City"] == len(world.cities)
        assert stats["dim:Customer.Customer"] == len(world.customers)

    def test_every_fact_key_resolves(self, star):
        fact_table = star.fact_table()
        for dim in fact_table.fact.dimension_names:
            table = star.dimension_table(dim)
            leaf = table.dimension.leaf
            for key in set(fact_table.key_column(dim)):
                assert table.member(leaf, key)

    def test_rollup_consistency(self, star):
        fact_table = star.fact_table()
        key = fact_table.key_column("Store")[0]
        city = star.rollup_member("Store", key, "City")
        state = star.rollup_member("Store", key, "State")
        table = star.dimension_table("Store")
        assert table.rollup(city, "State").key == state.key
