"""Tests for the dictionary-encoded columnar storage layer.

Covers the interned key dictionary, the batch insert path, the
vectorized row scan, the roll-up translation tables and the columnar
envelope index — plus parity of the numpy backend with the stdlib
kernels.
"""

import pytest

from repro.errors import GeometryError, StorageError
from repro.geometry import Point
from repro.geometry.index import EnvelopeColumns, GridIndex
from repro.geometry.gtypes import Envelope
from repro.mdm.model import Dimension, Fact, Hierarchy, Level, Measure
from repro.storage import FactTable, StarSchema
from repro.storage.columns import Dictionary
from repro.mdm import MDSchema
from repro.uml.core import INTEGER, REAL
from repro.vectorized import ENV_SWITCH, numpy_backend


class TestDictionary:
    def test_encode_interns_in_first_appearance_order(self):
        d = Dictionary()
        assert d.encode("b") == 0
        assert d.encode("a") == 1
        assert d.encode("b") == 0
        assert d.keys() == ["b", "a"]
        assert len(d) == 2
        assert "a" in d and "z" not in d

    def test_decode_round_trip(self):
        d = Dictionary(["x", "y"])
        assert d.decode(0) == "x"
        assert d.decode_many([1, 0, 1]) == ["y", "x", "y"]
        assert d.code_of("y") == 1
        assert d.code_of("z") is None

    def test_decode_unknown_code_rejected(self):
        d = Dictionary(["x"])
        with pytest.raises(StorageError):
            d.decode(1)
        with pytest.raises(StorageError):
            d.decode_many([0, 3])

    def test_lookup_mask_and_codes_of_skip_unknown_keys(self):
        d = Dictionary(["a", "b", "c"])
        assert d.codes_of(["b", "nope", "c"]) == {1, 2}
        mask = d.lookup_mask(["a", "nope", "c"])
        assert list(mask) == [1, 0, 1]


def _sales_fact():
    return Fact(
        "Sales",
        ["Store", "Product"],
        [Measure("units", INTEGER), Measure("amount", REAL)],
    )


def _rows(n):
    return [
        (
            {"Store": f"S{i % 3}", "Product": f"P{i % 2}"},
            {"units": i, "amount": float(i) * 1.5},
        )
        for i in range(n)
    ]


class TestInsertMany:
    def test_returns_row_ids_in_input_order(self):
        table = FactTable(_sales_fact())
        assert table.insert_many(_rows(5)) == [0, 1, 2, 3, 4]
        assert len(table) == 5
        assert table.row(3)["Store"] == "S0"
        assert table.row(3)["amount"] == 4.5

    def test_empty_batch_is_a_no_op(self):
        table = FactTable(_sales_fact())
        assert table.insert_many([]) == []
        assert len(table) == 0

    def test_validation_is_all_or_nothing(self):
        table = FactTable(_sales_fact())
        bad = _rows(3)
        bad[2] = ({"Store": "S1"}, {"units": 1, "amount": 1.0})
        with pytest.raises(StorageError):
            table.insert_many(bad)
        assert len(table) == 0  # nothing appended before the bad row

    def test_maintains_built_postings(self):
        table = FactTable(_sales_fact())
        table.insert_many(_rows(2))
        postings = table.key_postings("Store")
        table.insert_many(_rows(4))
        assert postings["S0"] == [0, 2, 5]
        assert table.key_postings("Store") is postings

    def test_compat_views_decode(self):
        table = FactTable(_sales_fact())
        table.insert_many(_rows(4))
        assert table.key_column("Product") == ["P0", "P1", "P0", "P1"]
        assert table.measure_column("units") == [0.0, 1.0, 2.0, 3.0]
        assert table.coordinates(2) == {"Store": "S2", "Product": "P0"}
        assert list(table.key_codes("Store"))[:3] == [0, 1, 2]
        assert table.dictionary("Store").keys() == ["S0", "S1", "S2"]

    def test_unknown_dimension_and_measure_rejected(self):
        table = FactTable(_sales_fact())
        with pytest.raises(StorageError):
            table.dictionary("Time")
        with pytest.raises(StorageError):
            table.key_codes("Time")
        with pytest.raises(StorageError):
            table.measure_values("profit")


class TestRowsMatching:
    def _loaded(self, n=20):
        table = FactTable(_sales_fact())
        table.insert_many(_rows(n))
        return table

    def _reference(self, table, relevant, row_ids=None):
        columns = {dim: table.key_column(dim) for dim in relevant}
        ids = table.row_ids() if row_ids is None else row_ids
        return [
            row_id
            for row_id in ids
            if all(columns[d][row_id] in keys for d, keys in relevant.items())
        ]

    def test_full_scan_matches_reference(self):
        table = self._loaded()
        relevant = {"Store": {"S0", "S2"}, "Product": {"P1"}}
        assert table.rows_matching(relevant) == self._reference(table, relevant)

    def test_unconstrained_returns_all_rows(self):
        table = self._loaded(5)
        assert table.rows_matching({}) == [0, 1, 2, 3, 4]

    def test_unknown_keys_match_nothing(self):
        table = self._loaded()
        assert table.rows_matching({"Store": {"S99"}}) == []

    def test_subset_preserves_order(self):
        table = self._loaded()
        relevant = {"Product": {"P0"}}
        subset = [7, 3, 2, 18]
        assert table.rows_matching(relevant, row_ids=subset) == [
            r for r in subset if r % 2 == 0
        ]

    def test_numpy_backend_parity(self, monkeypatch):
        if numpy_backend(True) is None:
            pytest.skip("numpy not installed")
        table = self._loaded(50)
        relevant = {"Store": {"S1"}, "Product": {"P0", "P1"}}
        expected = table.rows_matching(relevant)
        monkeypatch.setenv(ENV_SWITCH, "1")
        assert table.rows_matching(relevant) == expected


def _star(rows=12):
    store = Dimension(
        "Store",
        [Level("Store"), Level("City"), Level("State")],
        [Hierarchy("geo", ["Store", "City", "State"])],
        leaf="Store",
    )
    product = Dimension(
        "Product",
        [Level("Product"), Level("Family")],
        [Hierarchy("cat", ["Product", "Family"])],
        leaf="Product",
    )
    fact = Fact("Sales", ["Store", "Product"], [Measure("amount", REAL)])
    star = StarSchema(MDSchema("S", [store, product], [fact]))
    star.add_member("Store", "State", "V")
    star.add_member("Store", "City", "C0", parents={"State": "V"})
    star.add_member("Store", "City", "C1", parents={"State": "V"})
    for i in range(4):
        star.add_member(
            "Store", "Store", f"S{i}", parents={"City": f"C{i % 2}"}
        )
    star.add_member("Product", "Family", "F0")
    for i in range(3):
        star.add_member("Product", "Product", f"P{i}", parents={"Family": "F0"})
    star.insert_facts(
        "Sales",
        [
            ({"Store": f"S{i % 4}", "Product": f"P{i % 3}"}, {"amount": float(i)})
            for i in range(rows)
        ],
    )
    return star


class TestStarInsertFacts:
    def test_one_mutation_per_batch(self):
        star = _star(rows=0)
        mutations = []
        star.add_mutation_listener(mutations.append)
        row_ids = star.insert_facts(
            "Sales",
            [
                ({"Store": "S0", "Product": "P0"}, {"amount": 1.0}),
                ({"Store": "S1", "Product": "P1"}, {"amount": 2.0}),
            ],
        )
        assert row_ids == [0, 1]
        assert len(mutations) == 1
        assert mutations[0].is_fact_delta
        assert mutations[0].row_ids == (0, 1)

    def test_empty_batch_emits_no_mutation(self):
        star = _star(rows=0)
        mutations = []
        star.add_mutation_listener(mutations.append)
        assert star.insert_facts("Sales", []) == []
        assert mutations == []

    def test_unknown_leaf_member_rejected(self):
        star = _star(rows=0)
        with pytest.raises(StorageError, match="unknown 'Store' leaf member"):
            star.insert_facts(
                "Sales",
                [({"Store": "S99", "Product": "P0"}, {"amount": 1.0})],
            )

    def test_insert_fact_still_single_row(self):
        star = _star(rows=0)
        assert star.insert_fact(
            "Sales", {"Store": "S0", "Product": "P0"}, {"amount": 1.0}
        ) == 0


class TestRollupTranslation:
    def test_translates_every_interned_code(self):
        star = _star()
        table = star.fact_table("Sales")
        translation = star.rollup_translation("Sales", "Store", "City")
        dictionary = table.dictionary("Store")
        for code in range(len(dictionary)):
            leaf = dictionary.decode(code)
            expected = star.rollup_member("Store", leaf, "City").key
            assert translation.keys[translation.codes[code]] == expected

    def test_cached_until_member_change(self):
        star = _star()
        first = star.rollup_translation("Sales", "Store", "City")
        assert star.rollup_translation("Sales", "Store", "City") is first
        # A member change on another dimension must not invalidate it.
        star.add_member("Product", "Product", "P9", parents={"Family": "F0"})
        assert star.rollup_translation("Sales", "Store", "City") is first
        # A member ADD carries its delta: parent links are fixed at
        # creation, so existing leaf→ancestor translations stay correct
        # and the table survives.
        star.add_member("Store", "City", "C9", parents={"State": "V"})
        assert star.rollup_translation("Sales", "Store", "City") is first
        # An in-place member UPDATE cannot be patched — full rebuild.
        star.note_member_change("Store", op="update")
        rebuilt = star.rollup_translation("Sales", "Store", "City")
        assert rebuilt is not first

    def test_extends_in_place_when_dictionary_grows(self):
        star = _star()
        translation = star.rollup_translation("Sales", "Store", "City")
        size = len(translation.codes)
        star.add_member("Store", "Store", "S9", parents={"City": "C1"})
        translation = star.rollup_translation("Sales", "Store", "City")
        star.insert_facts(
            "Sales", [({"Store": "S9", "Product": "P0"}, {"amount": 1.0})]
        )
        extended = star.rollup_translation("Sales", "Store", "City")
        assert extended is translation
        assert len(extended.codes) == size + 1
        new_code = star.fact_table("Sales").dictionary("Store").code_of("S9")
        assert extended.keys[extended.codes[new_code]] == "C1"


class TestEnvelopeColumns:
    def _entries(self):
        return [(Point(float(i), float(i * 2)), f"p{i}") for i in range(30)]

    def test_rejects_zero_entries(self):
        with pytest.raises(GeometryError):
            EnvelopeColumns([])

    def test_matches_grid_index_candidates(self):
        entries = self._entries()
        columns = EnvelopeColumns(entries)
        grid = GridIndex(entries)
        assert len(columns) == len(entries)
        for env in (
            Envelope(2.0, 3.0, 11.0, 13.0),
            Envelope(-5.0, -5.0, -1.0, -1.0),
            Envelope(0.0, 0.0, 100.0, 100.0),
        ):
            assert sorted(columns.query_envelope(env)) == sorted(
                grid.query_envelope(env)
            )

    def test_numpy_backend_parity(self, monkeypatch):
        if numpy_backend(True) is None:
            pytest.skip("numpy not installed")
        columns = EnvelopeColumns(self._entries())
        env = Envelope(1.0, 1.0, 20.0, 20.0)
        expected = columns.query_envelope(env)
        monkeypatch.setenv(ENV_SWITCH, "1")
        assert columns.query_envelope(env) == expected
