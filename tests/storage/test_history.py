"""PR 9: :class:`StarHistory` — checkpoints, log replay, as-of reads.

The contract: ``history.as_of(g)`` reconstructs the star exactly as it
stood at generation ``g`` (checkpoint rehydration + typed-delta replay),
so any query answered against it is *bit-identical* to the answer that
was recorded at ``g`` — pinned here both with explicit scripts and with
a hypothesis property over random mutation schedules.  Retention is
explicit: generations in the future, before the oldest checkpoint, or
across an evicted/non-replayable log range raise :class:`HistoryError`.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.geomd import GeoMDSchema
from repro.mdm import Aggregator, Dimension, Fact, Hierarchy, Level, Measure
from repro.olap import AggSpec, CubeQuery, LevelRef, execute
from repro.storage import StarSchema
from repro.storage.snapshot import HistoryError, StarHistory
from repro.uml.core import REAL


def _tiny_star():
    """A 2-level star with two groups and two leaf members."""
    dim = Dimension(
        "D",
        [Level("D"), Level("G")],
        [Hierarchy("h", ["D", "G"])],
        leaf="D",
    )
    fact = Fact("F", ["D"], [Measure("v", REAL)])
    schema = GeoMDSchema("S", [dim], [fact])
    star = StarSchema(schema)
    for g in ("g0", "g1"):
        star.add_member("D", "G", g)
    star.add_member("D", "D", "d0", parents={"G": "g0"})
    star.add_member("D", "D", "d1", parents={"G": "g1"})
    star.insert_fact("F", {"D": "d0"}, {"v": 1.5})
    star.insert_fact("F", {"D": "d1"}, {"v": 2.25})
    return star


GROUPED = CubeQuery(
    "F", [AggSpec(Aggregator.SUM, "v")], group_by=[LevelRef("D", "G")]
)


def _rows(star, as_of=None):
    return execute(star, GROUPED, as_of=as_of).to_rows()


class TestLifecycle:
    def test_attach_registers_and_reuses(self):
        star = _tiny_star()
        history = StarHistory.attach(star)
        assert star.history is history
        assert StarHistory.attach(star) is history

    def test_detach_unbinds(self):
        star = _tiny_star()
        history = StarHistory.attach(star)
        history.detach()
        assert star.history is None
        fresh = StarHistory.attach(star)
        assert fresh is not history

    def test_live_generation_returns_live_star(self):
        star = _tiny_star()
        history = StarHistory.attach(star)
        assert history.as_of(star.generation) is star

    def test_future_generation_raises(self):
        star = _tiny_star()
        history = StarHistory.attach(star)
        with pytest.raises(HistoryError, match="future"):
            history.as_of(star.generation + 1)

    def test_pre_attach_generation_raises(self):
        star = _tiny_star()
        history = StarHistory.attach(star)
        with pytest.raises(HistoryError, match="predates"):
            history.as_of(0)


class TestReplay:
    def test_fact_append_replays(self):
        star = _tiny_star()
        StarHistory.attach(star)
        generation = star.generation
        before = _rows(star)
        star.insert_fact("F", {"D": "d0"}, {"v": 10.0})
        assert _rows(star) != before
        assert _rows(star, as_of=generation) == before

    def test_member_add_replays(self):
        star = _tiny_star()
        history = StarHistory.attach(star)
        generation = star.generation
        before = _rows(star)
        star.add_member("D", "G", "g2")
        star.add_member("D", "D", "d2", parents={"G": "g2"})
        star.insert_fact("F", {"D": "d2"}, {"v": 4.0})
        assert _rows(star, as_of=generation) == before
        # The reconstructed star must not know the later member.
        historical = history.as_of(generation)
        with pytest.raises(Exception):
            historical.dimension_table("D").member("G", "g2")

    def test_eager_checkpoint_reanchors_nonreplayable(self):
        """An in-place member update carries no delta; the eager
        checkpoint re-anchors so generations after it stay answerable."""
        star = _tiny_star()
        history = StarHistory.attach(star)
        star.note_member_change("D", op="update")
        anchor = star.generation
        before = _rows(star)
        star.insert_fact("F", {"D": "d1"}, {"v": 7.5})
        assert history.stats()["newest_checkpoint"] == anchor
        assert _rows(star, as_of=anchor) == before

    def test_generation_before_eager_checkpoint_needs_older_base(self):
        """A read *across* a non-replayable mutation uses the older
        checkpoint but the range fails the replayability check."""
        star = _tiny_star()
        StarHistory.attach(star)
        generation = star.generation
        before = _rows(star)
        star.note_member_change("D", op="update")
        # Still answerable: the baseline checkpoint anchors `generation`
        # itself (zero-length replay range).
        assert _rows(star, as_of=generation) == before

    def test_reconstructions_are_cached(self):
        star = _tiny_star()
        history = StarHistory.attach(star)
        generation = star.generation
        star.insert_fact("F", {"D": "d0"}, {"v": 3.0})
        first = history.as_of(generation)
        assert history.as_of(generation) is first
        assert history.replays == 1

    def test_evicted_log_range_raises(self):
        star = _tiny_star()
        star.mutation_log.max_entries = 2
        history = StarHistory.attach(star, checkpoint_interval=100)
        generation = star.generation
        for _ in range(4):  # evicts the oldest entries
            star.insert_fact("F", {"D": "d0"}, {"v": 1.0})
        history._stars.clear()  # drop any cached reconstruction
        with pytest.raises(HistoryError, match="no longer"):
            history.as_of(generation + 1)


class TestBitIdentity:
    """Acceptance pin: ``as_of=g`` answers are bit-identical to answers
    recorded at generation ``g``, for random mutation schedules."""

    # Each step: 0 = fact append to d0/d1, 1 = new member + fact on it.
    steps = st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=1),
            st.floats(
                min_value=-1e6, max_value=1e6, allow_nan=False
            ).map(lambda v: round(v, 4)),
        ),
        min_size=1,
        max_size=12,
    )

    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
    @given(steps=steps)
    def test_as_of_matches_recorded_answers(self, steps):
        star = _tiny_star()
        StarHistory.attach(star, checkpoint_interval=5)
        recorded = {star.generation: _rows(star)}
        for index, (kind, value) in enumerate(steps):
            if kind == 0:
                star.insert_fact("F", {"D": f"d{index % 2}"}, {"v": value})
            else:
                name = f"dx{index}"
                star.add_member("D", "D", name, parents={"G": "g0"})
                star.insert_fact("F", {"D": name}, {"v": value})
            recorded[star.generation] = _rows(star)
        for generation, rows in recorded.items():
            # Bit-identical: exact equality on the float cells, no
            # approx — replay must take the same code paths.
            assert _rows(star, as_of=generation) == rows
