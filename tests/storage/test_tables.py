"""Tests for dimension / fact / layer tables."""

import pytest

from repro.errors import StorageError
from repro.geomd import GeometricType, Layer
from repro.geometry import LineString, Point
from repro.mdm.model import Dimension, Fact, Hierarchy, Level, Measure
from repro.storage import DimensionTable, FactTable, LayerTable
from repro.uml.core import INTEGER, REAL


def _store_dimension():
    return Dimension(
        "Store",
        [Level("Store"), Level("City"), Level("State")],
        [Hierarchy("geo", ["Store", "City", "State"])],
        leaf="Store",
    )


def _loaded_table():
    table = DimensionTable(_store_dimension())
    table.add_member("State", "Valencia")
    table.add_member("City", "Alicante", parents={"State": "Valencia"})
    table.add_member("Store", "S1", parents={"City": "Alicante"})
    return table


class TestDimensionTable:
    def test_member_lookup(self):
        table = _loaded_table()
        assert table.member("Store", "S1").key == "S1"
        assert table.size("City") == 1

    def test_key_attribute_defaults_to_key(self):
        table = _loaded_table()
        assert table.member("City", "Alicante").get("name") == "Alicante"

    def test_duplicate_member_rejected(self):
        table = _loaded_table()
        with pytest.raises(StorageError):
            table.add_member("State", "Valencia")

    def test_unknown_level_rejected(self):
        table = _loaded_table()
        with pytest.raises(StorageError):
            table.add_member("Country", "Spain")

    def test_unknown_attribute_rejected(self):
        table = _loaded_table()
        with pytest.raises(StorageError):
            table.add_member(
                "City", "Elche", {"altitude": 86}, parents={"State": "Valencia"}
            )

    def test_missing_parent_rejected(self):
        table = _loaded_table()
        with pytest.raises(StorageError, match="missing parents"):
            table.add_member("City", "Elche")

    def test_dangling_parent_rejected(self):
        table = _loaded_table()
        with pytest.raises(StorageError, match="insert coarser levels first"):
            table.add_member("City", "Elche", parents={"State": "Atlantis"})

    def test_wrong_parent_level_rejected(self):
        table = _loaded_table()
        with pytest.raises(StorageError, match="does not roll up"):
            table.add_member(
                "Store", "S2", parents={"State": "Valencia", "City": "Alicante"}
            )

    def test_rollup_walks_links(self):
        table = _loaded_table()
        store = table.member("Store", "S1")
        assert table.rollup(store, "State").key == "Valencia"
        assert table.rollup(store, "Store") is store

    def test_geometry_of(self):
        table = _loaded_table()
        member = table.add_member(
            "Store",
            "S2",
            {"geometry": Point(1, 2)},
            parents={"City": "Alicante"},
        )
        assert table.geometry_of(member) == Point(1, 2)
        assert table.member("Store", "S1").geometry is None

    def test_non_geometry_value_rejected_on_access(self):
        table = _loaded_table()
        member = table.add_member(
            "Store", "S3", {"geometry": "POINT (1 2)"}, parents={"City": "Alicante"}
        )
        with pytest.raises(StorageError):
            _ = member.geometry


class TestFactTable:
    def _fact(self):
        return Fact(
            "Sales",
            ["Store", "Product"],
            [Measure("units", INTEGER), Measure("amount", REAL)],
        )

    def test_insert_and_row(self):
        table = FactTable(self._fact())
        row_id = table.insert(
            {"Store": "S1", "Product": "P1"}, {"units": 2, "amount": 10.5}
        )
        assert row_id == 0
        assert len(table) == 1
        assert table.row(0) == {
            "Store": "S1",
            "Product": "P1",
            "units": 2.0,
            "amount": 10.5,
        }

    def test_missing_coordinate_rejected(self):
        table = FactTable(self._fact())
        with pytest.raises(StorageError):
            table.insert({"Store": "S1"}, {"units": 1, "amount": 1.0})

    def test_missing_measure_rejected(self):
        table = FactTable(self._fact())
        with pytest.raises(StorageError):
            table.insert({"Store": "S1", "Product": "P1"}, {"units": 1})

    def test_non_numeric_measure_rejected(self):
        table = FactTable(self._fact())
        with pytest.raises(StorageError):
            table.insert(
                {"Store": "S1", "Product": "P1"},
                {"units": "two", "amount": 1.0},
            )

    def test_bool_measure_rejected(self):
        table = FactTable(self._fact())
        with pytest.raises(StorageError):
            table.insert(
                {"Store": "S1", "Product": "P1"},
                {"units": True, "amount": 1.0},
            )

    def test_row_out_of_range(self):
        table = FactTable(self._fact())
        with pytest.raises(StorageError):
            table.row(0)

    def test_column_access(self):
        table = FactTable(self._fact())
        table.insert({"Store": "S1", "Product": "P1"}, {"units": 1, "amount": 2.0})
        assert table.key_column("Store") == ["S1"]
        assert table.measure_column("amount") == [2.0]
        with pytest.raises(StorageError):
            table.key_column("Time")
        with pytest.raises(StorageError):
            table.measure_column("profit")


class TestLayerTable:
    def test_type_checked_insert(self):
        table = LayerTable(Layer("Airport", GeometricType.POINT))
        table.add_feature("ALC", Point(0, 0))
        with pytest.raises(StorageError):
            table.add_feature("bad", LineString([(0, 0), (1, 1)]))

    def test_duplicate_name_rejected(self):
        table = LayerTable(Layer("Airport", GeometricType.POINT))
        table.add_feature("ALC", Point(0, 0))
        with pytest.raises(StorageError):
            table.add_feature("ALC", Point(1, 1))

    def test_lookup_and_iteration(self):
        table = LayerTable(Layer("Train", GeometricType.LINE))
        table.add_feature("L1", LineString([(0, 0), (1, 1)]), {"stops": "a, b"})
        assert table.feature("L1").attributes["stops"] == "a, b"
        assert len(table) == 1
        assert len(list(table.geometries())) == 1
        with pytest.raises(StorageError):
            table.feature("L9")
