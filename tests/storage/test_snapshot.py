"""Tests for star-schema JSON snapshots."""

import json

import pytest

from repro.data import (
    ADD_SPATIALITY,
    WorldGeoSource,
    build_motivating_user_model,
    build_regional_manager_profile,
)
from repro.errors import StorageError
from repro.mdm import Aggregator
from repro.olap import AggSpec, Cube
from repro.personalization import PersonalizationEngine
from repro.storage.snapshot import (
    load_star,
    save_star,
    star_from_dict,
    star_to_dict,
)


class TestRoundTrip:
    def test_plain_star_round_trip(self, star):
        rebuilt = star_from_dict(star_to_dict(star))
        assert rebuilt.stats() == star.stats()
        # Fact content identical.
        assert rebuilt.fact_table().measure_column(
            "UnitSales"
        ) == star.fact_table().measure_column("UnitSales")
        assert rebuilt.fact_table().key_column("Store") == star.fact_table(
            "Sales"
        ).key_column("Store")

    def test_rollups_survive(self, star):
        rebuilt = star_from_dict(star_to_dict(star))
        key = star.fact_table().key_column("Store")[0]
        assert (
            rebuilt.rollup_member("Store", key, "State").key
            == star.rollup_member("Store", key, "State").key
        )

    def test_personalized_star_round_trip(self, world, star, user_schema):
        # Personalize first: spatial levels, geometries and the layer.
        engine = PersonalizationEngine(
            star, user_schema, geo_source=WorldGeoSource(world)
        )
        engine.add_rule(ADD_SPATIALITY)
        profile = build_regional_manager_profile(user_schema)
        session = engine.start_session(profile)
        session.end()

        rebuilt = star_from_dict(star_to_dict(star))
        schema = rebuilt.schema
        assert schema.is_spatial_level("Store.Store")
        assert "Airport" in schema.layers
        assert len(rebuilt.layer_table("Airport")) == len(world.airports)
        member = rebuilt.dimension_table("Store").members("Store")[0]
        assert member.geometry is not None

    def test_queries_agree_after_round_trip(self, star):
        rebuilt = star_from_dict(star_to_dict(star))
        original = (
            Cube(star)
            .measures(AggSpec(Aggregator.SUM, "StoreSales"))
            .by("Store.State")
            .result()
        )
        again = (
            Cube(rebuilt)
            .measures(AggSpec(Aggregator.SUM, "StoreSales"))
            .by("Store.State")
            .result()
        )
        assert original.cells == again.cells

    def test_file_round_trip(self, star, tmp_path):
        path = tmp_path / "star.json"
        save_star(star, path)
        # The snapshot is plain JSON.
        parsed = json.loads(path.read_text())
        assert parsed["schema"]["name"] == "SalesAnalysis"
        rebuilt = load_star(path)
        assert rebuilt.stats() == star.stats()

    def test_snapshot_is_deterministic(self, star, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        save_star(star, a)
        save_star(star, b)
        assert a.read_text() == b.read_text()


class TestEncodedColumns:
    def test_snapshot_is_dictionary_encoded(self, star):
        data = star_to_dict(star)
        fact_data = data["facts"]["Sales"]
        assert "keys" not in fact_data
        codes = fact_data["codes"]["Store"]
        interned = fact_data["dictionaries"]["Store"]
        assert all(isinstance(code, int) for code in codes)
        decoded = [interned[code] for code in codes]
        assert decoded == star.fact_table().key_column("Store")

    def test_codes_round_trip_bit_identically(self, star):
        rebuilt = star_from_dict(star_to_dict(star))
        table, original = rebuilt.fact_table(), star.fact_table()
        for dim in table.fact.dimension_names:
            assert list(table.key_codes(dim)) == list(original.key_codes(dim))
            assert table.dictionary(dim).keys() == original.dictionary(dim).keys()
        assert star_to_dict(rebuilt) == star_to_dict(star)

    def test_legacy_keys_format_still_loads(self, star):
        data = star_to_dict(star)
        fact_data = data["facts"]["Sales"]
        interned = fact_data.pop("dictionaries")
        codes = fact_data.pop("codes")
        fact_data["keys"] = {
            dim: [interned[dim][code] for code in column]
            for dim, column in codes.items()
        }
        rebuilt = star_from_dict(data)
        assert rebuilt.stats() == star.stats()
        assert rebuilt.fact_table().key_column("Store") == star.fact_table(
            "Sales"
        ).key_column("Store")


class TestCorruption:
    def test_ragged_fact_columns_rejected(self, star):
        data = star_to_dict(star)
        data["facts"]["Sales"]["measures"]["UnitSales"].pop()
        with pytest.raises(StorageError, match="ragged"):
            star_from_dict(data)

    def test_code_beyond_dictionary_rejected(self, star):
        data = star_to_dict(star)
        fact_data = data["facts"]["Sales"]
        fact_data["codes"]["Store"][0] = len(fact_data["dictionaries"]["Store"])
        with pytest.raises(StorageError, match="beyond its dictionary"):
            star_from_dict(data)

    def test_dangling_parent_rejected(self, star):
        data = star_to_dict(star)
        data["dimensions"]["Store"]["Store"][0]["parents"]["City"] = "Atlantis"
        with pytest.raises(StorageError):
            star_from_dict(data)
