"""The vectorized executor must be indistinguishable from the reference.

Property test: across random schemas, fact data, filters, groupings and
selections, :func:`repro.olap.query.execute` (dictionary-encoded batch
path) returns *bit-identical* cell sets — including the scanned/matched
transparency counters — to :func:`execute_reference` (the original
per-row roll-up loop).  The same property is asserted with the numpy
backend forced on via the star's ``use_numpy`` engine flag.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.mdm import Aggregator, Dimension, Fact, Hierarchy, Level, MDSchema, Measure
from repro.olap import AggSpec, AttributeFilter, ComparisonOp, CubeQuery, LevelRef
from repro.olap.query import execute, execute_reference
from repro.storage import StarSchema
from repro.uml.core import REAL
from repro.vectorized import numpy_backend

_GROUP_COUNT = 3
_REGION_COUNT = 2
_PRODUCT_COUNT = 4


def _build_star(fact_rows):
    """Two-dimension star: Store (3 levels) and Product (flat leaf)."""
    store = Dimension(
        "Store",
        [Level("Store"), Level("City"), Level("Region")],
        [Hierarchy("geo", ["Store", "City", "Region"])],
        leaf="Store",
    )
    product = Dimension("Product", [Level("Product")], [], leaf="Product")
    fact = Fact("Sales", ["Store", "Product"], [Measure("v", REAL)])
    star = StarSchema(MDSchema("S", [store, product], [fact]))
    for r in range(_REGION_COUNT):
        star.add_member("Store", "Region", f"r{r}")
    for c in range(_GROUP_COUNT):
        star.add_member(
            "Store", "City", f"c{c}", parents={"Region": f"r{c % _REGION_COUNT}"}
        )
    stores = sorted({s for s, _p, _v in fact_rows})
    for s in stores:
        star.add_member(
            "Store", "Store", f"s{s}", parents={"City": f"c{s % _GROUP_COUNT}"}
        )
    for p in range(_PRODUCT_COUNT):
        star.add_member("Product", "Product", f"p{p}")
    star.insert_facts(
        "Sales",
        [
            ({"Store": f"s{s}", "Product": f"p{p}"}, {"v": v})
            for s, p, v in fact_rows
        ],
    )
    return star


values = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False).map(
    lambda v: round(v, 4)
)
fact_rows = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=_PRODUCT_COUNT - 1),
        values,
    ),
    min_size=0,
    max_size=50,
)
aggregations = st.lists(
    st.sampled_from(
        [
            AggSpec(Aggregator.COUNT, "*"),
            AggSpec(Aggregator.COUNT, "v"),
            AggSpec(Aggregator.SUM, "v"),
            AggSpec(Aggregator.AVG, "v"),
            AggSpec(Aggregator.MIN, "v"),
            AggSpec(Aggregator.MAX, "v"),
            AggSpec(Aggregator.COUNT_DISTINCT, "v"),
        ]
    ),
    min_size=1,
    max_size=3,
)
group_bys = st.sampled_from(
    [
        (),
        (LevelRef("Store", "City"),),
        (LevelRef("Store", "Region"),),
        (LevelRef("Store", "Store"),),
        (LevelRef("Store", "City"), LevelRef("Product", "Product")),
        (LevelRef("Store", "Region"), LevelRef("Store", "City")),
    ]
)
filters = st.sampled_from(
    [
        (),
        (
            AttributeFilter(
                LevelRef("Store", "City"), "name", ComparisonOp.IN, ("c0", "c2")
            ),
        ),
        (
            AttributeFilter(
                LevelRef("Store", "Region"), "name", ComparisonOp.EQ, "r0"
            ),
        ),
        (
            AttributeFilter(
                LevelRef("Product", "Product"), "name", ComparisonOp.NE, "p1"
            ),
            AttributeFilter(
                LevelRef("Store", "City"), "name", ComparisonOp.GE, "c1"
            ),
        ),
    ]
)
selection_kinds = st.sampled_from(["none", "prefix", "shuffled", "duplicates"])


def _selection(kind, n, seed):
    if kind == "none" or n == 0:
        return None
    if kind == "prefix":
        return list(range(n // 2))
    import random

    rng = random.Random(seed)
    ids = list(range(n))
    rng.shuffle(ids)
    if kind == "duplicates":
        ids = ids + ids[: n // 2]
    return ids


def _assert_identical(a, b):
    assert a.axes == b.axes
    assert a.labels == b.labels
    assert a.fact_rows_scanned == b.fact_rows_scanned
    assert a.fact_rows_matched == b.fact_rows_matched
    assert set(a.cells) == set(b.cells)
    for coordinate, cell in a.cells.items():
        other = b.cells[coordinate]
        # Bit-identical, not approximately equal: repr distinguishes
        # 0.0 from -0.0 and every last mantissa bit.
        assert tuple(map(repr, cell)) == tuple(map(repr, other)), coordinate


class TestVectorizedEquivalence:
    @settings(max_examples=120, suppress_health_check=[HealthCheck.too_slow])
    @given(fact_rows, aggregations, group_bys, filters, selection_kinds,
           st.integers(min_value=0, max_value=2**31))
    def test_matches_reference_bit_identically(
        self, rows, aggs, group_by, where, selection_kind, seed
    ):
        star = _build_star(rows)
        query = CubeQuery("Sales", aggs, group_by=group_by, where=where)
        selection = _selection(selection_kind, len(rows), seed)
        reference = execute_reference(star, query, selection)
        assert star.use_vectorized
        vectorized = execute(star, query, selection)
        _assert_identical(vectorized, reference)
        # The transparency switch must route back to the reference path.
        star.use_vectorized = False
        switched = execute(star, query, selection)
        _assert_identical(switched, reference)

    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
    @given(fact_rows, aggregations, group_bys, filters)
    def test_numpy_backend_matches_reference(self, rows, aggs, group_by, where):
        if numpy_backend(True) is None:
            pytest.skip("numpy not installed")
        star = _build_star(rows)
        star.use_numpy = True
        query = CubeQuery("Sales", aggs, group_by=group_by, where=where)
        _assert_identical(
            execute(star, query), execute_reference(star, query)
        )

    def test_results_track_appends(self):
        """Translation tables must extend when appends intern new keys."""
        star = _build_star([(0, 0, 1.0), (1, 1, 2.0)])
        query = CubeQuery(
            "Sales",
            [AggSpec(Aggregator.SUM, "v")],
            group_by=[LevelRef("Store", "City")],
        )
        _assert_identical(
            execute(star, query), execute_reference(star, query)
        )
        star.add_member("Store", "Store", "s7", parents={"City": "c1"})
        star.insert_facts(
            "Sales", [({"Store": "s7", "Product": "p0"}, {"v": 5.0})]
        )
        _assert_identical(
            execute(star, query), execute_reference(star, query)
        )
