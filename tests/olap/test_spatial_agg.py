"""Tests for spatial aggregation functions (da Silva et al. style)."""

import pytest

from repro.errors import QueryError
from repro.geomd import GeometricType
from repro.geometry import GeometryCollection, MultiPoint, Point, Polygon, within
from repro.olap import SpatialAggregator, aggregate_geometries, spatial_rollup


@pytest.fixture()
def spatial_store_star(star, world):
    star.schema.become_spatial("Store.Store", GeometricType.POINT)
    table = star.dimension_table("Store")
    locations = {s.name: s.location for s in world.stores}
    for member in table.members("Store"):
        member.attributes["geometry"] = locations[member.key]
    return star


class TestAggregateGeometries:
    POINTS = [Point(0, 0), Point(4, 0), Point(4, 4), Point(0, 4)]

    def test_count(self):
        assert aggregate_geometries(self.POINTS, SpatialAggregator.COUNT) == 4.0

    def test_centroid(self):
        c = aggregate_geometries(self.POINTS, SpatialAggregator.CENTROID)
        assert isinstance(c, Point)
        assert (c.x, c.y) == pytest.approx((2.0, 2.0))

    def test_envelope(self):
        env = aggregate_geometries(self.POINTS, SpatialAggregator.ENVELOPE)
        assert isinstance(env, Polygon)
        assert env.area == pytest.approx(16.0)

    def test_convex_hull(self):
        hull = aggregate_geometries(self.POINTS, SpatialAggregator.CONVEX_HULL)
        assert isinstance(hull, Polygon)
        assert hull.area == pytest.approx(16.0)

    def test_collect_points(self):
        collected = aggregate_geometries(self.POINTS, SpatialAggregator.COLLECT)
        assert isinstance(collected, MultiPoint)
        assert len(collected) == 4

    def test_collect_mixed(self):
        mixed = self.POINTS + [Polygon([(0, 0), (1, 0), (1, 1)])]
        collected = aggregate_geometries(mixed, SpatialAggregator.COLLECT)
        assert isinstance(collected, GeometryCollection)

    def test_empty_geometric_aggregation(self):
        result = aggregate_geometries([], SpatialAggregator.CENTROID)
        assert isinstance(result, GeometryCollection)
        assert result.is_empty
        assert aggregate_geometries([], SpatialAggregator.COUNT) == 0.0


class TestSpatialRollup:
    def test_count_per_city(self, spatial_store_star, world):
        counts = spatial_rollup(
            spatial_store_star, "Store", "Store", "City", SpatialAggregator.COUNT
        )
        assert len(counts) == len(world.cities)
        assert sum(counts.values()) == len(world.stores)

    def test_hull_contains_member_points(self, spatial_store_star, world):
        hulls = spatial_rollup(
            spatial_store_star,
            "Store",
            "Store",
            "City",
            SpatialAggregator.CONVEX_HULL,
        )
        city = world.cities[0].name
        stores = [s for s in world.stores if s.city == city]
        hull = hulls[city]
        for store in stores:
            # Hull may degenerate (2-3 stores); containment means distance 0.
            from repro.geometry import distance

            assert distance(store.location, hull) < 1e-6

    def test_same_level_rejected(self, spatial_store_star):
        with pytest.raises(QueryError):
            spatial_rollup(
                spatial_store_star,
                "Store",
                "Store",
                "Store",
                SpatialAggregator.COUNT,
            )

    def test_members_without_geometry_skipped(self, star):
        star.schema.become_spatial("Store.Store", GeometricType.POINT)
        counts = spatial_rollup(
            star, "Store", "Store", "City", SpatialAggregator.COUNT
        )
        assert counts == {}
