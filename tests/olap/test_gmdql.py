"""Tests for the GeoMDQL-lite query language."""

import pytest

from repro.data import FACT_NAME, WorldGeoSource
from repro.errors import QueryError
from repro.geomd import GeometricType
from repro.mdm import Aggregator
from repro.olap import (
    AttributeFilter,
    ComparisonOp,
    SpatialFilter,
    SpatialRelation,
    execute,
    parse_query,
)


@pytest.fixture()
def schema(star):
    return star.schema


class TestParsing:
    def test_minimal(self, schema):
        query = parse_query("SELECT COUNT(*) FROM Sales", schema)
        assert query.fact == FACT_NAME
        assert query.aggregations[0].aggregator is Aggregator.COUNT
        assert query.aggregations[0].measure == "*"

    def test_multiple_aggs_and_groups(self, schema):
        query = parse_query(
            "SELECT SUM(UnitSales), AVG(StoreSales) FROM Sales "
            "BY Store.City, Time.Month",
            schema,
        )
        assert [a.label for a in query.aggregations] == [
            "SUM(UnitSales)",
            "AVG(StoreSales)",
        ]
        assert [str(g) for g in query.group_by] == ["Store.City", "Time.Month"]

    def test_keywords_case_insensitive(self, schema):
        query = parse_query("select sum(UnitSales) from Sales by Store.State", schema)
        assert query.aggregations[0].aggregator is Aggregator.SUM

    def test_attribute_condition_three_part(self, schema):
        query = parse_query(
            "SELECT COUNT(*) FROM Sales WHERE Store.City.population >= 100000",
            schema,
        )
        flt = query.where[0]
        assert isinstance(flt, AttributeFilter)
        assert flt.attribute == "population"
        assert flt.op is ComparisonOp.GE

    def test_attribute_condition_two_part_leaf(self, schema):
        query = parse_query(
            "SELECT COUNT(*) FROM Sales WHERE Product.list_price < 10",
            schema,
        )
        flt = query.where[0]
        assert flt.ref.dimension == "Product"
        assert flt.attribute == "list_price"

    def test_two_part_level_name_compares_key(self, schema):
        query = parse_query(
            "SELECT COUNT(*) FROM Sales WHERE Store.City = 'Alicante'", schema
        )
        flt = query.where[0]
        assert flt.ref.level == "City"
        assert flt.attribute == "name"

    def test_in_condition(self, schema):
        query = parse_query(
            "SELECT COUNT(*) FROM Sales WHERE Product.Family.name IN ('Food', 'Drink')",
            schema,
        )
        flt = query.where[0]
        assert flt.op is ComparisonOp.IN
        assert flt.value == ("Food", "Drink")

    def test_string_escaping(self, schema):
        query = parse_query(
            "SELECT COUNT(*) FROM Sales WHERE Store.City.name = 'O''Hare'",
            schema,
        )
        assert query.where[0].value == "O'Hare"

    def test_distance_condition(self, schema):
        query = parse_query(
            "SELECT COUNT(*) FROM Sales WHERE DISTANCE(Store, LAYER Airport) < 20 KM",
            schema,
        )
        flt = query.where[0]
        assert isinstance(flt, SpatialFilter)
        assert flt.relation is SpatialRelation.DISTANCE
        assert flt.threshold == 20_000.0

    def test_inside_condition(self, schema):
        query = parse_query(
            "SELECT COUNT(*) FROM Sales WHERE WITHIN(Store, LAYER Region)",
            schema,
        )
        flt = query.where[0]
        assert flt.relation is SpatialRelation.INSIDE

    def test_unknown_fact(self, schema):
        with pytest.raises(Exception):
            parse_query("SELECT COUNT(*) FROM Ghost", schema)

    def test_unknown_aggregator(self, schema):
        with pytest.raises(QueryError):
            parse_query("SELECT MEDIAN(UnitSales) FROM Sales", schema)

    def test_unknown_attribute(self, schema):
        with pytest.raises(Exception):
            parse_query(
                "SELECT COUNT(*) FROM Sales WHERE Store.City.altitude > 3", schema
            )

    def test_trailing_garbage(self, schema):
        with pytest.raises(QueryError):
            parse_query("SELECT COUNT(*) FROM Sales EXTRA", schema)

    def test_distance_requires_comparison(self, schema):
        with pytest.raises(QueryError):
            parse_query(
                "SELECT COUNT(*) FROM Sales WHERE DISTANCE(Store, LAYER Airport)",
                schema,
            )


class TestExecution:
    def test_end_to_end_text_query(self, star):
        result = execute(
            star,
            parse_query(
                "SELECT SUM(UnitSales) FROM Sales BY Store.State", star.schema
            ),
        )
        assert len(result) > 0

    def test_spatial_text_query(self, star, world):
        schema = star.schema
        schema.become_spatial("Store.Store", GeometricType.POINT)
        source = WorldGeoSource(world)
        geoms = source.level_geometries("Store", "Store")
        for member in star.dimension_table("Store").members("Store"):
            member.attributes["geometry"] = geoms[member.key]
        schema.add_layer("Airport", GeometricType.POINT)
        layer = star.ensure_layer_table("Airport")
        for name, geom, attrs in source.layer_features("Airport"):
            layer.add_feature(name, geom, attrs)
        result = execute(
            star,
            parse_query(
                "SELECT COUNT(*) FROM Sales "
                "WHERE DISTANCE(Store, LAYER Airport) < 25 KM",
                schema,
            ),
        )
        assert 0 < result.fact_rows_matched < result.fact_rows_scanned
