"""Property-based tests for OLAP aggregation invariants."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.geomd import GeoMDSchema
from repro.mdm import Aggregator, Dimension, Fact, Hierarchy, Level, MDSchema, Measure
from repro.olap import AggSpec, CubeQuery, LevelRef, execute
from repro.storage import StarSchema
from repro.uml.core import REAL


def _tiny_star(fact_rows):
    """A 2-level dimension star filled with the given (group, value) rows."""
    dim = Dimension(
        "D",
        [Level("D"), Level("G")],
        [Hierarchy("h", ["D", "G"])],
        leaf="D",
    )
    fact = Fact("F", ["D"], [Measure("v", REAL)])
    schema = GeoMDSchema("S", [dim], [fact])
    star = StarSchema(schema)
    groups = sorted({g for g, _v in fact_rows})
    for g in groups:
        star.add_member("D", "G", f"g{g}")
    leaves = sorted({(g, i) for i, (g, _v) in enumerate(fact_rows)})
    for g, i in leaves:
        star.add_member("D", "D", f"d{i}", parents={"G": f"g{g}"})
    for i, (g, v) in enumerate(fact_rows):
        star.insert_fact("F", {"D": f"d{i}"}, {"v": v})
    return star


values = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False).map(
    lambda v: round(v, 4)
)
fact_rows = st.lists(
    st.tuples(st.integers(min_value=0, max_value=5), values),
    min_size=1,
    max_size=40,
)


class TestAggregationInvariants:
    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
    @given(fact_rows)
    def test_group_sums_equal_total(self, rows):
        star = _tiny_star(rows)
        total = execute(
            star, CubeQuery("F", [AggSpec(Aggregator.SUM, "v")])
        ).value(())
        grouped = execute(
            star,
            CubeQuery(
                "F",
                [AggSpec(Aggregator.SUM, "v")],
                group_by=[LevelRef("D", "G")],
            ),
        )
        assert sum(v[0] for v in grouped.cells.values()) == pytest.approx(
            total, abs=1e-6
        )

    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
    @given(fact_rows)
    def test_count_partitions(self, rows):
        star = _tiny_star(rows)
        grouped = execute(
            star,
            CubeQuery(
                "F",
                [AggSpec(Aggregator.COUNT, "*")],
                group_by=[LevelRef("D", "G")],
            ),
        )
        assert sum(v[0] for v in grouped.cells.values()) == len(rows)

    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
    @given(fact_rows)
    def test_min_max_bound_avg(self, rows):
        star = _tiny_star(rows)
        result = execute(
            star,
            CubeQuery(
                "F",
                [
                    AggSpec(Aggregator.MIN, "v"),
                    AggSpec(Aggregator.AVG, "v"),
                    AggSpec(Aggregator.MAX, "v"),
                ],
            ),
        )
        lo = result.value((), "MIN(v)")
        avg = result.value((), "AVG(v)")
        hi = result.value((), "MAX(v)")
        assert lo - 1e-9 <= avg <= hi + 1e-9

    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
    @given(fact_rows, st.integers(min_value=0, max_value=2**31))
    def test_selection_order_irrelevant(self, rows, seed):
        star = _tiny_star(rows)
        ids = list(range(len(rows)))
        random.Random(seed).shuffle(ids)
        query = CubeQuery("F", [AggSpec(Aggregator.SUM, "v")])
        in_order = execute(star, query, selection=range(len(rows)))
        shuffled = execute(star, query, selection=ids)
        # Float addition is not associative: compare cells approximately.
        assert set(in_order.cells) == set(shuffled.cells)
        for coordinate, values_tuple in in_order.cells.items():
            assert shuffled.cells[coordinate] == pytest.approx(
                values_tuple, abs=1e-6
            )

    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
    @given(fact_rows)
    def test_rollup_distributes_over_selection_split(self, rows):
        """SUM over a selection == SUM(first half) + SUM(second half)."""
        star = _tiny_star(rows)
        half = len(rows) // 2
        query = CubeQuery("F", [AggSpec(Aggregator.SUM, "v")])
        total = execute(star, query).value(())
        first = execute(star, query, selection=range(half))
        second = execute(star, query, selection=range(half, len(rows)))
        combined = (first.value(()) if first.cells else 0.0) + (
            second.value(()) if second.cells else 0.0
        )
        assert combined == pytest.approx(total, abs=1e-6)
