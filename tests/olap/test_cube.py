"""Tests for interactive cube navigation."""

import pytest

from repro.errors import QueryError
from repro.mdm import Aggregator
from repro.olap import AggSpec, Cube


class TestNavigation:
    def test_default_measures(self, star):
        cube = Cube(star)
        labels = {spec.label for spec in cube.aggregations}
        assert "SUM(UnitSales)" in labels

    def test_by_and_result(self, star):
        result = Cube(star).by("Store.City").result()
        assert len(result) > 1

    def test_roll_up(self, star):
        cube = Cube(star).by("Store.Store")
        up = cube.roll_up("Store")
        assert up.group_by[0].level == "City"
        upup = up.roll_up("Store")
        assert upup.group_by[0].level == "State"

    def test_roll_up_past_top_fails(self, star):
        cube = Cube(star).by("Store.State")
        with pytest.raises(QueryError):
            cube.roll_up("Store")

    def test_drill_down(self, star):
        cube = Cube(star).by("Store.State")
        down = cube.drill_down("Store")
        assert down.group_by[0].level == "City"

    def test_drill_down_past_leaf_fails(self, star):
        with pytest.raises(QueryError):
            Cube(star).by("Store.Store").drill_down("Store")

    def test_shift_requires_grouped_dimension(self, star):
        with pytest.raises(QueryError):
            Cube(star).by("Time.Month").roll_up("Store")

    def test_rollup_totals_preserved(self, star):
        by_city = Cube(star).measures(AggSpec(Aggregator.SUM, "UnitSales")).by(
            "Store.City"
        )
        by_state = by_city.roll_up("Store")
        total_city = sum(v[0] for v in by_city.result().cells.values())
        total_state = sum(v[0] for v in by_state.result().cells.values())
        assert total_city == pytest.approx(total_state)


class TestSliceDice:
    def test_slice(self, star, world):
        state = world.states[0].name
        cube = Cube(star).measures(AggSpec(Aggregator.COUNT, "*")).slice(
            "Store.State", "name", state
        )
        sliced = cube.count()
        assert 0 < sliced < len(star.fact_table())

    def test_chained_slices_conjunctive(self, star, world):
        state = world.states[0].name
        family_cube = (
            Cube(star)
            .measures(AggSpec(Aggregator.COUNT, "*"))
            .slice("Store.State", "name", state)
            .slice("Product.Family", "name", "Food")
        )
        both = family_cube.count()
        one = (
            Cube(star)
            .measures(AggSpec(Aggregator.COUNT, "*"))
            .slice("Store.State", "name", state)
            .count()
        )
        assert both <= one

    def test_count_empty_result(self, star):
        cube = Cube(star).measures(AggSpec(Aggregator.COUNT, "*")).slice(
            "Store.State", "name", "Nowhere"
        )
        assert cube.count() == 0.0


class TestSelection:
    def test_with_selection(self, star):
        rows = list(range(100))
        cube = Cube(star).with_selection(rows)
        assert cube.count() == 100.0

    def test_selection_cleared(self, star):
        cube = Cube(star).with_selection(range(10)).with_selection(None)
        assert cube.count() == len(star.fact_table())

    def test_immutability(self, star):
        base = Cube(star)
        modified = base.by("Store.City").slice("Product.Family", "name", "Food")
        assert base.group_by == ()
        assert base.where == ()
        assert modified.group_by != ()
