"""Tests for cube query execution."""

import pytest

from repro.data import FACT_NAME, WorldGeoSource
from repro.errors import QueryError
from repro.geomd import GeometricType
from repro.geometry import Point
from repro.mdm import Aggregator
from repro.olap import (
    AggSpec,
    AttributeFilter,
    ComparisonOp,
    CubeQuery,
    LayerRef,
    LevelRef,
    SpatialFilter,
    SpatialRelation,
    execute,
)


class TestLevelRef:
    def test_parse(self):
        assert LevelRef.parse("Store") == LevelRef("Store")
        assert LevelRef.parse("Store.City") == LevelRef("Store", "City")
        with pytest.raises(QueryError):
            LevelRef.parse("a.b.c")

    def test_resolve_defaults_to_leaf(self, star):
        assert LevelRef("Store").resolve_level(star.schema) == "Store"
        assert LevelRef("Store", "State").resolve_level(star.schema) == "State"


class TestAggregation:
    def test_sum_total_matches_columns(self, star):
        query = CubeQuery(FACT_NAME, [AggSpec(Aggregator.SUM, "UnitSales")])
        result = execute(star, query)
        expected = sum(star.fact_table().measure_column("UnitSales"))
        assert result.value(()) == pytest.approx(expected)

    def test_count_star(self, star):
        query = CubeQuery(FACT_NAME, [AggSpec(Aggregator.COUNT, "*")])
        result = execute(star, query)
        assert result.value(()) == len(star.fact_table())

    def test_group_by_partitions_total(self, star):
        query = CubeQuery(
            FACT_NAME,
            [AggSpec(Aggregator.SUM, "StoreSales")],
            group_by=[LevelRef("Store", "State")],
        )
        result = execute(star, query)
        total = sum(star.fact_table().measure_column("StoreSales"))
        assert sum(v[0] for v in result.cells.values()) == pytest.approx(total)

    def test_rollup_coarser_level_fewer_cells(self, star):
        by_city = execute(
            star,
            CubeQuery(
                FACT_NAME,
                [AggSpec(Aggregator.SUM, "UnitSales")],
                group_by=[LevelRef("Store", "City")],
            ),
        )
        by_state = execute(
            star,
            CubeQuery(
                FACT_NAME,
                [AggSpec(Aggregator.SUM, "UnitSales")],
                group_by=[LevelRef("Store", "State")],
            ),
        )
        assert len(by_state) < len(by_city)
        assert sum(v[0] for v in by_state.cells.values()) == pytest.approx(
            sum(v[0] for v in by_city.cells.values())
        )

    def test_min_max_avg(self, star):
        query = CubeQuery(
            FACT_NAME,
            [
                AggSpec(Aggregator.MIN, "UnitSales"),
                AggSpec(Aggregator.MAX, "UnitSales"),
                AggSpec(Aggregator.AVG, "UnitSales"),
            ],
        )
        result = execute(star, query)
        values = star.fact_table().measure_column("UnitSales")
        coordinate = ()
        assert result.value(coordinate, "MIN(UnitSales)") == min(values)
        assert result.value(coordinate, "MAX(UnitSales)") == max(values)
        assert result.value(coordinate, "AVG(UnitSales)") == pytest.approx(
            sum(values) / len(values)
        )

    def test_count_distinct(self, star):
        query = CubeQuery(
            FACT_NAME, [AggSpec(Aggregator.COUNT_DISTINCT, "UnitSales")]
        )
        result = execute(star, query)
        assert result.value(()) == len(
            set(star.fact_table().measure_column("UnitSales"))
        )

    def test_sum_star_rejected(self, star):
        query = CubeQuery(FACT_NAME, [AggSpec(Aggregator.SUM, "*")])
        with pytest.raises(QueryError):
            execute(star, query)

    def test_unknown_measure_rejected(self, star):
        query = CubeQuery(FACT_NAME, [AggSpec(Aggregator.SUM, "Profit")])
        with pytest.raises(Exception):
            execute(star, query)

    def test_no_aggregations_rejected(self):
        with pytest.raises(QueryError):
            CubeQuery(FACT_NAME, [])


class TestAttributeFilters:
    def test_leaf_attribute_filter(self, star, world):
        city = world.cities[0].name
        query = CubeQuery(
            FACT_NAME,
            [AggSpec(Aggregator.COUNT, "*")],
            where=[
                AttributeFilter(
                    LevelRef("Store", "City"), "name", ComparisonOp.EQ, city
                )
            ],
        )
        result = execute(star, query)
        column = star.fact_table().key_column("Store")
        expected = sum(
            1
            for key in column
            if star.rollup_member("Store", key, "City").key == city
        )
        got = result.value(()) if result.cells else 0
        assert got == expected

    def test_in_filter(self, star, world):
        cities = [c.name for c in world.cities[:3]]
        query = CubeQuery(
            FACT_NAME,
            [AggSpec(Aggregator.COUNT, "*")],
            where=[
                AttributeFilter(
                    LevelRef("Store", "City"),
                    "name",
                    ComparisonOp.IN,
                    tuple(cities),
                )
            ],
        )
        result = execute(star, query)
        assert result.fact_rows_matched < result.fact_rows_scanned

    def test_numeric_comparison(self, star):
        query = CubeQuery(
            FACT_NAME,
            [AggSpec(Aggregator.COUNT, "*")],
            where=[
                AttributeFilter(
                    LevelRef("Store", "City"),
                    "population",
                    ComparisonOp.GE,
                    400_000,
                )
            ],
        )
        result = execute(star, query)
        assert 0 < result.fact_rows_matched < result.fact_rows_scanned

    def test_filter_unknown_dimension_for_fact(self, star):
        query = CubeQuery(
            FACT_NAME,
            [AggSpec(Aggregator.COUNT, "*")],
            where=[
                AttributeFilter(LevelRef("Ghost"), "name", ComparisonOp.EQ, "x")
            ],
        )
        with pytest.raises(Exception):
            execute(star, query)


class TestSpatialFilters:
    @pytest.fixture()
    def spatial_star(self, star, world):
        schema = star.schema
        schema.become_spatial("Store.Store", GeometricType.POINT)
        source = WorldGeoSource(world)
        geoms = source.level_geometries("Store", "Store")
        table = star.dimension_table("Store")
        for member in table.members("Store"):
            member.attributes["geometry"] = geoms[member.key]
        schema.add_layer("Airport", GeometricType.POINT)
        layer = star.ensure_layer_table("Airport")
        for name, geom, attrs in source.layer_features("Airport"):
            layer.add_feature(name, geom, attrs)
        return star

    def test_distance_filter(self, spatial_star, world):
        query = CubeQuery(
            FACT_NAME,
            [AggSpec(Aggregator.COUNT, "*")],
            where=[
                SpatialFilter(
                    LevelRef("Store"),
                    SpatialRelation.DISTANCE,
                    LayerRef("Airport"),
                    ComparisonOp.LT,
                    30_000.0,
                )
            ],
        )
        result = execute(spatial_star, query)
        assert 0 < result.fact_rows_matched < result.fact_rows_scanned

    def test_distance_filter_against_literal_geometry(self, spatial_star, world):
        center = world.stores[0].location
        query = CubeQuery(
            FACT_NAME,
            [AggSpec(Aggregator.COUNT, "*")],
            where=[
                SpatialFilter(
                    LevelRef("Store"),
                    SpatialRelation.DISTANCE,
                    Point(center.x, center.y),
                    ComparisonOp.LE,
                    1.0,
                )
            ],
        )
        result = execute(spatial_star, query)
        assert result.fact_rows_matched > 0

    def test_non_spatial_level_rejected(self, spatial_star):
        query = CubeQuery(
            FACT_NAME,
            [AggSpec(Aggregator.COUNT, "*")],
            where=[
                SpatialFilter(
                    LevelRef("Customer"),
                    SpatialRelation.DISTANCE,
                    LayerRef("Airport"),
                    ComparisonOp.LT,
                    1_000.0,
                )
            ],
        )
        with pytest.raises(QueryError, match="not spatial"):
            execute(spatial_star, query)

    def test_distance_filter_validation(self):
        with pytest.raises(QueryError):
            SpatialFilter(
                LevelRef("Store"), SpatialRelation.DISTANCE, LayerRef("Airport")
            )
        with pytest.raises(QueryError):
            SpatialFilter(
                LevelRef("Store"),
                SpatialRelation.INSIDE,
                LayerRef("Airport"),
                ComparisonOp.LT,
                5.0,
            )


class TestSelection:
    def test_selection_restricts_scan(self, star):
        full = execute(star, CubeQuery(FACT_NAME, [AggSpec(Aggregator.COUNT, "*")]))
        some_rows = list(range(0, len(star.fact_table()), 10))
        partial = execute(
            star,
            CubeQuery(FACT_NAME, [AggSpec(Aggregator.COUNT, "*")]),
            selection=some_rows,
        )
        assert partial.value(()) == len(some_rows)
        assert full.value(()) == len(star.fact_table())


class TestCellSet:
    def test_format_table(self, star):
        result = execute(
            star,
            CubeQuery(
                FACT_NAME,
                [AggSpec(Aggregator.SUM, "UnitSales")],
                group_by=[LevelRef("Store", "State")],
            ),
        )
        text = result.format_table()
        assert "Store.State" in text
        assert "SUM(UnitSales)" in text
        assert len(text.splitlines()) == len(result) + 2

    def test_value_errors(self, star):
        result = execute(
            star,
            CubeQuery(
                FACT_NAME,
                [
                    AggSpec(Aggregator.SUM, "UnitSales"),
                    AggSpec(Aggregator.COUNT, "*"),
                ],
            ),
        )
        with pytest.raises(QueryError, match="name one"):
            result.value(())
        with pytest.raises(QueryError, match="no cell"):
            result.value(("nowhere",), "SUM(UnitSales)")
