"""The GridIndex-accelerated spatial-filter path must be a pure speedup.

Every relation is executed twice — ``star.use_indexes`` on and off — and
the allowed key sets and cell sets must be identical.  DISTANCE with
lower-bound-unsound comparisons (``>``, ``>=``) and non-planar metrics
must transparently fall back to the exact scan.
"""

import pytest

from repro.data import FACT_NAME, WorldGeoSource
from repro.geomd import GeometricType
from repro.geometry import HaversineMetric, Point
from repro.mdm import Aggregator
from repro.olap.query import (
    AggSpec,
    ComparisonOp,
    CubeQuery,
    LayerRef,
    LevelRef,
    SpatialFilter,
    SpatialRelation,
    execute,
)


@pytest.fixture()
def spatial_star(star, world):
    schema = star.schema
    schema.become_spatial("Store.Store", GeometricType.POINT)
    source = WorldGeoSource(world)
    geoms = source.level_geometries("Store", "Store")
    table = star.dimension_table("Store")
    for member in table.members("Store"):
        member.attributes["geometry"] = geoms[member.key]
    schema.add_layer("Airport", GeometricType.POINT)
    layer = star.ensure_layer_table("Airport")
    for name, geom, attrs in source.layer_features("Airport"):
        layer.add_feature(name, geom, attrs)
    star.note_member_change("Store")
    star.note_feature_change("Airport")
    return star


def _query(flt):
    return CubeQuery(
        FACT_NAME,
        [AggSpec(Aggregator.COUNT, "*")],
        group_by=[LevelRef("Store")],
        where=[flt],
    )


def _both_paths(star, flt, metric=None):
    star.use_indexes = True
    fast = execute(star, _query(flt), metric=metric)
    star.use_indexes = False
    slow = execute(star, _query(flt), metric=metric)
    star.use_indexes = True
    return fast, slow


@pytest.mark.parametrize(
    "relation",
    [
        SpatialRelation.INTERSECT,
        SpatialRelation.DISJOINT,
        SpatialRelation.INSIDE,
        SpatialRelation.EQUALS,
        SpatialRelation.CONTAINS,
    ],
)
def test_boolean_relations_agree_with_scan(spatial_star, relation):
    flt = SpatialFilter(LevelRef("Store"), relation, LayerRef("Airport"))
    fast, slow = _both_paths(spatial_star, flt)
    assert fast.cells == slow.cells
    assert fast.fact_rows_matched == slow.fact_rows_matched


@pytest.mark.parametrize("op", [ComparisonOp.LT, ComparisonOp.LE])
def test_distance_upper_bound_agrees_with_scan(spatial_star, op):
    flt = SpatialFilter(
        LevelRef("Store"),
        SpatialRelation.DISTANCE,
        LayerRef("Airport"),
        op,
        30_000.0,
    )
    fast, slow = _both_paths(spatial_star, flt)
    assert fast.cells == slow.cells
    assert 0 < fast.fact_rows_matched < fast.fact_rows_scanned


@pytest.mark.parametrize("op", [ComparisonOp.GT, ComparisonOp.GE])
def test_distance_lower_bound_falls_back(spatial_star, op):
    """`> threshold` cannot be pre-filtered by envelopes; both paths must
    still agree because the fast path declines these operators."""
    flt = SpatialFilter(
        LevelRef("Store"),
        SpatialRelation.DISTANCE,
        LayerRef("Airport"),
        op,
        30_000.0,
    )
    fast, slow = _both_paths(spatial_star, flt)
    assert fast.cells == slow.cells


def test_distance_with_non_planar_metric_agrees(spatial_star):
    flt = SpatialFilter(
        LevelRef("Store"),
        SpatialRelation.DISTANCE,
        LayerRef("Airport"),
        ComparisonOp.LT,
        3_000_000.0,
    )
    metric = HaversineMetric()
    fast, slow = _both_paths(spatial_star, flt, metric=metric)
    assert fast.cells == slow.cells


def test_literal_geometry_target(spatial_star, world):
    center = world.stores[0].location
    flt = SpatialFilter(
        LevelRef("Store"),
        SpatialRelation.DISTANCE,
        Point(center.x, center.y),
        ComparisonOp.LE,
        5_000.0,
    )
    fast, slow = _both_paths(spatial_star, flt)
    assert fast.cells == slow.cells
    assert fast.fact_rows_matched > 0


@pytest.mark.parametrize(
    "relation",
    [
        SpatialRelation.INTERSECT,
        SpatialRelation.DISJOINT,
        SpatialRelation.EQUALS,
    ],
)
def test_layer_index_orientation_agrees_with_scan(spatial_star, relation):
    """When a layer has more features than the level has members, the
    fast path flips to querying the layer's feature grid per member —
    that orientation must agree with the scan too."""
    table = spatial_star.dimension_table("Store")
    member_count = len(table.members("Store"))
    a_geometry = table.leaf_members()[0].geometry
    for i in range(member_count + 5):
        spatial_star.add_feature(
            "Airport",
            f"extra-{i}",
            Point(a_geometry.x + i * 1000.0, a_geometry.y),
        )
    flt = SpatialFilter(LevelRef("Store"), relation, LayerRef("Airport"))
    fast, slow = _both_paths(spatial_star, flt)
    assert fast.cells == slow.cells


def test_layer_index_orientation_distance_agrees_with_scan(spatial_star):
    table = spatial_star.dimension_table("Store")
    member_count = len(table.members("Store"))
    a_geometry = table.leaf_members()[0].geometry
    for i in range(member_count + 5):
        spatial_star.add_feature(
            "Airport",
            f"extra-{i}",
            Point(a_geometry.x + i * 1000.0, a_geometry.y),
        )
    flt = SpatialFilter(
        LevelRef("Store"),
        SpatialRelation.DISTANCE,
        LayerRef("Airport"),
        ComparisonOp.LE,
        10_000.0,
    )
    fast, slow = _both_paths(spatial_star, flt)
    assert fast.cells == slow.cells
    assert fast.fact_rows_matched > 0


def test_index_results_follow_feature_inserts(spatial_star):
    """A feature added after the index was built must be visible."""
    flt = SpatialFilter(
        LevelRef("Store"), SpatialRelation.EQUALS, LayerRef("Airport")
    )
    before = execute(spatial_star, _query(flt))
    store_geom = (
        spatial_star.dimension_table("Store").leaf_members()[0].geometry
    )
    spatial_star.add_feature(
        "Airport", "OnTopOfStore", Point(store_geom.x, store_geom.y)
    )
    after = execute(spatial_star, _query(flt))
    assert after.fact_rows_matched > before.fact_rows_matched
