"""Tests for the synthetic world generator."""

import pytest

from repro.data import WorldConfig, generate_world
from repro.errors import ReproError
from repro.geometry import within


class TestDeterminism:
    def test_same_seed_same_world(self):
        a = generate_world(WorldConfig(seed=11))
        b = generate_world(WorldConfig(seed=11))
        assert [c.location for c in a.cities] == [c.location for c in b.cities]
        assert [t.path for t in a.train_lines] == [t.path for t in b.train_lines]

    def test_different_seed_different_world(self):
        a = generate_world(WorldConfig(seed=11))
        b = generate_world(WorldConfig(seed=12))
        assert [c.location for c in a.cities] != [c.location for c in b.cities]


class TestConfigValidation:
    def test_bad_extent(self):
        with pytest.raises(ReproError):
            WorldConfig(extent_km=-1)

    def test_bad_grid(self):
        with pytest.raises(ReproError):
            WorldConfig(states_x=0)

    def test_bad_ratio(self):
        with pytest.raises(ReproError):
            WorldConfig(airport_city_ratio=2.0)

    def test_bad_train_stops(self):
        with pytest.raises(ReproError):
            WorldConfig(cities_per_train_line=1)


class TestStructure:
    def test_counts_match_config(self, world):
        config = world.config
        assert len(world.states) == config.states_x * config.states_y
        assert len(world.cities) == len(world.states) * config.cities_per_state
        assert len(world.stores) == len(world.cities) * config.stores_per_city
        assert (
            len(world.customers)
            == len(world.cities) * config.customers_per_city
        )

    def test_city_names_unique(self, world):
        names = [c.name for c in world.cities]
        assert len(names) == len(set(names))

    def test_cities_inside_their_state(self, world):
        states = {s.name: s.polygon for s in world.states}
        for city in world.cities:
            assert within(city.location, states[city.state])

    def test_airports_offset_from_cities(self, world):
        for airport in world.airports:
            city = world.city(airport.city)
            distance = airport.location.distance_to(city.location)
            assert 8_000.0 <= distance <= 15_000.0

    def test_lookup_helpers(self, world):
        assert world.city(world.cities[0].name) is world.cities[0]
        assert world.airport(world.airports[0].name) is world.airports[0]
        with pytest.raises(ReproError):
            world.city("Atlantis")
        with pytest.raises(ReproError):
            world.airport("Atlantis Intl")


class TestTrainLines:
    def test_stops_are_exact_vertices(self, world):
        """Example 5.3 requires "the line contains a city and airport
        points" — stations are exact polyline vertices."""
        for line in world.train_lines:
            vertices = set(line.path.coord_list)
            for stop in line.stops:
                try:
                    point = world.city(stop).location
                except ReproError:
                    point = world.airport(stop).location
                assert point.coord in vertices

    def test_each_line_serves_an_airport(self, world):
        airport_names = {a.name for a in world.airports}
        for line in world.train_lines:
            assert airport_names & set(line.stops)

    def test_arc_distance_between_stops_positive(self, world):
        line = world.train_lines[0]
        first = line.stops[0]
        last = line.stops[-1]

        def stop_point(name):
            try:
                return world.city(name).location
            except ReproError:
                return world.airport(name).location

        arc = line.path.arc_between(stop_point(first), stop_point(last))
        assert arc > 0.0
        assert arc <= line.path.length + 1e-6


class TestScaling:
    def test_tiny_world(self):
        config = WorldConfig(
            seed=3,
            states_x=1,
            states_y=1,
            cities_per_state=2,
            stores_per_city=1,
            customers_per_city=1,
            train_lines=1,
            cities_per_train_line=2,
            days=5,
            sales=10,
        )
        world = generate_world(config)
        assert world.summary()["cities"] == 2
        assert world.summary()["train_lines"] == 1
