"""Tests for the Fig. 2 schema, Fig. 4 user model and the geo source."""

import pytest

from repro.data import (
    ALL_PAPER_RULES,
    WorldGeoSource,
    build_motivating_user_model,
    build_regional_manager_profile,
    build_sales_schema,
)
from repro.geometry import LineString, Point, Polygon
from repro.mdm import ResolvedAttribute
from repro.prml import parse_rule
from repro.sus import SUSStereotype


class TestSalesSchema:
    def test_paper_dimensions(self):
        schema = build_sales_schema()
        assert set(schema.dimensions) == {"Customer", "Store", "Product", "Time"}

    def test_paper_measures(self):
        schema = build_sales_schema()
        assert set(schema.fact("Sales").measures) == {
            "UnitSales",
            "StoreCost",
            "StoreSales",
        }

    def test_store_hierarchy(self):
        schema = build_sales_schema()
        assert schema.dimension("Store").rollup_path("State") == (
            "Store",
            "City",
            "State",
        )

    def test_paper_path_resolves(self):
        # Section 4.2.2: "to refer to the name on the State we use
        # MD.Sale.Store.State.name" (fact spelled Sales in Fig. 2).
        schema = build_sales_schema()
        resolved = schema.resolve(["Sales", "Store", "State", "name"])
        assert isinstance(resolved, ResolvedAttribute)


class TestUserModel:
    def test_fig4_classes(self):
        schema = build_motivating_user_model()
        assert schema.cls("DecisionMaker").stereotype is SUSStereotype.USER
        assert schema.cls("Role").stereotype is SUSStereotype.CHARACTERISTIC
        assert schema.cls("Session").stereotype is SUSStereotype.SESSION
        assert (
            schema.cls("Location").stereotype is SUSStereotype.LOCATION_CONTEXT
        )
        assert (
            schema.cls("AirportCity").stereotype
            is SUSStereotype.SPATIAL_SELECTION
        )

    def test_fig4_roles(self):
        schema = build_motivating_user_model()
        assert schema.navigate("DecisionMaker", "dm2role") == ("association", "Role")
        assert schema.navigate("DecisionMaker", "dm2session") == (
            "association",
            "Session",
        )
        assert schema.navigate("Session", "s2location") == (
            "association",
            "Location",
        )
        assert schema.navigate("DecisionMaker", "dm2airportcity") == (
            "association",
            "AirportCity",
        )

    def test_regional_manager_profile(self):
        profile = build_regional_manager_profile()
        assert (
            profile.get("DecisionMaker.dm2role.name") == "RegionalSalesManager"
        )
        assert not profile.in_session

    def test_profile_with_location(self):
        profile = build_regional_manager_profile(location=Point(1, 2))
        assert profile.in_session


class TestGeoSource:
    def test_airport_layer(self, world):
        source = WorldGeoSource(world)
        features = source.layer_features("Airport")
        assert len(features) == len(world.airports)
        assert all(isinstance(geom, Point) for _n, geom, _a in features)

    def test_train_layer(self, world):
        source = WorldGeoSource(world)
        features = source.layer_features("Train")
        assert len(features) == len(world.train_lines)
        assert all(isinstance(geom, LineString) for _n, geom, _a in features)

    def test_unknown_layer_is_none(self, world):
        assert WorldGeoSource(world).layer_features("Rivers") is None

    def test_level_geometries(self, world):
        source = WorldGeoSource(world)
        stores = source.level_geometries("Store", "Store")
        assert len(stores) == len(world.stores)
        states = source.level_geometries("Store", "State")
        assert all(isinstance(g, Polygon) for g in states.values())
        assert source.level_geometries("Time", "Day") is None


class TestPaperRuleTexts:
    def test_all_parse(self):
        for name, source in ALL_PAPER_RULES.items():
            rule = parse_rule(source)
            assert rule.name == name
