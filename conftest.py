"""Root conftest: loads the lock-order sanitizer plugin.

The plugin is inert unless ``REPRO_SANITIZE=1`` — see
``src/repro/analysis/pytest_plugin.py`` and the "Concurrency
invariants" section of the README.
"""

pytest_plugins = ("repro.analysis.pytest_plugin",)
