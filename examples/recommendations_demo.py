"""From personalization to recommendation: two similar analysts.

Replays the multi-user demo workload on the paper's sales datamart —
Ana and Bruno analyse neighbouring stores of the same city, Carla works
far away — then asks ``/api/v1/recommendations`` what Ana should try
next.  Bruno's per-city revenue query (which Ana never ran) comes back
ranked above Carla's unrelated workload, the ``Airport`` layer Bruno
fetched is suggested, and executing the recommended query runs against
Ana's *own* personalized view (no data outside her selection leaks).

Run:  python examples/recommendations_demo.py
"""

from repro.data import (
    ALL_PAPER_RULES,
    WorldGeoSource,
    build_motivating_user_model,
    build_sales_star,
    generate_world,
    replay_demo_workload,
)
from repro.personalization import PersonalizationEngine
from repro.web import PortalApp


def show(title: str, response) -> None:
    print(f"\n=== {title} [{response.status}] ===")
    print(response.text())


def main() -> None:
    world = generate_world()
    star = build_sales_star(world)
    engine = PersonalizationEngine(
        star,
        build_motivating_user_model(),
        geo_source=WorldGeoSource(world),
        parameters={"threshold": 3},
    )
    engine.add_rules(ALL_PAPER_RULES.values())
    app = PortalApp(engine, datamart_name="sales")

    tokens = replay_demo_workload(app, world)
    ana = tokens["ana-garcia"]

    show(
        "GET /api/v1/recommendations/queries (for Ana)",
        app.handle("GET", "/api/v1/recommendations/queries", token=ana),
    )
    show(
        "GET /api/v1/recommendations/layers (for Ana)",
        app.handle("GET", "/api/v1/recommendations/layers", token=ana),
    )
    show(
        "GET /api/v1/recommendations/members (for Ana, top 3)",
        app.handle(
            "GET",
            "/api/v1/recommendations/members",
            token=ana,
            query={"limit": "3"},
        ),
    )

    # Act on the top recommendation: it executes against Ana's own view.
    top = app.handle(
        "GET", "/api/v1/recommendations/queries", token=ana
    ).json()["items"][0]["item"]["q"]
    show(
        f"POST /api/v1/query (recommended: {top})",
        app.handle("POST", "/api/v1/query", {"q": top, "limit": 5}, token=ana),
    )

    show("GET /api/v1/health", app.handle("GET", "/api/v1/health"))


if __name__ == "__main__":
    main()
