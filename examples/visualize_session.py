"""Render a personalized session to SVG maps (visualization extension).

Writes three maps into ``./out``:

* ``world.svg``        — the raw world, before personalization;
* ``session.svg``      — after Examples 5.1+5.2 (5 km selection visible);
* ``widened.svg``      — after Example 5.3's train-connection widening.

Run:  python examples/visualize_session.py
"""

from pathlib import Path

from repro.data import (
    ALL_PAPER_RULES,
    WorldGeoSource,
    build_motivating_user_model,
    build_regional_manager_profile,
    build_sales_star,
    generate_world,
)
from repro.personalization import PersonalizationEngine
from repro.viz import render_session_map, render_world_map

CONDITION = "Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry)<20km"


def main() -> None:
    out = Path("out")
    out.mkdir(exist_ok=True)

    world = generate_world()
    star = build_sales_star(world)
    engine = PersonalizationEngine(
        star,
        build_motivating_user_model(),
        geo_source=WorldGeoSource(world),
        parameters={"threshold": 3},
    )
    engine.add_rules(ALL_PAPER_RULES.values())

    (out / "world.svg").write_text(render_world_map(world))
    print(f"wrote {out / 'world.svg'}")

    profile = build_regional_manager_profile()
    session = engine.start_session(profile, location=world.cities[0].location)
    (out / "session.svg").write_text(render_session_map(session, world))
    print(f"wrote {out / 'session.svg'} ({session.view().stats()})")

    for _ in range(4):
        session.record_spatial_selection("GeoMD.Store.City", CONDITION)
    session.rerun_instance_rules()
    (out / "widened.svg").write_text(render_session_map(session, world))
    print(f"wrote {out / 'widened.svg'} ({session.view().stats()})")
    session.end()


if __name__ == "__main__":
    main()
