"""Examples 5.1 + 5.2 walked end to end, with the schema diff printed.

The regional sales manager scenario: the ``addSpatiality`` schema rule
adds the Airport layer and spatializes the Store level (Fig. 2 → Fig. 6),
then ``5kmStores`` pre-selects the stores within 5 km of the manager's
location so every succeeding analysis — in any BI tool — only sees them.

Run:  python examples/regional_manager.py
"""

from repro.data import (
    ADD_CITY_SPATIALITY,
    ADD_SPATIALITY,
    FIVE_KM_STORES,
    WorldGeoSource,
    build_motivating_user_model,
    build_regional_manager_profile,
    build_sales_schema,
    build_sales_star,
    generate_world,
)
from repro.geomd import GeoMDSchema
from repro.mdm import diff_schemas
from repro.olap import parse_query, execute
from repro.personalization import PersonalizationEngine


def main() -> None:
    world = generate_world()
    star = build_sales_star(world)
    engine = PersonalizationEngine(
        star,
        build_motivating_user_model(),
        geo_source=WorldGeoSource(world),
    )
    engine.add_rules([ADD_SPATIALITY, ADD_CITY_SPATIALITY, FIVE_KM_STORES])

    before = GeoMDSchema.from_md(build_sales_schema())

    profile = build_regional_manager_profile(name="Ana Garcia")
    location = world.cities[0].location
    print(f"Ana logs in from {world.cities[0].name} {location.wkt}")
    session = engine.start_session(profile, location=location)

    print("\n--- Example 5.1: schema personalization (Fig. 2 -> Fig. 6) ---")
    print(diff_schemas(before, session.view().schema).summary())

    print("\n--- Example 5.2: instance personalization ---")
    selected = sorted(session.selection.members[("Store", "Store")])
    print(f"stores within 5 km of Ana: {len(selected)}")
    for name in selected:
        store = next(s for s in world.stores if s.name == name)
        distance = store.location.distance_to(location)
        print(f"  {name:30s} {distance/1000:5.2f} km")

    print("\n--- Succeeding analysis (GeoMDQL over the personalized view) ---")
    view = session.view()
    query = parse_query(
        "SELECT SUM(StoreSales), COUNT(*) FROM Sales BY Time.Month",
        view.schema,
    )
    result = execute(star, query, view.fact_rows)
    print(result.format_table())
    print(
        f"\n(scanned {result.fact_rows_scanned} personalized rows instead of "
        f"{len(star.fact_table())})"
    )
    session.end()


if __name__ == "__main__":
    main()
