"""Example 5.3 walked end to end: interest tracking + train widening.

The user repeatedly selects "cities at less than 20 km of an airport" in
the BI front end.  Each selection fires the ``IntAirportCity`` acquisition
rule, bumping the AirportCity interest degree in the spatial-aware user
model.  Once the degree exceeds the designer threshold, the
``TrainAirportCity`` rule adds the Train layer and *also* selects cities
that are not near an airport but have a good (< 50 km travel) train
connection to one.

Run:  python examples/interest_tracking.py
"""

from repro.data import (
    ALL_PAPER_RULES,
    WorldGeoSource,
    build_motivating_user_model,
    build_regional_manager_profile,
    build_sales_star,
    generate_world,
)
from repro.personalization import PersonalizationEngine

CONDITION = "Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry)<20km"
THRESHOLD = 3


def main() -> None:
    world = generate_world()
    star = build_sales_star(world)
    engine = PersonalizationEngine(
        star,
        build_motivating_user_model(),
        geo_source=WorldGeoSource(world),
        parameters={"threshold": THRESHOLD},
    )
    engine.add_rules(ALL_PAPER_RULES.values())

    profile = build_regional_manager_profile()
    session = engine.start_session(profile, location=world.stores[0].location)
    print("initial view:", session.view().stats())

    print(f"\nuser keeps selecting cities near airports (threshold={THRESHOLD}):")
    for i in range(1, 5):
        session.record_spatial_selection("GeoMD.Store.City", CONDITION)
        session.rerun_instance_rules()
        stats = session.view().stats()
        widened = ("Store", "City") in session.selection.members
        print(
            f"  selection #{i}: degree={profile.degree('AirportCity')} "
            f"kept_rows={stats['fact_rows_kept']} "
            f"train_widening={'ON' if widened else 'off'}"
        )

    print("\ncities added through their train connection to an airport:")
    for city_name in sorted(session.selection.members[("Store", "City")]):
        lines = [l.name for l in world.train_lines if city_name in l.stops]
        print(f"  {city_name:15s} via {', '.join(lines)}")

    print("\nfinal user profile snapshot:")
    degree = profile.degree("AirportCity")
    print(f"  AirportCity.degree = {degree}")
    session.end()


if __name__ == "__main__":
    main()
