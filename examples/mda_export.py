"""Export a personalized GeoMD schema to SQL (the MDA future work).

Runs the schema rules for the regional sales manager, then generates the
PostGIS star-schema DDL for the *personalized* GeoMD model — the
PIM → PSM transformation the authors' MDA framework performs.

Run:  python examples/mda_export.py
"""

from repro.data import (
    ADD_CITY_SPATIALITY,
    ADD_SPATIALITY,
    WorldGeoSource,
    build_motivating_user_model,
    build_regional_manager_profile,
    build_sales_star,
    generate_world,
)
from repro.mda import generate_ddl
from repro.personalization import PersonalizationEngine


def main() -> None:
    world = generate_world()
    star = build_sales_star(world)
    engine = PersonalizationEngine(
        star,
        build_motivating_user_model(),
        geo_source=WorldGeoSource(world),
    )
    engine.add_rules([ADD_SPATIALITY, ADD_CITY_SPATIALITY])

    profile = build_regional_manager_profile()
    session = engine.start_session(profile)
    schema = session.view().schema

    print(generate_ddl(schema, dialect="postgis"))
    session.end()


if __name__ == "__main__":
    main()
