"""Quickstart: the paper's pipeline in ~40 lines.

Builds the synthetic sales world, registers the Section 5 personalization
rules, opens an analysis session for the regional sales manager and shows
the personalized view a BI tool would receive.

Run:  python examples/quickstart.py
"""

from repro.data import (
    ALL_PAPER_RULES,
    WorldGeoSource,
    build_motivating_user_model,
    build_regional_manager_profile,
    build_sales_star,
    generate_world,
)
from repro.personalization import PersonalizationEngine


def main() -> None:
    # 1. The warehouse: the Fig. 2 sales cube, loaded with a synthetic world.
    world = generate_world()
    star = build_sales_star(world)
    print("world:", world.summary())

    # 2. The engine: paper rules + the external geographic data source.
    engine = PersonalizationEngine(
        star,
        build_motivating_user_model(),
        geo_source=WorldGeoSource(world),
        parameters={"threshold": 3},
    )
    engine.add_rules(ALL_PAPER_RULES.values())

    # 3. A decision maker logs in near their first store (Example 5.1+5.2
    #    fire: the schema gains spatiality, the instance gets filtered).
    profile = build_regional_manager_profile()
    session = engine.start_session(profile, location=world.stores[0].location)
    view = session.view()
    print("personalized view:", view.stats())

    # 4. A plain, non-spatial OLAP query now only sees the nearby stores.
    result = view.cube().by("Product.Family").result()
    print()
    print(result.format_table())
    session.end()


if __name__ == "__main__":
    main()
