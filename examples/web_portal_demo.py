"""The web-based personalization loop through the versioned portal API.

Simulates what a GeWOlap-style web client would do against ``/api/v1``:
login on a named datamart (rules fire), inspect the personalized schema,
run GeoMDQL queries with pagination, report spatial selections, watch
the view widen, log out.  Everything is in-process; to serve over a real
socket use ``repro.web.server.serve(app)`` or ``python -m repro serve``.

Run:  python examples/web_portal_demo.py
"""

from repro.data import (
    ALL_PAPER_RULES,
    WorldGeoSource,
    build_motivating_user_model,
    build_regional_manager_profile,
    build_sales_star,
    generate_world,
)
from repro.personalization import PersonalizationEngine
from repro.web import PortalApp

CONDITION = "Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry)<20km"


def show(title: str, response) -> None:
    print(f"\n=== {title} [{response.status}] ===")
    print(response.text())


def main() -> None:
    world = generate_world()
    star = build_sales_star(world)
    engine = PersonalizationEngine(
        star,
        build_motivating_user_model(),
        geo_source=WorldGeoSource(world),
        parameters={"threshold": 3},
    )
    engine.add_rules(ALL_PAPER_RULES.values())

    app = PortalApp(engine, datamart_name="sales")
    profile = build_regional_manager_profile()
    app.register_user(profile)

    show("GET /api/v1/datamarts", app.handle("GET", "/api/v1/datamarts"))

    location = world.stores[0].location
    login = app.handle(
        "POST",
        "/api/v1/login",
        {
            "user": profile.user_id,
            "datamart": "sales",
            "location": [location.x, location.y],
        },
    )
    show("POST /api/v1/login", login)
    token = login.json()["token"]

    show("GET /api/v1/view", app.handle("GET", "/api/v1/view", token=token))
    show(
        "POST /api/v1/query (limit=3)",
        app.handle(
            "POST",
            "/api/v1/query",
            {
                "q": "SELECT SUM(UnitSales) FROM Sales BY Store.City",
                "limit": 3,
            },
            token=token,
        ),
    )

    for i in range(4):
        response = app.handle(
            "POST",
            "/api/v1/selection",
            {"target": "GeoMD.Store.City", "condition": CONDITION},
            token=token,
        )
        print(
            f"selection #{i + 1}: matched rules = "
            f"{response.json()['matched_rules']}"
        )
    show(
        "POST /api/v1/selection/rerun",
        app.handle("POST", "/api/v1/selection/rerun", token=token),
    )
    show(
        "GET /api/v1/layers/Train?limit=2",
        app.handle(
            "GET", "/api/v1/layers/Train", token=token, query={"limit": "2"}
        ),
    )

    # The seed's unversioned routes still answer through the shim,
    # flagged with deprecation headers.
    legacy = app.handle("GET", "/view", token=token)
    print(
        f"\nlegacy GET /view [{legacy.status}] "
        f"Deprecation={legacy.headers.get('Deprecation')} "
        f"successor={legacy.headers.get('X-Successor')}"
    )

    show("POST /api/v1/logout", app.handle("POST", "/api/v1/logout", token=token))


if __name__ == "__main__":
    main()
