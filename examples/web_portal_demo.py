"""The web-based personalization loop through the portal API.

Simulates what a GeWOlap-style web client would do: login (rules fire),
inspect the personalized schema, run GeoMDQL queries, report spatial
selections, watch the view widen, log out.  Everything is in-process; to
serve over a real socket use ``repro.web.server.serve(app)``.

Run:  python examples/web_portal_demo.py
"""

from repro.data import (
    ALL_PAPER_RULES,
    WorldGeoSource,
    build_motivating_user_model,
    build_regional_manager_profile,
    build_sales_star,
    generate_world,
)
from repro.personalization import PersonalizationEngine
from repro.web import PortalApp

CONDITION = "Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry)<20km"


def show(title: str, response) -> None:
    print(f"\n=== {title} [{response.status}] ===")
    print(response.text())


def main() -> None:
    world = generate_world()
    star = build_sales_star(world)
    engine = PersonalizationEngine(
        star,
        build_motivating_user_model(),
        geo_source=WorldGeoSource(world),
        parameters={"threshold": 3},
    )
    engine.add_rules(ALL_PAPER_RULES.values())

    app = PortalApp(engine)
    profile = build_regional_manager_profile()
    app.register_user(profile)

    location = world.stores[0].location
    login = app.handle(
        "POST",
        "/login",
        {"user": profile.user_id, "location": [location.x, location.y]},
    )
    show("POST /login", login)
    token = login.json()["token"]

    show("GET /view", app.handle("GET", "/view", token=token))
    show(
        "POST /query",
        app.handle(
            "POST",
            "/query",
            {"q": "SELECT SUM(UnitSales) FROM Sales BY Store.City"},
            token=token,
        ),
    )

    for i in range(4):
        response = app.handle(
            "POST",
            "/selection",
            {"target": "GeoMD.Store.City", "condition": CONDITION},
            token=token,
        )
        print(
            f"selection #{i + 1}: matched rules = "
            f"{response.json()['matched_rules']}"
        )
    show("POST /selection/rerun", app.handle("POST", "/selection/rerun", token=token))
    show("GET /layers/Train", app.handle("GET", "/layers/Train", token=token))
    show("POST /logout", app.handle("POST", "/logout", token=token))


if __name__ == "__main__":
    main()
