"""Section 4.2.4's key claim, demonstrated.

"A decision maker wants to analyse sales fact with an OLAP engine without
spatial support.  But s/he is interested only on sales instances made in
cities near an airport (spatial condition).  Therefore, we can personalize
the SDW to cover this need and when the OLAP session begins the spatial
analysis have been done even if the analysis tool does not support spatial
data processing."

This example builds a custom instance rule selecting stores in cities near
airports, then runs a *purely relational* OLAP query (no spatial operators
anywhere) over both the raw warehouse and the personalized view, showing
the personalization did the spatial work up front.

Run:  python examples/nonspatial_bi.py
"""

from repro.data import (
    ADD_CITY_SPATIALITY,
    ADD_SPATIALITY,
    WorldGeoSource,
    build_motivating_user_model,
    build_regional_manager_profile,
    build_sales_star,
    generate_world,
)
from repro.mdm import Aggregator
from repro.olap import AggSpec, Cube
from repro.personalization import PersonalizationEngine

#: A custom instance rule: keep stores whose *city* is near an airport.
NEAR_AIRPORT_STORES = """\
Rule:nearAirportStores When SessionStart do
  Foreach c in (GeoMD.Store.City)
    Foreach a in (GeoMD.Airport)
      If (Distance(c.geometry, a.geometry) < 20km) then
        SelectInstance(c)
      endIf
    endForeach
  endForeach
endWhen
"""


def main() -> None:
    world = generate_world()
    star = build_sales_star(world)
    engine = PersonalizationEngine(
        star,
        build_motivating_user_model(),
        geo_source=WorldGeoSource(world),
    )
    engine.add_rules([ADD_SPATIALITY, ADD_CITY_SPATIALITY, NEAR_AIRPORT_STORES])

    profile = build_regional_manager_profile()
    session = engine.start_session(profile)
    view = session.view()

    # The "OLAP engine without spatial support": a plain cube query.
    def bi_tool_report(cube: Cube) -> None:
        result = (
            cube.measures(
                AggSpec(Aggregator.SUM, "StoreSales"),
                AggSpec(Aggregator.COUNT, "*"),
            )
            .by("Store.State")
            .result()
        )
        print(result.format_table())
        print(f"(rows scanned: {result.fact_rows_scanned})")

    print("=== raw warehouse (everything) ===")
    bi_tool_report(Cube(star))

    print("\n=== personalized view (cities near airports only) ===")
    bi_tool_report(view.cube())

    kept = view.stats()
    print(
        f"\nThe spatial condition was applied before the session: the plain "
        f"BI query touched {kept['fact_rows_kept']} of "
        f"{kept['fact_rows_total']} fact rows without ever seeing a "
        f"geometry."
    )
    session.end()


if __name__ == "__main__":
    main()
