"""The multidimensional (MD) metamodel — facts, dimensions, levels.

This is the reproduction of the UML profile for multidimensional modeling
of Luján-Mora, Trujillo & Song (ref [16] of the paper), which the paper's
Fig. 2 instantiates for the sales cube:

* a **Fact** holds the measures of the analysis (*FactAttributes*);
* a **Dimension** holds the contexts of analysis, structured as a lattice
  of **Base** classes (levels);
* each Base class has **Descriptor** / **DimensionAttribute** properties;
* associations between Base classes carry roles ``r`` (roll-up, towards
  coarser data) and ``d`` (drill-down, towards finer data).

The typed API below is what the rest of the system consumes; it compiles
to the UML representation (:mod:`repro.mdm.uml_export`) for figure
regeneration, and instances live in the star-schema storage
(:mod:`repro.storage`).
"""

from __future__ import annotations

import enum
from typing import Iterable, Iterator, Mapping

from repro.errors import SchemaError
from repro.uml.core import DataType, STRING

__all__ = [
    "AttributeKind",
    "Additivity",
    "Aggregator",
    "Attribute",
    "Level",
    "Hierarchy",
    "Dimension",
    "Measure",
    "Fact",
    "MDSchema",
    "ResolvedAttribute",
    "ResolvedLevel",
]


class AttributeKind(enum.Enum):
    """Stereotype of a level attribute in the MD profile."""

    DESCRIPTOR = "Descriptor"
    DIMENSION_ATTRIBUTE = "DimensionAttribute"


class Additivity(enum.Enum):
    """Summarizability class of a measure."""

    ADDITIVE = "additive"
    SEMI_ADDITIVE = "semi-additive"
    NON_ADDITIVE = "non-additive"


class Aggregator(enum.Enum):
    """Aggregation functions supported by the OLAP engine."""

    SUM = "SUM"
    COUNT = "COUNT"
    MIN = "MIN"
    MAX = "MAX"
    AVG = "AVG"
    COUNT_DISTINCT = "COUNT_DISTINCT"


class Attribute:
    """A named, typed attribute of a level (a Descriptor by default)."""

    def __init__(
        self,
        name: str,
        type_: DataType = STRING,
        kind: AttributeKind = AttributeKind.DIMENSION_ATTRIBUTE,
    ) -> None:
        if not name:
            raise SchemaError("attributes require a name")
        self.name = name
        self.type = type_
        self.kind = kind

    def __repr__(self) -> str:
        return f"<Attribute {self.name}:{self.type.name} {self.kind.value}>"


class Level:
    """A Base class of a dimension hierarchy.

    ``key`` names the Descriptor attribute identifying members of the
    level.  It is created automatically when not supplied.
    """

    def __init__(
        self,
        name: str,
        attributes: Iterable[Attribute] = (),
        key: str | None = None,
    ) -> None:
        if not name:
            raise SchemaError("levels require a name")
        self.name = name
        self.attributes: dict[str, Attribute] = {}
        for attr in attributes:
            self.add_attribute(attr)
        if key is None:
            key = "name"
            if key not in self.attributes:
                self.add_attribute(
                    Attribute(key, STRING, AttributeKind.DESCRIPTOR)
                )
        if key not in self.attributes:
            raise SchemaError(
                f"level {name!r}: key attribute {key!r} is not defined"
            )
        self.key = key
        self.attributes[key].kind = AttributeKind.DESCRIPTOR

    def add_attribute(self, attr: Attribute) -> Attribute:
        if attr.name in self.attributes:
            raise SchemaError(
                f"level {self.name!r} already has attribute {attr.name!r}"
            )
        self.attributes[attr.name] = attr
        return attr

    def attribute(self, name: str) -> Attribute:
        try:
            return self.attributes[name]
        except KeyError:
            raise SchemaError(
                f"level {self.name!r} has no attribute {name!r}; "
                f"available: {sorted(self.attributes)}"
            ) from None

    def __repr__(self) -> str:
        return f"<Level {self.name} key={self.key}>"


class Hierarchy:
    """A linear aggregation path through levels, finest first.

    ``path[i]`` rolls up (role ``r``) to ``path[i+1]``; conversely
    ``path[i+1]`` drills down (role ``d``) to ``path[i]``.
    """

    def __init__(self, name: str, path: Iterable[str]) -> None:
        if not name:
            raise SchemaError("hierarchies require a name")
        self.name = name
        self.path: tuple[str, ...] = tuple(path)
        if len(self.path) < 1:
            raise SchemaError(f"hierarchy {name!r} requires at least one level")
        if len(set(self.path)) != len(self.path):
            raise SchemaError(f"hierarchy {name!r} repeats a level")

    def rollup_edges(self) -> Iterator[tuple[str, str]]:
        """Yield (finer, coarser) level-name pairs along the path."""
        for i in range(len(self.path) - 1):
            yield self.path[i], self.path[i + 1]

    def __repr__(self) -> str:
        return f"<Hierarchy {self.name}: {' -> '.join(self.path)}>"


class Dimension:
    """A context of analysis: a leaf level plus aggregation hierarchies."""

    def __init__(
        self,
        name: str,
        levels: Iterable[Level],
        hierarchies: Iterable[Hierarchy] = (),
        leaf: str | None = None,
    ) -> None:
        if not name:
            raise SchemaError("dimensions require a name")
        self.name = name
        self.levels: dict[str, Level] = {}
        for level in levels:
            if level.name in self.levels:
                raise SchemaError(
                    f"dimension {name!r} already has level {level.name!r}"
                )
            self.levels[level.name] = level
        if not self.levels:
            raise SchemaError(f"dimension {name!r} requires at least one level")
        if leaf is None:
            leaf = name if name in self.levels else next(iter(self.levels))
        if leaf not in self.levels:
            raise SchemaError(
                f"dimension {name!r}: leaf level {leaf!r} is not defined"
            )
        self.leaf = leaf
        self.hierarchies: dict[str, Hierarchy] = {}
        for hierarchy in hierarchies:
            self.add_hierarchy(hierarchy)
        if not self.hierarchies:
            self.add_hierarchy(Hierarchy("default", [self.leaf]))
        self._validate()

    def add_hierarchy(self, hierarchy: Hierarchy) -> Hierarchy:
        if hierarchy.name in self.hierarchies:
            raise SchemaError(
                f"dimension {self.name!r} already has hierarchy "
                f"{hierarchy.name!r}"
            )
        for level_name in hierarchy.path:
            if level_name not in self.levels:
                raise SchemaError(
                    f"hierarchy {hierarchy.name!r} of dimension {self.name!r} "
                    f"references unknown level {level_name!r}"
                )
        if hierarchy.path[0] != self.leaf:
            raise SchemaError(
                f"hierarchy {hierarchy.name!r} of dimension {self.name!r} "
                f"must start at the leaf level {self.leaf!r}"
            )
        self.hierarchies[hierarchy.name] = hierarchy
        return hierarchy

    def _validate(self) -> None:
        # The union of roll-up edges must be acyclic (it is a DAG rooted at
        # the leaf; linear hierarchies guarantee this unless two hierarchies
        # disagree on direction).
        edges = {
            edge for h in self.hierarchies.values() for edge in h.rollup_edges()
        }
        for finer, coarser in edges:
            if (coarser, finer) in edges:
                raise SchemaError(
                    f"dimension {self.name!r}: levels {finer!r} and "
                    f"{coarser!r} roll up to each other"
                )

    def level(self, name: str) -> Level:
        try:
            return self.levels[name]
        except KeyError:
            raise SchemaError(
                f"dimension {self.name!r} has no level {name!r}; "
                f"available: {sorted(self.levels)}"
            ) from None

    @property
    def leaf_level(self) -> Level:
        return self.levels[self.leaf]

    def rollup_path(self, level_name: str) -> tuple[str, ...]:
        """The leaf→level path of the first hierarchy containing the level."""
        for hierarchy in self.hierarchies.values():
            if level_name in hierarchy.path:
                idx = hierarchy.path.index(level_name)
                return hierarchy.path[: idx + 1]
        raise SchemaError(
            f"dimension {self.name!r}: level {level_name!r} is not on any "
            f"hierarchy"
        )

    def parent_level(self, level_name: str) -> str | None:
        """Immediate roll-up target of a level (first hierarchy that has one)."""
        for hierarchy in self.hierarchies.values():
            for finer, coarser in hierarchy.rollup_edges():
                if finer == level_name:
                    return coarser
        return None

    def __repr__(self) -> str:
        return f"<Dimension {self.name} levels={sorted(self.levels)}>"


class Measure:
    """A FactAttribute: a numeric property of the fact."""

    def __init__(
        self,
        name: str,
        type_: DataType,
        default_aggregator: Aggregator = Aggregator.SUM,
        additivity: Additivity = Additivity.ADDITIVE,
    ) -> None:
        if not name:
            raise SchemaError("measures require a name")
        if type_.name not in ("Integer", "Real"):
            raise SchemaError(
                f"measure {name!r} must be numeric, got {type_.name}"
            )
        if additivity is Additivity.NON_ADDITIVE and default_aggregator in (
            Aggregator.SUM,
        ):
            raise SchemaError(
                f"measure {name!r} is non-additive; SUM cannot be its default"
            )
        self.name = name
        self.type = type_
        self.default_aggregator = default_aggregator
        self.additivity = additivity

    def __repr__(self) -> str:
        return f"<Measure {self.name}:{self.type.name}>"


class Fact:
    """A Fact class: measures plus the dimensions that contextualize them."""

    def __init__(
        self,
        name: str,
        dimension_names: Iterable[str],
        measures: Iterable[Measure],
    ) -> None:
        if not name:
            raise SchemaError("facts require a name")
        self.name = name
        self.dimension_names: tuple[str, ...] = tuple(dimension_names)
        if len(set(self.dimension_names)) != len(self.dimension_names):
            raise SchemaError(f"fact {name!r} repeats a dimension")
        if not self.dimension_names:
            raise SchemaError(f"fact {name!r} requires at least one dimension")
        self.measures: dict[str, Measure] = {}
        for measure in measures:
            if measure.name in self.measures:
                raise SchemaError(
                    f"fact {name!r} already has measure {measure.name!r}"
                )
            self.measures[measure.name] = measure
        if not self.measures:
            raise SchemaError(f"fact {name!r} requires at least one measure")

    def measure(self, name: str) -> Measure:
        try:
            return self.measures[name]
        except KeyError:
            raise SchemaError(
                f"fact {self.name!r} has no measure {name!r}; "
                f"available: {sorted(self.measures)}"
            ) from None

    def __repr__(self) -> str:
        return f"<Fact {self.name} dims={list(self.dimension_names)}>"


class ResolvedLevel:
    """Resolution result: a level reached through fact/dimension steps."""

    def __init__(self, dimension: Dimension, level: Level, fact: Fact | None) -> None:
        self.dimension = dimension
        self.level = level
        self.fact = fact

    @property
    def qualified_name(self) -> str:
        return f"{self.dimension.name}.{self.level.name}"

    def __repr__(self) -> str:
        return f"<ResolvedLevel {self.qualified_name}>"


class ResolvedAttribute:
    """Resolution result: an attribute of a level (or a fact measure)."""

    def __init__(
        self,
        attribute: Attribute | Measure,
        level: ResolvedLevel | None = None,
        fact: Fact | None = None,
    ) -> None:
        self.attribute = attribute
        self.level = level
        self.fact = fact

    @property
    def qualified_name(self) -> str:
        if self.level is not None:
            return f"{self.level.qualified_name}.{self.attribute.name}"
        assert self.fact is not None
        return f"{self.fact.name}.{self.attribute.name}"

    def __repr__(self) -> str:
        return f"<ResolvedAttribute {self.qualified_name}>"


class MDSchema:
    """A multidimensional schema: shared dimensions plus facts.

    Path resolution (:meth:`resolve`) implements the ``MD.`` prefix
    navigation of PRML Section 4.2.2: the source concept is always a Fact
    class, then a dimension, then optionally coarser levels, ending at an
    attribute or a level.
    """

    def __init__(
        self,
        name: str,
        dimensions: Iterable[Dimension],
        facts: Iterable[Fact],
    ) -> None:
        if not name:
            raise SchemaError("schemas require a name")
        self.name = name
        self.dimensions: dict[str, Dimension] = {}
        for dimension in dimensions:
            if dimension.name in self.dimensions:
                raise SchemaError(
                    f"schema {name!r} already has dimension {dimension.name!r}"
                )
            self.dimensions[dimension.name] = dimension
        self.facts: dict[str, Fact] = {}
        for fact in facts:
            if fact.name in self.facts:
                raise SchemaError(
                    f"schema {name!r} already has fact {fact.name!r}"
                )
            for dim_name in fact.dimension_names:
                if dim_name not in self.dimensions:
                    raise SchemaError(
                        f"fact {fact.name!r} references unknown dimension "
                        f"{dim_name!r}"
                    )
            self.facts[fact.name] = fact

    # -- lookup --------------------------------------------------------------

    def dimension(self, name: str) -> Dimension:
        try:
            return self.dimensions[name]
        except KeyError:
            raise SchemaError(
                f"schema {self.name!r} has no dimension {name!r}; "
                f"available: {sorted(self.dimensions)}"
            ) from None

    def fact(self, name: str) -> Fact:
        try:
            return self.facts[name]
        except KeyError:
            raise SchemaError(
                f"schema {self.name!r} has no fact {name!r}; "
                f"available: {sorted(self.facts)}"
            ) from None

    def default_fact(self) -> Fact:
        if len(self.facts) != 1:
            raise SchemaError(
                f"schema {self.name!r} has {len(self.facts)} facts; "
                f"name one explicitly"
            )
        return next(iter(self.facts.values()))

    # -- path resolution -------------------------------------------------------

    def resolve(self, steps: Iterable[str]) -> ResolvedAttribute | ResolvedLevel:
        """Resolve a dotted MD path.

        Accepted shapes (mirroring the paper's examples):

        * ``Fact.Measure``                      → measure
        * ``Fact.Dimension``                    → leaf level
        * ``Fact.Dimension.attr``               → leaf-level attribute
        * ``Fact.Dimension.Level``              → level
        * ``Fact.Dimension.Level.attr``         → level attribute
        * ``Dimension...`` (fact omitted)       → same, when unambiguous
        """
        parts = list(steps)
        if not parts:
            raise SchemaError("empty MD path")
        fact: Fact | None = None
        if parts[0] in self.facts:
            fact = self.facts[parts[0]]
            parts = parts[1:]
            if not parts:
                raise SchemaError(
                    f"MD path ends at fact {fact.name!r}; expected a measure "
                    f"or dimension step"
                )
            if parts[0] in fact.measures and len(parts) == 1:
                return ResolvedAttribute(fact.measures[parts[0]], fact=fact)
        if parts[0] not in self.dimensions:
            raise SchemaError(
                f"cannot resolve MD step {parts[0]!r}: not a fact, measure "
                f"or dimension of schema {self.name!r}"
            )
        dimension = self.dimensions[parts[0]]
        if fact is not None and dimension.name not in fact.dimension_names:
            raise SchemaError(
                f"dimension {dimension.name!r} does not contextualize fact "
                f"{fact.name!r}"
            )
        parts = parts[1:]
        level = dimension.leaf_level
        while parts:
            step = parts[0]
            if step in dimension.levels and dimension.levels[step] is not level:
                level = dimension.levels[step]
                parts = parts[1:]
                continue
            if step in level.attributes:
                if len(parts) > 1:
                    raise SchemaError(
                        f"MD path continues past attribute {step!r} of level "
                        f"{level.name!r}"
                    )
                return ResolvedAttribute(
                    level.attributes[step],
                    level=ResolvedLevel(dimension, level, fact),
                )
            raise SchemaError(
                f"cannot resolve MD step {step!r} from level {level.name!r} "
                f"of dimension {dimension.name!r} (levels: "
                f"{sorted(dimension.levels)}; attributes: "
                f"{sorted(level.attributes)})"
            )
        return ResolvedLevel(dimension, level, fact)

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready snapshot of the schema structure."""
        return {
            "name": self.name,
            "dimensions": [
                {
                    "name": d.name,
                    "leaf": d.leaf,
                    "levels": [
                        {
                            "name": lv.name,
                            "key": lv.key,
                            "attributes": [
                                {
                                    "name": a.name,
                                    "type": a.type.name,
                                    "kind": a.kind.value,
                                }
                                for a in lv.attributes.values()
                            ],
                        }
                        for lv in d.levels.values()
                    ],
                    "hierarchies": [
                        {"name": h.name, "path": list(h.path)}
                        for h in d.hierarchies.values()
                    ],
                }
                for d in self.dimensions.values()
            ],
            "facts": [
                {
                    "name": f.name,
                    "dimensions": list(f.dimension_names),
                    "measures": [
                        {
                            "name": m.name,
                            "type": m.type.name,
                            "aggregator": m.default_aggregator.value,
                            "additivity": m.additivity.value,
                        }
                        for m in f.measures.values()
                    ],
                }
                for f in self.facts.values()
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "MDSchema":
        """Rebuild a schema from :meth:`to_dict` output."""
        from repro.uml.core import BOOLEAN, DATE, GEOMETRY, INTEGER, REAL, STRING

        types = {t.name: t for t in (STRING, INTEGER, REAL, BOOLEAN, GEOMETRY, DATE)}
        dimensions = []
        for dim_data in data["dimensions"]:
            levels = []
            for level_data in dim_data["levels"]:
                attributes = [
                    Attribute(
                        a["name"],
                        types[a["type"]],
                        AttributeKind(a["kind"]),
                    )
                    for a in level_data["attributes"]
                ]
                levels.append(
                    Level(level_data["name"], attributes, key=level_data["key"])
                )
            hierarchies = [
                Hierarchy(h["name"], h["path"]) for h in dim_data["hierarchies"]
            ]
            dimensions.append(
                Dimension(
                    dim_data["name"], levels, hierarchies, leaf=dim_data["leaf"]
                )
            )
        facts = []
        for fact_data in data["facts"]:
            measures = [
                Measure(
                    m["name"],
                    types[m["type"]],
                    Aggregator(m["aggregator"]),
                    Additivity(m["additivity"]),
                )
                for m in fact_data["measures"]
            ]
            facts.append(Fact(fact_data["name"], fact_data["dimensions"], measures))
        return cls(data["name"], dimensions, facts)

    def __repr__(self) -> str:
        return (
            f"<MDSchema {self.name} facts={sorted(self.facts)} "
            f"dims={sorted(self.dimensions)}>"
        )
