"""Compile an MD schema to its UML-profile representation.

The paper's figures are UML class diagrams; this module rebuilds them from
the typed :class:`~repro.mdm.model.MDSchema` so that FIG2/FIG6 can be
regenerated and asserted on.  The profile mirrors ref [16]:

* ``<<Fact>>`` classes with ``<<FactAttribute>>`` properties;
* ``<<Dimension>>`` classes;
* ``<<Base>>`` classes per level, with ``<<Descriptor>>`` /
  ``<<DimensionAttribute>>`` properties;
* ``<<Rolls-upTo>>`` associations between consecutive levels with the
  paper's ``r`` (roll-up) and ``d`` (drill-down) roles.
"""

from __future__ import annotations

from repro.mdm.model import AttributeKind, Dimension, Fact, MDSchema
from repro.uml.core import (
    Association,
    AssociationEnd,
    Model,
    Profile,
    Property,
    Stereotype,
    UMLClass,
)

__all__ = ["md_profile", "schema_to_uml"]


def md_profile() -> Profile:
    """The UML profile for multidimensional modeling (ref [16])."""
    return Profile(
        "MDProfile",
        [
            Stereotype("Fact", "Class"),
            Stereotype("Dimension", "Class"),
            Stereotype("Base", "Class"),
            Stereotype("FactAttribute", "Property"),
            Stereotype("Descriptor", "Property"),
            Stereotype("DimensionAttribute", "Property"),
            Stereotype("Rolls-upTo", "Association"),
        ],
    )


def _level_class_name(dimension: Dimension, level_name: str) -> str:
    """Level classes are prefixed by their dimension when names collide."""
    if level_name == dimension.name:
        return level_name
    return level_name


def _export_dimension(model: Model, profile: Profile, dimension: Dimension) -> None:
    dim_cls = UMLClass(dimension.name + "Dim" if dimension.name in dimension.levels else dimension.name)
    model.add_class(dim_cls)
    profile.apply(dim_cls, "Dimension")
    for level in dimension.levels.values():
        level_cls = UMLClass(_level_class_name(dimension, level.name))
        if level_cls.name in model.classes:
            # Shared level names across dimensions get qualified.
            level_cls = UMLClass(f"{dimension.name}_{level.name}")
        model.add_class(level_cls)
        profile.apply(level_cls, "Base")
        for attr in level.attributes.values():
            prop = level_cls.add_property(Property(attr.name, attr.type))
            stereotype = (
                "Descriptor"
                if attr.kind is AttributeKind.DESCRIPTOR
                else "DimensionAttribute"
            )
            profile.apply(prop, stereotype)
    # Dimension -> leaf level association.
    leaf_cls = _find_level_class(model, dimension, dimension.leaf)
    assoc = Association(
        f"{dim_cls.name}_to_{leaf_cls.name}",
        AssociationEnd("dim", dim_cls, 1, 1),
        AssociationEnd("leaf", leaf_cls, 1, 1),
    )
    model.add_association(assoc)
    # Roll-up associations.
    seen: set[tuple[str, str]] = set()
    for hierarchy in dimension.hierarchies.values():
        for finer, coarser in hierarchy.rollup_edges():
            if (finer, coarser) in seen:
                continue
            seen.add((finer, coarser))
            finer_cls = _find_level_class(model, dimension, finer)
            coarser_cls = _find_level_class(model, dimension, coarser)
            rollup = Association(
                f"{finer_cls.name}_rollsup_{coarser_cls.name}",
                AssociationEnd("d", finer_cls, 1, None),
                AssociationEnd("r", coarser_cls, 1, 1),
            )
            model.add_association(rollup)
            profile.apply(rollup, "Rolls-upTo")


def _find_level_class(model: Model, dimension: Dimension, level_name: str) -> UMLClass:
    name = _level_class_name(dimension, level_name)
    if name in model.classes:
        return model.classes[name]
    return model.classes[f"{dimension.name}_{level_name}"]


def _export_fact(model: Model, profile: Profile, schema: MDSchema, fact: Fact) -> None:
    fact_cls = UMLClass(fact.name)
    model.add_class(fact_cls)
    profile.apply(fact_cls, "Fact")
    for measure in fact.measures.values():
        prop = fact_cls.add_property(Property(measure.name, measure.type))
        profile.apply(prop, "FactAttribute")
    for dim_name in fact.dimension_names:
        dimension = schema.dimension(dim_name)
        dim_cls_name = (
            dimension.name + "Dim"
            if dimension.name in dimension.levels
            else dimension.name
        )
        dim_cls = model.classes[dim_cls_name]
        assoc = Association(
            f"{fact.name}_to_{dim_cls.name}",
            AssociationEnd("fact", fact_cls, 0, None),
            AssociationEnd(dim_name.lower(), dim_cls, 1, 1),
        )
        model.add_association(assoc)


def schema_to_uml(schema: MDSchema) -> Model:
    """Build the UML model (with MD profile applied) for a schema."""
    model = Model(schema.name)
    profile = md_profile()
    model.apply_profile(profile)
    for dimension in schema.dimensions.values():
        _export_dimension(model, profile, dimension)
    for fact in schema.facts.values():
        _export_fact(model, profile, schema, fact)
    return model
