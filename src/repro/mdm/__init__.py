"""Multidimensional metamodel (the UML profile of ref [16], typed API).

Facts, dimensions, levels (Base classes), hierarchies with roll-up /
drill-down roles, measures with additivity — plus path resolution for the
PRML ``MD.`` prefix, UML export for figure regeneration, serialization
and structural schema diffing.
"""

from repro.mdm.diff import SchemaDiff, diff_schemas
from repro.mdm.model import (
    Additivity,
    Aggregator,
    Attribute,
    AttributeKind,
    Dimension,
    Fact,
    Hierarchy,
    Level,
    MDSchema,
    Measure,
    ResolvedAttribute,
    ResolvedLevel,
)
from repro.mdm.uml_export import md_profile, schema_to_uml

__all__ = [
    "Additivity",
    "Aggregator",
    "Attribute",
    "AttributeKind",
    "Dimension",
    "Fact",
    "Hierarchy",
    "Level",
    "MDSchema",
    "Measure",
    "ResolvedAttribute",
    "ResolvedLevel",
    "SchemaDiff",
    "diff_schemas",
    "md_profile",
    "schema_to_uml",
]
