"""Structural diff between two multidimensional schemas.

Used by the personalization tests/benchmarks to assert exactly what a
schema rule changed — e.g. that ``addSpatiality`` (Example 5.1) added an
``Airport`` layer and made the ``Store`` level spatial, and nothing else
(Fig. 2 → Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mdm.model import MDSchema

__all__ = ["SchemaDiff", "diff_schemas"]


@dataclass
class SchemaDiff:
    """Named change lists between an *old* and a *new* schema."""

    added_dimensions: list[str] = field(default_factory=list)
    removed_dimensions: list[str] = field(default_factory=list)
    added_levels: list[str] = field(default_factory=list)  # "Dim.Level"
    removed_levels: list[str] = field(default_factory=list)
    added_attributes: list[str] = field(default_factory=list)  # "Dim.Level.attr"
    removed_attributes: list[str] = field(default_factory=list)
    added_facts: list[str] = field(default_factory=list)
    removed_facts: list[str] = field(default_factory=list)
    added_measures: list[str] = field(default_factory=list)  # "Fact.measure"
    removed_measures: list[str] = field(default_factory=list)
    added_layers: list[str] = field(default_factory=list)
    removed_layers: list[str] = field(default_factory=list)
    spatialized_levels: list[str] = field(default_factory=list)  # "Dim.Level"
    despatialized_levels: list[str] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return not any(
            getattr(self, name)
            for name in self.__dataclass_fields__  # type: ignore[attr-defined]
        )

    def summary(self) -> str:
        """Human-readable multi-line change report."""
        lines: list[str] = []
        for name in self.__dataclass_fields__:  # type: ignore[attr-defined]
            values = getattr(self, name)
            if values:
                label = name.replace("_", " ")
                lines.append(f"{label}: {', '.join(sorted(values))}")
        return "\n".join(lines) if lines else "(no changes)"


def diff_schemas(old: MDSchema, new: MDSchema) -> SchemaDiff:
    """Compute the structural diff from ``old`` to ``new``.

    Both arguments may be plain :class:`MDSchema` or
    :class:`~repro.geomd.schema.GeoMDSchema`; layer and spatial-level
    changes are reported when either side carries them.
    """
    diff = SchemaDiff()

    old_dims = set(old.dimensions)
    new_dims = set(new.dimensions)
    diff.added_dimensions = sorted(new_dims - old_dims)
    diff.removed_dimensions = sorted(old_dims - new_dims)

    for dim_name in old_dims & new_dims:
        old_dim = old.dimensions[dim_name]
        new_dim = new.dimensions[dim_name]
        old_levels = set(old_dim.levels)
        new_levels = set(new_dim.levels)
        diff.added_levels += [f"{dim_name}.{lv}" for lv in sorted(new_levels - old_levels)]
        diff.removed_levels += [
            f"{dim_name}.{lv}" for lv in sorted(old_levels - new_levels)
        ]
        for level_name in old_levels & new_levels:
            old_attrs = set(old_dim.levels[level_name].attributes)
            new_attrs = set(new_dim.levels[level_name].attributes)
            diff.added_attributes += [
                f"{dim_name}.{level_name}.{a}" for a in sorted(new_attrs - old_attrs)
            ]
            diff.removed_attributes += [
                f"{dim_name}.{level_name}.{a}" for a in sorted(old_attrs - new_attrs)
            ]

    old_facts = set(old.facts)
    new_facts = set(new.facts)
    diff.added_facts = sorted(new_facts - old_facts)
    diff.removed_facts = sorted(old_facts - new_facts)
    for fact_name in old_facts & new_facts:
        old_measures = set(old.facts[fact_name].measures)
        new_measures = set(new.facts[fact_name].measures)
        diff.added_measures += [
            f"{fact_name}.{m}" for m in sorted(new_measures - old_measures)
        ]
        diff.removed_measures += [
            f"{fact_name}.{m}" for m in sorted(old_measures - new_measures)
        ]

    old_layers = set(getattr(old, "layers", {}) or {})
    new_layers = set(getattr(new, "layers", {}) or {})
    diff.added_layers = sorted(new_layers - old_layers)
    diff.removed_layers = sorted(old_layers - new_layers)

    old_spatial = set(getattr(old, "spatial_levels", {}) or {})
    new_spatial = set(getattr(new, "spatial_levels", {}) or {})
    diff.spatialized_levels = sorted(new_spatial - old_spatial)
    diff.despatialized_levels = sorted(old_spatial - new_spatial)

    return diff
