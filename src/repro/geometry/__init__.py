"""Planar geometry kernel (ISO 19107 / OGC Simple Features subset).

This package is the substrate for every spatial feature of the
reproduction: the PRML spatial operators, the GeoMD layers, the spatial
OLAP aggregation functions and the synthetic world generators.

Public surface:

* geometry types — :class:`Point`, :class:`LineString`, :class:`Polygon`,
  multi-part variants, :class:`GeometryCollection`, :class:`Envelope`;
* WKT I/O — :func:`wkt_loads` / :func:`wkt_dumps`;
* topological predicates — :func:`intersects`, :func:`disjoint`,
  :func:`within`, :func:`contains`, :func:`crosses`, :func:`touches`,
  :func:`overlaps`, :func:`equals` — plus the general DE-9IM
  :func:`relate` matrix with :func:`matches` pattern tests;
* operations — :func:`distance`, :func:`intersection`, :func:`centroid`,
  :func:`convex_hull`, :func:`point_buffer`;
* metrics — :class:`PlanarMetric`, :class:`HaversineMetric`;
* indexes — :class:`GridIndex`, :class:`STRtree`.
"""

from repro.geometry.gtypes import (
    Envelope,
    Geometry,
    GeometryCollection,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
    as_point,
)
from repro.geometry.de9im import dim_char, matches, relate
from repro.geometry.index import GridIndex, STRtree, brute_force_within_distance
from repro.geometry.metrics import (
    EARTH_RADIUS_M,
    HaversineMetric,
    Metric,
    PlanarMetric,
    convert_to_metres,
)
from repro.geometry.ops import (
    centroid,
    clip_line_to_polygon,
    clip_polygon_convex,
    convex_hull,
    distance,
    envelope_geometry,
    intersection,
    is_convex,
    point_buffer,
    split_line_at,
)
from repro.geometry.predicates import (
    contains,
    crosses,
    disjoint,
    equals,
    intersects,
    overlaps,
    touches,
    within,
)
from repro.geometry.wkt import dumps as wkt_dumps
from repro.geometry.wkt import loads as wkt_loads

__all__ = [
    "Envelope",
    "Geometry",
    "GeometryCollection",
    "LineString",
    "MultiLineString",
    "MultiPoint",
    "MultiPolygon",
    "Point",
    "Polygon",
    "as_point",
    "dim_char",
    "matches",
    "relate",
    "GridIndex",
    "STRtree",
    "brute_force_within_distance",
    "EARTH_RADIUS_M",
    "HaversineMetric",
    "Metric",
    "PlanarMetric",
    "convert_to_metres",
    "centroid",
    "clip_line_to_polygon",
    "clip_polygon_convex",
    "convex_hull",
    "distance",
    "envelope_geometry",
    "intersection",
    "is_convex",
    "point_buffer",
    "split_line_at",
    "contains",
    "crosses",
    "disjoint",
    "equals",
    "intersects",
    "overlaps",
    "touches",
    "within",
    "wkt_dumps",
    "wkt_loads",
]
