"""DE-9IM: the dimensionally-extended 9-intersection model.

The ISO 19107 / OGC standards the paper grounds its operators in define
topological relations through the 9-intersection matrix — the dimensions
of the pairwise intersections of the interiors (I), boundaries (B) and
exteriors (E) of two geometries.  :func:`relate` computes the matrix for
atomic geometry pairs; :func:`matches` tests it against a DE-9IM pattern
(``"T*F**FFF*"`` and friends), which is how the OGC defines every named
predicate.  The named predicates of :mod:`repro.geometry.predicates` are
property-tested against these matrices.

Supported operand types: Point, LineString, Polygon (atomic).  Multi-part
operands raise — the PRML layer only ever relates atoms, and full
multi-part DE-9IM would need a general overlay operator that is out of
reproduction scope (DESIGN.md §5).
"""

from __future__ import annotations

from repro.errors import GeometryError
from repro.geometry import algorithms as alg
from repro.geometry.algorithms import Coord
from repro.geometry.gtypes import Geometry, LineString, Point, Polygon

__all__ = ["relate", "matches", "dim_char"]

_F = "F"


def dim_char(dimension: int | None) -> str:
    """Render an intersection dimension as its matrix character."""
    if dimension is None:
        return _F
    if dimension in (0, 1, 2):
        return str(dimension)
    raise GeometryError(f"invalid DE-9IM dimension {dimension!r}")


def matches(matrix: str, pattern: str) -> bool:
    """Does a DE-9IM matrix satisfy an OGC pattern?

    Pattern characters: ``T`` (non-empty), ``F`` (empty), ``*`` (anything),
    ``0``/``1``/``2`` (exact dimension).
    """
    if len(matrix) != 9 or len(pattern) != 9:
        raise GeometryError("DE-9IM matrices/patterns have exactly 9 cells")
    for cell, want in zip(matrix, pattern):
        if want == "*":
            continue
        if want == "T":
            if cell == _F:
                return False
        elif cell != want:
            return False
    return True


# ---------------------------------------------------------------------------
# Interior / boundary classification helpers
# ---------------------------------------------------------------------------

def _line_boundary(line: LineString) -> tuple[Coord, ...]:
    """The topological boundary of a line: its endpoints (empty if closed)."""
    if line.is_closed:
        return ()
    return (line.coord_list[0], line.coord_list[-1])


def _on_line(c: Coord, line: LineString) -> bool:
    return any(alg.on_segment(c, s, e) for s, e in line.segments())


def _in_line_interior(c: Coord, line: LineString) -> bool:
    if not _on_line(c, line):
        return False
    return not any(
        alg.coords_equal(c, endpoint) for endpoint in _line_boundary(line)
    )


def _line_probes(line: LineString) -> list[Coord]:
    """Vertices + segment midpoints (interior-dense probe set)."""
    probes: list[Coord] = list(line.coord_list)
    for s, e in line.segments():
        probes.append(((s[0] + e[0]) / 2.0, (s[1] + e[1]) / 2.0))
    return probes


def _interior_line_probes(line: LineString) -> list[Coord]:
    boundary = _line_boundary(line)
    return [
        c
        for c in _line_probes(line)
        if not any(alg.coords_equal(c, b) for b in boundary)
    ]


def _polygon_boundary_probes(poly: Polygon) -> list[Coord]:
    probes: list[Coord] = []
    for s, e in poly.boundary_segments():
        probes.append(s)
        probes.append(((s[0] + e[0]) / 2.0, (s[1] + e[1]) / 2.0))
    return probes


def _line_covered_by_line(a: LineString, b: LineString) -> bool:
    return all(_on_line(c, b) for c in _line_probes(a))


def _line_covered_by_polygon_closure(line: LineString, poly: Polygon) -> bool:
    from repro.geometry.predicates import _boundary_crossed

    if any(poly.locate_coord(c) == "exterior" for c in _line_probes(line)):
        return False
    return not _boundary_crossed(line, poly)


def _polygon_covered_by_polygon(a: Polygon, b: Polygon) -> bool:
    from repro.geometry.predicates import within

    return within(a, b) or _rings_equal_as_sets(a, b)


def _rings_equal_as_sets(a: Polygon, b: Polygon) -> bool:
    from repro.geometry.predicates import equals

    return equals(a, b)


# ---------------------------------------------------------------------------
# Pairwise matrices
# ---------------------------------------------------------------------------

def _relate_point_point(a: Point, b: Point) -> str:
    same = alg.coords_equal(a.coord, b.coord)
    ii = "0" if same else _F
    ie = _F if same else "0"
    ei = _F if same else "0"
    return f"{ii}{_F}{ie}{_F}{_F}{_F}{ei}{_F}2"


def _relate_point_line(a: Point, b: LineString) -> str:
    boundary = _line_boundary(b)
    on_boundary = any(alg.coords_equal(a.coord, e) for e in boundary)
    in_interior = _in_line_interior(a.coord, b)
    ii = "0" if in_interior else _F
    ib = "0" if on_boundary else _F
    ie = _F if (in_interior or on_boundary) else "0"
    ei = "1"  # a point can never cover a 1-dimensional interior
    # Some boundary endpoint lies outside the point unless the line is
    # closed (empty boundary) or degenerate.
    eb = _F
    if boundary:
        eb = (
            "0"
            if any(not alg.coords_equal(a.coord, e) for e in boundary)
            else _F
        )
    return f"{ii}{ib}{ie}{_F}{_F}{_F}{ei}{eb}2"


def _relate_point_polygon(a: Point, b: Polygon) -> str:
    where = b.locate_coord(a.coord)
    ii = "0" if where == "interior" else _F
    ib = "0" if where == "boundary" else _F
    ie = "0" if where == "exterior" else _F
    return f"{ii}{ib}{ie}{_F}{_F}{_F}21" + "2"


def _relate_line_line(a: LineString, b: LineString) -> str:
    boundary_a = _line_boundary(a)
    boundary_b = _line_boundary(b)

    has_overlap = False
    has_interior_point = False
    for s1, s2 in a.segments():
        for c1, c2 in b.segments():
            kind, pts = alg.segment_intersection(s1, s2, c1, c2)
            if kind == "segment":
                mid = ((pts[0][0] + pts[1][0]) / 2.0, (pts[0][1] + pts[1][1]) / 2.0)
                if _in_line_interior(mid, a) and _in_line_interior(mid, b):
                    has_overlap = True
            elif kind == "point":
                p = pts[0]
                if _in_line_interior(p, a) and _in_line_interior(p, b):
                    has_interior_point = True
    if has_overlap:
        ii = "1"
    elif has_interior_point:
        ii = "0"
    else:
        ii = _F

    ib = (
        "0"
        if any(_in_line_interior(e, a) for e in boundary_b)
        else _F
    )
    bi = (
        "0"
        if any(_in_line_interior(e, b) for e in boundary_a)
        else _F
    )
    bb = (
        "0"
        if any(
            alg.coords_equal(ea, eb)
            for ea in boundary_a
            for eb in boundary_b
        )
        else _F
    )
    a_covered = _line_covered_by_line(a, b)
    b_covered = _line_covered_by_line(b, a)
    ie = _F if a_covered else "1"
    ei = _F if b_covered else "1"
    be = (
        "0"
        if any(not _on_line(e, b) for e in boundary_a)
        else _F
    )
    eb = (
        "0"
        if any(not _on_line(e, a) for e in boundary_b)
        else _F
    )
    return f"{ii}{ib}{ie}{bi}{bb}{be}{ei}{eb}2"


def _relate_line_polygon(a: LineString, b: Polygon) -> str:
    from repro.geometry.predicates import _line_area_interiors

    boundary_a = _line_boundary(a)

    ii = "1" if _line_area_interiors(a, b) else _F

    # Line ∩ polygon boundary: overlap along an edge (1), point contact (0)
    # or nothing (F).
    boundary_overlap = False
    boundary_point = False
    for s1, s2 in a.segments():
        for e1, e2 in b.boundary_segments():
            kind, _pts = alg.segment_intersection(s1, s2, e1, e2)
            if kind == "segment":
                boundary_overlap = True
            elif kind == "point":
                boundary_point = True
    # Only the *interior* of the line counts for the IB cell; endpoint
    # contacts belong to BB.  Check interior probes on the boundary.
    interior_on_boundary = any(
        alg.point_in_ring(c, b.shell) == "boundary"
        or any(alg.point_in_ring(c, hole) == "boundary" for hole in b.holes)
        for c in _interior_line_probes(a)
    )
    if boundary_overlap and interior_on_boundary:
        ib = "1"
    elif (boundary_point or boundary_overlap) and (
        interior_on_boundary
        or any(
            _in_line_interior(p, a)
            for s1, s2 in a.segments()
            for e1, e2 in b.boundary_segments()
            for kind, pts in (alg.segment_intersection(s1, s2, e1, e2),)
            if kind == "point"
            for p in pts
        )
    ):
        ib = "0"
    else:
        ib = _F

    covered = _line_covered_by_polygon_closure(a, b)
    ie = _F if covered else "1"

    bi = (
        "0"
        if any(b.locate_coord(e) == "interior" for e in boundary_a)
        else _F
    )
    bb = (
        "0"
        if any(b.locate_coord(e) == "boundary" for e in boundary_a)
        else _F
    )
    be = (
        "0"
        if any(b.locate_coord(e) == "exterior" for e in boundary_a)
        else _F
    )
    return f"{ii}{ib}{ie}{bi}{bb}{be}21" + "2"


def _relate_polygon_polygon(a: Polygon, b: Polygon) -> str:
    from repro.geometry.predicates import _area_area_interiors

    interiors = _area_area_interiors(a, b)
    ii = "2" if interiors else _F

    # Boundary/boundary: overlap along edges (1), isolated points (0), F.
    edge_overlap = False
    point_contact = False
    for s1, s2 in a.boundary_segments():
        for t1, t2 in b.boundary_segments():
            kind, _pts = alg.segment_intersection(s1, s2, t1, t2)
            if kind == "segment":
                edge_overlap = True
            elif kind == "point":
                point_contact = True
    bb = "1" if edge_overlap else ("0" if point_contact else _F)

    # A's interior vs B's boundary: a stretch of B's boundary inside A.
    def interior_boundary(inner: Polygon, outer: Polygon) -> str:
        stretch = any(
            outer.locate_coord(c) == "interior"
            for c in _polygon_boundary_probes(inner)
        )
        return "1" if stretch else _F

    ib = interior_boundary(b, a)  # B boundary probes inside A
    bi = interior_boundary(a, b)

    a_in_b = _polygon_covered_by_polygon(a, b)
    b_in_a = _polygon_covered_by_polygon(b, a)
    ie = _F if a_in_b else "2"
    ei = _F if b_in_a else "2"
    be = _F if a_in_b else "1"
    eb = _F if b_in_a else "1"
    return f"{ii}{ib}{ie}{bi}{bb}{be}{ei}{eb}2"


def relate(a: Geometry, b: Geometry) -> str:
    """Compute the DE-9IM matrix of two atomic geometries."""
    if isinstance(a, Point) and isinstance(b, Point):
        return _relate_point_point(a, b)
    if isinstance(a, Point) and isinstance(b, LineString):
        return _relate_point_line(a, b)
    if isinstance(a, LineString) and isinstance(b, Point):
        return _transpose(_relate_point_line(b, a))
    if isinstance(a, Point) and isinstance(b, Polygon):
        return _relate_point_polygon(a, b)
    if isinstance(a, Polygon) and isinstance(b, Point):
        return _transpose(_relate_point_polygon(b, a))
    if isinstance(a, LineString) and isinstance(b, LineString):
        return _relate_line_line(a, b)
    if isinstance(a, LineString) and isinstance(b, Polygon):
        return _relate_line_polygon(a, b)
    if isinstance(a, Polygon) and isinstance(b, LineString):
        return _transpose(_relate_line_polygon(b, a))
    if isinstance(a, Polygon) and isinstance(b, Polygon):
        return _relate_polygon_polygon(a, b)
    raise GeometryError(
        f"relate() supports atomic geometries; got "
        f"{a.geom_type} / {b.geom_type}"
    )


def _transpose(matrix: str) -> str:
    """Swap the roles of the two operands (matrix transpose)."""
    return "".join(
        matrix[row * 3 + col] for col in range(3) for row in range(3)
    )
