"""Spatial indexes: a uniform grid and an STR-packed R-tree.

The personalization engine evaluates rules such as "stores at less than
5 km of my location" (Example 5.2) over warehouses with up to hundreds of
thousands of members; the ablation benchmark ABL1 compares these indexes
against brute force.  Both indexes store ``(envelope, item)`` pairs and
answer envelope, radius and nearest-neighbour queries.
"""

from __future__ import annotations

import heapq
import math
from array import array
from typing import Generic, Hashable, Iterable, Iterator, Sequence, TypeVar

from repro.errors import GeometryError
from repro.geometry.gtypes import Envelope, Geometry, Point
from repro.vectorized import numpy_backend

__all__ = [
    "EnvelopeColumns",
    "GridIndex",
    "STRtree",
    "brute_force_within_distance",
]

T = TypeVar("T", bound=Hashable)


def _radius_margin(center: Point, radius: float) -> float:
    """Float-safety margin for radius queries.

    The exact distance test rounds: a geometry whose true distance is a
    hair *over* ``radius`` can still compute as ``<= radius`` (e.g. a
    point at ``-5e-151`` probed from ``(1, 0)`` with radius ``1``).  The
    envelope pre-filters must therefore be slightly *looser* than the
    exact test, or the indexes drop items the brute-force scan keeps.
    Over-inclusion is harmless — the exact test decides.
    """
    return 1e-9 * (abs(center.x) + abs(center.y) + radius)


def brute_force_within_distance(
    items: Iterable[tuple[Geometry, T]], center: Point, radius: float
) -> list[T]:
    """Reference implementation: linear scan with exact distance test."""
    from repro.geometry import ops

    return [item for geom, item in items if ops.distance(geom, center) <= radius]


class EnvelopeColumns(Generic[T]):
    """Columnar envelope store: four parallel coordinate arrays.

    The struct-of-arrays counterpart of an envelope prefilter: the
    entries' bounding boxes are stored as ``array('d')`` columns
    (``min_x``/``min_y``/``max_x``/``max_y``) and an envelope query is
    one vectorized range test over all four — a tight C-level loop
    (or four numpy comparisons when the ``REPRO_NUMPY=1`` backend is
    on), with none of the grid's cell bookkeeping.  The candidate set
    is exactly :meth:`Envelope.intersects` applied to every entry, so
    it is a drop-in replacement for :meth:`GridIndex.query_envelope`.
    """

    # One tuple of (items, min_x, min_y, max_x, max_y): readers snapshot
    # it with a single attribute load, and extend() rebinds it atomically
    # so a query racing an append sees a consistent (old or new) version.
    __slots__ = ("_columns",)

    def __init__(self, entries: Sequence[tuple[Geometry, T]]) -> None:
        if not entries:
            raise GeometryError("cannot build an index over zero entries")
        self._columns = self._build((), array("d"), array("d"), array("d"), array("d"), entries)

    @staticmethod
    def _build(
        items: Sequence[T],
        min_x: array,
        min_y: array,
        max_x: array,
        max_y: array,
        entries: Sequence[tuple[Geometry, T]],
    ) -> tuple:
        out_items = list(items)
        for geom, item in entries:
            env = geom.envelope
            out_items.append(item)
            min_x.append(env.min_x)
            min_y.append(env.min_y)
            max_x.append(env.max_x)
            max_y.append(env.max_y)
        return (out_items, min_x, min_y, max_x, max_y)

    def __len__(self) -> int:
        return len(self._columns[0])

    def extend(self, entries: Sequence[tuple[Geometry, T]]) -> None:
        """Append entries (the feature-delta patch path).

        Layers are append-only, so a built index absorbs new features
        without a full rebuild.  Copy-on-write: the coordinate columns
        are copied (a memcpy of doubles), extended, and swapped in with
        one atomic attribute rebind — concurrent readers (including the
        numpy path, which exports the arrays' buffers) keep answering
        over the version they snapshotted.  Callers must serialize
        ``extend`` against each other; the star does so under its cache
        lock.
        """
        if not entries:
            return
        items, min_x, min_y, max_x, max_y = self._columns
        self._columns = self._build(
            items,
            array("d", min_x),
            array("d", min_y),
            array("d", max_x),
            array("d", max_y),
            entries,
        )

    def query_envelope(self, env: Envelope) -> list[T]:
        """Items whose envelope intersects ``env`` (candidate set)."""
        qmin_x, qmin_y = env.min_x, env.min_y
        qmax_x, qmax_y = env.max_x, env.max_y
        items, col_min_x, col_min_y, col_max_x, col_max_y = self._columns
        np = numpy_backend()
        if np is not None:
            min_x = np.frombuffer(col_min_x, dtype=np.float64)
            min_y = np.frombuffer(col_min_y, dtype=np.float64)
            max_x = np.frombuffer(col_max_x, dtype=np.float64)
            max_y = np.frombuffer(col_max_y, dtype=np.float64)
            hits = (
                (max_x >= qmin_x)
                & (min_x <= qmax_x)
                & (max_y >= qmin_y)
                & (min_y <= qmax_y)
            )
            return [items[i] for i in np.flatnonzero(hits).tolist()]
        return [
            item
            for item, imin_x, imin_y, imax_x, imax_y in zip(
                items, col_min_x, col_min_y, col_max_x, col_max_y
            )
            if imax_x >= qmin_x
            and imin_x <= qmax_x
            and imax_y >= qmin_y
            and imin_y <= qmax_y
        ]


class GridIndex(Generic[T]):
    """Uniform grid over the indexed extent.

    Cell size defaults to ``extent / sqrt(n)`` so that a uniformly random
    point set averages O(1) entries per cell.  Degrades on heavily skewed
    data — which is exactly what ABL1 demonstrates against the R-tree.
    """

    def __init__(self, entries: Sequence[tuple[Geometry, T]], cell_size: float | None = None):
        if not entries:
            raise GeometryError("cannot build an index over zero entries")
        self._entries = [(geom.envelope, geom, item) for geom, item in entries]
        extent = self._entries[0][0]
        for env, _g, _i in self._entries[1:]:
            extent = extent.union(env)
        self.extent = extent
        if cell_size is None:
            side = max(extent.width, extent.height, 1e-9)
            cell_size = side / max(1.0, math.sqrt(len(self._entries)))
        if cell_size <= 0:
            raise GeometryError("cell_size must be positive")
        self.cell_size = cell_size
        self._cells: dict[tuple[int, int], list[int]] = {}
        for idx, (env, _geom, _item) in enumerate(self._entries):
            for key in self._keys_for(env):
                self._cells.setdefault(key, []).append(idx)

    def __len__(self) -> int:
        return len(self._entries)

    def _key_of(self, x: float, y: float) -> tuple[int, int]:
        return (
            int((x - self.extent.min_x) // self.cell_size),
            int((y - self.extent.min_y) // self.cell_size),
        )

    def _keys_for(self, env: Envelope) -> Iterator[tuple[int, int]]:
        # Clamp to the indexed extent: every entry lies inside it, so cells
        # beyond it are guaranteed empty.  Without the clamp a huge query
        # envelope over a tiny extent would enumerate astronomically many
        # empty cells.
        min_x = max(env.min_x, self.extent.min_x)
        min_y = max(env.min_y, self.extent.min_y)
        max_x = min(env.max_x, self.extent.max_x)
        max_y = min(env.max_y, self.extent.max_y)
        if min_x > max_x or min_y > max_y:
            return
        kx0, ky0 = self._key_of(min_x, min_y)
        kx1, ky1 = self._key_of(max_x, max_y)
        for kx in range(kx0, kx1 + 1):
            for ky in range(ky0, ky1 + 1):
                yield (kx, ky)

    def query_envelope(self, env: Envelope) -> list[T]:
        """Items whose envelope intersects ``env`` (candidate set)."""
        seen: set[int] = set()
        out: list[T] = []
        for key in self._keys_for(env):
            for idx in self._cells.get(key, ()):
                if idx in seen:
                    continue
                seen.add(idx)
                entry_env, _geom, item = self._entries[idx]
                if entry_env.intersects(env):
                    out.append(item)
        return out

    def within_distance(self, center: Point, radius: float) -> list[T]:
        """Items whose geometry lies within ``radius`` of ``center`` (exact)."""
        from repro.geometry import ops

        if radius < 0:
            raise GeometryError("radius must be non-negative")
        probe = Envelope(center.x, center.y, center.x, center.y).expanded(
            radius + _radius_margin(center, radius)
        )
        seen: set[int] = set()
        out: list[T] = []
        for key in self._keys_for(probe):
            for idx in self._cells.get(key, ()):
                if idx in seen:
                    continue
                seen.add(idx)
                entry_env, geom, item = self._entries[idx]
                if entry_env.distance(probe) > 0:
                    continue
                if ops.distance(geom, center) <= radius:
                    out.append(item)
        return out


class _Node:
    __slots__ = ("envelope", "children", "entries")

    def __init__(
        self,
        envelope: Envelope,
        children: list["_Node"] | None = None,
        entries: list[int] | None = None,
    ) -> None:
        self.envelope = envelope
        self.children = children or []
        self.entries = entries or []

    @property
    def is_leaf(self) -> bool:
        return not self.children


class STRtree(Generic[T]):
    """Sort-Tile-Recursive packed R-tree (static, bulk-loaded).

    The classic Leutenegger et al. packing: sort by x-centre, slice into
    vertical tiles, sort each tile by y-centre, pack runs of ``node_capacity``
    entries, and recurse on the resulting node envelopes.
    """

    def __init__(
        self, entries: Sequence[tuple[Geometry, T]], node_capacity: int = 16
    ) -> None:
        if not entries:
            raise GeometryError("cannot build an index over zero entries")
        if node_capacity < 2:
            raise GeometryError("node_capacity must be at least 2")
        self.node_capacity = node_capacity
        self._geoms = [geom for geom, _item in entries]
        self._items = [item for _geom, item in entries]
        envelopes = [geom.envelope for geom in self._geoms]
        leaves = self._pack_leaves(envelopes)
        self.root = self._build_upwards(leaves)

    def __len__(self) -> int:
        return len(self._items)

    def _pack_leaves(self, envelopes: list[Envelope]) -> list[_Node]:
        order = sorted(range(len(envelopes)), key=lambda i: envelopes[i].center[0])
        leaf_count = math.ceil(len(order) / self.node_capacity)
        slice_count = max(1, math.ceil(math.sqrt(leaf_count)))
        slice_size = math.ceil(len(order) / slice_count)
        leaves: list[_Node] = []
        for s in range(0, len(order), slice_size):
            tile = sorted(
                order[s : s + slice_size], key=lambda i: envelopes[i].center[1]
            )
            for t in range(0, len(tile), self.node_capacity):
                run = tile[t : t + self.node_capacity]
                env = envelopes[run[0]]
                for i in run[1:]:
                    env = env.union(envelopes[i])
                leaves.append(_Node(env, entries=list(run)))
        return leaves

    def _build_upwards(self, nodes: list[_Node]) -> _Node:
        while len(nodes) > 1:
            order = sorted(range(len(nodes)), key=lambda i: nodes[i].envelope.center[0])
            parent_count = math.ceil(len(order) / self.node_capacity)
            slice_count = max(1, math.ceil(math.sqrt(parent_count)))
            slice_size = math.ceil(len(order) / slice_count)
            parents: list[_Node] = []
            for s in range(0, len(order), slice_size):
                tile = sorted(
                    order[s : s + slice_size],
                    key=lambda i: nodes[i].envelope.center[1],
                )
                for t in range(0, len(tile), self.node_capacity):
                    run = [nodes[i] for i in tile[t : t + self.node_capacity]]
                    env = run[0].envelope
                    for child in run[1:]:
                        env = env.union(child.envelope)
                    parents.append(_Node(env, children=run))
            nodes = parents
        return nodes[0]

    def query_envelope(self, env: Envelope) -> list[T]:
        """Items whose envelope intersects ``env``."""
        out: list[T] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if not node.envelope.intersects(env):
                continue
            if node.is_leaf:
                for idx in node.entries:
                    if self._geoms[idx].envelope.intersects(env):
                        out.append(self._items[idx])
            else:
                stack.extend(node.children)
        return out

    def within_distance(self, center: Point, radius: float) -> list[T]:
        """Items whose geometry lies within ``radius`` of ``center`` (exact)."""
        from repro.geometry import ops

        if radius < 0:
            raise GeometryError("radius must be non-negative")
        probe = Envelope(center.x, center.y, center.x, center.y)
        cutoff = radius + _radius_margin(center, radius)
        out: list[T] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.envelope.distance(probe) > cutoff:
                continue
            if node.is_leaf:
                for idx in node.entries:
                    if ops.distance(self._geoms[idx], center) <= radius:
                        out.append(self._items[idx])
            else:
                stack.extend(node.children)
        return out

    def nearest(self, center: Point, k: int = 1) -> list[tuple[float, T]]:
        """The ``k`` nearest items as ``(distance, item)`` pairs, ascending.

        Classic best-first search over node envelopes with a max-heap of
        current results.
        """
        from repro.geometry import ops

        if k < 1:
            raise GeometryError("k must be at least 1")
        probe = Envelope(center.x, center.y, center.x, center.y)
        candidates: list[tuple[float, int, _Node]] = []
        counter = 0
        heapq.heappush(candidates, (self.root.envelope.distance(probe), counter, self.root))
        results: list[tuple[float, int]] = []  # max-heap via negated distance
        while candidates:
            node_dist, _tie, node = heapq.heappop(candidates)
            if len(results) == k and node_dist > -results[0][0]:
                break
            if node.is_leaf:
                for idx in node.entries:
                    d = ops.distance(self._geoms[idx], center)
                    if len(results) < k:
                        heapq.heappush(results, (-d, idx))
                    elif d < -results[0][0]:
                        heapq.heapreplace(results, (-d, idx))
            else:
                for child in node.children:
                    counter += 1
                    heapq.heappush(
                        candidates,
                        (child.envelope.distance(probe), counter, child),
                    )
        ordered = sorted(((-negd, idx) for negd, idx in results), key=lambda t: t[0])
        return [(d, self._items[idx]) for d, idx in ordered]
