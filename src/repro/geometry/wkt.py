"""Well-Known Text reader/writer for the geometry subset.

The paper grounds its geometric types in the ISO/OGC standards; WKT is the
standard interchange text form, and the natural serialization for layers,
user locations and test fixtures throughout the repository.

Supported types: ``POINT``, ``LINESTRING``, ``POLYGON``, ``MULTIPOINT``,
``MULTILINESTRING``, ``MULTIPOLYGON``, ``GEOMETRYCOLLECTION`` and the
``EMPTY`` keyword for collection-like types.
"""

from __future__ import annotations

import re
from typing import Iterator

from repro.errors import WKTError
from repro.geometry.gtypes import (
    Geometry,
    GeometryCollection,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
)

__all__ = ["dumps", "loads"]

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<word>[A-Za-z]+)|(?P<num>[-+]?(?:\d+\.?\d*|\.\d+)(?:[eE][-+]?\d+)?)"
    r"|(?P<punct>[(),]))"
)


def _format_num(value: float) -> str:
    """Render a coordinate without a trailing ``.0`` for integral values."""
    if value == int(value) and abs(value) < 1e16:
        return str(int(value))
    return repr(value)


def _coords_text(coords: Iterator[tuple[float, float]]) -> str:
    return ", ".join(f"{_format_num(x)} {_format_num(y)}" for x, y in coords)


def dumps(geom: Geometry) -> str:
    """Serialize a geometry to WKT."""
    if isinstance(geom, Point):
        return f"POINT ({_format_num(geom.x)} {_format_num(geom.y)})"
    if isinstance(geom, LineString):
        return f"LINESTRING ({_coords_text(iter(geom.coord_list))})"
    if isinstance(geom, Polygon):
        rings = [geom.shell + (geom.shell[0],)]
        rings.extend(hole + (hole[0],) for hole in geom.holes)
        body = ", ".join(f"({_coords_text(iter(ring))})" for ring in rings)
        return f"POLYGON ({body})"
    if isinstance(geom, MultiPoint):
        if not len(geom):
            return "MULTIPOINT EMPTY"
        body = ", ".join(
            f"({_format_num(p.x)} {_format_num(p.y)})" for p in geom  # type: ignore[attr-defined]
        )
        return f"MULTIPOINT ({body})"
    if isinstance(geom, MultiLineString):
        if not len(geom):
            return "MULTILINESTRING EMPTY"
        body = ", ".join(
            f"({_coords_text(iter(line.coord_list))})" for line in geom  # type: ignore[attr-defined]
        )
        return f"MULTILINESTRING ({body})"
    if isinstance(geom, MultiPolygon):
        if not len(geom):
            return "MULTIPOLYGON EMPTY"
        bodies = []
        for poly in geom:
            rings = [poly.shell + (poly.shell[0],)]  # type: ignore[attr-defined]
            rings.extend(hole + (hole[0],) for hole in poly.holes)  # type: ignore[attr-defined]
            bodies.append(
                "(" + ", ".join(f"({_coords_text(iter(r))})" for r in rings) + ")"
            )
        return f"MULTIPOLYGON ({', '.join(bodies)})"
    if isinstance(geom, GeometryCollection):
        if not len(geom):
            return "GEOMETRYCOLLECTION EMPTY"
        return f"GEOMETRYCOLLECTION ({', '.join(dumps(p) for p in geom)})"
    raise WKTError(f"cannot serialize {type(geom).__name__}")


class _Parser:
    """Tiny recursive-descent WKT parser over a token stream."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens: list[str] = []
        pos = 0
        while pos < len(text):
            match = _TOKEN_RE.match(text, pos)
            if match is None:
                remainder = text[pos:].strip()
                if not remainder:
                    break
                raise WKTError(f"unexpected WKT input at offset {pos}: {remainder[:20]!r}")
            token = match.group("word") or match.group("num") or match.group("punct")
            if token:
                self.tokens.append(token)
            pos = match.end()
        self.index = 0

    def peek(self) -> str | None:
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise WKTError("unexpected end of WKT input")
        self.index += 1
        return token

    def expect(self, token: str) -> None:
        found = self.next()
        if found.upper() != token.upper():
            raise WKTError(f"expected {token!r}, found {found!r}")

    def number(self) -> float:
        token = self.next()
        try:
            return float(token)
        except ValueError as exc:
            raise WKTError(f"expected a number, found {token!r}") from exc

    def coord(self) -> tuple[float, float]:
        return (self.number(), self.number())

    def coord_seq(self) -> list[tuple[float, float]]:
        self.expect("(")
        coords = [self.coord()]
        while self.peek() == ",":
            self.next()
            coords.append(self.coord())
        self.expect(")")
        return coords

    def ring_seq(self) -> list[list[tuple[float, float]]]:
        self.expect("(")
        rings = [self.coord_seq()]
        while self.peek() == ",":
            self.next()
            rings.append(self.coord_seq())
        self.expect(")")
        return rings

    def geometry(self) -> Geometry:
        keyword = self.next().upper()
        if keyword == "POINT":
            self.expect("(")
            x, y = self.coord()
            self.expect(")")
            return Point(x, y)
        if keyword == "LINESTRING":
            return LineString(self.coord_seq())
        if keyword == "POLYGON":
            rings = self.ring_seq()
            return Polygon(rings[0], rings[1:])
        if keyword == "MULTIPOINT":
            if self._empty():
                return MultiPoint(())
            return MultiPoint(self._multipoint_body())
        if keyword == "MULTILINESTRING":
            if self._empty():
                return MultiLineString(())
            self.expect("(")
            lines = [LineString(self.coord_seq())]
            while self.peek() == ",":
                self.next()
                lines.append(LineString(self.coord_seq()))
            self.expect(")")
            return MultiLineString(lines)
        if keyword == "MULTIPOLYGON":
            if self._empty():
                return MultiPolygon(())
            self.expect("(")
            polys = [self._polygon_body()]
            while self.peek() == ",":
                self.next()
                polys.append(self._polygon_body())
            self.expect(")")
            return MultiPolygon(polys)
        if keyword == "GEOMETRYCOLLECTION":
            if self._empty():
                return GeometryCollection(())
            self.expect("(")
            parts = [self.geometry()]
            while self.peek() == ",":
                self.next()
                parts.append(self.geometry())
            self.expect(")")
            return GeometryCollection(parts)
        raise WKTError(f"unknown WKT geometry type {keyword!r}")

    def _empty(self) -> bool:
        if self.peek() is not None and self.peek().upper() == "EMPTY":  # type: ignore[union-attr]
            self.next()
            return True
        return False

    def _polygon_body(self) -> Polygon:
        rings = self.ring_seq()
        return Polygon(rings[0], rings[1:])

    def _multipoint_body(self) -> list[Point]:
        """MULTIPOINT accepts both ``(1 2, 3 4)`` and ``((1 2), (3 4))``."""
        self.expect("(")
        points: list[Point] = []
        while True:
            if self.peek() == "(":
                self.next()
                x, y = self.coord()
                self.expect(")")
            else:
                x, y = self.coord()
            points.append(Point(x, y))
            if self.peek() == ",":
                self.next()
                continue
            break
        self.expect(")")
        return points


def loads(text: str) -> Geometry:
    """Parse a WKT string into a geometry object."""
    parser = _Parser(text)
    geom = parser.geometry()
    if parser.peek() is not None:
        raise WKTError(f"trailing WKT input: {parser.peek()!r}")
    return geom
