"""Geometric operations: distance, intersection, centroid, hulls, buffers.

These are the value-returning counterparts of the boolean predicates — the
paper's *Distance* operator ("returns a numeric value according to the
distance between involved elements") and *Intersection* operator ("returns
another geometric object depending on the involved elements and the order").

The kernel-level :func:`intersection` implemented here is the symmetric OGC
operation.  The paper's order-dependent result-type coercion (LINE ∩ POINT →
collection of sub-lines, POINT ∩ LINE → collection of points) is a PRML-level
convention and lives in :mod:`repro.prml.stdlib`, layered on top of this
module — see DESIGN.md, "Design decisions".
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.errors import GeometryError
from repro.geometry import algorithms as alg
from repro.geometry.algorithms import Coord
from repro.geometry.gtypes import (
    Geometry,
    GeometryCollection,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
)

__all__ = [
    "distance",
    "intersection",
    "centroid",
    "convex_hull",
    "envelope_geometry",
    "point_buffer",
    "split_line_at",
    "clip_line_to_polygon",
    "clip_polygon_convex",
    "is_convex",
]


def _parts(geom: Geometry) -> tuple[Geometry, ...]:
    if isinstance(geom, (MultiPoint, MultiLineString, MultiPolygon, GeometryCollection)):
        return tuple(geom)  # type: ignore[arg-type]
    return (geom,)


def _is_multi(geom: Geometry) -> bool:
    return isinstance(
        geom, (MultiPoint, MultiLineString, MultiPolygon, GeometryCollection)
    )


# ---------------------------------------------------------------------------
# distance
# ---------------------------------------------------------------------------

def distance(a: Geometry, b: Geometry) -> float:
    """Minimum planar distance between two geometries (0 when they meet)."""
    if a.is_empty or b.is_empty:
        raise GeometryError("distance of an empty geometry is undefined")
    if _is_multi(a) or _is_multi(b):
        return min(distance(pa, pb) for pa in _parts(a) for pb in _parts(b))
    if isinstance(a, Point) and isinstance(b, Point):
        return alg.distance(a.coord, b.coord)
    if isinstance(a, Point) and isinstance(b, LineString):
        return alg.point_polyline_distance(a.coord, b.coord_list)
    if isinstance(a, LineString) and isinstance(b, Point):
        return alg.point_polyline_distance(b.coord, a.coord_list)
    if isinstance(a, Point) and isinstance(b, Polygon):
        return _point_polygon_distance(a.coord, b)
    if isinstance(a, Polygon) and isinstance(b, Point):
        return _point_polygon_distance(b.coord, a)
    if isinstance(a, LineString) and isinstance(b, LineString):
        return min(
            alg.segment_segment_distance(s1, s2, c1, c2)
            for s1, s2 in a.segments()
            for c1, c2 in b.segments()
        )
    if isinstance(a, LineString) and isinstance(b, Polygon):
        return _line_polygon_distance(a, b)
    if isinstance(a, Polygon) and isinstance(b, LineString):
        return _line_polygon_distance(b, a)
    if isinstance(a, Polygon) and isinstance(b, Polygon):
        return _polygon_polygon_distance(a, b)
    raise GeometryError(f"unsupported distance pair: {a.geom_type} / {b.geom_type}")


def _point_polygon_distance(p: Coord, poly: Polygon) -> float:
    if poly.locate_coord(p) != "exterior":
        return 0.0
    return min(
        alg.point_segment_distance(p, s, e) for s, e in poly.boundary_segments()
    )


def _line_polygon_distance(line: LineString, poly: Polygon) -> float:
    if any(poly.locate_coord(c) != "exterior" for c in line.coord_list):
        return 0.0
    return min(
        alg.segment_segment_distance(s1, s2, b1, b2)
        for s1, s2 in line.segments()
        for b1, b2 in poly.boundary_segments()
    )


def _polygon_polygon_distance(a: Polygon, b: Polygon) -> float:
    from repro.geometry.predicates import intersects

    if intersects(a, b):
        return 0.0
    return min(
        alg.segment_segment_distance(s1, s2, t1, t2)
        for s1, s2 in a.boundary_segments()
        for t1, t2 in b.boundary_segments()
    )


# ---------------------------------------------------------------------------
# intersection (geometry-returning, symmetric OGC semantics)
# ---------------------------------------------------------------------------

def intersection(a: Geometry, b: Geometry) -> Geometry:
    """Intersection point set of two geometries.

    Result conventions:

    * empty intersection → ``GeometryCollection EMPTY``;
    * point results are merged into a :class:`Point`/:class:`MultiPoint`;
    * line/line collinear overlaps yield :class:`LineString` pieces;
    * line/polygon yields the clipped sub-lines inside the polygon;
    * polygon/polygon is supported when either operand is convex
      (Sutherland–Hodgman clipping); the general concave/concave case is
      out of scope for this reproduction and raises :class:`GeometryError`
      (the paper's rules intersect only points and lines — DESIGN.md §5).
    """
    if _is_multi(a) or _is_multi(b):
        pieces: list[Geometry] = []
        for pa in _parts(a):
            for pb in _parts(b):
                result = intersection(pa, pb)
                pieces.extend(p for p in _parts(result) if not p.is_empty)
        return _pack(pieces)
    if isinstance(a, Point):
        return _point_intersection(a, b)
    if isinstance(b, Point):
        return _point_intersection(b, a)
    if isinstance(a, LineString) and isinstance(b, LineString):
        return _line_line_intersection(a, b)
    if isinstance(a, LineString) and isinstance(b, Polygon):
        return _pack(list(clip_line_to_polygon(a, b)))
    if isinstance(a, Polygon) and isinstance(b, LineString):
        return _pack(list(clip_line_to_polygon(b, a)))
    if isinstance(a, Polygon) and isinstance(b, Polygon):
        if is_convex(b):
            return _pack([p for p in (clip_polygon_convex(a, b),) if p is not None])
        if is_convex(a):
            return _pack([p for p in (clip_polygon_convex(b, a),) if p is not None])
        raise GeometryError(
            "polygon/polygon intersection requires at least one convex operand"
        )
    raise GeometryError(
        f"unsupported intersection pair: {a.geom_type} / {b.geom_type}"
    )


def _pack(pieces: Sequence[Geometry]) -> Geometry:
    """Normalize a list of geometric pieces into the tightest result type."""
    flat: list[Geometry] = []
    for piece in pieces:
        flat.extend(p for p in _parts(piece) if not p.is_empty)
    # De-duplicate points.
    seen_points: list[Point] = []
    others: list[Geometry] = []
    for piece in flat:
        if isinstance(piece, Point):
            if not any(alg.coords_equal(piece.coord, q.coord) for q in seen_points):
                seen_points.append(piece)
        else:
            others.append(piece)
    combined: list[Geometry] = list(seen_points) + others
    if not combined:
        return GeometryCollection(())
    if len(combined) == 1:
        return combined[0]
    if all(isinstance(p, Point) for p in combined):
        return MultiPoint(combined)  # type: ignore[arg-type]
    if all(isinstance(p, LineString) for p in combined):
        return MultiLineString(combined)  # type: ignore[arg-type]
    if all(isinstance(p, Polygon) for p in combined):
        return MultiPolygon(combined)  # type: ignore[arg-type]
    return GeometryCollection(combined)


def _point_intersection(p: Point, other: Geometry) -> Geometry:
    from repro.geometry.predicates import intersects

    if intersects(p, other):
        return Point(p.x, p.y)
    return GeometryCollection(())


def _line_line_intersection(a: LineString, b: LineString) -> Geometry:
    points: list[Point] = []
    segments: list[LineString] = []
    for s1, s2 in a.segments():
        for c1, c2 in b.segments():
            kind, pts = alg.segment_intersection(s1, s2, c1, c2)
            if kind == "point":
                points.append(Point(*pts[0]))
            elif kind == "segment":
                segments.append(LineString([pts[0], pts[1]]))
    # Points already covered by an overlap segment are redundant.
    pruned = [
        p
        for p in points
        if not any(
            alg.on_segment(p.coord, seg.coord_list[0], seg.coord_list[-1])
            for seg in segments
        )
    ]
    return _pack(pruned + _merge_collinear(segments))


def _merge_collinear(segments: list[LineString]) -> list[Geometry]:
    """Merge overlapping collinear two-vertex segments into maximal pieces."""
    remaining = [seg.coord_list for seg in segments]
    merged: list[tuple[Coord, Coord]] = []
    while remaining:
        start, end = remaining.pop()
        changed = True
        while changed:
            changed = False
            for i, (s, e) in enumerate(remaining):
                if _collinear_touching(start, end, s, e):
                    start, end = _merge_spans(start, end, s, e)
                    remaining.pop(i)
                    changed = True
                    break
        merged.append((start, end))
    return [LineString([s, e]) for s, e in merged]


def _collinear_touching(a1: Coord, a2: Coord, b1: Coord, b2: Coord) -> bool:
    if alg.orientation(a1, a2, b1) != 0 or alg.orientation(a1, a2, b2) != 0:
        return False
    return alg.segments_intersect(a1, a2, b1, b2)


def _merge_spans(a1: Coord, a2: Coord, b1: Coord, b2: Coord) -> tuple[Coord, Coord]:
    pts = [a1, a2, b1, b2]
    axis = 0 if abs(a2[0] - a1[0]) >= abs(a2[1] - a1[1]) else 1
    pts.sort(key=lambda p: p[axis])
    return pts[0], pts[-1]


# ---------------------------------------------------------------------------
# derived constructions
# ---------------------------------------------------------------------------

def centroid(geom: Geometry) -> Point:
    """Dimension-appropriate centroid (area > length > vertex weighting)."""
    if geom.is_empty:
        raise GeometryError("centroid of an empty geometry is undefined")
    if isinstance(geom, Point):
        return Point(geom.x, geom.y)
    if isinstance(geom, Polygon):
        cx, cy = alg.ring_centroid(geom.shell)
        return Point(cx, cy)
    if isinstance(geom, LineString):
        total = geom.length
        if alg.close(total, 0.0):  # pragma: no cover - ctor forbids this
            coords = list(geom.coords())
            return Point(coords[0][0], coords[0][1])
        acc_x = acc_y = 0.0
        for s, e in geom.segments():
            seg_len = alg.distance(s, e)
            acc_x += (s[0] + e[0]) / 2.0 * seg_len
            acc_y += (s[1] + e[1]) / 2.0 * seg_len
        return Point(acc_x / total, acc_y / total)
    parts = _parts(geom)
    if not parts:
        raise GeometryError("centroid of an empty collection is undefined")
    # Weight by the measure of the highest dimension present.
    top = max(p.dimension for p in parts)
    selected = [p for p in parts if p.dimension == top]
    weights: list[float] = []
    centers: list[Point] = []
    for part in selected:
        centers.append(centroid(part))
        if top == 2:
            weights.append(part.area)  # type: ignore[attr-defined]
        elif top == 1:
            weights.append(part.length)  # type: ignore[attr-defined]
        else:
            weights.append(1.0)
    total_w = sum(weights) or float(len(selected))
    if sum(weights) == 0.0:
        weights = [1.0] * len(selected)
    x = sum(c.x * w for c, w in zip(centers, weights)) / total_w
    y = sum(c.y * w for c, w in zip(centers, weights)) / total_w
    return Point(x, y)


def convex_hull(geoms: Iterable[Geometry] | Geometry) -> Geometry:
    """Convex hull of one geometry or an iterable of geometries."""
    if isinstance(geoms, Geometry):
        coords = list(geoms.coords())
    else:
        coords = [c for g in geoms for c in g.coords()]
    if not coords:
        return GeometryCollection(())
    hull = alg.convex_hull(coords)
    if len(hull) >= 3:
        try:
            return Polygon(hull)
        except GeometryError:
            # A tolerance-degenerate hull (near-zero area sliver): treat it
            # as its diameter segment, like the exactly-collinear case.
            anchor = hull[0]
            a = max(hull, key=lambda p: alg.distance(anchor, p))
            b = max(hull, key=lambda p: alg.distance(a, p))
            hull = sorted((a, b)) if a != b else [a]
    if len(hull) == 1:
        return Point(*hull[0])
    if alg.coords_equal(hull[0], hull[1]):
        # Distinct floats closer than the kernel tolerance: a point.
        return Point(*hull[0])
    return LineString(hull)


def envelope_geometry(geom: Geometry) -> Geometry:
    """The envelope as a geometry (degenerates to Point/LineString)."""
    env = geom.envelope
    if alg.close(env.width, 0.0) and alg.close(env.height, 0.0):
        return Point(env.min_x, env.min_y)
    if alg.close(env.width, 0.0) or alg.close(env.height, 0.0):
        return LineString([(env.min_x, env.min_y), (env.max_x, env.max_y)])
    return Polygon(
        [
            (env.min_x, env.min_y),
            (env.max_x, env.min_y),
            (env.max_x, env.max_y),
            (env.min_x, env.max_y),
        ]
    )


def point_buffer(p: Point, radius: float, segments: int = 32) -> Polygon:
    """Circular buffer around a point, approximated by a regular polygon.

    Only point buffers are needed by the examples (e.g. the "5 km around my
    location" zone of Example 5.2 visualizations); general buffering is out
    of reproduction scope.
    """
    if radius <= 0:
        raise GeometryError("buffer radius must be positive")
    if segments < 8:
        raise GeometryError("a buffer needs at least 8 segments")
    ring = [
        (
            p.x + radius * math.cos(2.0 * math.pi * i / segments),
            p.y + radius * math.sin(2.0 * math.pi * i / segments),
        )
        for i in range(segments)
    ]
    return Polygon(ring)


# ---------------------------------------------------------------------------
# line splitting / clipping
# ---------------------------------------------------------------------------

def split_line_at(line: LineString, cut_points: Iterable[Point]) -> list[LineString]:
    """Split a polyline at the given on-line points.

    Points that do not lie on the line are ignored.  Returns the resulting
    sub-lines in travel order.  This is the kernel behind the paper's
    LINE ∩ POINT → "COLLECTION of sublines" convention.
    """
    cuts: list[tuple[float, Coord]] = []
    for p in cut_points:
        arc, q = alg.locate_on_polyline(p.coord, line.coord_list)
        if alg.distance(p.coord, q) <= alg.EPS * 10 + 1e-9:
            cuts.append((arc, q))
    if not cuts:
        return [line]
    cuts.sort(key=lambda item: item[0])

    pieces: list[list[Coord]] = []
    current: list[Coord] = [line.coord_list[0]]
    walked = 0.0
    cut_iter = iter(cuts)
    next_cut = next(cut_iter, None)
    for s, e in line.segments():
        seg_len = alg.distance(s, e)
        while next_cut is not None and walked - 1e-12 <= next_cut[0] <= walked + seg_len + 1e-12:
            arc, q = next_cut
            if not alg.coords_equal(current[-1], q):
                current.append(q)
            if len(current) >= 2:
                pieces.append(current)
            current = [q]
            next_cut = next(cut_iter, None)
        if not alg.coords_equal(current[-1], e):
            current.append(e)
        walked += seg_len
    if len(current) >= 2:
        pieces.append(current)
    return [LineString(piece) for piece in pieces if len(piece) >= 2]


def clip_line_to_polygon(line: LineString, poly: Polygon) -> list[LineString]:
    """Sub-lines of ``line`` lying inside (or on the boundary of) ``poly``."""
    crossing_points: list[Point] = []
    for s1, s2 in line.segments():
        for b1, b2 in poly.boundary_segments():
            kind, pts = alg.segment_intersection(s1, s2, b1, b2)
            if kind == "point":
                crossing_points.append(Point(*pts[0]))
            elif kind == "segment":
                crossing_points.append(Point(*pts[0]))
                crossing_points.append(Point(*pts[1]))
    pieces = split_line_at(line, crossing_points)
    kept: list[LineString] = []
    for piece in pieces:
        mids = [
            ((s[0] + e[0]) / 2.0, (s[1] + e[1]) / 2.0) for s, e in piece.segments()
        ]
        if all(poly.locate_coord(m) != "exterior" for m in mids):
            kept.append(piece)
    return kept


def is_convex(poly: Polygon) -> bool:
    """True when the polygon is convex and has no holes."""
    if poly.holes:
        return False
    shell = poly.shell
    n = len(shell)
    sign = 0
    for i in range(n):
        o = alg.orientation(shell[i], shell[(i + 1) % n], shell[(i + 2) % n])
        if o == 0:
            continue
        if sign == 0:
            sign = o
        elif o != sign:
            return False
    return True


def clip_polygon_convex(subject: Polygon, clip: Polygon) -> Polygon | None:
    """Sutherland–Hodgman clipping of ``subject`` against convex ``clip``.

    Returns the clipped polygon or None when the intersection is empty or
    degenerate (zero area).  Holes of the subject are dropped (documented
    reproduction scope; no example uses holed intersections).
    """
    if not is_convex(clip):
        raise GeometryError("clip polygon must be convex")
    output = list(subject.shell)
    clip_ring = clip.shell
    n = len(clip_ring)
    for i in range(n):
        if not output:
            return None
        edge_a = clip_ring[i]
        edge_b = clip_ring[(i + 1) % n]
        input_ring = output
        output = []
        for j, current in enumerate(input_ring):
            previous = input_ring[j - 1]
            cur_in = alg.orientation(edge_a, edge_b, current) >= 0
            prev_in = alg.orientation(edge_a, edge_b, previous) >= 0
            if cur_in:
                if not prev_in:
                    crossing = _edge_line_intersection(previous, current, edge_a, edge_b)
                    if crossing is not None:
                        output.append(crossing)
                output.append(current)
            elif prev_in:
                crossing = _edge_line_intersection(previous, current, edge_a, edge_b)
                if crossing is not None:
                    output.append(crossing)
    cleaned: list[Coord] = []
    for c in output:
        if not cleaned or not alg.coords_equal(cleaned[-1], c):
            cleaned.append(c)
    if len(cleaned) >= 2 and alg.coords_equal(cleaned[0], cleaned[-1]):
        cleaned.pop()
    if len(cleaned) < 3:
        return None
    if alg.close(abs(alg.signed_area(cleaned)), 0.0):
        return None
    return Polygon(cleaned)


def _edge_line_intersection(p: Coord, q: Coord, a: Coord, b: Coord) -> Coord | None:
    """Intersection of segment p–q with the infinite line through a–b."""
    r = (q[0] - p[0], q[1] - p[1])
    s = (b[0] - a[0], b[1] - a[1])
    denom = r[0] * s[1] - r[1] * s[0]
    if alg.close(denom, 0.0):
        return None
    t = ((a[0] - p[0]) * s[1] - (a[1] - p[1]) * s[0]) / denom
    return (p[0] + t * r[0], p[1] + t * r[1])
