"""Geometry object model: an ISO 19107 / OGC Simple Features subset.

The paper restricts itself to the geometric primitives ``POINT``, ``LINE``,
``POLYGON`` and ``COLLECTION`` (Section 4.1, Fig. 3) "included on ISO and
OGC spatial standards".  This module provides exactly that subset plus the
multi-part types needed to close the algebra (an intersection of two lines
can be several points).

All geometries are immutable; coordinates are stored as tuples of
``(x, y)`` floats.  Equality is structural (``ogc_equals`` offers the
tolerant, orientation-insensitive spatial equality instead).
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Sequence

from repro.errors import GeometryError
from repro.geometry import algorithms as alg
from repro.geometry.algorithms import Coord

__all__ = [
    "Envelope",
    "Geometry",
    "Point",
    "MultiPoint",
    "LineString",
    "MultiLineString",
    "Polygon",
    "MultiPolygon",
    "GeometryCollection",
    "as_point",
]


class Envelope:
    """Axis-aligned bounding box; the workhorse of the spatial indexes."""

    __slots__ = ("min_x", "min_y", "max_x", "max_y")

    def __init__(self, min_x: float, min_y: float, max_x: float, max_y: float) -> None:
        if min_x > max_x or min_y > max_y:
            raise GeometryError(
                f"degenerate envelope: ({min_x}, {min_y}, {max_x}, {max_y})"
            )
        self.min_x = float(min_x)
        self.min_y = float(min_y)
        self.max_x = float(max_x)
        self.max_y = float(max_y)

    @classmethod
    def of_coords(cls, coords: Iterable[Coord]) -> "Envelope":
        xs, ys = zip(*coords)
        return cls(min(xs), min(ys), max(xs), max(ys))

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Coord:
        return ((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def intersects(self, other: "Envelope") -> bool:
        return not (
            self.max_x < other.min_x
            or other.max_x < self.min_x
            or self.max_y < other.min_y
            or other.max_y < self.min_y
        )

    def contains_coord(self, p: Coord) -> bool:
        return self.min_x <= p[0] <= self.max_x and self.min_y <= p[1] <= self.max_y

    def contains(self, other: "Envelope") -> bool:
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and self.max_x >= other.max_x
            and self.max_y >= other.max_y
        )

    def expanded(self, margin: float) -> "Envelope":
        """A copy grown by ``margin`` on every side (used for radius queries)."""
        return Envelope(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )

    def union(self, other: "Envelope") -> "Envelope":
        return Envelope(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def distance(self, other: "Envelope") -> float:
        """Minimum distance between two envelopes (0 when they intersect)."""
        dx = max(self.min_x - other.max_x, other.min_x - self.max_x, 0.0)
        dy = max(self.min_y - other.max_y, other.min_y - self.max_y, 0.0)
        return math.hypot(dx, dy)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Envelope):
            return NotImplemented
        return (self.min_x, self.min_y, self.max_x, self.max_y) == (
            other.min_x,
            other.min_y,
            other.max_x,
            other.max_y,
        )

    def __hash__(self) -> int:
        return hash((self.min_x, self.min_y, self.max_x, self.max_y))

    def __repr__(self) -> str:
        return (
            f"Envelope({self.min_x!r}, {self.min_y!r}, "
            f"{self.max_x!r}, {self.max_y!r})"
        )


class Geometry:
    """Abstract base of all geometry types."""

    __slots__ = ()

    #: OGC-style type name, overridden by subclasses.
    geom_type: str = "Geometry"

    @property
    def envelope(self) -> Envelope:
        return Envelope.of_coords(self.coords())

    def coords(self) -> Iterator[Coord]:
        """Yield every coordinate of the geometry (outline order)."""
        raise NotImplementedError

    @property
    def is_empty(self) -> bool:
        return next(iter(self.coords()), None) is None

    @property
    def dimension(self) -> int:
        """Topological dimension: 0 points, 1 curves, 2 surfaces."""
        raise NotImplementedError

    @property
    def wkt(self) -> str:
        from repro.geometry import wkt as wkt_mod

        return wkt_mod.dumps(self)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.wkt}>"


class Point(Geometry):
    """A 0-dimensional position (the paper's ``POINT``)."""

    __slots__ = ("x", "y")
    geom_type = "Point"

    def __init__(self, x: float, y: float) -> None:
        if not (math.isfinite(x) and math.isfinite(y)):
            raise GeometryError(f"non-finite point coordinates: ({x}, {y})")
        self.x = float(x)
        self.y = float(y)

    @property
    def coord(self) -> Coord:
        return (self.x, self.y)

    def coords(self) -> Iterator[Coord]:
        yield (self.x, self.y)

    @property
    def dimension(self) -> int:
        return 0

    def distance_to(self, other: "Point") -> float:
        return alg.distance(self.coord, other.coord)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Point):
            return NotImplemented
        return self.x == other.x and self.y == other.y

    def __hash__(self) -> int:
        return hash(("Point", self.x, self.y))


class LineString(Geometry):
    """A polyline with at least two vertices (the paper's ``LINE``)."""

    __slots__ = ("_coords",)
    geom_type = "LineString"

    def __init__(self, coords: Sequence[Coord]) -> None:
        pts = tuple((float(x), float(y)) for x, y in coords)
        if len(pts) < 2:
            raise GeometryError("LineString requires at least 2 coordinates")
        for x, y in pts:
            if not (math.isfinite(x) and math.isfinite(y)):
                raise GeometryError(f"non-finite LineString coordinate: ({x}, {y})")
        for i in range(len(pts) - 1):
            if alg.coords_equal(pts[i], pts[i + 1]):
                raise GeometryError(
                    f"repeated consecutive LineString vertex at index {i}: {pts[i]}"
                )
        self._coords = pts

    def coords(self) -> Iterator[Coord]:
        return iter(self._coords)

    @property
    def coord_list(self) -> tuple[Coord, ...]:
        return self._coords

    @property
    def dimension(self) -> int:
        return 1

    @property
    def length(self) -> float:
        return alg.polyline_length(self._coords)

    @property
    def is_closed(self) -> bool:
        return alg.coords_equal(self._coords[0], self._coords[-1])

    def segments(self) -> Iterator[tuple[Coord, Coord]]:
        for i in range(len(self._coords) - 1):
            yield self._coords[i], self._coords[i + 1]

    def arc_between(self, p: Point, q: Point) -> float:
        """Travel distance along this line between the projections of two
        points.  Implements the Example 5.3 "train connection" semantics."""
        return alg.polyline_arc_between(self._coords, p.coord, q.coord)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LineString):
            return NotImplemented
        return self._coords == other._coords

    def __hash__(self) -> int:
        return hash(("LineString", self._coords))


class Polygon(Geometry):
    """A surface bounded by one exterior ring and optional holes.

    Rings are normalized on construction: the exterior is stored
    counter-clockwise, holes clockwise, and the closing vertex is dropped.
    """

    __slots__ = ("_shell", "_holes")
    geom_type = "Polygon"

    def __init__(
        self, shell: Sequence[Coord], holes: Sequence[Sequence[Coord]] = ()
    ) -> None:
        self._shell = self._normalize_ring(shell, ccw=True)
        self._holes = tuple(self._normalize_ring(h, ccw=False) for h in holes)

    @staticmethod
    def _normalize_ring(ring: Sequence[Coord], ccw: bool) -> tuple[Coord, ...]:
        pts = [(float(x), float(y)) for x, y in ring]
        if len(pts) >= 2 and alg.coords_equal(pts[0], pts[-1]):
            pts = pts[:-1]
        if len(pts) < 3:
            raise GeometryError("polygon ring requires at least 3 distinct vertices")
        for x, y in pts:
            if not (math.isfinite(x) and math.isfinite(y)):
                raise GeometryError(f"non-finite Polygon coordinate: ({x}, {y})")
        if not alg.is_ring_simple(pts):
            raise GeometryError("polygon ring is self-intersecting")
        area = alg.signed_area(pts)
        if alg.close(area, 0.0):
            raise GeometryError("polygon ring has zero area")
        if (area > 0) != ccw:
            pts.reverse()
        # Canonical rotation: start at the lexicographically smallest vertex
        # so that structural equality is insensitive to both the input
        # orientation and the starting vertex.
        start = min(range(len(pts)), key=lambda i: pts[i])
        pts = pts[start:] + pts[:start]
        return tuple(pts)

    @property
    def shell(self) -> tuple[Coord, ...]:
        return self._shell

    @property
    def holes(self) -> tuple[tuple[Coord, ...], ...]:
        return self._holes

    def coords(self) -> Iterator[Coord]:
        yield from self._shell
        for hole in self._holes:
            yield from hole

    @property
    def dimension(self) -> int:
        return 2

    @property
    def area(self) -> float:
        total = abs(alg.signed_area(self._shell))
        for hole in self._holes:
            total -= abs(alg.signed_area(hole))
        return total

    @property
    def perimeter(self) -> float:
        rings = (self._shell,) + self._holes
        return sum(
            alg.polyline_length(tuple(r) + (r[0],)) for r in rings
        )

    def locate_coord(self, p: Coord) -> str:
        """Classify ``p`` as interior / boundary / exterior of the polygon."""
        where = alg.point_in_ring(p, self._shell)
        if where != "interior":
            return where
        for hole in self._holes:
            inner = alg.point_in_ring(p, hole)
            if inner == "interior":
                return "exterior"
            if inner == "boundary":
                return "boundary"
        return "interior"

    def contains_coord(self, p: Coord) -> bool:
        return self.locate_coord(p) == "interior"

    def boundary_segments(self) -> Iterator[tuple[Coord, Coord]]:
        for ring in (self._shell,) + self._holes:
            n = len(ring)
            for i in range(n):
                yield ring[i], ring[(i + 1) % n]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polygon):
            return NotImplemented
        return self._shell == other._shell and self._holes == other._holes

    def __hash__(self) -> int:
        return hash(("Polygon", self._shell, self._holes))


class _HomogeneousCollection(Geometry):
    """Shared machinery of MultiPoint / MultiLineString / MultiPolygon."""

    __slots__ = ("_parts",)
    part_type: type = Geometry

    def __init__(self, parts: Iterable[Geometry]) -> None:
        items = tuple(parts)
        for item in items:
            if not isinstance(item, self.part_type):
                raise GeometryError(
                    f"{type(self).__name__} accepts only "
                    f"{self.part_type.__name__}, got {type(item).__name__}"
                )
        self._parts = items

    @property
    def parts(self) -> tuple[Geometry, ...]:
        return self._parts

    def __len__(self) -> int:
        return len(self._parts)

    def __iter__(self) -> Iterator[Geometry]:
        return iter(self._parts)

    def coords(self) -> Iterator[Coord]:
        for part in self._parts:
            yield from part.coords()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, type(self)):
            return NotImplemented
        return self._parts == other._parts

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._parts))


class MultiPoint(_HomogeneousCollection):
    __slots__ = ()
    geom_type = "MultiPoint"
    part_type = Point

    @property
    def dimension(self) -> int:
        return 0


class MultiLineString(_HomogeneousCollection):
    __slots__ = ()
    geom_type = "MultiLineString"
    part_type = LineString

    @property
    def dimension(self) -> int:
        return 1

    @property
    def length(self) -> float:
        return sum(part.length for part in self._parts)  # type: ignore[attr-defined]


class MultiPolygon(_HomogeneousCollection):
    __slots__ = ()
    geom_type = "MultiPolygon"
    part_type = Polygon

    @property
    def dimension(self) -> int:
        return 2

    @property
    def area(self) -> float:
        return sum(part.area for part in self._parts)  # type: ignore[attr-defined]


class GeometryCollection(Geometry):
    """Heterogeneous collection (the paper's ``COLLECTION``)."""

    __slots__ = ("_parts",)
    geom_type = "GeometryCollection"

    def __init__(self, parts: Iterable[Geometry]) -> None:
        items = tuple(parts)
        for item in items:
            if not isinstance(item, Geometry):
                raise GeometryError(
                    f"GeometryCollection holds geometries, got {type(item).__name__}"
                )
        self._parts = items

    @property
    def parts(self) -> tuple[Geometry, ...]:
        return self._parts

    def __len__(self) -> int:
        return len(self._parts)

    def __iter__(self) -> Iterator[Geometry]:
        return iter(self._parts)

    def coords(self) -> Iterator[Coord]:
        for part in self._parts:
            yield from part.coords()

    @property
    def dimension(self) -> int:
        return max((p.dimension for p in self._parts), default=0)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GeometryCollection):
            return NotImplemented
        return self._parts == other._parts

    def __hash__(self) -> int:
        return hash(("GeometryCollection", self._parts))


def as_point(value: object) -> Point:
    """Coerce ``value`` (Point or coordinate pair) to a :class:`Point`."""
    if isinstance(value, Point):
        return value
    if (
        isinstance(value, (tuple, list))
        and len(value) == 2
        and all(isinstance(c, (int, float)) for c in value)
    ):
        return Point(value[0], value[1])
    raise GeometryError(f"cannot interpret {value!r} as a Point")
