"""Distance metrics: planar (projected) and haversine (geographic).

The PRML evaluation context (:mod:`repro.prml.evaluator`) binds one metric;
quantity literals such as ``5km`` are converted to the metric's base unit
(metres) before comparison.  The synthetic worlds of :mod:`repro.data` are
generated on a local projected plane in metres, so the planar metric is the
default; the haversine metric supports worlds expressed in lon/lat degrees.
"""

from __future__ import annotations

import math
from typing import Protocol

from repro.errors import GeometryError
from repro.geometry import ops
from repro.geometry.gtypes import Geometry, Point

__all__ = [
    "Metric",
    "PlanarMetric",
    "HaversineMetric",
    "UNIT_FACTORS",
    "convert_to_metres",
    "EARTH_RADIUS_M",
]

#: Mean Earth radius in metres (IUGG).
EARTH_RADIUS_M = 6_371_008.8

#: Unit suffixes accepted by PRML quantity literals, as factors to metres.
UNIT_FACTORS: dict[str, float] = {
    "m": 1.0,
    "km": 1_000.0,
    "mi": 1_609.344,
}


def convert_to_metres(value: float, unit: str) -> float:
    """Convert ``value`` expressed in ``unit`` to metres."""
    try:
        return value * UNIT_FACTORS[unit]
    except KeyError:
        raise GeometryError(
            f"unknown distance unit {unit!r}; expected one of "
            f"{sorted(UNIT_FACTORS)}"
        ) from None


class Metric(Protocol):
    """Strategy interface for distance computation between geometries."""

    name: str

    def distance(self, a: Geometry, b: Geometry) -> float:
        """Distance in metres between two geometries."""
        ...  # pragma: no cover - protocol


class PlanarMetric:
    """Euclidean distance on a projected plane whose unit is the metre."""

    name = "planar"

    def distance(self, a: Geometry, b: Geometry) -> float:
        return ops.distance(a, b)

    def __repr__(self) -> str:
        return "PlanarMetric()"


class HaversineMetric:
    """Great-circle distance; coordinates are (longitude, latitude) degrees.

    Only point/point distances have an exact closed form on the sphere; for
    other pairings this metric projects both operands to a local
    equirectangular plane centred between their envelopes and measures
    planar distance there — accurate to well under 1% for the city-scale
    extents the examples use.
    """

    name = "haversine"

    def distance(self, a: Geometry, b: Geometry) -> float:
        if isinstance(a, Point) and isinstance(b, Point):
            return self.point_distance(a, b)
        lat0 = (a.envelope.center[1] + b.envelope.center[1]) / 2.0
        lon0 = (a.envelope.center[0] + b.envelope.center[0]) / 2.0
        pa = _project(a, lon0, lat0)
        pb = _project(b, lon0, lat0)
        return ops.distance(pa, pb)

    @staticmethod
    def point_distance(a: Point, b: Point) -> float:
        lon1, lat1, lon2, lat2 = map(math.radians, (a.x, a.y, b.x, b.y))
        dlat = lat2 - lat1
        dlon = lon2 - lon1
        h = (
            math.sin(dlat / 2.0) ** 2
            + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
        )
        return 2.0 * EARTH_RADIUS_M * math.asin(min(1.0, math.sqrt(h)))

    def __repr__(self) -> str:
        return "HaversineMetric()"


def _project(geom: Geometry, lon0: float, lat0: float) -> Geometry:
    """Equirectangular projection of a geometry around (lon0, lat0)."""
    from repro.geometry.gtypes import (
        GeometryCollection,
        LineString,
        MultiLineString,
        MultiPoint,
        MultiPolygon,
        Polygon,
    )

    k = math.pi / 180.0 * EARTH_RADIUS_M
    cos_lat = math.cos(math.radians(lat0))

    def tx(c: tuple[float, float]) -> tuple[float, float]:
        return ((c[0] - lon0) * k * cos_lat, (c[1] - lat0) * k)

    if isinstance(geom, Point):
        x, y = tx((geom.x, geom.y))
        return Point(x, y)
    if isinstance(geom, LineString):
        return LineString([tx(c) for c in geom.coord_list])
    if isinstance(geom, Polygon):
        return Polygon(
            [tx(c) for c in geom.shell],
            [[tx(c) for c in hole] for hole in geom.holes],
        )
    if isinstance(geom, MultiPoint):
        return MultiPoint([_project(p, lon0, lat0) for p in geom])  # type: ignore[list-item]
    if isinstance(geom, MultiLineString):
        return MultiLineString([_project(p, lon0, lat0) for p in geom])  # type: ignore[list-item]
    if isinstance(geom, MultiPolygon):
        return MultiPolygon([_project(p, lon0, lat0) for p in geom])  # type: ignore[list-item]
    if isinstance(geom, GeometryCollection):
        return GeometryCollection([_project(p, lon0, lat0) for p in geom])
    raise GeometryError(f"cannot project {geom.geom_type}")
