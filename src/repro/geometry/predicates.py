"""Topological predicates over the geometry subset.

The paper (Section 4.2.3) extends PRML with "the traditional topological
relations that return a boolean value": *Intersect*, *Disjoint*, *Cross*,
*Inside* and *Equals*.  This module implements those five — plus the
complementary OGC relations ``contains``, ``touches`` and ``overlaps`` that
the OLAP layer and tests use — for every pairing of the supported types.

Semantics follow the OGC Simple Features / DE-9IM definitions:

``intersects``   share at least one point.
``disjoint``     share no point.
``within``       every point of A is in B and the interiors meet
                 (the paper's *Inside*).
``contains``     inverse of ``within``.
``crosses``      interiors meet, the intersection has a lower dimension
                 than the higher-dimensional operand, and neither operand
                 is within the other.
``touches``      they intersect but their interiors do not.
``overlaps``     same dimension, interiors meet, intersection of that same
                 dimension, neither within the other.
``equals``       same point set (orientation / vertex-rotation insensitive).

The implementation is tolerance-based (see :mod:`repro.geometry.algorithms`)
rather than exact-arithmetic; this matches the scale of the synthetic worlds
in :mod:`repro.data`.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import GeometryError
from repro.geometry import algorithms as alg
from repro.geometry.algorithms import Coord
from repro.geometry.gtypes import (
    Geometry,
    GeometryCollection,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
)

__all__ = [
    "intersects",
    "disjoint",
    "within",
    "contains",
    "crosses",
    "touches",
    "overlaps",
    "equals",
]


def _parts(geom: Geometry) -> tuple[Geometry, ...]:
    """Explode multi/collection geometries one level; atoms yield themselves."""
    if isinstance(geom, (MultiPoint, MultiLineString, MultiPolygon, GeometryCollection)):
        return tuple(geom)  # type: ignore[arg-type]
    return (geom,)


def _is_multi(geom: Geometry) -> bool:
    return isinstance(
        geom, (MultiPoint, MultiLineString, MultiPolygon, GeometryCollection)
    )


# ---------------------------------------------------------------------------
# intersects / disjoint
# ---------------------------------------------------------------------------

def intersects(a: Geometry, b: Geometry) -> bool:
    """True when the two geometries share at least one point."""
    if a.is_empty or b.is_empty:
        return False
    # The envelope pre-check must be at least as tolerant as the eps-based
    # predicates below, or points epsilon-outside a bounding box would be
    # reported disjoint while having distance zero.
    if not a.envelope.expanded(alg.EPS).intersects(b.envelope):
        return False
    if _is_multi(a) or _is_multi(b):
        return any(
            intersects(pa, pb) for pa in _parts(a) for pb in _parts(b)
        )
    return _atomic_intersects(a, b)


def _atomic_intersects(a: Geometry, b: Geometry) -> bool:
    if isinstance(a, Point) and isinstance(b, Point):
        return alg.coords_equal(a.coord, b.coord)
    if isinstance(a, Point) and isinstance(b, LineString):
        return _point_on_line(a.coord, b)
    if isinstance(a, LineString) and isinstance(b, Point):
        return _point_on_line(b.coord, a)
    if isinstance(a, Point) and isinstance(b, Polygon):
        return b.locate_coord(a.coord) != "exterior"
    if isinstance(a, Polygon) and isinstance(b, Point):
        return a.locate_coord(b.coord) != "exterior"
    if isinstance(a, LineString) and isinstance(b, LineString):
        return any(
            alg.segments_intersect(s1, s2, c1, c2)
            for s1, s2 in a.segments()
            for c1, c2 in b.segments()
        )
    if isinstance(a, LineString) and isinstance(b, Polygon):
        return _line_polygon_intersects(a, b)
    if isinstance(a, Polygon) and isinstance(b, LineString):
        return _line_polygon_intersects(b, a)
    if isinstance(a, Polygon) and isinstance(b, Polygon):
        return _polygon_polygon_intersects(a, b)
    raise GeometryError(
        f"unsupported intersects pair: {a.geom_type} / {b.geom_type}"
    )


def _point_on_line(p: Coord, line: LineString) -> bool:
    return any(alg.on_segment(p, s, e) for s, e in line.segments())


def _line_polygon_intersects(line: LineString, poly: Polygon) -> bool:
    if any(poly.locate_coord(c) != "exterior" for c in line.coord_list):
        return True
    return any(
        alg.segments_intersect(s1, s2, b1, b2)
        for s1, s2 in line.segments()
        for b1, b2 in poly.boundary_segments()
    )


def _polygon_polygon_intersects(a: Polygon, b: Polygon) -> bool:
    if any(b.locate_coord(c) != "exterior" for c in a.shell):
        return True
    if any(a.locate_coord(c) != "exterior" for c in b.shell):
        return True
    return any(
        alg.segments_intersect(s1, s2, t1, t2)
        for s1, s2 in a.boundary_segments()
        for t1, t2 in b.boundary_segments()
    )


def disjoint(a: Geometry, b: Geometry) -> bool:
    """True when the two geometries share no point."""
    return not intersects(a, b)


# ---------------------------------------------------------------------------
# within / contains  (the paper's "Inside")
# ---------------------------------------------------------------------------

def within(a: Geometry, b: Geometry) -> bool:
    """True when ``a`` lies within ``b`` (the paper's *Inside* operator)."""
    if a.is_empty or b.is_empty:
        return False
    if _is_multi(a):
        parts = _parts(a)
        return all(_part_covered(p, b) for p in parts) and any(
            _interior_meets(p, b) for p in parts
        )
    return _part_covered(a, b) and _interior_meets(a, b)


def contains(a: Geometry, b: Geometry) -> bool:
    """True when ``a`` contains ``b`` — the inverse of :func:`within`."""
    return within(b, a)


def _part_covered(a: Geometry, b: Geometry) -> bool:
    """Every point of atomic ``a`` lies in (interior or boundary of) ``b``."""
    if _is_multi(b):
        # Coverage by a multi-part geometry: for points, membership in any
        # part; for lines, every sampled point covered by some part.
        if isinstance(a, Point):
            return any(_part_covered(a, p) for p in _parts(b))
        return all(
            any(_coord_covered(c, p) for p in _parts(b)) for c in _sample_coords(a)
        )
    return all(_coord_covered(c, b) for c in _sample_coords(a)) and not (
        _boundary_crossed(a, b)
    )


def _sample_coords(a: Geometry) -> list[Coord]:
    """Vertices plus segment midpoints: the probe set for coverage tests.

    For tolerance-based coverage of polylines and polygon boundaries this is
    sound when the covering geometry's boundary is piecewise linear and the
    probe segments do not wiggle between probes — which holds for every
    generator in this repository.
    """
    if isinstance(a, Point):
        return [a.coord]
    if isinstance(a, LineString):
        out: list[Coord] = list(a.coord_list)
        for s, e in a.segments():
            out.append(((s[0] + e[0]) / 2.0, (s[1] + e[1]) / 2.0))
        return out
    if isinstance(a, Polygon):
        out = list(a.shell)
        for hole in a.holes:
            out.extend(hole)
        out.append(alg.ring_centroid(a.shell))
        return out
    raise GeometryError(f"cannot sample coords of {a.geom_type}")


def _coord_covered(c: Coord, b: Geometry) -> bool:
    if isinstance(b, Point):
        return alg.coords_equal(c, b.coord)
    if isinstance(b, LineString):
        return _point_on_line(c, b)
    if isinstance(b, Polygon):
        return b.locate_coord(c) != "exterior"
    raise GeometryError(f"cannot test coverage by {b.geom_type}")


def _boundary_crossed(a: Geometry, b: Geometry) -> bool:
    """Does any segment of ``a`` properly cross the boundary of polygon ``b``?

    A polyline that pokes out of the polygon always produces such a crossing,
    which the vertex/midpoint probes alone could miss.
    """
    if not isinstance(b, Polygon):
        return False
    segs_a: Iterable[tuple[Coord, Coord]]
    if isinstance(a, LineString):
        segs_a = a.segments()
    elif isinstance(a, Polygon):
        segs_a = a.boundary_segments()
    else:
        return False
    for s1, s2 in segs_a:
        for b1, b2 in b.boundary_segments():
            kind, pts = alg.segment_intersection(s1, s2, b1, b2)
            if kind != "point":
                continue
            p = pts[0]
            interior_of_a_seg = not (
                alg.coords_equal(p, s1) or alg.coords_equal(p, s2)
            )
            if not interior_of_a_seg:
                continue
            # Probe just on each side of the crossing along the a-segment.
            dx, dy = s2[0] - s1[0], s2[1] - s1[1]
            norm = max(abs(dx), abs(dy), 1e-12)
            step = 1e-6 * max(1.0, abs(p[0]), abs(p[1]))
            before = (p[0] - dx / norm * step, p[1] - dy / norm * step)
            after = (p[0] + dx / norm * step, p[1] + dy / norm * step)
            sides = {b.locate_coord(before), b.locate_coord(after)}
            if "exterior" in sides and sides != {"exterior"}:
                return True
            if sides == {"exterior"}:
                return True
    return False


def _interior_meets(a: Geometry, b: Geometry) -> bool:
    """Do the interiors of ``a`` and ``b`` share a point?"""
    if _is_multi(a) or _is_multi(b):
        return any(
            _interior_meets(pa, pb) for pa in _parts(a) for pb in _parts(b)
        )
    if isinstance(a, Point):
        return _coord_in_interior(a.coord, b)
    if isinstance(a, LineString):
        probes = [
            ((s[0] + e[0]) / 2.0, (s[1] + e[1]) / 2.0) for s, e in a.segments()
        ]
        interior_vertices = list(a.coord_list[1:-1])
        if a.is_closed:
            interior_vertices = list(a.coord_list)
        return any(_coord_in_interior(c, b) for c in probes + interior_vertices)
    if isinstance(a, Polygon):
        if isinstance(b, (Point, LineString)):
            return False  # a surface interior can never fit inside a curve
        probes = [alg.ring_centroid(a.shell)]
        probes.extend(a.shell)
        return any(_coord_in_interior(c, b) for c in probes if a.locate_coord(c) == "interior") or _coord_in_interior(alg.ring_centroid(a.shell), b)
    raise GeometryError(f"cannot test interiors of {a.geom_type}")


def _coord_in_interior(c: Coord, b: Geometry) -> bool:
    if isinstance(b, Point):
        return alg.coords_equal(c, b.coord)
    if isinstance(b, LineString):
        if not _point_on_line(c, b):
            return False
        if b.is_closed:
            return True
        ends = (b.coord_list[0], b.coord_list[-1])
        return not any(alg.coords_equal(c, e) for e in ends)
    if isinstance(b, Polygon):
        return b.locate_coord(c) == "interior"
    raise GeometryError(f"cannot test interior of {b.geom_type}")


# ---------------------------------------------------------------------------
# crosses
# ---------------------------------------------------------------------------

def crosses(a: Geometry, b: Geometry) -> bool:
    """OGC *Cross* predicate.

    Defined for line/line (single-point interior crossing), line/area
    (the line runs through interior and exterior) and multipoint/line,
    multipoint/area (some members in the interior, some in the exterior).
    Every other pairing returns False, matching the OGC applicability table.
    """
    if a.is_empty or b.is_empty:
        return False
    if isinstance(a, (Polygon, MultiPolygon)) and isinstance(
        b, (LineString, MultiLineString, MultiPoint, Point)
    ):
        return crosses(b, a)
    if isinstance(a, MultiPoint) and isinstance(b, (LineString, MultiLineString, Polygon, MultiPolygon)):
        inside = sum(1 for p in a if intersects(p, b))
        return 0 < inside < len(a)
    if isinstance(a, (LineString, MultiLineString)) and isinstance(
        b, (LineString, MultiLineString)
    ):
        return _lines_cross(a, b)
    if isinstance(a, (LineString, MultiLineString)) and isinstance(
        b, (Polygon, MultiPolygon)
    ):
        return _line_crosses_area(a, b)
    return False


def _lines_cross(a: Geometry, b: Geometry) -> bool:
    found_point_crossing = False
    for la in _parts(a):
        for lb in _parts(b):
            assert isinstance(la, LineString) and isinstance(lb, LineString)
            for s1, s2 in la.segments():
                for c1, c2 in lb.segments():
                    kind, pts = alg.segment_intersection(s1, s2, c1, c2)
                    if kind == "segment":
                        return False  # 1-dimensional intersection -> overlap
                    if kind == "point":
                        p = pts[0]
                        if _coord_in_interior(p, la) and _coord_in_interior(p, lb):
                            found_point_crossing = True
    return found_point_crossing


def _line_crosses_area(line: Geometry, area: Geometry) -> bool:
    has_interior = False
    has_exterior = False
    for part in _parts(line):
        assert isinstance(part, LineString)
        for c in _sample_coords(part):
            inside_any = False
            interior_any = False
            for poly in _parts(area):
                assert isinstance(poly, Polygon)
                where = poly.locate_coord(c)
                if where != "exterior":
                    inside_any = True
                if where == "interior":
                    interior_any = True
            if interior_any:
                has_interior = True
            if not inside_any:
                has_exterior = True
            if has_interior and has_exterior:
                return True
    return False


# ---------------------------------------------------------------------------
# touches / overlaps
# ---------------------------------------------------------------------------

def touches(a: Geometry, b: Geometry) -> bool:
    """True when the geometries intersect but their interiors do not."""
    if not intersects(a, b):
        return False
    return not _interiors_intersect(a, b)


def _interiors_intersect(a: Geometry, b: Geometry) -> bool:
    if _is_multi(a) or _is_multi(b):
        return any(
            _interiors_intersect(pa, pb) for pa in _parts(a) for pb in _parts(b)
        )
    if isinstance(a, Point):
        return _coord_in_interior(a.coord, b)
    if isinstance(b, Point):
        return _coord_in_interior(b.coord, a)
    if isinstance(a, LineString) and isinstance(b, LineString):
        for s1, s2 in a.segments():
            for c1, c2 in b.segments():
                kind, pts = alg.segment_intersection(s1, s2, c1, c2)
                if kind == "segment":
                    mid = (
                        (pts[0][0] + pts[1][0]) / 2.0,
                        (pts[0][1] + pts[1][1]) / 2.0,
                    )
                    if _coord_in_interior(mid, a) and _coord_in_interior(mid, b):
                        return True
                elif kind == "point":
                    p = pts[0]
                    if _coord_in_interior(p, a) and _coord_in_interior(p, b):
                        return True
        return False
    if isinstance(a, LineString) and isinstance(b, Polygon):
        return _line_area_interiors(a, b)
    if isinstance(a, Polygon) and isinstance(b, LineString):
        return _line_area_interiors(b, a)
    if isinstance(a, Polygon) and isinstance(b, Polygon):
        return _area_area_interiors(a, b)
    raise GeometryError(
        f"unsupported interior test pair: {a.geom_type} / {b.geom_type}"
    )


def _line_area_interiors(line: LineString, poly: Polygon) -> bool:
    probes = _sample_coords(line)
    if any(
        poly.locate_coord(c) == "interior" and _coord_in_interior(c, line)
        for c in probes
    ):
        return True
    # A segment may dive through the interior between two boundary probes.
    for s1, s2 in line.segments():
        for b1, b2 in poly.boundary_segments():
            kind, pts = alg.segment_intersection(s1, s2, b1, b2)
            if kind != "point":
                continue
            p = pts[0]
            dx, dy = s2[0] - s1[0], s2[1] - s1[1]
            norm = max(abs(dx), abs(dy), 1e-12)
            step = 1e-6 * max(1.0, abs(p[0]), abs(p[1]))
            for side in (-1.0, 1.0):
                probe = (p[0] + side * dx / norm * step, p[1] + side * dy / norm * step)
                if (
                    alg.on_segment(probe, s1, s2)
                    and poly.locate_coord(probe) == "interior"
                ):
                    return True
    return False


def _area_area_interiors(a: Polygon, b: Polygon) -> bool:
    if any(
        b.locate_coord(c) == "interior"
        for c in a.shell
        if a.locate_coord(c) != "exterior"
    ):
        return True
    if any(a.locate_coord(c) == "interior" for c in b.shell):
        return True
    centroid_a = alg.ring_centroid(a.shell)
    if a.locate_coord(centroid_a) == "interior" and b.locate_coord(centroid_a) == "interior":
        return True
    centroid_b = alg.ring_centroid(b.shell)
    if b.locate_coord(centroid_b) == "interior" and a.locate_coord(centroid_b) == "interior":
        return True
    # Boundary crossings imply interior overlap for simple polygons.
    for s1, s2 in a.boundary_segments():
        for t1, t2 in b.boundary_segments():
            kind, pts = alg.segment_intersection(s1, s2, t1, t2)
            if kind == "point":
                p = pts[0]
                if not any(
                    alg.coords_equal(p, v) for v in (s1, s2, t1, t2)
                ):
                    return True
    return False


def overlaps(a: Geometry, b: Geometry) -> bool:
    """Same-dimension partial overlap (neither within the other)."""
    if a.dimension != b.dimension:
        return False
    if not intersects(a, b):
        return False
    if within(a, b) or within(b, a):
        return False
    if a.dimension == 0:
        set_a = {c for c in a.coords()}
        set_b = {c for c in b.coords()}
        shared = any(
            alg.coords_equal(p, q) for p in set_a for q in set_b
        )
        return shared
    if a.dimension == 1:
        return _lines_overlap_1d(a, b)
    return _interiors_intersect(a, b)


def _lines_overlap_1d(a: Geometry, b: Geometry) -> bool:
    """1-D overlap: some collinear stretch of positive length is shared."""
    for la in _parts(a):
        for lb in _parts(b):
            assert isinstance(la, LineString) and isinstance(lb, LineString)
            for s1, s2 in la.segments():
                for c1, c2 in lb.segments():
                    kind, _pts = alg.segment_intersection(s1, s2, c1, c2)
                    if kind == "segment":
                        return True
    return False


# ---------------------------------------------------------------------------
# equals
# ---------------------------------------------------------------------------

def equals(a: Geometry, b: Geometry) -> bool:
    """Spatial equality: the same point set.

    Implemented structurally but insensitive to line direction, polygon ring
    rotation/orientation and multi-part ordering — which covers every way
    the repository (and WKT round-trips) can re-express the same point set.
    """
    if isinstance(a, Point) and isinstance(b, Point):
        return alg.coords_equal(a.coord, b.coord)
    if isinstance(a, LineString) and isinstance(b, LineString):
        fwd = a.coord_list
        rev = tuple(reversed(a.coord_list))
        other = b.coord_list
        return _coord_seq_equal(fwd, other) or _coord_seq_equal(rev, other)
    if isinstance(a, Polygon) and isinstance(b, Polygon):
        if not _ring_equal(a.shell, b.shell):
            return False
        if len(a.holes) != len(b.holes):
            return False
        used: set[int] = set()
        for hole in a.holes:
            match = next(
                (
                    j
                    for j, other in enumerate(b.holes)
                    if j not in used and _ring_equal(hole, other)
                ),
                None,
            )
            if match is None:
                return False
            used.add(match)
        return True
    if _is_multi(a) and _is_multi(b):
        parts_a = list(_parts(a))
        parts_b = list(_parts(b))
        if len(parts_a) != len(parts_b):
            return False
        used = set()
        for pa in parts_a:
            match = next(
                (
                    j
                    for j, pb in enumerate(parts_b)
                    if j not in used and equals(pa, pb)
                ),
                None,
            )
            if match is None:
                return False
            used.add(match)
        return True
    return False


def _coord_seq_equal(a: tuple[Coord, ...], b: tuple[Coord, ...]) -> bool:
    return len(a) == len(b) and all(
        alg.coords_equal(p, q) for p, q in zip(a, b)
    )


def _ring_equal(a: tuple[Coord, ...], b: tuple[Coord, ...]) -> bool:
    """Ring equality modulo rotation and direction."""
    if len(a) != len(b):
        return False
    n = len(a)
    for direction in (tuple(b), tuple(reversed(b))):
        for shift in range(n):
            rotated = direction[shift:] + direction[:shift]
            if _coord_seq_equal(a, rotated):
                return True
    return False
