"""Spatial aggregation functions over dimension geometries.

da Silva et al. (ref [3] of the paper) define a set of aggregation
functions for spatial measures; spatial roll-up needs them whenever a
geometry-carrying level is grouped by a coarser one (e.g. aggregate the
Store points of each City).  Implemented functions:

* ``COUNT``    — number of member geometries;
* ``CENTROID`` — centroid of the geometry set;
* ``ENVELOPE`` — bounding box as a geometry;
* ``CONVEX_HULL`` — hull of the set;
* ``COLLECT``  — the set itself, packed into a collection geometry.
"""

from __future__ import annotations

import enum

from repro.errors import QueryError
from repro.geometry import (
    Geometry,
    GeometryCollection,
    MultiPoint,
    Point,
    centroid,
    convex_hull,
    envelope_geometry,
)
from repro.storage.star import StarSchema

__all__ = ["SpatialAggregator", "spatial_rollup", "aggregate_geometries"]


class SpatialAggregator(enum.Enum):
    COUNT = "COUNT"
    CENTROID = "CENTROID"
    ENVELOPE = "ENVELOPE"
    CONVEX_HULL = "CONVEX_HULL"
    COLLECT = "COLLECT"


def aggregate_geometries(
    geometries: list[Geometry], aggregator: SpatialAggregator
) -> Geometry | float:
    """Apply one spatial aggregation function to a geometry list."""
    if aggregator is SpatialAggregator.COUNT:
        return float(len(geometries))
    if not geometries:
        return GeometryCollection(())
    if aggregator is SpatialAggregator.CENTROID:
        return centroid(GeometryCollection(geometries))
    if aggregator is SpatialAggregator.ENVELOPE:
        return envelope_geometry(GeometryCollection(geometries))
    if aggregator is SpatialAggregator.CONVEX_HULL:
        return convex_hull(geometries)
    if all(isinstance(g, Point) for g in geometries):
        return MultiPoint(geometries)  # type: ignore[arg-type]
    return GeometryCollection(geometries)


def spatial_rollup(
    star: StarSchema,
    dimension: str,
    child_level: str,
    parent_level: str,
    aggregator: SpatialAggregator,
) -> dict[str, Geometry | float]:
    """Aggregate child-level geometries per parent-level member.

    Returns ``{parent_member_key: aggregated geometry or count}``.
    Members without a geometry are skipped for geometric aggregators and
    excluded from COUNT as well (a non-described member has no spatial
    contribution).
    """
    table = star.dimension_table(dimension)
    table.dimension.level(child_level)
    table.dimension.level(parent_level)
    if child_level == parent_level:
        raise QueryError("spatial roll-up needs two distinct levels")
    buckets: dict[str, list[Geometry]] = {}
    for member in table.members(child_level):
        geometry = member.geometry
        if geometry is None:
            continue
        parent = table.rollup(member, parent_level)
        buckets.setdefault(parent.key, []).append(geometry)
    return {
        parent_key: aggregate_geometries(geoms, aggregator)
        for parent_key, geoms in buckets.items()
    }
