"""Interactive cube navigation: roll-up, drill-down, slice and dice.

A thin, immutable wrapper around :class:`~repro.olap.query.CubeQuery`
mirroring the classic OLAP session operations the paper's BI front-end
would issue.  Every operation returns a *new* :class:`Cube`; ``result()``
executes the underlying query (optionally against a personalized
selection).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import QueryError
from repro.geometry import Metric
from repro.mdm.model import Aggregator
from repro.olap.query import (
    AggSpec,
    AttributeFilter,
    CellSet,
    ComparisonOp,
    CubeQuery,
    LevelRef,
    SpatialFilter,
    execute,
)
from repro.storage.star import StarSchema

__all__ = ["Cube"]


class Cube:
    """A navigable view over one fact of a star schema."""

    def __init__(
        self,
        star: StarSchema,
        fact: str | None = None,
        aggregations: Sequence[AggSpec] | None = None,
        group_by: Sequence[LevelRef] = (),
        where: Sequence[AttributeFilter | SpatialFilter] = (),
        selection: Iterable[int] | None = None,
        metric: Metric | None = None,
    ) -> None:
        self.star = star
        self.fact = fact or star.schema.default_fact().name
        if aggregations is None:
            fact_def = star.schema.fact(self.fact)
            aggregations = [
                AggSpec(measure.default_aggregator, measure.name)
                for measure in fact_def.measures.values()
            ]
        self.aggregations = tuple(aggregations)
        self.group_by = tuple(group_by)
        self.where = tuple(where)
        self.selection = None if selection is None else tuple(selection)
        self.metric = metric

    # -- navigation ------------------------------------------------------------

    def _replace(self, **kwargs) -> "Cube":
        state = {
            "star": self.star,
            "fact": self.fact,
            "aggregations": self.aggregations,
            "group_by": self.group_by,
            "where": self.where,
            "selection": self.selection,
            "metric": self.metric,
        }
        state.update(kwargs)
        return Cube(**state)

    def measures(self, *specs: AggSpec) -> "Cube":
        """Replace the aggregation columns."""
        return self._replace(aggregations=tuple(specs))

    def by(self, *refs: str | LevelRef) -> "Cube":
        """Group by the given levels (replaces current grouping)."""
        parsed = tuple(
            ref if isinstance(ref, LevelRef) else LevelRef.parse(ref) for ref in refs
        )
        return self._replace(group_by=parsed)

    def roll_up(self, dimension: str) -> "Cube":
        """Move a grouped dimension one level coarser (role ``r``)."""
        return self._shift(dimension, up=True)

    def drill_down(self, dimension: str) -> "Cube":
        """Move a grouped dimension one level finer (role ``d``)."""
        return self._shift(dimension, up=False)

    def _shift(self, dimension: str, up: bool) -> "Cube":
        schema = self.star.schema
        dim = schema.dimension(dimension)
        new_group: list[LevelRef] = []
        found = False
        for ref in self.group_by:
            if ref.dimension != dimension:
                new_group.append(ref)
                continue
            found = True
            current = ref.resolve_level(schema)
            path = None
            for hierarchy in dim.hierarchies.values():
                if current in hierarchy.path:
                    path = hierarchy.path
                    break
            if path is None:
                raise QueryError(
                    f"level {current!r} is on no hierarchy of {dimension!r}"
                )
            idx = path.index(current) + (1 if up else -1)
            if not 0 <= idx < len(path):
                direction = "up from" if up else "down from"
                raise QueryError(
                    f"cannot roll {direction} level {current!r} of "
                    f"{dimension!r}: end of hierarchy {list(path)}"
                )
            new_group.append(LevelRef(dimension, path[idx]))
        if not found:
            raise QueryError(
                f"dimension {dimension!r} is not in the current grouping "
                f"({[str(g) for g in self.group_by]})"
            )
        return self._replace(group_by=tuple(new_group))

    def slice(self, ref: str | LevelRef, attribute: str, value: object) -> "Cube":
        """Classic slice: fix one level attribute to a value."""
        parsed = ref if isinstance(ref, LevelRef) else LevelRef.parse(ref)
        flt = AttributeFilter(parsed, attribute, ComparisonOp.EQ, value)
        return self._replace(where=self.where + (flt,))

    def dice(self, *filters: AttributeFilter | SpatialFilter) -> "Cube":
        """Add arbitrary (possibly spatial) filters."""
        return self._replace(where=self.where + tuple(filters))

    def with_selection(self, row_ids: Iterable[int] | None) -> "Cube":
        """Restrict to a personalized fact-row selection."""
        return self._replace(selection=None if row_ids is None else tuple(row_ids))

    # -- execution -----------------------------------------------------------

    @property
    def query(self) -> CubeQuery:
        return CubeQuery(
            fact=self.fact,
            aggregations=self.aggregations,
            group_by=self.group_by,
            where=self.where,
        )

    def result(self) -> CellSet:
        return execute(self.star, self.query, self.selection, self.metric)

    def count(self) -> float:
        """Shortcut: COUNT(*) under the current filters/selection."""
        cube = self._replace(
            aggregations=(AggSpec(Aggregator.COUNT, "*"),), group_by=()
        )
        result = cube.result()
        if not result.cells:
            return 0.0
        return result.value(())

    def __repr__(self) -> str:
        groups = ", ".join(str(g) for g in self.group_by) or "(none)"
        return f"<Cube {self.fact} by {groups} filters={len(self.where)}>"
