"""GeoMDQL-lite: a textual query language for the spatial OLAP engine.

The paper's related work (da Silva et al. [4]) introduces GeoMDQL, a query
language that "allows simultaneous usage of both multidimensional and
spatial operators".  The examples and the web portal need exactly that
capability for ad-hoc analysis, so this module provides a compact dialect
compiling to :class:`~repro.olap.query.CubeQuery`:

.. code-block:: text

    SELECT SUM(UnitSales), COUNT(*)
    FROM Sales
    BY Store.City, Time.Month
    WHERE Product.family = 'Food'
      AND DISTANCE(Store, LAYER Airport) < 20 KM
      AND INSIDE(Store.City, LAYER Region)

Keywords are case-insensitive; identifiers are case-sensitive (they name
schema elements).  Distance quantities accept ``M``, ``KM`` and ``MI``
suffixes (default metres).
"""

from __future__ import annotations

import re

from repro.errors import QueryError
from repro.geometry.metrics import convert_to_metres
from repro.mdm.model import Aggregator, MDSchema
from repro.olap.query import (
    AggSpec,
    AttributeFilter,
    ComparisonOp,
    CubeQuery,
    LayerRef,
    LevelRef,
    SpatialFilter,
    SpatialRelation,
)

__all__ = ["parse_query"]

_TOKEN_RE = re.compile(
    r"""\s*(?:
        (?P<string>'(?:[^']|'')*')
      | (?P<number>[-+]?(?:\d+\.?\d*|\.\d+)(?:[eE][-+]?\d+)?)
      | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
      | (?P<op><=|>=|<>|!=|=|<|>)
      | (?P<punct>[(),.*])
    )""",
    re.VERBOSE,
)

_KEYWORDS = {
    "SELECT",
    "FROM",
    "BY",
    "WHERE",
    "AND",
    "LAYER",
    "IN",
    "KM",
    "M",
    "MI",
}

_SPATIAL_FUNCTIONS = {
    "DISTANCE": SpatialRelation.DISTANCE,
    "WITHIN": SpatialRelation.INSIDE,
    "INSIDE": SpatialRelation.INSIDE,
    "INTERSECT": SpatialRelation.INTERSECT,
    "INTERSECTS": SpatialRelation.INTERSECT,
    "DISJOINT": SpatialRelation.DISJOINT,
    "CROSS": SpatialRelation.CROSS,
    "CROSSES": SpatialRelation.CROSS,
    "EQUALS": SpatialRelation.EQUALS,
    "CONTAINS": SpatialRelation.CONTAINS,
}

_COMPARISONS = {
    "=": ComparisonOp.EQ,
    "<>": ComparisonOp.NE,
    "!=": ComparisonOp.NE,
    "<": ComparisonOp.LT,
    "<=": ComparisonOp.LE,
    ">": ComparisonOp.GT,
    ">=": ComparisonOp.GE,
}


class _Tokens:
    def __init__(self, text: str) -> None:
        self.items: list[str] = []
        pos = 0
        while pos < len(text):
            match = _TOKEN_RE.match(text, pos)
            if match is None:
                rest = text[pos:].strip()
                if not rest:
                    break
                raise QueryError(f"cannot tokenize query near {rest[:25]!r}")
            token = next(v for v in match.groupdict().values() if v is not None)
            self.items.append(token)
            pos = match.end()
        self.index = 0

    def peek(self) -> str | None:
        return self.items[self.index] if self.index < len(self.items) else None

    def peek_upper(self) -> str | None:
        token = self.peek()
        return token.upper() if token is not None else None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise QueryError("unexpected end of query")
        self.index += 1
        return token

    def expect_keyword(self, keyword: str) -> None:
        token = self.next()
        if token.upper() != keyword:
            raise QueryError(f"expected {keyword}, found {token!r}")

    def expect_punct(self, punct: str) -> None:
        token = self.next()
        if token != punct:
            raise QueryError(f"expected {punct!r}, found {token!r}")

    def accept_keyword(self, keyword: str) -> bool:
        if self.peek_upper() == keyword:
            self.next()
            return True
        return False


def _parse_agg(tokens: _Tokens) -> AggSpec:
    func = tokens.next().upper()
    try:
        aggregator = Aggregator[func if func != "COUNT_DISTINCT" else "COUNT_DISTINCT"]
    except KeyError:
        raise QueryError(
            f"unknown aggregation function {func!r}; expected one of "
            f"{[a.name for a in Aggregator]}"
        ) from None
    tokens.expect_punct("(")
    token = tokens.next()
    measure = "*" if token == "*" else token
    tokens.expect_punct(")")
    return AggSpec(aggregator, measure)


def _parse_dotted(tokens: _Tokens) -> list[str]:
    parts = [tokens.next()]
    while tokens.peek() == ".":
        tokens.next()
        parts.append(tokens.next())
    return parts


def _parse_literal(tokens: _Tokens) -> object:
    token = tokens.next()
    if token.startswith("'"):
        return token[1:-1].replace("''", "'")
    try:
        value = float(token)
        return int(value) if value.is_integer() and "." not in token and "e" not in token.lower() else value
    except ValueError:
        raise QueryError(f"expected a literal, found {token!r}") from None


def _parse_quantity(tokens: _Tokens) -> float:
    token = tokens.next()
    try:
        value = float(token)
    except ValueError:
        raise QueryError(f"expected a number, found {token!r}") from None
    unit = "m"
    if tokens.peek_upper() in ("KM", "M", "MI"):
        unit = tokens.next().lower()
    return convert_to_metres(value, unit)


def _attribute_filter(
    schema: MDSchema, parts: list[str], op: ComparisonOp, value: object
) -> AttributeFilter:
    if len(parts) == 2:
        dim = schema.dimension(parts[0])
        # Two-part paths are Dimension.attr on the leaf level, unless the
        # second part names a level (then the level key is compared).
        if parts[1] in dim.levels:
            ref = LevelRef(parts[0], parts[1])
            attribute = dim.level(parts[1]).key
        else:
            ref = LevelRef(parts[0])
            attribute = parts[1]
            dim.leaf_level.attribute(attribute)
        return AttributeFilter(ref, attribute, op, value)
    if len(parts) == 3:
        dim = schema.dimension(parts[0])
        level = dim.level(parts[1])
        level.attribute(parts[2])
        return AttributeFilter(LevelRef(parts[0], parts[1]), parts[2], op, value)
    raise QueryError(
        f"bad attribute path {'.'.join(parts)!r}; expected "
        f"'Dim.attr' or 'Dim.Level.attr'"
    )


def _parse_condition(
    tokens: _Tokens, schema: MDSchema
) -> AttributeFilter | SpatialFilter:
    head_upper = tokens.peek_upper()
    if head_upper in _SPATIAL_FUNCTIONS:
        func = tokens.next().upper()
        relation = _SPATIAL_FUNCTIONS[func]
        tokens.expect_punct("(")
        ref = LevelRef.parse(".".join(_parse_dotted(tokens)))
        tokens.expect_punct(",")
        tokens.expect_keyword("LAYER")
        layer = LayerRef(tokens.next())
        tokens.expect_punct(")")
        if relation is SpatialRelation.DISTANCE:
            op_token = tokens.next()
            if op_token not in _COMPARISONS:
                raise QueryError(
                    f"DISTANCE(...) must be compared; found {op_token!r}"
                )
            threshold = _parse_quantity(tokens)
            return SpatialFilter(
                ref, relation, layer, _COMPARISONS[op_token], threshold
            )
        return SpatialFilter(ref, relation, layer)

    parts = _parse_dotted(tokens)
    op_token = tokens.next()
    if op_token.upper() == "IN":
        tokens.expect_punct("(")
        values = [_parse_literal(tokens)]
        while tokens.peek() == ",":
            tokens.next()
            values.append(_parse_literal(tokens))
        tokens.expect_punct(")")
        return _attribute_filter(schema, parts, ComparisonOp.IN, tuple(values))
    if op_token not in _COMPARISONS:
        raise QueryError(f"unknown comparison {op_token!r}")
    value = _parse_literal(tokens)
    return _attribute_filter(schema, parts, _COMPARISONS[op_token], value)


def parse_query(text: str, schema: MDSchema) -> CubeQuery:
    """Parse a GeoMDQL-lite query against a schema."""
    tokens = _Tokens(text)
    tokens.expect_keyword("SELECT")
    aggregations = [_parse_agg(tokens)]
    while tokens.peek() == ",":
        tokens.next()
        aggregations.append(_parse_agg(tokens))
    tokens.expect_keyword("FROM")
    fact_name = tokens.next()
    schema.fact(fact_name)  # existence check

    group_by: list[LevelRef] = []
    if tokens.accept_keyword("BY"):
        group_by.append(LevelRef.parse(".".join(_parse_dotted(tokens))))
        while tokens.peek() == ",":
            tokens.next()
            group_by.append(LevelRef.parse(".".join(_parse_dotted(tokens))))

    where: list[AttributeFilter | SpatialFilter] = []
    if tokens.accept_keyword("WHERE"):
        where.append(_parse_condition(tokens, schema))
        while tokens.accept_keyword("AND"):
            where.append(_parse_condition(tokens, schema))

    if tokens.peek() is not None:
        raise QueryError(f"trailing query input: {tokens.peek()!r}")
    return CubeQuery(
        fact=fact_name,
        aggregations=aggregations,
        group_by=tuple(group_by),
        where=tuple(where),
    )
