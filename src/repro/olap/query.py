"""Cube queries over a star schema: grouping, filtering, aggregation.

This is the OLAP substrate the paper assumes under its BI tools.  A
:class:`CubeQuery` names a fact, aggregation specs, grouping levels and
filters; :func:`execute` scans the fact table (optionally restricted to a
personalized row selection — the output of ``SelectInstance`` rules) and
produces a :class:`CellSet`.

Two filter families exist:

* :class:`AttributeFilter` — classic value predicates on level attributes;
* :class:`SpatialFilter` — the paper's geographic conditions: a spatial
  level's member geometry against a thematic layer or literal geometry,
  via the PRML operator set (Intersect/Disjoint/Inside/Distance...).
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field
from itertools import islice
from typing import Iterable, Mapping, Sequence

from repro.errors import QueryError
from repro.vectorized import numpy_backend
from repro.geomd.schema import GeoMDSchema
from repro.geometry import Geometry, PlanarMetric, Metric
from repro.geometry.algorithms import EPS as _EPS
from repro.geometry import contains as g_contains
from repro.geometry import crosses as g_crosses
from repro.geometry import disjoint as g_disjoint
from repro.geometry import equals as g_equals
from repro.geometry import intersects as g_intersects
from repro.geometry import within as g_within
from repro.mdm.model import Aggregator, MDSchema
from repro.storage.star import StarSchema

__all__ = [
    "LevelRef",
    "AggSpec",
    "ComparisonOp",
    "AttributeFilter",
    "SpatialRelation",
    "SpatialFilter",
    "LayerRef",
    "CubeQuery",
    "CellSet",
    "execute",
    "execute_reference",
]


@dataclass(frozen=True)
class LevelRef:
    """Reference to a dimension level, e.g. ``Store.City``."""

    dimension: str
    level: str | None = None

    @classmethod
    def parse(cls, text: str) -> "LevelRef":
        parts = text.split(".")
        if len(parts) == 1:
            return cls(parts[0])
        if len(parts) == 2:
            return cls(parts[0], parts[1])
        raise QueryError(f"bad level reference {text!r}; expected 'Dim[.Level]'")

    def resolve_level(self, schema: MDSchema) -> str:
        dimension = schema.dimension(self.dimension)
        if self.level is None:
            return dimension.leaf
        dimension.level(self.level)  # existence check
        return self.level

    def __str__(self) -> str:
        return self.dimension if self.level is None else f"{self.dimension}.{self.level}"


@dataclass(frozen=True)
class AggSpec:
    """One aggregation column: ``SUM(UnitSales)``, ``COUNT(*)``..."""

    aggregator: Aggregator
    measure: str = "*"

    @property
    def label(self) -> str:
        return f"{self.aggregator.value}({self.measure})"


class ComparisonOp(enum.Enum):
    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    IN = "IN"

    def apply(self, left: object, right: object) -> bool:
        if self is ComparisonOp.EQ:
            return left == right
        if self is ComparisonOp.NE:
            return left != right
        if self is ComparisonOp.IN:
            if not isinstance(right, (list, tuple, set, frozenset)):
                raise QueryError("IN requires a collection right-hand side")
            return left in right
        if not isinstance(left, (int, float)) or not isinstance(right, (int, float)):
            # Fall back to string ordering for non-numeric operands.
            left, right = str(left), str(right)
        if self is ComparisonOp.LT:
            return left < right  # type: ignore[operator]
        if self is ComparisonOp.LE:
            return left <= right  # type: ignore[operator]
        if self is ComparisonOp.GT:
            return left > right  # type: ignore[operator]
        return left >= right  # type: ignore[operator]


@dataclass(frozen=True)
class AttributeFilter:
    """Keep facts whose member at ``ref`` satisfies ``attribute op value``."""

    ref: LevelRef
    attribute: str
    op: ComparisonOp
    value: object


class SpatialRelation(enum.Enum):
    """The paper's boolean spatial operators plus distance comparison."""

    INTERSECT = "Intersect"
    DISJOINT = "Disjoint"
    CROSS = "Cross"
    INSIDE = "Inside"
    EQUALS = "Equals"
    CONTAINS = "Contains"
    DISTANCE = "Distance"


@dataclass(frozen=True)
class LayerRef:
    """Reference to a thematic layer by name."""

    name: str


@dataclass(frozen=True)
class SpatialFilter:
    """Keep facts whose member geometry relates to a layer/geometry.

    For non-distance relations: the member geometry must satisfy the
    relation against **at least one** feature of the target layer (or the
    literal geometry).  For ``DISTANCE``: the *minimum* distance from the
    member geometry to the target is compared via ``op threshold`` (metres).
    """

    ref: LevelRef
    relation: SpatialRelation
    target: LayerRef | Geometry
    op: ComparisonOp | None = None
    threshold: float | None = None

    def __post_init__(self) -> None:
        if self.relation is SpatialRelation.DISTANCE:
            if self.op is None or self.threshold is None:
                raise QueryError(
                    "DISTANCE spatial filters require op and threshold"
                )
        elif self.op is not None or self.threshold is not None:
            raise QueryError(
                f"{self.relation.value} spatial filters take no op/threshold"
            )


@dataclass
class CubeQuery:
    """A complete OLAP query."""

    fact: str
    aggregations: Sequence[AggSpec]
    group_by: Sequence[LevelRef] = field(default_factory=tuple)
    where: Sequence[AttributeFilter | SpatialFilter] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.aggregations:
            raise QueryError("a cube query needs at least one aggregation")


class CellSet:
    """Query result: axes (grouping refs) and measure cells."""

    def __init__(
        self,
        axes: Sequence[LevelRef],
        labels: Sequence[str],
        cells: Mapping[tuple[str, ...], tuple[float, ...]],
        fact_rows_scanned: int,
        fact_rows_matched: int,
    ) -> None:
        self.axes = tuple(axes)
        self.labels = tuple(labels)
        self.cells = dict(cells)
        self.fact_rows_scanned = fact_rows_scanned
        self.fact_rows_matched = fact_rows_matched

    def __len__(self) -> int:
        return len(self.cells)

    def value(self, coordinate: tuple[str, ...] | str, label: str | None = None) -> float:
        """Value of one cell; ``label`` defaults to the only aggregation."""
        if isinstance(coordinate, str):
            coordinate = (coordinate,)
        if label is None:
            if len(self.labels) != 1:
                raise QueryError(
                    f"cell set has {len(self.labels)} measures; name one of "
                    f"{list(self.labels)}"
                )
            label = self.labels[0]
        try:
            values = self.cells[coordinate]
        except KeyError:
            raise QueryError(
                f"no cell at {coordinate!r}; coordinates: "
                f"{sorted(self.cells)[:10]}..."
            ) from None
        return values[self.labels.index(label)]

    def to_rows(self) -> list[tuple]:
        """Sorted ``(coordinate..., value...)`` tuples."""
        return [
            coord + self.cells[coord] for coord in sorted(self.cells)
        ]

    def format_table(self) -> str:
        """Fixed-width text table (benchmark harness output)."""
        headers = [str(a) for a in self.axes] + list(self.labels)
        rows = [
            [str(part) for part in coord]
            + [f"{v:.2f}" if isinstance(v, float) else str(v) for v in values]
            for coord, values in sorted(self.cells.items())
        ]
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [
            " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        lines.extend(
            " | ".join(c.ljust(w) for c, w in zip(row, widths)) for row in rows
        )
        return "\n".join(lines)


class _Accumulator:
    """Streaming accumulator for one aggregation spec."""

    __slots__ = ("spec", "count", "total", "min", "max", "distinct")

    def __init__(self, spec: AggSpec) -> None:
        self.spec = spec
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self.distinct: set[float] | None = (
            set() if spec.aggregator is Aggregator.COUNT_DISTINCT else None
        )

    def add(self, value: float | None) -> None:
        self.count += 1
        if value is None:
            return
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if self.distinct is not None:
            self.distinct.add(value)

    def result(self) -> float:
        agg = self.spec.aggregator
        if agg is Aggregator.COUNT:
            return float(self.count)
        if agg is Aggregator.COUNT_DISTINCT:
            assert self.distinct is not None
            return float(len(self.distinct))
        if agg is Aggregator.SUM:
            return self.total
        if agg is Aggregator.AVG:
            return self.total / self.count if self.count else 0.0
        if agg is Aggregator.MIN:
            return self.min if self.min is not None else 0.0
        return self.max if self.max is not None else 0.0


def _relation_predicate(relation: SpatialRelation):
    return {
        SpatialRelation.INTERSECT: g_intersects,
        SpatialRelation.DISJOINT: g_disjoint,
        SpatialRelation.CROSS: g_crosses,
        SpatialRelation.INSIDE: g_within,
        SpatialRelation.EQUALS: g_equals,
        SpatialRelation.CONTAINS: g_contains,
    }[relation]


def _allowed_keys_for_attribute_filter(
    star: StarSchema, flt: AttributeFilter
) -> set[str]:
    schema = star.schema
    level = flt.ref.resolve_level(schema)
    table = star.dimension_table(flt.ref.dimension)
    matching = {
        member.key
        for member in table.members(level)
        if flt.op.apply(member.attributes.get(flt.attribute), flt.value)
    }
    if level == table.dimension.leaf:
        return matching
    return star.leaf_keys_rolled_to(flt.ref.dimension, level, matching)


def _target_geometries(star: StarSchema, target: LayerRef | Geometry) -> list[Geometry]:
    if isinstance(target, LayerRef):
        return [f.geometry for f in star.layer_table(target.name).features()]
    return [target]


def _spatial_fast_path_applicable(flt: SpatialFilter, metric: Metric) -> bool:
    """Whether the envelope pre-filter is sound for this filter.

    Envelope distances are planar lower bounds of geometry distances, so
    for ``DISTANCE`` the pre-filter is only valid under a planar metric
    and for upper-bound comparisons (``<`` / ``<=``), where "envelopes
    farther than the threshold" soundly excludes a member.  All boolean
    relations imply (or are implied by) envelope intersection.
    """
    if flt.relation is not SpatialRelation.DISTANCE:
        return True
    return flt.op in (ComparisonOp.LT, ComparisonOp.LE) and isinstance(
        metric, PlanarMetric
    )


def _candidate_probe(env, threshold: float = 0.0):
    """Loosen an envelope for candidate queries.

    The exact predicates are tolerance-based (they pre-check
    ``envelope.expanded(EPS)``) and the exact distance computation
    rounds, so the index probe must be *at least* as permissive as the
    exact tests or the fast path would drop members the scan keeps.
    Over-inclusion is harmless — the exact tests decide.
    """
    scale = max(
        abs(env.min_x), abs(env.min_y), abs(env.max_x), abs(env.max_y), 1.0
    )
    return env.expanded(threshold + _EPS + 1e-9 * (scale + threshold))


def _spatial_matching_with_index(
    star: StarSchema,
    flt: SpatialFilter,
    metric: Metric,
    dimension: str,
    level: str,
    targets: list[Geometry],
) -> set[str]:
    """Member keys matching ``flt``, pre-filtered through the star's
    cached :class:`~repro.geometry.index.EnvelopeColumns` envelopes.

    Two orientations, chosen by which side is smaller: usually targets
    are few (layer features, literal geometries), so each target's
    envelope queries the member index (:meth:`StarSchema.level_grid_index`)
    and only surviving candidates get exact tests; when a layer has more
    features than the level has members, each member instead queries the
    layer's feature index (:meth:`StarSchema.layer_grid_index`).
    """
    cached = star.level_grid_index(dimension, level)
    if cached is None:
        return set()  # no member of the level carries a geometry yet
    index, geometry_of = cached
    if isinstance(flt.target, LayerRef) and len(targets) > len(geometry_of):
        layer_cached = star.layer_grid_index(flt.target.name)
        if layer_cached is not None:
            return _match_members_against_layer_index(
                flt, metric, geometry_of, *layer_cached
            )
    matching: set[str] = set()
    if flt.relation is SpatialRelation.DISTANCE:
        assert flt.op is not None and flt.threshold is not None
        for target in targets:
            probe = _candidate_probe(target.envelope, flt.threshold)
            for key in index.query_envelope(probe):
                if key in matching:
                    continue
                if flt.op.apply(
                    metric.distance(geometry_of[key], target), flt.threshold
                ):
                    matching.add(key)
        return matching
    predicate = _relation_predicate(flt.relation)
    if flt.relation is SpatialRelation.DISJOINT:
        # A member whose (loosened) envelope intersects no target
        # envelope is geometrically disjoint from every target; only
        # envelope-level candidates need the exact all-targets test.
        candidates: set[str] = set()
        for target in targets:
            candidates.update(index.query_envelope(_candidate_probe(target.envelope)))
        matching = set(geometry_of)
        for key in candidates:
            if not all(predicate(geometry_of[key], t) for t in targets):
                matching.discard(key)
        return matching
    for target in targets:
        for key in index.query_envelope(_candidate_probe(target.envelope)):
            if key in matching:
                continue
            if predicate(geometry_of[key], target):
                matching.add(key)
    return matching


def _match_members_against_layer_index(
    flt: SpatialFilter,
    metric: Metric,
    geometry_of: Mapping[str, Geometry],
    target_index,
    target_geoms: list[Geometry],
) -> set[str]:
    """The member-iterating orientation: each member's envelope queries
    the layer's feature grid for candidate targets."""
    matching: set[str] = set()
    if flt.relation is SpatialRelation.DISTANCE:
        assert flt.op is not None and flt.threshold is not None
        for key, geometry in geometry_of.items():
            probe = _candidate_probe(geometry.envelope, flt.threshold)
            if any(
                flt.op.apply(
                    metric.distance(geometry, target_geoms[i]), flt.threshold
                )
                for i in target_index.query_envelope(probe)
            ):
                matching.add(key)
        return matching
    predicate = _relation_predicate(flt.relation)
    for key, geometry in geometry_of.items():
        candidates = target_index.query_envelope(
            _candidate_probe(geometry.envelope)
        )
        if flt.relation is SpatialRelation.DISJOINT:
            # Non-candidate features are envelope-separated, hence
            # disjoint; the member survives iff it is disjoint from
            # every envelope-level candidate too.
            if all(predicate(geometry, target_geoms[i]) for i in candidates):
                matching.add(key)
        elif any(predicate(geometry, target_geoms[i]) for i in candidates):
            matching.add(key)
    return matching


def _allowed_keys_for_spatial_filter(
    star: StarSchema, flt: SpatialFilter, metric: Metric
) -> set[str]:
    schema = star.schema
    if not isinstance(schema, GeoMDSchema):
        raise QueryError(
            "spatial filters require a GeoMD schema (run schema "
            "personalization first)"
        )
    level = flt.ref.resolve_level(schema)
    ref = f"{flt.ref.dimension}.{level}"
    if ref not in schema.spatial_levels:
        raise QueryError(
            f"level {ref} is not spatial; apply BecomeSpatial first "
            f"(spatial levels: {sorted(schema.spatial_levels)})"
        )
    targets = _target_geometries(star, flt.target)
    table = star.dimension_table(flt.ref.dimension)
    if star.use_indexes and targets and _spatial_fast_path_applicable(flt, metric):
        matching = _spatial_matching_with_index(
            star, flt, metric, flt.ref.dimension, level, targets
        )
    else:
        matching = set()
        for member in table.members(level):
            geometry = member.geometry
            if geometry is None:
                continue
            if flt.relation is SpatialRelation.DISTANCE:
                if not targets:
                    continue
                assert flt.op is not None and flt.threshold is not None
                min_d = min(metric.distance(geometry, t) for t in targets)
                if flt.op.apply(min_d, flt.threshold):
                    matching.add(member.key)
            else:
                predicate = _relation_predicate(flt.relation)
                if flt.relation is SpatialRelation.DISJOINT:
                    # Disjoint from the whole target set, not from any one part.
                    if all(predicate(geometry, t) for t in targets):
                        matching.add(member.key)
                elif any(predicate(geometry, t) for t in targets):
                    matching.add(member.key)
    if level == table.dimension.leaf:
        return matching
    return star.leaf_keys_rolled_to(flt.ref.dimension, level, matching)


def _prepare(star: StarSchema, query: CubeQuery, metric: Metric | None):
    """Shared validation + phase 1 (filters → allowed leaf keys).

    Returns ``(fact, fact_table, group_levels, allowed)``; both executors
    run phase 2 over this, so filter semantics can never drift between
    the vectorized path and the row-loop reference.
    """
    metric = metric or PlanarMetric()
    schema = star.schema
    fact = schema.fact(query.fact)
    fact_table = star.fact_table(query.fact)

    for spec in query.aggregations:
        if spec.measure != "*":
            fact.measure(spec.measure)  # existence check
        elif spec.aggregator not in (Aggregator.COUNT,):
            raise QueryError(
                f"{spec.aggregator.value}(*) is not meaningful; only COUNT(*)"
            )

    group_levels: list[tuple[str, str]] = []
    for ref in query.group_by:
        if ref.dimension not in fact.dimension_names:
            raise QueryError(
                f"fact {fact.name!r} has no dimension {ref.dimension!r}"
            )
        group_levels.append((ref.dimension, ref.resolve_level(schema)))

    # Phase 1: filters -> allowed leaf-key sets per dimension (semi-joins).
    allowed: dict[str, set[str]] = {}
    for flt in query.where:
        if isinstance(flt, AttributeFilter):
            keys = _allowed_keys_for_attribute_filter(star, flt)
        else:
            keys = _allowed_keys_for_spatial_filter(star, flt, metric)
        dim = flt.ref.dimension
        if dim not in fact.dimension_names:
            raise QueryError(f"fact {fact.name!r} has no dimension {dim!r}")
        allowed[dim] = allowed[dim] & keys if dim in allowed else keys

    return fact, fact_table, group_levels, allowed


def _execute_rowloop(star, query, selection, fact, fact_table, group_levels, allowed) -> CellSet:
    """Phase 2, row-at-a-time: the original reference semantics."""
    key_columns = {dim: fact_table.key_column(dim) for dim, _ in group_levels}
    filter_columns = {dim: fact_table.key_column(dim) for dim in allowed}
    measure_columns = {
        spec.measure: fact_table.measure_column(spec.measure)
        for spec in query.aggregations
        if spec.measure != "*"
    }
    groups: dict[tuple[str, ...], list[_Accumulator]] = {}
    row_iter = selection if selection is not None else fact_table.row_ids()
    scanned = 0
    matched = 0
    for row_id in row_iter:
        scanned += 1
        skip = False
        for dim, keys in allowed.items():
            if filter_columns[dim][row_id] not in keys:
                skip = True
                break
        if skip:
            continue
        matched += 1
        coordinate = tuple(
            star.rollup_member(dim, key_columns[dim][row_id], level).key
            for dim, level in group_levels
        )
        accumulators = groups.get(coordinate)
        if accumulators is None:
            accumulators = [_Accumulator(spec) for spec in query.aggregations]
            groups[coordinate] = accumulators
        for accumulator in accumulators:
            measure = accumulator.spec.measure
            value = measure_columns[measure][row_id] if measure != "*" else None
            accumulator.add(value)

    cells = {
        coordinate: tuple(acc.result() for acc in accumulators)
        for coordinate, accumulators in groups.items()
    }
    return CellSet(
        axes=tuple(query.group_by),
        labels=tuple(spec.label for spec in query.aggregations),
        cells=cells,
        fact_rows_scanned=scanned,
        fact_rows_matched=matched,
    )


def _execute_vectorized(star, query, selection, fact, fact_table, group_levels, allowed) -> CellSet:
    """Phase 2, batch-wise over the encoded columns.

    Filters become byte masks over code columns (big-int AND across
    dimensions), the group-by becomes leaf-code → ancestor-ordinal
    translation (:meth:`StarSchema.rollup_translation`) combined into a
    single integer group id per row, and aggregation accumulates per
    group id in measure-column order — the same row order as the
    reference loop, so float results are bit-identical.  With the numpy
    backend on, mask evaluation and code translation run as array
    gathers; float accumulation deliberately stays in the ordered
    Python loop to preserve bit-identical rounding.
    """
    np = numpy_backend(star.use_numpy)
    n = len(fact_table)
    rows: Sequence[int]
    if selection is not None:
        # Preserve the selection's order and duplicates: the reference
        # executor scans it as-is, and float accumulation order matters.
        sel_rows = list(selection)
        scanned = len(sel_rows)
        if allowed:
            lookups = [
                (
                    fact_table.key_codes(dim),
                    fact_table.dictionary(dim).lookup_mask(keys),
                )
                for dim, keys in allowed.items()
            ]
            rows = [
                row_id
                for row_id in sel_rows
                if all(mask[column[row_id]] for column, mask in lookups)
            ]
        else:
            rows = sel_rows
    else:
        scanned = n
        if allowed:
            rows = fact_table.rows_matching(allowed)
            while rows and rows[-1] >= n:  # rows appended since len() above
                rows.pop()
        else:
            rows = range(n)
    matched = len(rows)

    use_np = np is not None and matched > 0
    row_index = None
    if use_np and not isinstance(rows, range):
        row_index = np.asarray(rows, dtype=np.intp)

    # Group ids: translate each group dimension's leaf codes to ancestor
    # ordinals, then mix into one int per row (radix = per-level key count).
    translations = [
        star.rollup_translation(fact.name, dim, level)
        for dim, level in group_levels
    ]
    key_lists = [list(t.keys) for t in translations]
    sizes = [len(keys) for keys in key_lists]
    gids: list[int] | None = None
    if group_levels and matched:
        if use_np:
            np_gids = None
            for (dim, _level), translation, size in zip(
                group_levels, translations, sizes
            ):
                column = fact_table.key_codes(dim)
                codes = np.frombuffer(column.tobytes(), dtype=np.intc, count=n)
                if row_index is not None:
                    codes = codes[row_index]
                table = np.frombuffer(translation.codes.tobytes(), dtype=np.intc)
                ordinals = table[codes].astype(np.int64)
                np_gids = (
                    ordinals if np_gids is None else np_gids * size + ordinals
                )
            gids = np_gids.tolist()
        else:
            for (dim, _level), translation, size in zip(
                group_levels, translations, sizes
            ):
                column = fact_table.key_codes(dim)
                if isinstance(rows, range):
                    leaf_codes = islice(column, n)
                else:
                    leaf_codes = map(column.__getitem__, rows)
                ordinals = map(translation.codes.__getitem__, leaf_codes)
                if gids is None:
                    gids = list(ordinals)
                else:
                    gids = [g * size + o for g, o in zip(gids, ordinals)]
    if gids is None:
        gids = [0] * matched

    counts = Counter(gids)

    # Measure columns restricted to the matched rows, in row order.
    value_lists: dict[str, list[float]] = {}
    for spec in query.aggregations:
        measure = spec.measure
        if measure == "*" or measure in value_lists:
            continue
        column = fact_table.measure_values(measure)
        if use_np:
            values = np.frombuffer(column.tobytes(), dtype=np.float64, count=n)
            if row_index is not None:
                values = values[row_index]
            value_lists[measure] = values.tolist()
        elif isinstance(rows, range):
            value_lists[measure] = list(islice(column, n))
        else:
            value_lists[measure] = list(map(column.__getitem__, rows))

    spec_results: list[dict[int, float]] = []
    for spec in query.aggregations:
        agg = spec.aggregator
        if agg is Aggregator.COUNT:
            spec_results.append({g: float(c) for g, c in counts.items()})
            continue
        values = value_lists[spec.measure]
        if agg in (Aggregator.SUM, Aggregator.AVG):
            sums: dict[int, float] = {}
            for g, v in zip(gids, values):
                acc = sums.get(g)
                # "v + 0.0" mirrors the reference's "total = 0.0; total
                # += v" first step (normalizes -0.0 identically).
                sums[g] = v + 0.0 if acc is None else acc + v
            if agg is Aggregator.SUM:
                spec_results.append(sums)
            else:
                spec_results.append(
                    {g: total / counts[g] for g, total in sums.items()}
                )
        elif agg is Aggregator.MIN:
            mins: dict[int, float] = {}
            for g, v in zip(gids, values):
                cur = mins.get(g)
                if cur is None or v < cur:
                    mins[g] = v
            spec_results.append(mins)
        elif agg is Aggregator.MAX:
            maxs: dict[int, float] = {}
            for g, v in zip(gids, values):
                cur = maxs.get(g)
                if cur is None or v > cur:
                    maxs[g] = v
            spec_results.append(maxs)
        else:  # COUNT_DISTINCT
            distinct: dict[int, set[float]] = {}
            for g, v in zip(gids, values):
                seen = distinct.get(g)
                if seen is None:
                    distinct[g] = {v}
                else:
                    seen.add(v)
            spec_results.append(
                {g: float(len(seen)) for g, seen in distinct.items()}
            )

    cells: dict[tuple[str, ...], tuple[float, ...]] = {}
    for gid in counts:
        parts = []
        g = gid
        for size, keys in zip(reversed(sizes), reversed(key_lists)):
            g, ordinal = divmod(g, size)
            parts.append(keys[ordinal])
        coordinate = tuple(reversed(parts))
        cells[coordinate] = tuple(results[gid] for results in spec_results)
    return CellSet(
        axes=tuple(query.group_by),
        labels=tuple(spec.label for spec in query.aggregations),
        cells=cells,
        fact_rows_scanned=scanned,
        fact_rows_matched=matched,
    )


def _resolve_as_of(
    star: StarSchema,
    query: CubeQuery,
    selection: Iterable[int] | None,
    as_of: int,
) -> tuple[StarSchema, Iterable[int] | None]:
    """Swap in the historical star (and clamp the selection) for ``as_of``.

    The query must run against the *reconstructed* star — spatial
    filters read layer tables and member geometries live, so merely
    restricting row ids over the current star would leak future
    metadata.  The selection row ids are clamped to the historical fact
    prefix: fact tables are append-only, so the prefix that existed at
    generation ``g`` is exactly ``row_id < len(historical table)``.
    """
    from repro.storage.snapshot import HistoryError

    history = star.history
    if history is None:
        raise HistoryError(
            "star keeps no history; attach a StarHistory (engines do so "
            "by default) to serve as_of reads"
        )
    historical = history.as_of(as_of)
    if historical is star:
        return star, selection
    if selection is not None:
        limit = len(historical.fact_table(query.fact))
        selection = [row_id for row_id in selection if row_id < limit]
    return historical, selection


def execute(
    star: StarSchema,
    query: CubeQuery,
    selection: Iterable[int] | None = None,
    metric: Metric | None = None,
    as_of: int | None = None,
) -> CellSet:
    """Run a cube query.

    ``selection`` optionally restricts the scan to specific fact row ids —
    this is how personalized instance views (``SelectInstance``) plug into
    ordinary, *non-spatial* downstream queries, the scenario of
    Section 4.2.4 of the paper.

    ``as_of`` answers against a past star generation: the star's
    attached :class:`~repro.storage.snapshot.StarHistory` reconstructs
    the generation from checkpoint + mutation-log replay and the query
    runs against that star (with ``selection`` clamped to the historical
    fact prefix) — bit-identical to the answer the live star gave then.

    Dispatches to the columnar batch executor unless the star's
    ``use_vectorized`` transparency switch is off, in which case the
    row-loop reference path runs (see :func:`execute_reference`); the
    two produce bit-identical cell sets.
    """
    if as_of is not None:
        star, selection = _resolve_as_of(star, query, selection, as_of)
    prep = _prepare(star, query, metric)
    if star.use_vectorized:
        return _execute_vectorized(star, query, selection, *prep)
    return _execute_rowloop(star, query, selection, *prep)


def execute_reference(
    star: StarSchema,
    query: CubeQuery,
    selection: Iterable[int] | None = None,
    metric: Metric | None = None,
    as_of: int | None = None,
) -> CellSet:
    """Run a cube query on the row-loop reference executor, always.

    The baseline of the identical-response benchmark gate and of the
    equivalence property tests: one :meth:`StarSchema.rollup_member`
    call per row, streaming :class:`_Accumulator` per group.
    """
    if as_of is not None:
        star, selection = _resolve_as_of(star, query, selection, as_of)
    prep = _prepare(star, query, metric)
    return _execute_rowloop(star, query, selection, *prep)
