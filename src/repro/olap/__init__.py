"""Spatial OLAP engine: cube queries, navigation, spatial aggregation.

The warehouse-analysis substrate the paper's rules personalize: cube
queries with attribute and spatial filters, roll-up/drill-down/slice/dice
navigation, da Silva-style spatial aggregation functions and the
GeoMDQL-lite text query language.
"""

from repro.olap.cube import Cube
from repro.olap.gmdql import parse_query
from repro.olap.query import (
    AggSpec,
    AttributeFilter,
    CellSet,
    ComparisonOp,
    CubeQuery,
    LayerRef,
    LevelRef,
    SpatialFilter,
    SpatialRelation,
    execute,
)
from repro.olap.spatial_agg import (
    SpatialAggregator,
    aggregate_geometries,
    spatial_rollup,
)

__all__ = [
    "AggSpec",
    "AttributeFilter",
    "CellSet",
    "ComparisonOp",
    "Cube",
    "CubeQuery",
    "LayerRef",
    "LevelRef",
    "SpatialAggregator",
    "SpatialFilter",
    "SpatialRelation",
    "aggregate_geometries",
    "execute",
    "parse_query",
    "spatial_rollup",
]
