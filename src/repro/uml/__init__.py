"""Minimal MOF/UML metamodel core with profiles and stereotypes.

All of the paper's design artifacts (MD model, GeoMD model, SUS user model,
PRML metamodel) are UML profiles; this package provides the common
machinery: classes, typed properties, associations navigable by role name,
enumerations, stereotype application with metaclass checks, OCL-style path
resolution and deterministic PlantUML rendering.
"""

from repro.uml.core import (
    BOOLEAN,
    DATE,
    GEOMETRY,
    INTEGER,
    REAL,
    STRING,
    Association,
    AssociationEnd,
    DataType,
    Enumeration,
    Model,
    NamedElement,
    Profile,
    Property,
    Stereotype,
    UMLClass,
)
from repro.uml.diagram import class_signature, to_plantuml

__all__ = [
    "BOOLEAN",
    "DATE",
    "GEOMETRY",
    "INTEGER",
    "REAL",
    "STRING",
    "Association",
    "AssociationEnd",
    "DataType",
    "Enumeration",
    "Model",
    "NamedElement",
    "Profile",
    "Property",
    "Stereotype",
    "UMLClass",
    "class_signature",
    "to_plantuml",
]
