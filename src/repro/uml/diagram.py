"""Deterministic text rendering of UML models (PlantUML dialect).

The reproduction regenerates the paper's figures as *text diagrams*: the
integration tests and figure benchmarks compare these renderings against
golden expectations, which makes "Fig. 2 / Fig. 4 / Fig. 6 regenerated"
a checkable assertion rather than a screenshot.
"""

from __future__ import annotations

from repro.uml.core import Association, Enumeration, Model, Property, UMLClass

__all__ = ["to_plantuml", "class_signature"]


def _stereo(names: set[str]) -> str:
    if not names:
        return ""
    inner = ", ".join(sorted(names))
    return f" <<{inner}>>"


def _type_name(prop: Property) -> str:
    return prop.type.name


def class_signature(cls: UMLClass) -> str:
    """One-line summary of a class: name, stereotypes, property names."""
    props = ", ".join(sorted(cls.properties))
    return f"{cls.name}{_stereo(cls.stereotypes)}({props})"


def _render_class(cls: UMLClass) -> list[str]:
    lines = [f"class {cls.name}{_stereo(cls.stereotypes)} {{"]
    for name in sorted(cls.properties):
        prop = cls.properties[name]
        marker = _stereo(prop.stereotypes)
        card = ""
        if prop.upper is None:
            card = " [*]"
        elif prop.upper > 1:
            card = f" [{prop.lower}..{prop.upper}]"
        elif prop.lower == 0:
            card = " [0..1]"
        lines.append(f"  {prop.name} : {_type_name(prop)}{card}{marker}")
    lines.append("}")
    return lines


def _render_association(assoc: Association) -> str:
    src, dst = assoc.source, assoc.target

    def card(end) -> str:
        upper = "*" if end.upper is None else str(end.upper)
        return f"{end.lower}..{upper}" if str(end.lower) != upper else upper

    return (
        f'{src.type.name} "{src.role} {card(src)}" -- '
        f'"{dst.role} {card(dst)}" {dst.type.name} : {assoc.name}'
    )


def _render_enumeration(enum: Enumeration) -> list[str]:
    lines = [f"enum {enum.name} {{"]
    lines.extend(f"  {literal}" for literal in enum.literals)
    lines.append("}")
    return lines


def to_plantuml(model: Model) -> str:
    """Render a model to a deterministic PlantUML document."""
    lines = ["@startuml", f"title {model.name}"]
    for name in sorted(model.enumerations):
        lines.extend(_render_enumeration(model.enumerations[name]))
    for name in sorted(model.classes):
        lines.extend(_render_class(model.classes[name]))
    for name in sorted(model.associations):
        lines.append(_render_association(model.associations[name]))
    lines.append("@enduml")
    return "\n".join(lines)
