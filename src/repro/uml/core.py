"""A minimal MOF/UML metamodel core.

The paper expresses every design artifact as a UML class diagram with a
profile on top:

* the MD model uses the profile of Luján-Mora, Trujillo & Song [16]
  (Fact / Dimension / Base / FactAttribute / Descriptor stereotypes);
* the GeoMD extension adds SpatialLevel and Layer stereotypes [10];
* the spatial-aware user model is the *SUS* profile of Fig. 3
  (User / Session / Characteristic / LocationContext / SpatialSelection);
* PRML itself "is based on a MOF metamodel" (Section 2).

This module provides just enough of UML for all four: named elements,
classes with typed properties, binary associations with navigable role
names, enumerations, stereotypes grouped into profiles, and stereotype
application with metaclass checking.  Model navigation follows the OCL
path-expression style the paper uses (``SUS.DecisionMaker.dm2role.name``).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import ModelError, ProfileError

__all__ = [
    "NamedElement",
    "DataType",
    "Enumeration",
    "Property",
    "UMLClass",
    "AssociationEnd",
    "Association",
    "Stereotype",
    "Profile",
    "Model",
    "STRING",
    "INTEGER",
    "REAL",
    "BOOLEAN",
    "GEOMETRY",
    "DATE",
]

_VALID_METACLASSES = frozenset({"Class", "Property", "Association"})


class NamedElement:
    """Base class: every model element has a non-empty name."""

    def __init__(self, name: str) -> None:
        if not name or not name.strip():
            raise ModelError("model elements require a non-empty name")
        self.name = name

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class DataType(NamedElement):
    """A primitive type usable as a property type."""


#: The shared primitive types of the repository's models.
STRING = DataType("String")
INTEGER = DataType("Integer")
REAL = DataType("Real")
BOOLEAN = DataType("Boolean")
GEOMETRY = DataType("Geometry")
DATE = DataType("Date")


class Enumeration(NamedElement):
    """An enumeration with ordered literals (e.g. ``GeometricTypes``)."""

    def __init__(self, name: str, literals: Iterable[str]) -> None:
        super().__init__(name)
        self.literals: tuple[str, ...] = tuple(literals)
        if not self.literals:
            raise ModelError(f"enumeration {name!r} requires at least one literal")
        if len(set(self.literals)) != len(self.literals):
            raise ModelError(f"enumeration {name!r} has duplicate literals")

    def __contains__(self, literal: str) -> bool:
        return literal in self.literals


class Property(NamedElement):
    """A typed structural feature of a class."""

    def __init__(
        self,
        name: str,
        type_: DataType | Enumeration | "UMLClass",
        lower: int = 1,
        upper: int | None = 1,
        default: object = None,
    ) -> None:
        super().__init__(name)
        if lower < 0:
            raise ModelError(f"property {name!r}: lower bound must be >= 0")
        if upper is not None and upper < max(lower, 1):
            raise ModelError(f"property {name!r}: upper bound below lower bound")
        self.type = type_
        self.lower = lower
        self.upper = upper
        self.default = default
        self.owner: "UMLClass | None" = None
        self.stereotypes: set[str] = set()

    @property
    def qualified_name(self) -> str:
        if self.owner is None:
            return self.name
        return f"{self.owner.name}.{self.name}"


class UMLClass(NamedElement):
    """A class: named, with owned properties and applied stereotypes."""

    def __init__(self, name: str, properties: Iterable[Property] = ()) -> None:
        super().__init__(name)
        self.properties: dict[str, Property] = {}
        self.stereotypes: set[str] = set()
        for prop in properties:
            self.add_property(prop)

    def add_property(self, prop: Property) -> Property:
        if prop.name in self.properties:
            raise ModelError(
                f"class {self.name!r} already owns a property {prop.name!r}"
            )
        prop.owner = self
        self.properties[prop.name] = prop
        return prop

    def property(self, name: str) -> Property:
        try:
            return self.properties[name]
        except KeyError:
            raise ModelError(
                f"class {self.name!r} has no property {name!r}; "
                f"available: {sorted(self.properties)}"
            ) from None

    def has_stereotype(self, name: str) -> bool:
        return name in self.stereotypes


class AssociationEnd:
    """One navigable end of a binary association."""

    def __init__(
        self,
        role: str,
        type_: UMLClass,
        lower: int = 0,
        upper: int | None = None,
    ) -> None:
        if not role:
            raise ModelError("association ends require a role name")
        self.role = role
        self.type = type_
        self.lower = lower
        self.upper = upper

    @property
    def is_collection(self) -> bool:
        return self.upper is None or self.upper > 1

    def __repr__(self) -> str:
        return f"<AssociationEnd {self.role!r}: {self.type.name}>"


class Association(NamedElement):
    """A binary association; both ends are navigable by role name.

    The paper navigates associations by "the target roles of the
    relationships between model elements" — e.g. ``dm2role`` from the
    DecisionMaker class to its Role class in Fig. 4.
    """

    def __init__(self, name: str, source: AssociationEnd, target: AssociationEnd) -> None:
        super().__init__(name)
        self.source = source
        self.target = target
        self.stereotypes: set[str] = set()

    def end_for(self, cls: UMLClass) -> AssociationEnd | None:
        """The far end when navigating away from ``cls`` (None if detached)."""
        if self.source.type is cls:
            return self.target
        if self.target.type is cls:
            return self.source
        return None


class Stereotype(NamedElement):
    """A profile stereotype extending one UML metaclass."""

    def __init__(self, name: str, metaclass: str = "Class") -> None:
        super().__init__(name)
        if metaclass not in _VALID_METACLASSES:
            raise ProfileError(
                f"stereotype {name!r} extends unknown metaclass {metaclass!r}; "
                f"expected one of {sorted(_VALID_METACLASSES)}"
            )
        self.metaclass = metaclass


class Profile(NamedElement):
    """A named set of stereotypes (one per modeling concern)."""

    def __init__(self, name: str, stereotypes: Iterable[Stereotype] = ()) -> None:
        super().__init__(name)
        self.stereotypes: dict[str, Stereotype] = {}
        for st in stereotypes:
            self.add(st)

    def add(self, stereotype: Stereotype) -> Stereotype:
        if stereotype.name in self.stereotypes:
            raise ProfileError(
                f"profile {self.name!r} already defines stereotype "
                f"{stereotype.name!r}"
            )
        self.stereotypes[stereotype.name] = stereotype
        return stereotype

    def stereotype(self, name: str) -> Stereotype:
        try:
            return self.stereotypes[name]
        except KeyError:
            raise ProfileError(
                f"profile {self.name!r} has no stereotype {name!r}; "
                f"available: {sorted(self.stereotypes)}"
            ) from None

    def apply(self, element: UMLClass | Property | Association, name: str) -> None:
        """Apply a stereotype, checking the element's metaclass."""
        stereotype = self.stereotype(name)
        metaclass = {
            UMLClass: "Class",
            Property: "Property",
            Association: "Association",
        }.get(type(element))
        if metaclass is None:
            raise ProfileError(
                f"cannot stereotype a {type(element).__name__}"
            )
        if stereotype.metaclass != metaclass:
            raise ProfileError(
                f"stereotype {name!r} extends {stereotype.metaclass}, "
                f"not {metaclass} ({element.name!r})"
            )
        element.stereotypes.add(name)


class Model(NamedElement):
    """A model: classes, associations, enumerations and applied profiles."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.classes: dict[str, UMLClass] = {}
        self.associations: dict[str, Association] = {}
        self.enumerations: dict[str, Enumeration] = {}
        self.profiles: dict[str, Profile] = {}

    # -- construction ------------------------------------------------------

    def add_class(self, cls: UMLClass) -> UMLClass:
        if cls.name in self.classes:
            raise ModelError(f"model {self.name!r} already has class {cls.name!r}")
        self.classes[cls.name] = cls
        return cls

    def add_association(self, assoc: Association) -> Association:
        if assoc.name in self.associations:
            raise ModelError(
                f"model {self.name!r} already has association {assoc.name!r}"
            )
        for end in (assoc.source, assoc.target):
            if end.type.name not in self.classes:
                raise ModelError(
                    f"association {assoc.name!r} references class "
                    f"{end.type.name!r} not present in model {self.name!r}"
                )
        self.associations[assoc.name] = assoc
        return assoc

    def add_enumeration(self, enum: Enumeration) -> Enumeration:
        if enum.name in self.enumerations:
            raise ModelError(
                f"model {self.name!r} already has enumeration {enum.name!r}"
            )
        self.enumerations[enum.name] = enum
        return enum

    def apply_profile(self, profile: Profile) -> Profile:
        self.profiles[profile.name] = profile
        return profile

    # -- lookup ------------------------------------------------------------

    def cls(self, name: str) -> UMLClass:
        try:
            return self.classes[name]
        except KeyError:
            raise ModelError(
                f"model {self.name!r} has no class {name!r}; "
                f"available: {sorted(self.classes)}"
            ) from None

    def classes_with_stereotype(self, stereotype: str) -> list[UMLClass]:
        return [c for c in self.classes.values() if c.has_stereotype(stereotype)]

    def associations_of(self, cls: UMLClass) -> Iterator[Association]:
        for assoc in self.associations.values():
            if assoc.end_for(cls) is not None:
                yield assoc

    # -- OCL-style navigation ----------------------------------------------

    def navigate(self, cls: UMLClass, step: str) -> Property | AssociationEnd:
        """Resolve one navigation step from ``cls``.

        A step is either an owned property name or the role name of the far
        end of an association touching ``cls`` — exactly the PathExp
        navigation of the paper's Section 4.2.2.
        """
        if step in cls.properties:
            return cls.properties[step]
        for assoc in self.associations_of(cls):
            far = assoc.end_for(cls)
            if far is not None and far.role == step:
                return far
        raise ModelError(
            f"cannot navigate {step!r} from class {cls.name!r}: not a "
            f"property ({sorted(cls.properties)}) nor an association role "
            f"({sorted(e.role for a in self.associations_of(cls) if (e := a.end_for(cls)) is not None)})"
        )

    def resolve_path(self, root: UMLClass, steps: Iterable[str]) -> Property | AssociationEnd | UMLClass:
        """Resolve a dotted path from a root class, step by step.

        Returns the final feature: a :class:`Property` (attribute access),
        an :class:`AssociationEnd` (object access) or the root class itself
        for an empty path.
        """
        current: UMLClass = root
        result: Property | AssociationEnd | UMLClass = root
        for step in steps:
            result = self.navigate(current, step)
            if isinstance(result, AssociationEnd):
                current = result.type
            elif isinstance(result, Property):
                if isinstance(result.type, UMLClass):
                    current = result.type
                else:
                    current = None  # type: ignore[assignment]
        return result

    # -- validation ----------------------------------------------------------

    def validate(self) -> list[str]:
        """Structural sanity check; returns a list of problem strings."""
        problems: list[str] = []
        for cls in self.classes.values():
            for prop in cls.properties.values():
                if isinstance(prop.type, Enumeration) and prop.type.name not in self.enumerations:
                    problems.append(
                        f"property {prop.qualified_name} uses enumeration "
                        f"{prop.type.name!r} not registered in the model"
                    )
                if isinstance(prop.type, UMLClass) and prop.type.name not in self.classes:
                    problems.append(
                        f"property {prop.qualified_name} uses class "
                        f"{prop.type.name!r} not registered in the model"
                    )
            for stereotype in cls.stereotypes:
                if not any(stereotype in p.stereotypes for p in self.profiles.values()):
                    problems.append(
                        f"class {cls.name!r} carries stereotype {stereotype!r} "
                        f"from no applied profile"
                    )
        return problems
