"""Versioned serialization codecs for the four externalized stores.

Every entry a :class:`~repro.cluster.backend.StateBackend` holds is JSON
text produced here, stamped with a ``"v"`` schema version so a future
layout change can coexist with persisted state from an older build.
Decoding is strict: corrupt text, a non-object payload, an unknown
version or a missing/mistyped field raises :class:`CodecError` — the
caller treats the entry as poisoned and drops it rather than serving
garbage.

The four entry kinds mirror the shared stores:

* **session records** — the rehydratable part of a
  :class:`~repro.service.sessions.SessionRecord`: token, tenant, user,
  clocks and the JSON-safe ``meta`` dict (journal opt-out, login
  location, replayable selection reports).  The live session object is
  *not* serialized — a worker resolving a cold token rebuilds it through
  the engine (the rules are the authority, not a pickle).
* **journal events** — :class:`~repro.reco.journal.WorkloadEvent` with
  its payload thawed to plain JSON; decoding re-freezes it through the
  event's own constructor, so persisted history is exactly as immutable
  as in-heap history.
* **view entries** — a :class:`~repro.personalization.engine.PersonalizedView`
  reduced to its data: fact name, the frozen selection's members/
  features, the surviving fact row ids, and the star generation stamp.
  The star/schema objects are supplied at decode time by the worker
  that owns them — the generation stamp in the entry's *key* is what
  guarantees both sides describe the same star state (the same
  invalidation protocol as in-heap, applied cross-process).
* **query-cache entries** — :class:`~repro.service.facade.CellSetPayload`
  with its nested tuples restored on decode, so a payload served from
  the persistent cache is structurally identical (and therefore
  byte-identical once JSON-serialized) to one served from the heap;
  since v2 the payload carries the per-dimension generation ``stamps``
  the façade revalidates on every hit.
* **mutation events** — :class:`~repro.storage.star.StarMutation` with
  its frozen delta payload dumped as nested lists (geometries as
  ``{"__wkt__": ...}`` envelopes), so the PR 9 mutation log survives the
  sqlite backend and a rehydrating worker can replay typed deltas
  instead of reloading full selections.

Timestamps are ``time.monotonic()`` values.  On Linux that clock is
machine-wide (``CLOCK_MONOTONIC``), so TTL arithmetic stays valid across
the pre-fork pool's processes; it is *not* valid across reboots, which
is fine — sessions are idle-TTL state, not durable data.
"""

from __future__ import annotations

import json
from typing import Mapping

from repro.errors import StorageError

__all__ = [
    "CodecError",
    "encode_session_record",
    "decode_session_record",
    "encode_journal_event",
    "decode_journal_event",
    "encode_view_entry",
    "decode_view_entry",
    "encode_query_payload",
    "decode_query_payload",
    "encode_mutation_event",
    "decode_mutation_event",
]


class CodecError(StorageError):
    """A persisted entry cannot be decoded (corrupt or unknown version)."""


def _loads(text: str, kind: str, version: int) -> dict:
    """Parse + envelope-check one encoded entry."""
    try:
        data = json.loads(text)
    except (TypeError, ValueError) as exc:
        raise CodecError(f"corrupt {kind} entry: {exc}") from exc
    if not isinstance(data, dict):
        raise CodecError(
            f"corrupt {kind} entry: expected an object, got "
            f"{type(data).__name__}"
        )
    if data.get("v") != version:
        raise CodecError(
            f"unknown {kind} codec version {data.get('v')!r} "
            f"(this build reads v{version})"
        )
    return data


def _field(data: dict, kind: str, name: str, types) -> object:
    value = data.get(name)
    if not isinstance(value, types):
        raise CodecError(
            f"corrupt {kind} entry: field {name!r} is "
            f"{type(value).__name__}, expected "
            f"{getattr(types, '__name__', types)}"
        )
    return value


def _thaw(value: object) -> object:
    """Deep-convert a frozen journal payload to plain JSON values.

    Inverts :func:`repro.reco.journal._freeze` for serialization:
    mapping proxies become dicts, tuples become lists, frozensets become
    *sorted* lists (sets are unordered in the heap and JSON has no set,
    so the sorted form is their canonical encoding).
    """
    if isinstance(value, Mapping):
        return {key: _thaw(inner) for key, inner in value.items()}
    if isinstance(value, (list, tuple)):
        return [_thaw(inner) for inner in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_thaw(inner) for inner in value)
    return value


def _deep_tuple(value: object) -> object:
    """Restore nested list structure to the tuples the heap forms use."""
    if isinstance(value, list):
        return tuple(_deep_tuple(inner) for inner in value)
    return value


# -- session records ------------------------------------------------------------

SESSION_RECORD_VERSION = 1


def encode_session_record(
    token: str,
    datamart: str,
    user_id: str,
    created_at: float,
    last_access: float,
    meta: dict,
) -> str:
    """Encode the rehydratable fields of one session record.

    ``meta`` must be JSON-safe — the service keeps it that way (the
    journal flag is a bool, the login location a ``[x, y]`` pair, the
    replay log a list of ``[target, condition]`` pairs).
    """
    return json.dumps(
        {
            "v": SESSION_RECORD_VERSION,
            "token": token,
            "datamart": datamart,
            "user_id": user_id,
            "created_at": created_at,
            "last_access": last_access,
            "meta": meta,
        },
        separators=(",", ":"),
    )


def decode_session_record(text: str) -> dict:
    """Decode to a plain field dict (the store builds the live record)."""
    data = _loads(text, "session-record", SESSION_RECORD_VERSION)
    return {
        "token": _field(data, "session-record", "token", str),
        "datamart": _field(data, "session-record", "datamart", str),
        "user_id": _field(data, "session-record", "user_id", str),
        "created_at": float(
            _field(data, "session-record", "created_at", (int, float))
        ),
        "last_access": float(
            _field(data, "session-record", "last_access", (int, float))
        ),
        "meta": _field(data, "session-record", "meta", dict),
    }


# -- journal events --------------------------------------------------------------

JOURNAL_EVENT_VERSION = 1


def encode_journal_event(event) -> str:
    """Encode one :class:`~repro.reco.journal.WorkloadEvent`."""
    return json.dumps(
        {
            "v": JOURNAL_EVENT_VERSION,
            "seq": event.seq,
            "kind": event.kind,
            "datamart": event.datamart,
            "user_id": event.user_id,
            "payload": _thaw(event.payload),
        },
        separators=(",", ":"),
    )


def decode_journal_event(text: str):
    """Decode to a live (re-frozen) :class:`WorkloadEvent`."""
    from repro.reco.journal import WorkloadEvent

    data = _loads(text, "journal-event", JOURNAL_EVENT_VERSION)
    return WorkloadEvent(
        seq=int(_field(data, "journal-event", "seq", int)),
        kind=_field(data, "journal-event", "kind", str),
        datamart=_field(data, "journal-event", "datamart", str),
        user_id=_field(data, "journal-event", "user_id", str),
        # WorkloadEvent.__post_init__ re-freezes the payload deeply, so
        # the decoded event is as tamper-proof as an in-heap one.
        payload=_field(data, "journal-event", "payload", dict),
    )


# -- view entries ----------------------------------------------------------------

VIEW_ENTRY_VERSION = 1


def encode_view_entry(view) -> str:
    """Encode one stored :class:`PersonalizedView` (data only).

    The entry is stamped with the selection fingerprint and the star
    generation it was built against — the decode side re-checks both
    against its lookup key, so an entry can never be applied to a star
    state it does not describe.
    """
    selection = view.selection
    return json.dumps(
        {
            "v": VIEW_ENTRY_VERSION,
            "fact": view.fact,
            "fingerprint": selection.fingerprint(),
            "members": sorted(
                [dimension, level, sorted(keys)]
                for (dimension, level), keys in selection.members.items()
            ),
            "features": sorted(
                [layer, sorted(names)]
                for layer, names in selection.features.items()
            ),
            "selection_generation": selection.generation,
            "fact_rows": list(view.fact_rows),
        },
        separators=(",", ":"),
    )


def decode_view_entry(text: str, star, schema, fingerprint: str):
    """Decode to a live view over the caller's star/schema objects.

    ``fingerprint`` is the selection fingerprint from the lookup key;
    the rebuilt selection must reproduce it exactly (a content check on
    top of the envelope checks — fingerprints are digests of the member/
    feature triples, so any corruption the field checks miss fails
    here).
    """
    from repro.personalization.engine import PersonalizedView
    from repro.prml.evaluator import SelectionSet

    data = _loads(text, "view-entry", VIEW_ENTRY_VERSION)
    fact = _field(data, "view-entry", "fact", str)
    members = _field(data, "view-entry", "members", list)
    features = _field(data, "view-entry", "features", list)
    fact_rows = _field(data, "view-entry", "fact_rows", list)
    selection = SelectionSet()
    try:
        selection.members = {
            (dimension, level): set(keys)
            for dimension, level, keys in members
        }
        selection.features = {layer: set(names) for layer, names in features}
    except (TypeError, ValueError) as exc:
        raise CodecError(f"corrupt view-entry entry: {exc}") from exc
    selection.generation = int(
        _field(data, "view-entry", "selection_generation", int)
    )
    if selection.fingerprint() != fingerprint or data.get("fingerprint") != fingerprint:
        raise CodecError(
            "corrupt view-entry entry: selection content does not match "
            "its fingerprint"
        )
    if not all(isinstance(row, int) for row in fact_rows):
        raise CodecError("corrupt view-entry entry: non-integer fact row id")
    return PersonalizedView(
        star=star,
        schema=schema,
        selection=selection,
        fact_rows=list(fact_rows),
        fact=fact,
    )


# -- query-cache entries -----------------------------------------------------------

# v2 (PR 9): payloads carry per-dimension generation ``stamps`` the
# façade revalidates on every hit — a v1 row has no stamps and therefore
# no proof of freshness, so the version check turns it into a miss.
QUERY_PAYLOAD_VERSION = 2


def encode_query_payload(payload) -> str:
    """Encode one :class:`~repro.service.facade.CellSetPayload`."""
    return json.dumps(
        {
            "v": QUERY_PAYLOAD_VERSION,
            "axes": list(payload.axes),
            "labels": _thaw(payload.labels),
            "rows": _thaw(payload.rows),
            "fact_rows_scanned": payload.fact_rows_scanned,
            "fact_rows_matched": payload.fact_rows_matched,
            "stamps": _thaw(payload.stamps),
        },
        separators=(",", ":"),
    )


def decode_query_payload(text: str):
    """Decode to a frozen :class:`CellSetPayload` (tuples all the way
    down, like the heap form — no consumer may mutate a cached row)."""
    from repro.service.facade import CellSetPayload

    data = _loads(text, "query-payload", QUERY_PAYLOAD_VERSION)
    axes = _field(data, "query-payload", "axes", list)
    labels = _field(data, "query-payload", "labels", list)
    rows = _field(data, "query-payload", "rows", list)
    stamps = _field(data, "query-payload", "stamps", list)
    if not all(isinstance(axis, str) for axis in axes):
        raise CodecError("corrupt query-payload entry: non-string axis")
    if not all(isinstance(row, list) for row in rows):
        raise CodecError("corrupt query-payload entry: non-list row")
    for stamp in stamps:
        if (
            not isinstance(stamp, list)
            or len(stamp) != 3
            or not isinstance(stamp[0], str)
            or not isinstance(stamp[1], str)
            or isinstance(stamp[2], bool)
            or not isinstance(stamp[2], int)
        ):
            raise CodecError("corrupt query-payload entry: malformed stamp")
    return CellSetPayload(
        axes=tuple(axes),
        labels=_deep_tuple(labels),
        rows=_deep_tuple(rows),
        fact_rows_scanned=int(
            _field(data, "query-payload", "fact_rows_scanned", int)
        ),
        fact_rows_matched=int(
            _field(data, "query-payload", "fact_rows_matched", int)
        ),
        stamps=_deep_tuple(stamps),
    )


# -- mutation events ---------------------------------------------------------------

MUTATION_EVENT_VERSION = 1


def _dump_frozen(value: object) -> object:
    """JSON-encode a frozen mutation payload value.

    Frozen payloads are nested tuples of scalars and geometries (see
    :func:`repro.storage.star.freeze_payload`); geometries become WKT
    envelopes ``{"__wkt__": ...}`` — the one object shape the decoder
    accepts, so a payload round-trips to an *equal* frozen tuple.
    """
    from repro.geometry import Geometry

    if isinstance(value, Geometry):
        return {"__wkt__": value.wkt}
    if isinstance(value, (list, tuple)):
        return [_dump_frozen(inner) for inner in value]
    return value


def _load_frozen(value: object) -> object:
    """Inverse of :func:`_dump_frozen`: lists back to tuples, WKT
    envelopes back to geometries, anything else is corrupt."""
    from repro.errors import GeometryError
    from repro.geometry import wkt_loads

    if isinstance(value, dict):
        if set(value) != {"__wkt__"} or not isinstance(
            value["__wkt__"], str
        ):
            raise CodecError(
                "corrupt mutation-event entry: unexpected object in payload"
            )
        try:
            return wkt_loads(value["__wkt__"])
        except GeometryError as exc:
            raise CodecError(
                f"corrupt mutation-event entry: bad WKT payload: {exc}"
            ) from exc
    if isinstance(value, list):
        return tuple(_load_frozen(inner) for inner in value)
    return value


def encode_mutation_event(mutation) -> str:
    """Encode one :class:`~repro.storage.star.StarMutation` so the
    mutation log survives the persistent backend and another worker can
    replay the delta instead of rebuilding from scratch."""
    return json.dumps(
        {
            "v": MUTATION_EVENT_VERSION,
            "kind": mutation.kind,
            "generation": mutation.generation,
            "dimension": mutation.dimension,
            "layer": mutation.layer,
            "fact": mutation.fact,
            "row_ids": list(mutation.row_ids),
            "op": mutation.op,
            "payload": _dump_frozen(mutation.payload),
        },
        separators=(",", ":"),
    )


def decode_mutation_event(text: str):
    """Decode to a frozen :class:`StarMutation`, strict like every other
    codec: corrupt text, version skew or a mistyped field raises
    :class:`CodecError` and the caller treats the row as a miss."""
    from repro.storage.star import StarMutation

    data = _loads(text, "mutation-event", MUTATION_EVENT_VERSION)
    kind = _field(data, "mutation-event", "kind", str)
    generation = _field(data, "mutation-event", "generation", int)
    if isinstance(generation, bool):
        raise CodecError(
            "corrupt mutation-event entry: field 'generation' is bool"
        )
    row_ids = _field(data, "mutation-event", "row_ids", list)
    if not all(
        isinstance(row_id, int) and not isinstance(row_id, bool)
        for row_id in row_ids
    ):
        raise CodecError("corrupt mutation-event entry: non-int row id")
    for name in ("dimension", "layer", "fact", "op"):
        if data.get(name) is not None and not isinstance(data[name], str):
            raise CodecError(
                f"corrupt mutation-event entry: field {name!r} is "
                f"{type(data[name]).__name__}, expected str or null"
            )
    payload = _load_frozen(_field(data, "mutation-event", "payload", list))
    return StarMutation(
        kind=kind,
        generation=int(generation),
        dimension=data.get("dimension"),
        layer=data.get("layer"),
        fact=data.get("fact"),
        row_ids=tuple(int(row_id) for row_id in row_ids),
        op=data.get("op"),
        payload=payload,  # type: ignore[arg-type]
    )
