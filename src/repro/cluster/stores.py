"""Backend-backed implementations of the four shared stores.

Each store here is a *two-tier* version of an existing in-heap store:
a small per-process L1 (live objects, same bounds and semantics as
today) over the shared :class:`~repro.cluster.backend.StateBackend` L2
(encoded entries every worker process sees).  Generation stamps — star
generation in view/query keys, per-tenant journal generations — are the
cross-process invalidation protocol: a worker observing a newer
generation simply never looks up the stale key, exactly the in-heap
rule applied across processes.

* :class:`BackendSessionStore` — tokens resolve in any worker.  A live
  session evicted from the L1 is ended (the in-heap eviction semantic)
  but its record survives in the backend, so the *token stays valid*:
  the next request rehydrates the session through the resolver (profile
  lookup + ``start_session`` + replay of the selection reports the
  service logged in ``meta``).  Aggregate live-session capacity
  therefore scales with worker count — the effect the EXT7 benchmark
  measures.
* :class:`BackendQueryCache` — drop-in for the façade's
  :class:`~repro.lru.ThreadSafeLRU`; entries are shared across workers
  through the backend, keyed by the façade's generation-stamped tuple.
* :class:`BackendViewStore` — extends the engine's
  :class:`~repro.personalization.view_store.ViewStore`: on an L1 miss it
  consults the backend before scanning the fact table, and publishes
  every build, so one worker's materialization saves every other
  worker's.  Pool mode assumes workers serve a star loaded identically
  in each process (read-only serving); the generation in the key keeps
  a worker that *did* mutate its star from ever reading a peer's entry
  for a different state.
* :class:`BackendWorkloadJournal` — the same API as
  :class:`~repro.reco.journal.WorkloadJournal`, with events and the
  per-tenant generation counters in the backend.  Sequence numbers and
  generations come from the backend's atomic counters, so recommender
  memo keys stay valid across processes and a re-login in any worker
  resumes the user's history.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable, Iterable, Iterator, Mapping

from repro.concurrency import make_lock
from repro.errors import UnauthorizedError
from repro.lru import ThreadSafeLRU
from repro.cluster.backend import StateBackend
from repro.cluster.codecs import (
    CodecError,
    decode_journal_event,
    decode_mutation_event,
    decode_query_payload,
    decode_session_record,
    decode_view_entry,
    encode_journal_event,
    encode_mutation_event,
    encode_query_payload,
    encode_session_record,
    encode_view_entry,
)
from repro.personalization.view_store import ViewStore
from repro.storage.star import MutationLog, StarMutation
from repro.service.sessions import (
    SessionRecord,
    SessionStore,
    _default_token_factory,
    _end_quietly,
)

__all__ = [
    "BackendSessionStore",
    "BackendQueryCache",
    "BackendViewStore",
    "BackendWorkloadJournal",
    "BackendMutationLog",
]

#: Separates key components (tenant/user ids must not contain it).
_SEP = "\x1f"


class BackendSessionStore(SessionStore):
    """Two-tier session store: live L1 records over persisted L2 records.

    The L1 keeps at most ``max_live`` live sessions (LRU, the in-heap
    store's bound); an evicted live session is ended exactly as the
    in-heap store would end it, but its encoded record stays in the
    backend, so the token keeps resolving — the next ``get`` rehydrates
    a fresh live session through ``resolver(datamart, user_id, meta)``
    (the service wires this to a login-equivalent engine call).  With no
    resolver, cold records behave like the in-heap store: the token of
    an evicted session stops resolving.
    """

    def __init__(
        self,
        backend: StateBackend,
        *,
        namespace: str,
        ttl: float = 1800.0,
        max_live: int = 256,
        clock: Callable[[], float] = time.monotonic,
        token_factory: Callable[[], str] | None = None,
        resolver: Callable[[str, str, dict], object] | None = None,
    ) -> None:
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        if max_live < 1:
            raise ValueError("max_live must be >= 1")
        self.backend = backend
        self.namespace = namespace
        self.ttl = ttl
        self.max_live = max_live
        self.resolver = resolver
        self._store = f"{namespace}:sessions"
        self._clock = clock
        self._token_factory = token_factory or _default_token_factory
        self._lock = make_lock("BackendSessionStore._lock")
        #: token -> live record, oldest-access-first (the L1).
        # guarded-by: _lock
        self._live: OrderedDict[str, SessionRecord] = OrderedDict()
        #: token -> last_access value most recently written to the L2
        #: (refreshes are throttled; see _maybe_persist_access).
        # guarded-by: _lock
        self._synced: dict[str, float] = {}
        self.rehydrations = 0
        self.spills = 0

    # -- SessionStore API ---------------------------------------------------------

    def put(
        self,
        session: object,
        *,
        datamart: str,
        user_id: str,
        meta: dict | None = None,
    ) -> SessionRecord:
        now = self._clock()
        ended = self.purge_expired_records(now)
        with self._lock:
            token = self._token_factory()
            while self.backend.get(self._store, token) is not None:
                token = self._token_factory()  # collision paranoia
            record = SessionRecord(
                token=token,
                session=session,
                datamart=datamart,
                user_id=user_id,
                created_at=now,
                last_access=now,
                meta=dict(meta or {}),
            )
            self._persist_locked(record)
            self._admit_locked(record, ended)
        for stale in ended:
            _end_quietly(stale)
        return record

    def get(self, token: str) -> SessionRecord:
        now = self._clock()
        expired: SessionRecord | None = None
        with self._lock:
            record = self._live.get(token)
            if record is not None:
                if now - record.last_access > self.ttl:
                    del self._live[token]
                    self._synced.pop(token, None)
                    self.backend.delete(self._store, token)
                    expired = record
                else:
                    record.last_access = now
                    self._live.move_to_end(token)
                    self._maybe_persist_access_locked(record, now)
                    return record
        if expired is not None:
            _end_quietly(expired)
            raise UnauthorizedError(
                "session expired; POST /api/v1/login again",
                code="session_expired",
                detail={"ttl": self.ttl},
            )
        return self._rehydrate(token, now)

    def remove(self, token: str) -> None:
        with self._lock:
            self._live.pop(token, None)
            self._synced.pop(token, None)
            self.backend.delete(self._store, token)

    def purge_expired(self) -> int:
        ended = self.purge_expired_records(self._clock())
        for record in ended:
            _end_quietly(record)
        return len(ended)

    def __len__(self) -> int:
        return self.backend.count(self._store)

    def __iter__(self) -> Iterator[SessionRecord]:
        """Iterate the *live* records of this process (cold records have
        no session object to hand out)."""
        with self._lock:
            return iter(list(self._live.values()))

    # -- backend-specific API -------------------------------------------------------

    def persist(self, record: SessionRecord) -> None:
        """Re-encode a record after a ``meta`` mutation (the service
        calls this so selection-replay state survives a worker change).
        Call with ``record.lock`` held, like any same-token operation."""
        with self._lock:
            self._persist_locked(record)

    def stats(self) -> dict:
        with self._lock:
            live = len(self._live)
        return {
            "live": live,
            "max_live": self.max_live,
            "persisted": len(self),
            "rehydrations": self.rehydrations,
            "spills": self.spills,
        }

    # -- internals ---------------------------------------------------------------

    def _persist_locked(self, record: SessionRecord) -> None:  # guarded-by-caller: _lock
        self.backend.put(
            self._store,
            record.token,
            encode_session_record(
                token=record.token,
                datamart=record.datamart,
                user_id=record.user_id,
                created_at=record.created_at,
                last_access=record.last_access,
                meta=record.meta,
            ),
        )
        self._synced[record.token] = record.last_access

    def _maybe_persist_access_locked(  # guarded-by-caller: _lock
        self, record: SessionRecord, now: float
    ) -> None:
        """Refresh the persisted idle clock, throttled.

        Writing the L2 on *every* request would make the hot path a
        backend write; refreshing once the persisted clock is 5% of the
        TTL stale keeps the persisted expiry within 1.05x of the live
        one while the steady state stays read-only.
        """
        synced = self._synced.get(record.token, 0.0)
        if now - synced >= self.ttl * 0.05:
            self._persist_locked(record)

    def _admit_locked(  # guarded-by-caller: _lock
        self, record: SessionRecord, ended: list[SessionRecord]
    ) -> None:
        """Insert into the L1, spilling the oldest live sessions.

        A spilled session is *ended* (the in-heap eviction semantic —
        SessionEnd rules fire, the profile session closes) but its
        record stays persisted, so its token rehydrates on next use.
        """
        self._live[record.token] = record
        while len(self._live) > self.max_live:
            _token, spilled = self._live.popitem(last=False)
            self.spills += 1
            ended.append(spilled)

    def _rehydrate(self, token: str, now: float) -> SessionRecord:
        """Resolve a token with no live session in this process."""
        encoded = self.backend.get(self._store, token)
        if encoded is None:
            raise UnauthorizedError(
                "unknown or logged-out session token",
                code="invalid_session",
            )
        try:
            fields = decode_session_record(encoded)
        except CodecError:
            # A poisoned record is unusable; drop it and treat the token
            # as invalid rather than serving an undecodable session.
            self.backend.delete(self._store, token)
            raise UnauthorizedError(
                "unknown or logged-out session token",
                code="invalid_session",
            ) from None
        if now - fields["last_access"] > self.ttl:
            self.backend.delete(self._store, token)
            raise UnauthorizedError(
                "session expired; POST /api/v1/login again",
                code="session_expired",
                detail={"ttl": self.ttl},
            )
        if self.resolver is None:
            raise UnauthorizedError(
                "unknown or logged-out session token",
                code="invalid_session",
            )
        session = self.resolver(
            fields["datamart"], fields["user_id"], fields["meta"]
        )
        ended: list[SessionRecord] = []
        with self._lock:
            existing = self._live.get(token)
            if existing is not None:
                # A concurrent request rehydrated this token first; use
                # its record (two live sessions for one token would race).
                existing.last_access = now
                self._live.move_to_end(token)
                record = existing
            else:
                record = SessionRecord(
                    token=token,
                    session=session,
                    datamart=fields["datamart"],
                    user_id=fields["user_id"],
                    created_at=fields["created_at"],
                    last_access=now,
                    meta=fields["meta"],
                )
                self.rehydrations += 1
                self._persist_locked(record)
                self._admit_locked(record, ended)
        for stale in ended:
            _end_quietly(stale)
        return record

    def purge_expired_records(self, now: float) -> list[SessionRecord]:
        """Drop every expired persisted record, returning the live ones
        (callers end those; cold records have nothing to end)."""
        ended: list[SessionRecord] = []
        for token, encoded in self.backend.items(self._store):
            try:
                fields = decode_session_record(encoded)
            except CodecError:
                self.backend.delete(self._store, token)
                continue
            # The persisted clock lags the live one by at most 5% of the
            # TTL (see _maybe_persist_access_locked); use the live value
            # when this process holds the session.
            with self._lock:
                live = self._live.get(token)
                last_access = (
                    live.last_access if live is not None else fields["last_access"]
                )
                if now - last_access <= self.ttl:
                    continue
                self.backend.delete(self._store, token)
                self._synced.pop(token, None)
                if live is not None:
                    del self._live[token]
                    ended.append(live)
        return ended


class BackendQueryCache:
    """Shared query-result cache: ThreadSafeLRU-compatible facade over
    an L1 LRU of live payloads and the backend's encoded entries.

    Keys are the façade's tuples ``(datamart, query text, selection
    fingerprint, as_of)``; freshness is the *stored payload's*
    per-dimension generation stamps, which the façade revalidates on
    every hit — in-process and across workers alike (a stale entry is
    simply rebuilt and overwritten under the same key).  The L2 is
    pruned by write age.
    """

    def __init__(
        self,
        backend: StateBackend,
        *,
        namespace: str,
        max_size: int = 256,
        l2_max_rows: int | None = None,
    ) -> None:
        self.backend = backend
        self.namespace = namespace
        self._store = f"{namespace}:qcache"
        self._l1 = ThreadSafeLRU(max_size)
        self.l2_max_rows = l2_max_rows or max(4 * max_size, 1024)
        self._lock = make_lock("BackendQueryCache._lock")
        # guarded-by: _lock
        self._hits = 0
        # guarded-by: _lock
        self._misses = 0
        # guarded-by: _lock
        self._puts = 0
        self.l2_hits = 0

    @staticmethod
    def _key_text(generation_key) -> str:
        import json

        return json.dumps(list(generation_key), separators=(",", ":"))

    def get(self, generation_key):
        payload = self._l1.get(generation_key)
        if payload is not None:
            with self._lock:
                self._hits += 1
            return payload
        encoded = self.backend.get(self._store, self._key_text(generation_key))
        if encoded is not None:
            try:
                payload = decode_query_payload(encoded)
            except CodecError:
                self.backend.delete(self._store, self._key_text(generation_key))
            else:
                self._l1.put(generation_key, payload)
                with self._lock:
                    self._hits += 1
                    self.l2_hits += 1
                return payload
        with self._lock:
            self._misses += 1
        return None

    def put(self, generation_key, value, max_size: int | None = None) -> None:
        self._l1.put(generation_key, value, max_size=max_size)
        self.backend.put(
            self._store, self._key_text(generation_key), encode_query_payload(value)
        )
        with self._lock:
            self._puts += 1
            due = self._puts % 32 == 0
        if due:  # prune occasionally, not per write
            self.backend.prune(self._store, self.l2_max_rows)

    def clear(self) -> None:
        self._l1.clear()
        self.backend.clear(self._store)

    def __len__(self) -> int:
        """Live entries, bounded by ``max_size`` (ThreadSafeLRU parity);
        the L2 row count is ``backend.count`` and is bounded separately
        by ``l2_max_rows``."""
        return len(self._l1)

    @property
    def hits(self) -> int:
        with self._lock:
            return self._hits

    @property
    def misses(self) -> int:
        with self._lock:
            return self._misses

    @property
    def _entries(self):
        """The L1's live entries — introspection parity with
        :class:`~repro.lru.ThreadSafeLRU` (tests peek at cached payloads
        through this)."""
        return self._l1._entries


class BackendViewStore(ViewStore):
    """Shared materialized-view store with a cross-worker L2.

    Same single-flight, LRU-bounded, incrementally-maintained store as
    the in-heap parent; on an L1 miss it first tries to *adopt* a peer
    worker's build from the backend (decode beats a fact scan), and
    every local build is published.  The ``(fact, fingerprint,
    generation)`` key carries the whole invalidation protocol, so
    maintenance (patches/invalidations) stays purely local — stale
    generations are unreachable by construction.
    """

    def __init__(
        self,
        backend: StateBackend,
        *,
        namespace: str,
        max_size: int = 128,
        incremental: bool = True,
        l2_max_rows: int | None = None,
    ) -> None:
        super().__init__(max_size, incremental=incremental)
        self.backend = backend
        self.namespace = namespace
        self._store = f"{namespace}:views"
        self.l2_max_rows = l2_max_rows or max(4 * max_size, 512)
        self.l2_hits = 0
        self.l2_publishes = 0

    @staticmethod
    def _key_text(generation_key) -> str:
        import json

        return json.dumps(list(generation_key), separators=(",", ":"))

    def _fetch(self, generation_key, star, schema):  # guarded-by-caller: _lock
        """Adopt a peer worker's build for this exact key, if published."""
        fact, fingerprint, generation = generation_key
        encoded = self.backend.get(self._store, self._key_text(generation_key))
        if encoded is None:
            return None
        try:
            view = decode_view_entry(encoded, star, schema, fingerprint)
        except CodecError:
            self.backend.delete(self._store, self._key_text(generation_key))
            return None
        self.l2_hits += 1
        return view

    def _publish(self, generation_key, view) -> None:  # guarded-by-caller: _lock
        self.backend.put(
            self._store, self._key_text(generation_key), encode_view_entry(view)
        )
        self.l2_publishes += 1
        if self.l2_publishes % 16 == 0:
            self.backend.prune(self._store, self.l2_max_rows)

    def get_or_build(self, star, schema, fact, selection):
        from repro.personalization.view_store import _Entry

        with self._lock:
            generation_key = (fact, selection.fingerprint(), star.generation)
            entry = self._entries.get(generation_key)
            if entry is not None:
                self._entries.move_to_end(generation_key)
                self.hits += 1
                return entry.view
            self.misses += 1
            # Same snapshot-then-rekey discipline as the parent: the key
            # must describe the frozen content actually stored.
            frozen = selection.snapshot()
            generation_key = (fact, frozen.fingerprint(), star.generation)
            view = self._fetch(generation_key, star, schema)
            if view is None:
                view = self._build(star, schema, fact, frozen)
                self.builds += 1
                self._publish(generation_key, view)
            self._entries[generation_key] = _Entry(view)
            self._trim()
            return view

    def invalidate(self) -> None:
        """Drop L1 *and* this namespace's published entries.

        The parent calls this for member/feature/schema mutations; the
        generation bump alone already unreaches the stale keys, but
        clearing keeps the benchmark's off-switch honest (nothing warm
        survives a cache-disabled phase) and reclaims the rows early.
        """
        super().invalidate()
        self.backend.clear(self._store)

    def stats(self) -> dict:
        out = super().stats()
        out["l2_hits"] = self.l2_hits
        out["l2_publishes"] = self.l2_publishes
        out["persisted"] = self.backend.count(self._store)
        return out


class BackendMutationLog(MutationLog):
    """Shared mutation log: the in-heap bounded log plus a backend L2.

    Every appended delta is also published as a versioned mutation
    event keyed by its generation, so a peer worker (or this worker
    after a restart) can fetch exactly the ``(start, end]`` window it
    missed and *replay typed deltas* — member adds, feature adds,
    schema patches, fact appends — instead of reloading full state.
    ``fetch`` is strict, mirroring every other codec consumer: a gap,
    a corrupt row or a version-skewed row is a miss (``None``) and the
    caller falls back to a full rebuild.
    """

    def __init__(
        self,
        backend: StateBackend,
        *,
        namespace: str,
        max_entries: int = 4096,
        l2_max_rows: int | None = None,
    ) -> None:
        super().__init__(max_entries=max_entries)
        self.backend = backend
        self.namespace = namespace
        self._store = f"{namespace}:mutations"
        self.l2_max_rows = l2_max_rows or 4 * max_entries
        self.l2_publishes = 0
        self.l2_misses = 0

    @classmethod
    def adopt(cls, star, backend: StateBackend, *, namespace: str):
        """Swap ``star``'s in-heap log for a backend-backed one, carrying
        the already-retained entries (published so peers see them too)."""
        log = cls(
            backend,
            namespace=namespace,
            max_entries=star.mutation_log.max_entries,
        )
        for mutation in star.mutation_log.entries():
            log.append(mutation)
        star.mutation_log = log
        return log

    def _key_text(self, generation: int) -> str:
        # Zero-padded so backend key order is generation order.
        return f"{generation:012d}"

    def append(self, mutation: StarMutation) -> None:
        super().append(mutation)
        self.backend.put(
            self._store,
            self._key_text(mutation.generation),
            encode_mutation_event(mutation),
        )
        self.l2_publishes += 1
        if self.l2_publishes % 32 == 0:
            self.backend.prune(self._store, self.l2_max_rows)

    def fetch(self, start: int, end: int) -> list[StarMutation] | None:
        """The published window ``start < generation <= end``, decoded.

        Returns ``None`` when any row of the window is absent, corrupt
        or version-skewed — the delta chain is broken and replay would
        silently skip a change, so the caller must rebuild instead.
        Poisoned rows are deleted on the way out.
        """
        out: list[StarMutation] = []
        for generation in range(start + 1, end + 1):
            encoded = self.backend.get(self._store, self._key_text(generation))
            if encoded is None:
                self.l2_misses += 1
                return None
            try:
                out.append(decode_mutation_event(encoded))
            except CodecError:
                self.backend.delete(self._store, self._key_text(generation))
                self.l2_misses += 1
                return None
        return out

    def stats(self) -> dict[str, object]:
        out = super().stats()
        out["l2_publishes"] = self.l2_publishes
        out["l2_misses"] = self.l2_misses
        out["persisted"] = self.backend.count(self._store)
        return out


class BackendWorkloadJournal:
    """Cross-process workload journal with the in-heap journal's API.

    Events live in the backend keyed ``datamart␟user␟<seq>`` (the
    separator is ``\\x1f``; zero-padded sequence numbers make key order
    append order), sequence numbers and per-tenant generations come from
    the backend's atomic counters — so any worker's append bumps the
    tenant generation every other worker's recommender memo keys on,
    and a user's history reads back identically in every process.
    """

    QUERY = "query"
    SELECTION = "selection"
    LAYER = "layer"

    def __init__(
        self,
        backend: StateBackend,
        *,
        namespace: str,
        max_events_per_user: int = 10_000,
    ) -> None:
        if max_events_per_user < 1:
            raise ValueError("max_events_per_user must be >= 1")
        self.backend = backend
        self.namespace = namespace
        self.max_events_per_user = max_events_per_user
        self._store = f"{namespace}:journal"
        self._seq_counter = f"{namespace}:journal:seq"
        self._gen_prefix = f"{namespace}:journal:gen:"

    @staticmethod
    def _user_prefix(datamart: str, user_id: str) -> str:
        return f"{datamart}{_SEP}{user_id}{_SEP}"

    # -- recording ----------------------------------------------------------------

    def record(
        self,
        datamart: str,
        user_id: str,
        kind: str,
        payload: Mapping[str, object] | None = None,
    ):
        from repro.reco.journal import WorkloadEvent

        if kind not in (self.QUERY, self.SELECTION, self.LAYER):
            raise ValueError(f"unknown workload event kind {kind!r}")
        seq = self.backend.incr(self._seq_counter)
        event = WorkloadEvent(
            seq=seq,
            kind=kind,
            datamart=datamart,
            user_id=user_id,
            payload=payload or {},
        )
        prefix = self._user_prefix(datamart, user_id)
        self.backend.put(
            self._store, f"{prefix}{seq:016d}", encode_journal_event(event)
        )
        self.backend.incr(f"{self._gen_prefix}{datamart}")
        # Enforce the per-user bound (oldest dropped first).  Concurrent
        # appenders may briefly overshoot; the bound is a memory cap, not
        # an exactness contract, and every appender re-trims.
        excess = self.backend.count(self._store, prefix) - self.max_events_per_user
        if excess > 0:
            for key in self.backend.keys(self._store, prefix)[:excess]:
                self.backend.delete(self._store, key)
        return event

    def record_query(self, datamart: str, user_id: str, q: str):
        return self.record(datamart, user_id, self.QUERY, {"q": q.strip()})

    def record_selection(
        self,
        datamart: str,
        user_id: str,
        target: str,
        condition: str,
        members: Iterable[tuple[str, str, str]] = (),
    ):
        return self.record(
            datamart,
            user_id,
            self.SELECTION,
            {
                "target": target,
                "condition": condition,
                "members": sorted([d, lv, k] for d, lv, k in members),
            },
        )

    def record_layer(self, datamart: str, user_id: str, layer: str):
        return self.record(datamart, user_id, self.LAYER, {"layer": layer})

    # -- reading ------------------------------------------------------------------

    def generation(self, datamart: str) -> int:
        return self.backend.counter(f"{self._gen_prefix}{datamart}")

    def users(self, datamart: str) -> list[str]:
        prefix = f"{datamart}{_SEP}"
        return sorted(
            {
                key[len(prefix):].split(_SEP, 1)[0]
                for key in self.backend.keys(self._store, prefix)
            }
        )

    def events(self, datamart: str, user_id: str) -> list:
        out = []
        for _key, encoded in self.backend.items(
            self._store, self._user_prefix(datamart, user_id)
        ):
            try:
                out.append(decode_journal_event(encoded))
            except CodecError:
                continue  # lint-ok: swallowed-error - a poisoned event degrades the history, never the request
        return out

    def queries(self, datamart: str, user_id: str) -> list[str]:
        seen: dict[str, None] = {}
        for event in self.events(datamart, user_id):
            if event.kind == self.QUERY:
                seen.setdefault(event.payload["q"], None)
        return list(seen)

    def layers(self, datamart: str, user_id: str) -> set[str]:
        return {
            event.payload["layer"]
            for event in self.events(datamart, user_id)
            if event.kind == self.LAYER
        }

    def member_profile(
        self, datamart: str, user_id: str
    ) -> dict[tuple[str, str], set[str]]:
        profile: dict[tuple[str, str], set[str]] = {}
        for event in self.events(datamart, user_id):
            if event.kind != self.SELECTION:
                continue
            for dimension, level, key in event.payload["members"]:
                profile.setdefault((dimension, level), set()).add(key)
        return profile

    # -- introspection ------------------------------------------------------------

    def stats(self) -> dict[str, dict[str, int]]:
        out: dict[str, dict[str, int]] = {}
        seen_users: set[tuple[str, str]] = set()
        for key in self.backend.keys(self._store):
            datamart, user_id, _seq = key.split(_SEP, 2)
            entry = out.setdefault(
                datamart, {"users": 0, "events": 0, "generation": 0}
            )
            entry["events"] += 1
            if (datamart, user_id) not in seen_users:
                seen_users.add((datamart, user_id))
                entry["users"] += 1
        for name, generation in self.backend.counters(self._gen_prefix).items():
            datamart = name[len(self._gen_prefix):]
            out.setdefault(
                datamart, {"users": 0, "events": 0, "generation": 0}
            )["generation"] = generation
        return out

    def __len__(self) -> int:
        return self.backend.count(self._store)
