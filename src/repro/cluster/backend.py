"""Pluggable state backends for the stateless serving tier.

Every piece of shared portal state — session records, the façade query
cache, view-store entries, workload-journal events — used to live in one
Python heap, making one process the hard ceiling (ROADMAP item 2).  A
:class:`StateBackend` is the storage those stores externalize into: a
namespaced key/value store of *encoded* entries (see
:mod:`repro.cluster.codecs`) plus atomic named counters (journal
sequence numbers, per-tenant generations).

Two implementations, both stdlib-only:

* :class:`InMemoryBackend` — a lock-guarded dict of dicts.  Today's
  behavior with the serialization boundary made explicit: values are
  JSON text, so anything that round-trips through it also round-trips
  through the persistent backend.
* :class:`SqliteBackend` — a ``sqlite3`` file in WAL mode.  One
  connection per process (re-opened after ``fork``, detected by pid),
  every statement under a process lock; cross-process writers are
  serialized by SQLite itself (``busy_timeout`` retries).  This is the
  backend the :mod:`repro.cluster.pool` worker processes share.

Values are *strings* by contract (the codecs' JSON), never live
objects: the in-memory backend enforces it so the default mode cannot
accidentally depend on shared mutable state the persistent mode would
not provide.

Keys sort bytewise; prefix scans (``items``/``keys``/``count`` with
``prefix=``) are how the journal reads one user's history back in
sequence order.  Store and counter names are namespaced by their owners
(``"<namespace>:sessions"``), so any number of independent stores share
one backend file.
"""

from __future__ import annotations

import os
import sqlite3
from abc import ABC, abstractmethod
from collections import OrderedDict

from repro.concurrency import make_lock
from repro.errors import StorageError

__all__ = ["StateBackend", "InMemoryBackend", "SqliteBackend"]

#: Upper bound for prefix range scans: one code point above any
#: character the key alphabet uses (keys are identifiers, separators and
#: zero-padded digits, all far below it).
_PREFIX_HI = "\U0010ffff"


class StateBackend(ABC):
    """Namespaced key/value stores + atomic counters, values as text."""

    #: Implementation tag surfaced by ``stats()`` / the health endpoint.
    kind: str = "abstract"

    # -- key/value ------------------------------------------------------------

    @abstractmethod
    def put(self, store: str, key: str, value: str) -> None:
        """Insert or replace one entry (replacement refreshes its age)."""

    @abstractmethod
    def get(self, store: str, key: str) -> str | None: ...

    @abstractmethod
    def delete(self, store: str, key: str) -> None:
        """Forget one entry (no-op if absent)."""

    @abstractmethod
    def items(self, store: str, prefix: str = "") -> list[tuple[str, str]]:
        """``(key, value)`` pairs under the prefix, sorted by key."""

    def keys(self, store: str, prefix: str = "") -> list[str]:
        return [key for key, _value in self.items(store, prefix)]

    @abstractmethod
    def count(self, store: str, prefix: str = "") -> int: ...

    @abstractmethod
    def clear(self, store: str) -> None: ...

    @abstractmethod
    def prune(self, store: str, max_rows: int) -> int:
        """Drop the oldest-written entries beyond ``max_rows``.

        Bounds unbounded-growth stores (the shared query/view caches,
        whose generation-stamped keys go stale rather than being
        deleted); returns how many entries were dropped.
        """

    # -- counters -------------------------------------------------------------

    @abstractmethod
    def incr(self, name: str, amount: int = 1) -> int:
        """Atomically add to a counter (created at 0), returning the
        new value — the cross-process allocator for journal sequence
        numbers and per-tenant generations."""

    @abstractmethod
    def counter(self, name: str) -> int:
        """Current counter value (0 if never incremented)."""

    @abstractmethod
    def counters(self, prefix: str = "") -> dict[str, int]: ...

    # -- introspection ---------------------------------------------------------

    @abstractmethod
    def store_names(self) -> list[str]: ...

    def stats(self) -> dict:
        """Backend kind + per-store row counts (health endpoint shape)."""
        return {
            "kind": self.kind,
            "stores": {name: self.count(name) for name in self.store_names()},
            "counters": len(self.counters()),
        }

    def close(self) -> None:  # pragma: no cover - trivial default
        pass


class InMemoryBackend(StateBackend):
    """Heap-resident backend: today's single-process behavior, but with
    the encode/decode boundary of the persistent one."""

    kind = "memory"

    def __init__(self) -> None:
        self._lock = make_lock("InMemoryBackend._lock")
        #: store name -> key -> encoded value, insertion-ordered so
        #: ``prune`` can drop oldest-written first like the sqlite rowid.
        # guarded-by: _lock
        self._stores: dict[str, OrderedDict[str, str]] = {}
        # guarded-by: _lock
        self._counters: dict[str, int] = {}

    def put(self, store: str, key: str, value: str) -> None:
        if not isinstance(value, str):
            raise StorageError(
                f"backend values must be encoded text, got {type(value).__name__}"
            )
        with self._lock:
            entries = self._stores.setdefault(store, OrderedDict())
            entries.pop(key, None)  # re-put refreshes the write age
            entries[key] = value

    def get(self, store: str, key: str) -> str | None:
        with self._lock:
            return self._stores.get(store, {}).get(key)

    def delete(self, store: str, key: str) -> None:
        with self._lock:
            self._stores.get(store, {}).pop(key, None)

    def items(self, store: str, prefix: str = "") -> list[tuple[str, str]]:
        with self._lock:
            entries = self._stores.get(store, {})
            return sorted(
                (key, value)
                for key, value in entries.items()
                if key.startswith(prefix)
            )

    def count(self, store: str, prefix: str = "") -> int:
        with self._lock:
            entries = self._stores.get(store, {})
            if not prefix:
                return len(entries)
            return sum(1 for key in entries if key.startswith(prefix))

    def clear(self, store: str) -> None:
        with self._lock:
            self._stores.pop(store, None)

    def prune(self, store: str, max_rows: int) -> int:
        with self._lock:
            entries = self._stores.get(store)
            if entries is None:
                return 0
            dropped = 0
            while len(entries) > max_rows:
                entries.popitem(last=False)
                dropped += 1
            return dropped

    def incr(self, name: str, amount: int = 1) -> int:
        with self._lock:
            value = self._counters.get(name, 0) + amount
            self._counters[name] = value
            return value

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def counters(self, prefix: str = "") -> dict[str, int]:
        with self._lock:
            return {
                name: value
                for name, value in self._counters.items()
                if name.startswith(prefix)
            }

    def store_names(self) -> list[str]:
        with self._lock:
            return sorted(self._stores)


class SqliteBackend(StateBackend):
    """Persistent backend on a ``sqlite3`` file in WAL mode.

    WAL lets the pool's worker processes read concurrently while one
    writes; write-write conflicts block on ``busy_timeout`` instead of
    raising.  The connection is opened lazily and re-opened whenever the
    pid changes: a SQLite connection must never be used across ``fork``,
    and the pre-fork pool inherits this object in every child.
    """

    kind = "sqlite"

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._lock = make_lock("SqliteBackend._lock")
        # guarded-by: _lock
        self._conn: sqlite3.Connection | None = None
        # guarded-by: _lock
        self._pid: int | None = None

    # -- connection lifecycle ---------------------------------------------------

    def _connection(self) -> sqlite3.Connection:  # guarded-by-caller: _lock
        pid = os.getpid()
        if self._conn is None or self._pid != pid:
            # A connection inherited across fork shares file offsets with
            # the parent; never reuse it — open a fresh one for this pid.
            self._conn = sqlite3.connect(
                self.path,
                timeout=30.0,
                isolation_level=None,  # autocommit; statements are atomic
                check_same_thread=False,  # guarded by _lock instead
            )
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute("PRAGMA busy_timeout=30000")
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS kv ("
                " store TEXT NOT NULL,"
                " key TEXT NOT NULL,"
                " value TEXT NOT NULL,"
                " PRIMARY KEY (store, key))"
            )
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS counters ("
                " name TEXT PRIMARY KEY,"
                " value INTEGER NOT NULL)"
            )
            self._pid = pid
        return self._conn

    def close(self) -> None:
        with self._lock:
            if self._conn is not None and self._pid == os.getpid():
                self._conn.close()
            self._conn = None
            self._pid = None

    # -- key/value ------------------------------------------------------------

    def put(self, store: str, key: str, value: str) -> None:
        if not isinstance(value, str):
            raise StorageError(
                f"backend values must be encoded text, got {type(value).__name__}"
            )
        with self._lock:
            # INSERT OR REPLACE re-inserts (fresh rowid), so a re-put
            # refreshes the entry's prune age like the in-memory re-put.
            self._connection().execute(
                "INSERT OR REPLACE INTO kv (store, key, value) VALUES (?, ?, ?)",
                (store, key, value),
            )

    def get(self, store: str, key: str) -> str | None:
        with self._lock:
            row = self._connection().execute(
                "SELECT value FROM kv WHERE store = ? AND key = ?",
                (store, key),
            ).fetchone()
            return row[0] if row is not None else None

    def delete(self, store: str, key: str) -> None:
        with self._lock:
            self._connection().execute(
                "DELETE FROM kv WHERE store = ? AND key = ?", (store, key)
            )

    def items(self, store: str, prefix: str = "") -> list[tuple[str, str]]:
        with self._lock:
            if prefix:
                rows = self._connection().execute(
                    "SELECT key, value FROM kv"
                    " WHERE store = ? AND key >= ? AND key < ?"
                    " ORDER BY key",
                    (store, prefix, prefix + _PREFIX_HI),
                ).fetchall()
            else:
                rows = self._connection().execute(
                    "SELECT key, value FROM kv WHERE store = ? ORDER BY key",
                    (store,),
                ).fetchall()
            return [(key, value) for key, value in rows]

    def count(self, store: str, prefix: str = "") -> int:
        with self._lock:
            if prefix:
                row = self._connection().execute(
                    "SELECT COUNT(*) FROM kv"
                    " WHERE store = ? AND key >= ? AND key < ?",
                    (store, prefix, prefix + _PREFIX_HI),
                ).fetchone()
            else:
                row = self._connection().execute(
                    "SELECT COUNT(*) FROM kv WHERE store = ?", (store,)
                ).fetchone()
            return int(row[0])

    def clear(self, store: str) -> None:
        with self._lock:
            self._connection().execute(
                "DELETE FROM kv WHERE store = ?", (store,)
            )

    def prune(self, store: str, max_rows: int) -> int:
        with self._lock:
            cursor = self._connection().execute(
                "DELETE FROM kv WHERE store = ? AND rowid NOT IN ("
                " SELECT rowid FROM kv WHERE store = ?"
                " ORDER BY rowid DESC LIMIT ?)",
                (store, store, max_rows),
            )
            return cursor.rowcount

    # -- counters -------------------------------------------------------------

    def incr(self, name: str, amount: int = 1) -> int:
        with self._lock:
            row = self._connection().execute(
                "INSERT INTO counters (name, value) VALUES (?, ?)"
                " ON CONFLICT (name) DO UPDATE SET value = value + excluded.value"
                " RETURNING value",
                (name, amount),
            ).fetchone()
            return int(row[0])

    def counter(self, name: str) -> int:
        with self._lock:
            row = self._connection().execute(
                "SELECT value FROM counters WHERE name = ?", (name,)
            ).fetchone()
            return int(row[0]) if row is not None else 0

    def counters(self, prefix: str = "") -> dict[str, int]:
        with self._lock:
            if prefix:
                rows = self._connection().execute(
                    "SELECT name, value FROM counters"
                    " WHERE name >= ? AND name < ?",
                    (prefix, prefix + _PREFIX_HI),
                ).fetchall()
            else:
                rows = self._connection().execute(
                    "SELECT name, value FROM counters"
                ).fetchall()
            return {name: int(value) for name, value in rows}

    def store_names(self) -> list[str]:
        with self._lock:
            rows = self._connection().execute(
                "SELECT DISTINCT store FROM kv ORDER BY store"
            ).fetchall()
            return [row[0] for row in rows]

    def stats(self) -> dict:
        out = super().stats()
        out["path"] = self.path
        return out
