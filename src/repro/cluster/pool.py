"""Pre-fork multi-process serving: ``repro serve --workers N``.

One process was the portal's hard ceiling; the worker pool removes it:

* The **parent** binds the listening socket(s), builds nothing else,
  and forks N workers.  Each worker inherits the *shared* socket — the
  kernel balances accepts across them — plus one private **shard**
  socket whose port the parent records, so affinity-aware clients can
  address a specific worker.
* Each **worker** constructs its own portal through the caller's
  ``app_factory(worker_id)`` (engines and stars are per-process heap
  objects, identical in every worker because the factory is
  deterministic) and serves it with the existing threaded adapter.  All
  *shared* state — sessions, query cache, view entries, journal — lives
  in the :class:`~repro.cluster.backend.StateBackend` the factory wires
  in with fixed namespaces, which is what makes a token issued by one
  worker resolve in another.
* The :class:`ClusterClient` routes each tenant to one worker through
  the :class:`~repro.cluster.sharding.ConsistentHashRing` (tenant →
  shard port), so a tenant's live sessions and L1 cache entries stay
  warm in a single worker; requests for unknown tenants fall back to
  the shared socket.

Fork start method only (the factory closure crosses the fork, never a
pickle); the pool is a POSIX-only serving mode, like ``SO_REUSEPORT``
deployments generally.
"""

from __future__ import annotations

import http.client
import json
import multiprocessing
import os
import socket
import threading
import time

from repro.cluster.sharding import ConsistentHashRing

__all__ = ["WorkerPool", "ClusterClient"]


def _worker_main(worker_id, app_factory, shared_sock, shard_socks):
    """Entry point of one forked worker (runs until terminated)."""
    from repro.web.server import make_server

    os.environ["REPRO_WORKER_ID"] = str(worker_id)
    # Drop the siblings' shard sockets this fork inherited: holding them
    # open would keep a dead sibling's port alive without anyone
    # accepting on it.
    for other_id, sock in enumerate(shard_socks):
        if other_id != worker_id:
            sock.close()
    app = app_factory(worker_id)
    shard_server = make_server(app, sock=shard_socks[worker_id])
    threading.Thread(
        target=shard_server.serve_forever, name="shard-server", daemon=True
    ).start()
    shared_server = make_server(app, sock=shared_sock)
    try:
        shared_server.serve_forever()
    finally:  # pragma: no cover - terminated by the parent
        shared_server.server_close()
        shard_server.server_close()


class WorkerPool:
    """N forked portal workers behind one shared listening socket."""

    def __init__(
        self,
        app_factory,
        *,
        workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._context = multiprocessing.get_context("fork")
        # Bind everything in the parent, pre-fork: the children inherit
        # bound+listening sockets, so there are no port races and port 0
        # (pick a free port) works for every socket.
        self._shared_sock = socket.create_server(
            (host, port), backlog=256, reuse_port=False
        )
        self._shard_socks = [
            socket.create_server((host, 0), backlog=256) for _ in range(workers)
        ]
        self.address = self._shared_sock.getsockname()[:2]
        self.shard_addresses = [
            sock.getsockname()[:2] for sock in self._shard_socks
        ]
        self._processes = [
            self._context.Process(
                target=_worker_main,
                args=(
                    worker_id,
                    app_factory,
                    self._shared_sock,
                    self._shard_socks,
                ),
                daemon=True,
                name=f"portal-worker-{worker_id}",
            )
            for worker_id in range(workers)
        ]
        for process in self._processes:
            process.start()
        # The children own the sockets now; the parent's copies would
        # keep the ports half-open after a stop().
        self._shared_sock.close()
        for sock in self._shard_socks:
            sock.close()

    def wait_ready(self, timeout: float = 30.0) -> None:
        """Block until every worker answers its health route."""
        deadline = time.monotonic() + timeout
        for host, port in self.shard_addresses:
            while True:
                try:
                    conn = http.client.HTTPConnection(host, port, timeout=2.0)
                    conn.request("GET", "/api/v1/health")
                    status = conn.getresponse().status
                    conn.close()
                    if status == 200:
                        break
                except OSError:
                    pass
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        f"worker on port {port} not ready after {timeout}s"
                    )
                time.sleep(0.05)

    def stop(self) -> None:
        for process in self._processes:
            if process.is_alive():
                process.terminate()
        for process in self._processes:
            process.join(timeout=10.0)

    @property
    def alive(self) -> int:
        return sum(1 for process in self._processes if process.is_alive())

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


class ClusterClient:
    """Affinity-aware HTTP client for a :class:`WorkerPool`.

    Routes by tenant: ``datamart -> worker`` through the consistent
    ring, ``worker -> shard port`` from the pool's records.  Tokens
    learned from login responses are remembered so every later request
    carrying the token goes to the same worker (HTTP/1.1 keep-alive
    connections are per ``(thread, worker)``, so the steady state is a
    warm connection to a warm worker).  Any worker would answer any
    request correctly — the shared backend guarantees it — affinity
    only decides *which* L1 gets warm.
    """

    def __init__(self, pool: WorkerPool, timeout: float = 30.0) -> None:
        self.pool = pool
        self.timeout = timeout
        self.ring = ConsistentHashRing(range(pool.workers))
        self._local = threading.local()
        self._lock = threading.Lock()
        #: token -> worker id (the worker that served the login).
        # guarded-by: _lock
        self._token_workers: dict[str, int] = {}

    def worker_for_tenant(self, datamart: str) -> int:
        return self.ring.lookup(datamart)

    def _connection(self, address) -> http.client.HTTPConnection:
        cache = getattr(self._local, "connections", None)
        if cache is None:
            cache = self._local.connections = {}
        conn = cache.get(address)
        if conn is None:
            conn = http.client.HTTPConnection(
                address[0], address[1], timeout=self.timeout
            )
            cache[address] = conn
        return conn

    def _address_for(self, datamart: str | None, token: str | None):
        if datamart is not None:
            return self.pool.shard_addresses[self.worker_for_tenant(datamart)]
        if token is not None:
            with self._lock:
                worker = self._token_workers.get(token)
            if worker is not None:
                return self.pool.shard_addresses[worker]
        return self.pool.address  # kernel-balanced fallback

    def request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        token: str | None = None,
        datamart: str | None = None,
    ) -> tuple[int, dict]:
        """One JSON request, routed by tenant/token affinity."""
        address = self._address_for(datamart, token)
        headers = {}
        payload = None
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if token is not None:
            headers["X-Session"] = token
        conn = self._connection(address)
        try:
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        except (http.client.HTTPException, OSError):
            # A dropped keep-alive connection gets one fresh retry.
            conn.close()
            conn = self._connection(address)
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        data = json.loads(raw) if raw else {}
        if isinstance(data, dict) and "token" in data and datamart is not None:
            with self._lock:
                self._token_workers[data["token"]] = self.worker_for_tenant(
                    datamart
                )
        return response.status, data

    def shard_health(self) -> list[dict]:
        """One ``/api/v1/health`` snapshot per worker, in worker order.

        The round-robin socket would answer from *some* worker; per-shard
        snapshots are what pool-wide accounting (spills, rehydrations,
        cache counters — see :mod:`repro.workload.metrics`) needs.
        """
        snapshots = []
        for address in self.pool.shard_addresses:
            conn = self._connection(address)
            try:
                conn.request("GET", "/api/v1/health")
                response = conn.getresponse()
                raw = response.read()
            except (http.client.HTTPException, OSError):
                conn.close()
                conn = self._connection(address)
                conn.request("GET", "/api/v1/health")
                response = conn.getresponse()
                raw = response.read()
            snapshots.append(json.loads(raw) if raw else {})
        return snapshots

    def close(self) -> None:
        cache = getattr(self._local, "connections", None)
        if cache:
            for conn in cache.values():
                conn.close()
            cache.clear()
