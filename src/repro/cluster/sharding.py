"""Tenant-to-worker affinity: a consistent-hash ring over worker ids.

The :class:`~repro.service.registry.DatamartRegistry` is the sharding
seam — a tenant (datamart) is the unit of state locality, because a
tenant's view-store entries, query-cache entries and live sessions all
key on per-tenant objects.  Routing every request of a tenant to one
worker keeps that worker's L1 caches warm for it; any other routing is
still *correct* (the shared backend answers everywhere — affinity is a
performance property, not a correctness one).

A consistent ring rather than ``hash(name) % workers`` so that changing
the worker count remaps only ``~1/N`` of the tenants — the property
that matters when a pool is resized against a warm state backend.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Hashable, Iterable, Sequence

__all__ = ["ConsistentHashRing"]


def _point(data: str) -> int:
    return int.from_bytes(hashlib.sha1(data.encode("utf-8")).digest()[:8], "big")


class ConsistentHashRing:
    """Maps keys (tenant names) to nodes (worker ids) on a hash ring."""

    def __init__(self, nodes: Iterable[Hashable] = (), replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._points: list[int] = []
        self._owners: dict[int, Hashable] = {}
        for node in nodes:
            self.add(node)

    def add(self, node: Hashable) -> None:
        for replica in range(self.replicas):
            point = _point(f"{node!r}#{replica}")
            if point in self._owners:  # replica collision paranoia
                continue
            bisect.insort(self._points, point)
            self._owners[point] = node

    def remove(self, node: Hashable) -> None:
        stale = [p for p, owner in self._owners.items() if owner == node]
        for point in stale:
            del self._owners[point]
            self._points.remove(point)

    def lookup(self, key: str) -> Hashable:
        """The node owning ``key`` (first replica point clockwise)."""
        if not self._points:
            raise LookupError("the ring has no nodes")
        index = bisect.bisect(self._points, _point(key)) % len(self._points)
        return self._owners[self._points[index]]

    def assignments(self, keys: Sequence[str]) -> dict[Hashable, list[str]]:
        """node -> the keys it owns (for balance introspection)."""
        out: dict[Hashable, list[str]] = {}
        for key in keys:
            out.setdefault(self.lookup(key), []).append(key)
        return out

    def __len__(self) -> int:
        return len(set(self._owners.values()))
