"""The stateless serving tier (ROADMAP item 2).

Externalizes the portal's shared state — session records, the façade
query cache, view-store entries, workload-journal events — behind a
pluggable :class:`~repro.cluster.backend.StateBackend` (in-memory by
default, persistent ``sqlite3`` with ``REPRO_BACKEND=sqlite``) and
serves it from a pre-fork :class:`~repro.cluster.pool.WorkerPool` with
tenant→worker affinity.  Generation stamps are the cross-process
invalidation protocol; the versioned codecs are the wire format.
"""

from repro.cluster.backend import InMemoryBackend, SqliteBackend, StateBackend
from repro.cluster.codecs import CodecError
from repro.cluster.config import (
    backend_kind,
    fresh_namespace,
    make_journal,
    make_query_cache,
    make_session_store,
    make_view_store,
    set_shared_backend,
    shared_backend,
    state_health,
    worker_id,
)
from repro.cluster.migrate import migrate_backend
from repro.cluster.sharding import ConsistentHashRing
from repro.cluster.stores import (
    BackendQueryCache,
    BackendSessionStore,
    BackendViewStore,
    BackendWorkloadJournal,
)

__all__ = [
    "StateBackend",
    "InMemoryBackend",
    "SqliteBackend",
    "CodecError",
    "BackendSessionStore",
    "BackendQueryCache",
    "BackendViewStore",
    "BackendWorkloadJournal",
    "ConsistentHashRing",
    "migrate_backend",
    "backend_kind",
    "shared_backend",
    "set_shared_backend",
    "fresh_namespace",
    "make_session_store",
    "make_query_cache",
    "make_view_store",
    "make_journal",
    "state_health",
    "worker_id",
]
