"""Backend selection for the serving tier (``REPRO_BACKEND``).

The service and engine construct their stores through the ``make_*``
factories here instead of hard-coding the in-heap classes.  With the
default environment nothing changes: every factory returns exactly the
in-heap store.  With ``REPRO_BACKEND=sqlite`` each factory returns the
backend-backed store over one process-wide
:class:`~repro.cluster.backend.SqliteBackend` (``REPRO_STATE`` names the
file; the default is a per-process temp file) — this is how the tier-1
suite runs end-to-end over the persistent tier in CI's ``cluster`` job,
and how the :mod:`~repro.cluster.pool` workers share state.

Each factory call gets a *fresh namespace* by default, so independently
constructed services/engines stay isolated from each other exactly as
independently constructed in-heap stores do (process-wide file, but
disjoint key spaces).  The worker pool passes *fixed* namespaces
instead — sharing is explicit, never accidental.
"""

from __future__ import annotations

import itertools
import os
import tempfile
from typing import Callable

from repro.cluster.backend import InMemoryBackend, SqliteBackend, StateBackend

__all__ = [
    "backend_kind",
    "shared_backend",
    "set_shared_backend",
    "fresh_namespace",
    "make_session_store",
    "make_query_cache",
    "make_view_store",
    "make_journal",
    "state_health",
    "worker_id",
]

_BACKEND_ENV = "REPRO_BACKEND"
_STATE_ENV = "REPRO_STATE"
_WORKER_ENV = "REPRO_WORKER_ID"

_namespace_counter = itertools.count(1)
_shared: StateBackend | None = None
_shared_pid: int | None = None


def backend_kind() -> str:
    """The configured backend kind: ``"memory"`` (default) or ``"sqlite"``."""
    kind = os.environ.get(_BACKEND_ENV, "memory").strip().lower() or "memory"
    if kind not in ("memory", "sqlite"):
        raise ValueError(
            f"unknown {_BACKEND_ENV}={kind!r} (expected 'memory' or 'sqlite')"
        )
    return kind


def _default_state_path() -> str:
    path = os.environ.get(_STATE_ENV)
    if path:
        return path
    # No explicit path: one file per process tree, parked in the temp
    # dir.  Forked workers inherit the parent's resolved path through
    # the shared backend object, so a pool shares state even without
    # REPRO_STATE set.
    return os.path.join(
        tempfile.gettempdir(), f"repro-state-{os.getpid()}.sqlite"
    )


def shared_backend() -> StateBackend:
    """The process-wide backend the env-selected stores share.

    Created on first use; forked children inherit the object (the
    sqlite implementation re-opens its connection per pid).
    """
    global _shared, _shared_pid
    if _shared is None:
        _shared = (
            SqliteBackend(_default_state_path())
            if backend_kind() == "sqlite"
            else InMemoryBackend()
        )
        _shared_pid = os.getpid()
    return _shared


def set_shared_backend(backend: StateBackend | None) -> StateBackend | None:
    """Replace the process-wide backend (tests, pool workers); returns
    the previous one so callers can restore it."""
    global _shared
    previous = _shared
    _shared = backend
    return previous


def fresh_namespace(label: str = "ns") -> str:
    """A namespace no other store constructed in this process uses.

    The pid component keeps namespaces of *different* processes on one
    shared file apart too (a forked worker constructing a default store
    must not collide with its siblings).
    """
    return f"{label}-{os.getpid()}-{next(_namespace_counter)}"


def worker_id() -> int | None:
    """This process's pool worker id (``REPRO_WORKER_ID``), if any."""
    raw = os.environ.get(_WORKER_ENV)
    return int(raw) if raw is not None and raw.isdigit() else None


# -- store factories ----------------------------------------------------------------


def make_session_store(
    ttl: float = 1800.0,
    max_sessions: int = 256,
    resolver: Callable[[str, str, dict], object] | None = None,
    namespace: str | None = None,
    backend: StateBackend | None = None,
):
    """The env-selected session store (see module docstring)."""
    if backend is None and backend_kind() == "memory":
        from repro.service.sessions import InMemorySessionStore

        return InMemorySessionStore(ttl=ttl, max_sessions=max_sessions)
    from repro.cluster.stores import BackendSessionStore

    return BackendSessionStore(
        backend or shared_backend(),
        namespace=namespace or fresh_namespace("svc"),
        ttl=ttl,
        max_live=max_sessions,
        resolver=resolver,
    )


def make_query_cache(
    max_size: int,
    namespace: str | None = None,
    backend: StateBackend | None = None,
):
    """The env-selected query-result cache (ThreadSafeLRU-compatible)."""
    if backend is None and backend_kind() == "memory":
        from repro.lru import ThreadSafeLRU

        return ThreadSafeLRU(max_size)
    from repro.cluster.stores import BackendQueryCache

    return BackendQueryCache(
        backend or shared_backend(),
        namespace=namespace or fresh_namespace("svc"),
        max_size=max_size,
    )


def make_view_store(
    max_size: int,
    incremental: bool = True,
    namespace: str | None = None,
    backend: StateBackend | None = None,
):
    """The env-selected shared materialized-view store."""
    if backend is None and backend_kind() == "memory":
        from repro.personalization.view_store import ViewStore

        return ViewStore(max_size, incremental=incremental)
    from repro.cluster.stores import BackendViewStore

    return BackendViewStore(
        backend or shared_backend(),
        namespace=namespace or fresh_namespace("eng"),
        max_size=max_size,
        incremental=incremental,
    )


def make_journal(
    max_events_per_user: int = 10_000,
    namespace: str | None = None,
    backend: StateBackend | None = None,
):
    """The env-selected workload journal."""
    if backend is None and backend_kind() == "memory":
        from repro.reco.journal import WorkloadJournal

        return WorkloadJournal(max_events_per_user=max_events_per_user)
    from repro.cluster.stores import BackendWorkloadJournal

    return BackendWorkloadJournal(
        backend or shared_backend(),
        namespace=namespace or fresh_namespace("svc"),
        max_events_per_user=max_events_per_user,
    )


def state_health() -> dict:
    """The ``state_backend`` block of ``/api/v1/health``.

    Reports the configured kind without instantiating a backend in the
    default mode (a health probe must not create state files).  The
    check mirrors the ``make_*`` factories exactly: in memory mode they
    return in-heap stores even when an earlier sqlite singleton is
    still alive in the process, so the block says ``memory`` then too.
    """
    if backend_kind() == "memory":
        return {"kind": "memory", "worker_id": worker_id(), "stores": {}}
    stats = shared_backend().stats()
    stats["worker_id"] = worker_id()
    return stats
