"""Backend-to-backend state migration.

A portal that grew up on the default in-memory tier can move to the
persistent tier without losing its live state: every store row and
every counter is copied verbatim (the codecs' JSON is the wire format
of both backends, so migration is a plain copy, not a re-encode).  The
cross-version test drives this end to end — a live portal's sessions,
query cache, view entries and journal survive into a sqlite-backed
service in a "new process" (a freshly constructed service over the
destination backend).
"""

from __future__ import annotations

from repro.cluster.backend import StateBackend

__all__ = ["migrate_backend"]


def migrate_backend(
    source: StateBackend,
    destination: StateBackend,
    *,
    clear_destination_stores: bool = False,
) -> dict[str, int]:
    """Copy every store row and counter from ``source`` to
    ``destination``, returning per-store row counts (plus a
    ``"counters"`` tally).

    Existing destination rows under the same keys are overwritten;
    pass ``clear_destination_stores=True`` to drop each migrated store
    on the destination first (exact-mirror semantics).
    """
    copied: dict[str, int] = {}
    for store in source.store_names():
        if clear_destination_stores:
            destination.clear(store)
        rows = 0
        for key, value in source.items(store):
            destination.put(store, key, value)
            rows += 1
        copied[store] = rows
    counters = source.counters()
    for name, value in counters.items():
        current = destination.counter(name)
        if current != value:
            destination.incr(name, value - current)
    copied["counters"] = len(counters)
    return copied
