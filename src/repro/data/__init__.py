"""Synthetic worlds, the Fig. 2/Fig. 4 fixtures and the paper's rules.

Everything the examples, tests and benchmarks need to run the paper's
scenario end to end: a deterministic geographic world generator, the
sales-analysis MD schema, the star-schema loader, the user model of the
motivating example, the external geo-data source and the Section 5 rule
texts.
"""

from repro.data.catalog import WorldGeoSource
from repro.data.demo_workload import (
    DEMO_NOISE_QUERIES,
    DEMO_QUERY_RECOMMENDED,
    DEMO_QUERY_SHARED,
    DEMO_SELECTION_CONDITION,
    DEMO_SELECTION_TARGET,
    DEMO_USERS,
    build_demo_profiles,
    replay_demo_workload,
)
from repro.data.loader import build_sales_star, load_world
from repro.data.paper_rules import (
    ADD_CITY_SPATIALITY,
    ADD_SPATIALITY,
    ALL_PAPER_RULES,
    FIVE_KM_STORES,
    INT_AIRPORT_CITY,
    TRAIN_AIRPORT_CITY,
)
from repro.data.sales_schema import FACT_NAME, build_sales_schema
from repro.data.user_models import (
    build_motivating_user_model,
    build_regional_manager_profile,
)
from repro.data.world import (
    Airport,
    City,
    Customer,
    Highway,
    State,
    Store,
    TrainLine,
    World,
    WorldConfig,
    generate_world,
)

__all__ = [
    "ADD_CITY_SPATIALITY",
    "ADD_SPATIALITY",
    "ALL_PAPER_RULES",
    "Airport",
    "City",
    "Customer",
    "DEMO_NOISE_QUERIES",
    "DEMO_QUERY_RECOMMENDED",
    "DEMO_QUERY_SHARED",
    "DEMO_SELECTION_CONDITION",
    "DEMO_SELECTION_TARGET",
    "DEMO_USERS",
    "FACT_NAME",
    "FIVE_KM_STORES",
    "Highway",
    "INT_AIRPORT_CITY",
    "State",
    "Store",
    "TRAIN_AIRPORT_CITY",
    "TrainLine",
    "World",
    "WorldConfig",
    "WorldGeoSource",
    "build_demo_profiles",
    "build_motivating_user_model",
    "build_regional_manager_profile",
    "build_sales_schema",
    "build_sales_star",
    "generate_world",
    "load_world",
    "replay_demo_workload",
]
