"""A multi-user demo workload on the paper's sales datamart.

Three regional sales managers exercise the portal so the recommendation
subsystem has journals to mine:

* **Ana** and **Bruno** work on neighbouring stores of the *same* city —
  their 5km instance selections overlap, so their spatial profiles are
  similar.  Ana only runs the family roll-up query; Bruno additionally
  runs the per-city revenue query and fetches the ``Airport`` layer —
  exactly the items the recommender should surface to Ana.
* **Carla** logs in at the store farthest from Ana's and runs unrelated
  "noise" queries; her similarity to Ana is low, so her workload ranks
  below Bruno's in Ana's recommendations.

Used by the examples, the recommendation tests and the EXT4 benchmark
mix; everything rides the public ``/api/v1`` surface so the journals are
populated through the exact production path.
"""

from __future__ import annotations

from repro.data.user_models import build_regional_manager_profile
from repro.data.world import World
from repro.sus.model import UserModelSchema

__all__ = [
    "DEMO_USERS",
    "DEMO_QUERY_SHARED",
    "DEMO_QUERY_RECOMMENDED",
    "DEMO_NOISE_QUERIES",
    "DEMO_SELECTION_TARGET",
    "DEMO_SELECTION_CONDITION",
    "build_demo_profiles",
    "replay_demo_workload",
]

#: user_id -> display name of the demo analysts.
DEMO_USERS = {
    "ana-garcia": "Ana Garcia",
    "bruno-keller": "Bruno Keller",
    "carla-diaz": "Carla Diaz",
}

#: Run by both Ana and Bruno (never recommended: Ana already ran it).
DEMO_QUERY_SHARED = "SELECT SUM(UnitSales) FROM Sales BY Product.Family"
#: Run only by Bruno — the query the recommender should rank first for Ana.
DEMO_QUERY_RECOMMENDED = "SELECT SUM(StoreSales) FROM Sales BY Store.City"
#: Carla's unrelated workload.
DEMO_NOISE_QUERIES = (
    "SELECT SUM(StoreCost) FROM Sales BY Time.Month",
    "SELECT SUM(UnitSales) FROM Sales BY Customer.City",
)
#: The Example 5.3 selection report every analyst files (it also snapshots
#: each session's member selection into the journal).
DEMO_SELECTION_TARGET = "GeoMD.Store.City"
DEMO_SELECTION_CONDITION = (
    "Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry)<20km"
)


def build_demo_profiles(schema: UserModelSchema | None = None) -> dict:
    """The three demo analysts' profiles, keyed by user id."""
    return {
        user_id: build_regional_manager_profile(schema, name=name)
        for user_id, name in DEMO_USERS.items()
    }


def _demo_locations(world: World):
    """(ana, bruno, carla) login locations: two neighbours, one far away."""
    anchor = world.stores[0]
    neighbour = next(
        (s for s in world.stores[1:] if s.city == anchor.city),
        world.stores[1],
    )
    far = max(
        world.stores,
        key=lambda s: anchor.location.distance_to(s.location),
    )
    return anchor.location, neighbour.location, far.location


def replay_demo_workload(app, world: World, datamart: str | None = None) -> dict:
    """Register the demo analysts and replay their workloads through
    ``/api/v1``, returning ``{user_id: live session token}``.

    ``app`` is a :class:`~repro.web.portal.PortalApp` whose target
    datamart hosts the paper's sales star with the Section 5 rules.
    """
    for profile in build_demo_profiles().values():
        app.register_user(profile, datamart)

    ana_loc, bruno_loc, carla_loc = _demo_locations(world)
    tokens: dict[str, str] = {}
    for user_id, location in (
        ("ana-garcia", ana_loc),
        ("bruno-keller", bruno_loc),
        ("carla-diaz", carla_loc),
    ):
        body: dict = {"user": user_id, "location": [location.x, location.y]}
        if datamart is not None:
            body["datamart"] = datamart
        response = app.handle("POST", "/api/v1/login", body)
        assert response.ok, response.body
        tokens[user_id] = response.json()["token"]

    def post(path: str, body: dict, user_id: str) -> None:
        response = app.handle("POST", path, body, token=tokens[user_id])
        assert response.ok, response.body

    # Every analyst files the paper's selection report: it journals each
    # session's member-selection snapshot (the similarity footprint).
    for user_id in tokens:
        post(
            "/api/v1/selection",
            {
                "target": DEMO_SELECTION_TARGET,
                "condition": DEMO_SELECTION_CONDITION,
            },
            user_id,
        )

    post("/api/v1/query", {"q": DEMO_QUERY_SHARED}, "ana-garcia")
    post("/api/v1/query", {"q": DEMO_QUERY_SHARED}, "bruno-keller")
    post("/api/v1/query", {"q": DEMO_QUERY_RECOMMENDED}, "bruno-keller")
    layers = app.handle(
        "GET", "/api/v1/layers/Airport", token=tokens["bruno-keller"]
    )
    assert layers.ok, layers.body
    for noise in DEMO_NOISE_QUERIES:
        post("/api/v1/query", {"q": noise}, "carla-diaz")
    return tokens
