"""The spatial-aware user model of Fig. 4 (motivating example).

Classes: ``DecisionMaker`` («User») with its ``Role`` («Characteristic»),
``Session`` («Session») with a ``Location`` («LocationContext»), and the
``AirportCity`` («SpatialSelection») interest counter — wired by the
association roles the paper's rules navigate (``dm2role``, ``dm2session``,
``s2location``, ``dm2airportcity``).
"""

from __future__ import annotations

from repro.geometry import Point
from repro.sus.model import UserAssociation, UserClass, UserModelSchema, UserProfile
from repro.sus.profile import SUSStereotype
from repro.uml.core import STRING

__all__ = ["build_motivating_user_model", "build_regional_manager_profile"]


def build_motivating_user_model() -> UserModelSchema:
    """The Fig. 4 user model schema."""
    return UserModelSchema(
        "MotivatingUserModel",
        classes=[
            UserClass(
                "DecisionMaker",
                SUSStereotype.USER,
                properties={"name": STRING},
            ),
            UserClass(
                "Role",
                SUSStereotype.CHARACTERISTIC,
                properties={"name": STRING},
            ),
            UserClass("Session", SUSStereotype.SESSION, properties={"id": STRING}),
            UserClass("Location", SUSStereotype.LOCATION_CONTEXT),
            UserClass("AirportCity", SUSStereotype.SPATIAL_SELECTION),
        ],
        associations=[
            UserAssociation("DecisionMaker", "dm2role", "Role"),
            UserAssociation("DecisionMaker", "dm2session", "Session"),
            UserAssociation("Session", "s2location", "Location"),
            UserAssociation("DecisionMaker", "dm2airportcity", "AirportCity"),
        ],
    )


def build_regional_manager_profile(
    schema: UserModelSchema | None = None,
    name: str = "Ana Garcia",
    location: Point | None = None,
) -> UserProfile:
    """A regional sales manager profile, optionally mid-session.

    "It is worth noting that the user role has been previously gathered
    from user requirements and stored in the spatial-aware user model"
    (Example 5.1) — so the role is pre-set here.
    """
    schema = schema or build_motivating_user_model()
    profile = UserProfile(schema, user_id=name.lower().replace(" ", "-"))
    profile.set("DecisionMaker.name", name)
    profile.set("DecisionMaker.dm2role.name", "RegionalSalesManager")
    if location is not None:
        profile.open_session(location)
    return profile
