"""The personalization rules of Section 5, verbatim (modulo two fixes).

Fixes relative to the paper's listings, both recorded in EXPERIMENTS.md:

1. **Missing ``endIf``** — the printed ``TrainAirportCity`` rule closes
   the outer ``If`` with ``endWhen`` only; the grammar (and the paper's
   other rules) require an explicit ``endIf``, which is restored here.
2. **City spatiality** — Examples 5.2/5.3 read ``City`` geometries
   (``GeoMD.Store.City.geometry``) but no printed rule ever spatializes
   the City level (Example 5.1 only covers Store and the Airport layer).
   :data:`ADD_CITY_SPATIALITY` is the one-line schema rule that the
   paper's scenario implies; it is applied before Example 5.3 runs.
"""

from __future__ import annotations

__all__ = [
    "ADD_SPATIALITY",
    "ADD_CITY_SPATIALITY",
    "FIVE_KM_STORES",
    "INT_AIRPORT_CITY",
    "TRAIN_AIRPORT_CITY",
    "ALL_PAPER_RULES",
]

#: Example 5.1 — Spatial Schema Rule.
ADD_SPATIALITY = """\
Rule:addSpatiality When SessionStart do
  If (SUS.DecisionMaker.dm2role.name='RegionalSalesManager') then
    AddLayer('Airport', POINT)
    BecomeSpatial(MD.Sales.Store.geometry, POINT)
  endIf
endWhen
"""

#: The schema rule the paper's scenario implies but never prints (fix 2).
ADD_CITY_SPATIALITY = """\
Rule:addCitySpatiality When SessionStart do
  If (SUS.DecisionMaker.dm2role.name='RegionalSalesManager') then
    BecomeSpatial(MD.Sales.Store.City.geometry, POINT)
  endIf
endWhen
"""

#: Example 5.2 — Spatial Instance Rule.
FIVE_KM_STORES = """\
Rule:5kmStores When SessionStart do
  Foreach s in (GeoMD.Store)
    If (Distance(s.geometry,
        SUS.DecisionMaker.dm2session.s2location.geometry) < 5km) then
      SelectInstance(s)
    endIf
  endForeach
endWhen
"""

#: Example 5.3, first rule — acquisition of the user's spatial interest.
INT_AIRPORT_CITY = """\
Rule:IntAirportCity When
  SpatialSelection(GeoMD.Store.City,
    Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry) < 20km) do
  SetContent(SUS.DecisionMaker.dm2airportcity.degree,
    SUS.DecisionMaker.dm2airportcity.degree + 1)
endWhen
"""

#: Example 5.3, second rule — threshold-triggered train-connection widening
#: (with the restored ``endIf``, fix 1).
TRAIN_AIRPORT_CITY = """\
Rule:TrainAirportCity When SessionStart do
  If (SUS.DecisionMaker.dm2airportcity.degree > threshold) then
    AddLayer('Train', LINE)
    Foreach t, c, a in (GeoMD.Train, GeoMD.Store.City, GeoMD.Airport)
      If (Distance(Intersection(Intersection(t.geometry, c.geometry),
          a.geometry)) < 50km) then
        SelectInstance(c)
      endIf
    endForeach
  endIf
endWhen
"""

#: Rule ids in the paper's presentation order.
ALL_PAPER_RULES: dict[str, str] = {
    "addSpatiality": ADD_SPATIALITY,
    "addCitySpatiality": ADD_CITY_SPATIALITY,
    "5kmStores": FIVE_KM_STORES,
    "IntAirportCity": INT_AIRPORT_CITY,
    "TrainAirportCity": TRAIN_AIRPORT_CITY,
}
