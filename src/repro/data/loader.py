"""Load a synthetic world into the Fig. 2 star schema.

Builds the GeoMD-ready star: dimension members with roll-up links, a
seeded sales fact stream with plausible measure distributions, and (on
demand, through the personalization rules) geographic layers.
"""

from __future__ import annotations

import random
from datetime import date, timedelta

from repro.data.sales_schema import FACT_NAME, build_sales_schema
from repro.data.world import World
from repro.geomd.schema import GeoMDSchema
from repro.storage.star import StarSchema

__all__ = ["build_sales_star", "load_world"]

_FAMILY_NAMES = ["Food", "Drink", "Household", "Electronics", "Clothing", "Garden"]

_MONTH_OF_QUARTER = {1: "Q1", 2: "Q1", 3: "Q1", 4: "Q2", 5: "Q2", 6: "Q2",
                     7: "Q3", 8: "Q3", 9: "Q3", 10: "Q4", 11: "Q4", 12: "Q4"}


def load_world(world: World, star: StarSchema) -> None:
    """Fill an empty star with the world's dimension members and sales."""
    config = world.config
    rng = random.Random(config.seed + 1)

    # -- Store dimension (State <- City <- Store) ---------------------------
    for state in world.states:
        star.add_member("Store", "State", state.name)
    for city in world.cities:
        star.add_member(
            "Store",
            "City",
            city.name,
            {"population": city.population},
            parents={"State": city.state},
        )
    for store in world.stores:
        star.add_member(
            "Store",
            "Store",
            store.name,
            {"address": store.address},
            parents={"City": store.city},
        )

    # -- Customer dimension (City <- Customer) -------------------------------
    for city in world.cities:
        star.add_member("Customer", "City", city.name)
    for customer in world.customers:
        star.add_member(
            "Customer",
            "Customer",
            customer.name,
            {"address": customer.address},
            parents={"City": customer.city},
        )

    # -- Product dimension (Family <- Product) -------------------------------
    families = [
        _FAMILY_NAMES[i % len(_FAMILY_NAMES)]
        + ("" if i < len(_FAMILY_NAMES) else str(i // len(_FAMILY_NAMES) + 1))
        for i in range(config.product_families)
    ]
    for family in families:
        star.add_member("Product", "Family", family)
    product_names = []
    for p in range(config.products):
        family = families[p % len(families)]
        name = f"{family} Product {p + 1}"
        product_names.append(name)
        star.add_member(
            "Product",
            "Product",
            name,
            {"list_price": round(rng.uniform(1.0, 120.0), 2)},
            parents={"Family": family},
        )

    # -- Time dimension (Year <- Quarter <- Month <- Day) ----------------------
    start = date(2009, 1, 1)
    seen_years: set[str] = set()
    seen_quarters: set[str] = set()
    seen_months: set[str] = set()
    day_names: list[str] = []
    for offset in range(config.days):
        day = start + timedelta(days=offset)
        year_name = str(day.year)
        quarter_name = f"{year_name}-{_MONTH_OF_QUARTER[day.month]}"
        month_name = f"{year_name}-{day.month:02d}"
        day_name = day.isoformat()
        if year_name not in seen_years:
            star.add_member("Time", "Year", year_name)
            seen_years.add(year_name)
        if quarter_name not in seen_quarters:
            star.add_member(
                "Time", "Quarter", quarter_name, parents={"Year": year_name}
            )
            seen_quarters.add(quarter_name)
        if month_name not in seen_months:
            star.add_member(
                "Time", "Month", month_name, parents={"Quarter": quarter_name}
            )
            seen_months.add(month_name)
        star.add_member(
            "Time",
            "Day",
            day_name,
            {"date": day_name},
            parents={"Month": month_name},
        )
        day_names.append(day_name)

    # -- Sales facts -------------------------------------------------------------
    store_names = [s.name for s in world.stores]
    customer_names = [c.name for c in world.customers]
    sales_rows: list[tuple[dict[str, str], dict[str, float]]] = []
    for _ in range(config.sales):
        store = rng.choice(store_names)
        customer = rng.choice(customer_names)
        product = rng.choice(product_names)
        day_name = rng.choice(day_names)
        units = rng.randint(1, 10)
        unit_cost = rng.uniform(0.5, 80.0)
        margin = rng.uniform(1.1, 1.6)
        sales_rows.append(
            (
                {
                    "Store": store,
                    "Customer": customer,
                    "Product": product,
                    "Time": day_name,
                },
                {
                    "UnitSales": units,
                    "StoreCost": round(units * unit_cost, 2),
                    "StoreSales": round(units * unit_cost * margin, 2),
                },
            )
        )
    # One batch: one lock acquisition, one dictionary encode pass, one
    # StarMutation for the whole load instead of one per row.
    star.insert_facts(FACT_NAME, sales_rows)


def build_sales_star(world: World) -> StarSchema:
    """Fig. 2 schema (lifted to GeoMD) + the world's instances, bound."""
    schema = GeoMDSchema.from_md(build_sales_schema())
    star = StarSchema(schema)
    load_world(world, star)
    return star
