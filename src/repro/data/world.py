"""Deterministic synthetic geography for the motivating example.

The paper's running example is a company sales SDW that was never
published; this generator builds an equivalent world (see DESIGN.md,
"Substitutions"): a rectangular region divided into state cells, cities
inside states, stores and customers around cities, airports near a subset
of cities, train lines whose vertices pass *exactly* through the city and
airport points they serve (so Example 5.3's "the line contains a city and
airport points" holds by construction), and highways crossing the region.

All coordinates are metres on a local plane; all randomness flows from
one seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.geometry import LineString, Point, Polygon

__all__ = [
    "WorldConfig",
    "City",
    "Store",
    "Customer",
    "Airport",
    "TrainLine",
    "Highway",
    "State",
    "World",
    "generate_world",
]

_CITY_NAMES = [
    "Alicante", "Valencia", "Murcia", "Albacete", "Elche", "Cartagena",
    "Castellon", "Gandia", "Benidorm", "Orihuela", "Alcoy", "Torrevieja",
    "Denia", "Elda", "Lorca", "Cuenca", "Teruel", "Requena", "Xativa",
    "Villena", "Yecla", "Jumilla", "Caravaca", "Totana", "Aguilas",
    "Calpe", "Altea", "Javea", "Crevillente", "Petrer", "Sagunto",
    "Paterna", "Torrent", "Mislata", "Burjassot", "Ontinyent", "Buñol",
    "Utiel", "Segorbe", "Vinaros",
]


@dataclass(frozen=True)
class WorldConfig:
    """Knobs of the synthetic world; defaults give a small demo world."""

    seed: int = 7
    extent_km: float = 500.0
    states_x: int = 3
    states_y: int = 2
    cities_per_state: int = 5
    stores_per_city: int = 3
    customers_per_city: int = 10
    airport_city_ratio: float = 0.4
    train_lines: int = 4
    cities_per_train_line: int = 4
    highways: int = 3
    products: int = 20
    product_families: int = 4
    days: int = 90
    sales: int = 2_000

    def __post_init__(self) -> None:
        if self.extent_km <= 0:
            raise ReproError("extent_km must be positive")
        if self.states_x < 1 or self.states_y < 1:
            raise ReproError("need at least a 1x1 state grid")
        if not 0.0 <= self.airport_city_ratio <= 1.0:
            raise ReproError("airport_city_ratio must be within [0, 1]")
        if self.cities_per_train_line < 2:
            raise ReproError("train lines need at least 2 stops")


@dataclass
class State:
    name: str
    polygon: Polygon


@dataclass
class City:
    name: str
    state: str
    location: Point
    population: int


@dataclass
class Store:
    name: str
    city: str
    location: Point
    address: str


@dataclass
class Customer:
    name: str
    city: str
    location: Point
    address: str


@dataclass
class Airport:
    name: str
    city: str  # nearest served city
    location: Point


@dataclass
class TrainLine:
    name: str
    path: LineString
    #: Stop names in travel order; each is a city or airport name whose
    #: point is an exact vertex of ``path``.
    stops: tuple[str, ...]


@dataclass
class Highway:
    name: str
    path: LineString


@dataclass
class World:
    config: WorldConfig
    states: list[State] = field(default_factory=list)
    cities: list[City] = field(default_factory=list)
    stores: list[Store] = field(default_factory=list)
    customers: list[Customer] = field(default_factory=list)
    airports: list[Airport] = field(default_factory=list)
    train_lines: list[TrainLine] = field(default_factory=list)
    highways: list[Highway] = field(default_factory=list)

    def city(self, name: str) -> City:
        for city in self.cities:
            if city.name == name:
                return city
        raise ReproError(f"world has no city {name!r}")

    def airport(self, name: str) -> Airport:
        for airport in self.airports:
            if airport.name == name:
                return airport
        raise ReproError(f"world has no airport {name!r}")

    def summary(self) -> dict[str, int]:
        return {
            "states": len(self.states),
            "cities": len(self.cities),
            "stores": len(self.stores),
            "customers": len(self.customers),
            "airports": len(self.airports),
            "train_lines": len(self.train_lines),
            "highways": len(self.highways),
        }


def _city_name(index: int) -> str:
    if index < len(_CITY_NAMES):
        return _CITY_NAMES[index]
    return f"{_CITY_NAMES[index % len(_CITY_NAMES)]}{index // len(_CITY_NAMES) + 1}"


def generate_world(config: WorldConfig | None = None) -> World:
    """Build the deterministic world for a configuration."""
    config = config or WorldConfig()
    rng = random.Random(config.seed)
    world = World(config=config)
    extent = config.extent_km * 1000.0
    cell_w = extent / config.states_x
    cell_h = extent / config.states_y

    # States: grid cells.
    for sy in range(config.states_y):
        for sx in range(config.states_x):
            index = sy * config.states_x + sx
            x0, y0 = sx * cell_w, sy * cell_h
            world.states.append(
                State(
                    name=f"State{index + 1}",
                    polygon=Polygon(
                        [
                            (x0, y0),
                            (x0 + cell_w, y0),
                            (x0 + cell_w, y0 + cell_h),
                            (x0, y0 + cell_h),
                        ]
                    ),
                )
            )

    # Cities: random interior points of their state cell (margin 5%).
    city_index = 0
    for state in world.states:
        env = state.polygon.envelope
        margin_x = env.width * 0.05
        margin_y = env.height * 0.05
        for _ in range(config.cities_per_state):
            x = rng.uniform(env.min_x + margin_x, env.max_x - margin_x)
            y = rng.uniform(env.min_y + margin_y, env.max_y - margin_y)
            world.cities.append(
                City(
                    name=_city_name(city_index),
                    state=state.name,
                    location=Point(x, y),
                    population=rng.randint(20_000, 800_000),
                )
            )
            city_index += 1

    # Stores and customers: gaussian spread around their city.
    spread = min(cell_w, cell_h) * 0.04
    for city in world.cities:
        for s in range(config.stores_per_city):
            location = Point(
                city.location.x + rng.gauss(0.0, spread),
                city.location.y + rng.gauss(0.0, spread),
            )
            world.stores.append(
                Store(
                    name=f"{city.name} Store {s + 1}",
                    city=city.name,
                    location=location,
                    address=f"{rng.randint(1, 200)} Main St, {city.name}",
                )
            )
        for c in range(config.customers_per_city):
            location = Point(
                city.location.x + rng.gauss(0.0, spread * 2.0),
                city.location.y + rng.gauss(0.0, spread * 2.0),
            )
            world.customers.append(
                Customer(
                    name=f"Customer {city.name} {c + 1}",
                    city=city.name,
                    location=location,
                    address=f"{rng.randint(1, 900)} Elm St, {city.name}",
                )
            )

    # Airports near a deterministic subset of cities (offset ~8-15 km).
    airport_count = max(1, round(len(world.cities) * config.airport_city_ratio))
    airport_cities = rng.sample(world.cities, airport_count)
    for city in airport_cities:
        angle = rng.uniform(0.0, 2.0 * math.pi)
        radius = rng.uniform(8_000.0, 15_000.0)
        world.airports.append(
            Airport(
                name=f"{city.name} Airport",
                city=city.name,
                location=Point(
                    city.location.x + radius * math.cos(angle),
                    city.location.y + radius * math.sin(angle),
                ),
            )
        )

    # Train lines: each visits one airport and a few cities, with vertices
    # exactly at the stop points (stations).
    for line_index in range(config.train_lines):
        if not world.airports:
            break
        airport = world.airports[line_index % len(world.airports)]
        other_cities = [c for c in world.cities if c.name != airport.city]
        stop_cities = rng.sample(
            other_cities,
            min(config.cities_per_train_line - 1, len(other_cities)),
        )
        # Order stops along distance from the airport for a plausible route.
        stop_cities.sort(
            key=lambda c: airport.location.distance_to(c.location)
        )
        home_city = world.city(airport.city)
        stops: list[tuple[str, Point]] = [
            (home_city.name, home_city.location),
            (airport.name, airport.location),
        ]
        stops.extend((c.name, c.location) for c in stop_cities)
        coords = [p.coord for _name, p in stops]
        deduped = [coords[0]]
        stop_names = [stops[0][0]]
        for (name, _p), coord in zip(stops[1:], coords[1:]):
            if coord != deduped[-1]:
                deduped.append(coord)
                stop_names.append(name)
        if len(deduped) < 2:
            continue
        world.train_lines.append(
            TrainLine(
                name=f"Line {line_index + 1}",
                path=LineString(deduped),
                stops=tuple(stop_names),
            )
        )

    # Highways: west-east / south-north polylines with gentle jitter.
    for h in range(config.highways):
        vertical = h % 2 == 1
        offset = extent * (h + 1) / (config.highways + 1)
        waypoints = []
        steps = 6
        for i in range(steps + 1):
            t = extent * i / steps
            jitter = rng.uniform(-extent * 0.02, extent * 0.02)
            if vertical:
                waypoints.append((offset + jitter, t))
            else:
                waypoints.append((t, offset + jitter))
        world.highways.append(
            Highway(name=f"Highway A{h + 1}", path=LineString(waypoints))
        )

    return world
