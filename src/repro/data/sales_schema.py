"""The MD schema of Fig. 2: the Sales cube of the motivating example.

"A sales department of a company is initially interested in analysing who
bought (Customer), where (Store), what (Product) and when (Time)" — with
the Store dimension expanded to Store → City → State, measures UnitSales,
StoreCost and StoreSales, and the usual descriptive attributes.
"""

from __future__ import annotations

from repro.mdm.model import (
    Attribute,
    AttributeKind,
    Dimension,
    Fact,
    Hierarchy,
    Level,
    MDSchema,
    Measure,
)
from repro.uml.core import DATE, INTEGER, REAL, STRING

__all__ = ["build_sales_schema", "FACT_NAME"]

#: Fact class name used by the paper's rules (``MD.Sales.Store...``).
FACT_NAME = "Sales"


def _store_dimension() -> Dimension:
    store = Level(
        "Store",
        [
            Attribute("name", STRING, AttributeKind.DESCRIPTOR),
            Attribute("address", STRING),
        ],
        key="name",
    )
    city = Level(
        "City",
        [
            Attribute("name", STRING, AttributeKind.DESCRIPTOR),
            Attribute("population", INTEGER),
        ],
        key="name",
    )
    state = Level(
        "State",
        [Attribute("name", STRING, AttributeKind.DESCRIPTOR)],
        key="name",
    )
    return Dimension(
        "Store",
        [store, city, state],
        [Hierarchy("geography", ["Store", "City", "State"])],
        leaf="Store",
    )


def _customer_dimension() -> Dimension:
    customer = Level(
        "Customer",
        [
            Attribute("name", STRING, AttributeKind.DESCRIPTOR),
            Attribute("address", STRING),
        ],
        key="name",
    )
    city = Level(
        "City",
        [Attribute("name", STRING, AttributeKind.DESCRIPTOR)],
        key="name",
    )
    return Dimension(
        "Customer",
        [customer, city],
        [Hierarchy("geography", ["Customer", "City"])],
        leaf="Customer",
    )


def _product_dimension() -> Dimension:
    product = Level(
        "Product",
        [
            Attribute("name", STRING, AttributeKind.DESCRIPTOR),
            Attribute("list_price", REAL),
        ],
        key="name",
    )
    family = Level(
        "Family",
        [Attribute("name", STRING, AttributeKind.DESCRIPTOR)],
        key="name",
    )
    return Dimension(
        "Product",
        [product, family],
        [Hierarchy("taxonomy", ["Product", "Family"])],
        leaf="Product",
    )


def _time_dimension() -> Dimension:
    day = Level(
        "Day",
        [
            Attribute("name", STRING, AttributeKind.DESCRIPTOR),
            Attribute("date", DATE),
        ],
        key="name",
    )
    month = Level(
        "Month", [Attribute("name", STRING, AttributeKind.DESCRIPTOR)], key="name"
    )
    quarter = Level(
        "Quarter", [Attribute("name", STRING, AttributeKind.DESCRIPTOR)], key="name"
    )
    year = Level(
        "Year", [Attribute("name", STRING, AttributeKind.DESCRIPTOR)], key="name"
    )
    return Dimension(
        "Time",
        [day, month, quarter, year],
        [Hierarchy("calendar", ["Day", "Month", "Quarter", "Year"])],
        leaf="Day",
    )


def build_sales_schema() -> MDSchema:
    """The Fig. 2 multidimensional model for sales analysis."""
    fact = Fact(
        FACT_NAME,
        ["Customer", "Store", "Product", "Time"],
        [
            Measure("UnitSales", INTEGER),
            Measure("StoreCost", REAL),
            Measure("StoreSales", REAL),
        ],
    )
    return MDSchema(
        "SalesAnalysis",
        [
            _customer_dimension(),
            _store_dimension(),
            _product_dimension(),
            _time_dimension(),
        ],
        [fact],
    )
