"""The world as an external geographic data source.

Implements the :class:`~repro.prml.evaluator.GeoDataSource` protocol:
``AddLayer``/``BecomeSpatial`` rules pull geometries from here, standing
in for the SDIs / geo-portals / volunteered-geography services the paper
lists as providers of "spatial data external to the domain".
"""

from __future__ import annotations

from repro.data.world import World
from repro.geometry import Geometry

__all__ = ["WorldGeoSource"]


class WorldGeoSource:
    """Expose a :class:`~repro.data.world.World` as layers and geometries."""

    def __init__(self, world: World) -> None:
        self.world = world

    # -- GeoDataSource protocol ------------------------------------------------

    def layer_features(
        self, layer_name: str
    ) -> list[tuple[str, Geometry, dict]] | None:
        if layer_name == "Airport":
            return [
                (airport.name, airport.location, {"city": airport.city})
                for airport in self.world.airports
            ]
        if layer_name == "Train":
            return [
                (line.name, line.path, {"stops": ", ".join(line.stops)})
                for line in self.world.train_lines
            ]
        if layer_name == "Highway":
            return [
                (highway.name, highway.path, {})
                for highway in self.world.highways
            ]
        return None

    def level_geometries(
        self, dimension: str, level: str
    ) -> dict[str, Geometry] | None:
        if dimension == "Store" and level == "Store":
            return {store.name: store.location for store in self.world.stores}
        if dimension == "Store" and level == "City":
            return {city.name: city.location for city in self.world.cities}
        if dimension == "Store" and level == "State":
            return {state.name: state.polygon for state in self.world.states}
        if dimension == "Customer" and level == "Customer":
            return {
                customer.name: customer.location
                for customer in self.world.customers
            }
        if dimension == "Customer" and level == "City":
            return {city.name: city.location for city in self.world.cities}
        return None
