"""The optional numpy backend switch for the columnar engine.

The dictionary-encoded storage and the batch executor are stdlib-only by
default (``array``/``bytes`` masks and C-speed ``map``/``zip`` loops).
When numpy is installed *and* the backend is switched on — either via
the environment (``REPRO_NUMPY=1``) or an explicit per-star override
(:attr:`repro.storage.star.StarSchema.use_numpy`) — the hot kernels
(code translation, mask evaluation, group accumulation, the envelope
range test) run as numpy array operations instead.

This module is deliberately dependency-free so both the geometry layer
and the storage layer can consult it without import cycles.
"""

from __future__ import annotations

import os

__all__ = ["ENV_SWITCH", "numpy_backend"]

ENV_SWITCH = "REPRO_NUMPY"

#: ``None`` until the first import attempt; then the module or ``False``.
_NUMPY: object = None


def _import_numpy():
    global _NUMPY
    if _NUMPY is None:
        try:
            import numpy  # noqa: PLC0415 - deliberate lazy optional import

            _NUMPY = numpy
        except ImportError:  # pragma: no cover - numpy-less environments
            _NUMPY = False
    return _NUMPY or None


def numpy_backend(override: bool | None = None):
    """The numpy module when the backend is enabled, else ``None``.

    ``override`` is the per-star engine flag: ``True``/``False`` force
    the decision; ``None`` defers to the ``REPRO_NUMPY=1`` environment
    switch.  The environment is re-read on every call (it is one dict
    lookup) so tests and benchmark harnesses can flip the backend at
    runtime; the numpy import itself is attempted once and cached.
    """
    if override is False:
        return None
    if override is None and os.environ.get(ENV_SWITCH) != "1":
        return None
    return _import_numpy()
