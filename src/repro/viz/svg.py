"""Minimal SVG document builder (no dependencies).

The drawing substrate for :mod:`repro.viz.map`.  Produces deterministic,
pretty-printed SVG text; coordinates are mapped from world space (metres,
y-up) to screen space (pixels, y-down) by the :class:`Viewport`.
"""

from __future__ import annotations

from xml.sax.saxutils import escape, quoteattr

from repro.errors import ReproError
from repro.geometry import Envelope

__all__ = ["Viewport", "SVGCanvas"]


class Viewport:
    """World-to-screen transform preserving aspect ratio."""

    def __init__(
        self,
        world: Envelope,
        width: int = 800,
        height: int = 600,
        margin: int = 20,
    ) -> None:
        if width <= 2 * margin or height <= 2 * margin:
            raise ReproError("viewport too small for its margin")
        self.world = world
        self.width = width
        self.height = height
        self.margin = margin
        usable_w = width - 2 * margin
        usable_h = height - 2 * margin
        scale_x = usable_w / max(world.width, 1e-9)
        scale_y = usable_h / max(world.height, 1e-9)
        self.scale = min(scale_x, scale_y)

    def to_screen(self, x: float, y: float) -> tuple[float, float]:
        sx = self.margin + (x - self.world.min_x) * self.scale
        sy = self.height - self.margin - (y - self.world.min_y) * self.scale
        return (round(sx, 2), round(sy, 2))

    def length(self, metres: float) -> float:
        """A world length in screen pixels."""
        return round(metres * self.scale, 2)


class SVGCanvas:
    """Accumulates SVG elements and renders the final document."""

    def __init__(self, viewport: Viewport, title: str = "") -> None:
        self.viewport = viewport
        self.title = title
        self._elements: list[str] = []

    # -- primitives -----------------------------------------------------------

    def _attrs(self, attrs: dict[str, object]) -> str:
        return " ".join(
            f"{name.replace('_', '-')}={quoteattr(str(value))}"
            for name, value in attrs.items()
            if value is not None
        )

    def circle(self, x: float, y: float, radius_px: float, **attrs: object) -> None:
        sx, sy = self.viewport.to_screen(x, y)
        self._elements.append(
            f'<circle cx="{sx}" cy="{sy}" r="{radius_px}" {self._attrs(attrs)}/>'
        )

    def world_circle(self, x: float, y: float, radius_m: float, **attrs: object) -> None:
        """A circle whose radius is a world distance (e.g. the 5 km zone)."""
        sx, sy = self.viewport.to_screen(x, y)
        r = self.viewport.length(radius_m)
        self._elements.append(
            f'<circle cx="{sx}" cy="{sy}" r="{r}" {self._attrs(attrs)}/>'
        )

    def polyline(self, coords: list[tuple[float, float]], **attrs: object) -> None:
        points = " ".join(
            f"{sx},{sy}" for sx, sy in (self.viewport.to_screen(x, y) for x, y in coords)
        )
        self._elements.append(
            f'<polyline points="{points}" fill="none" {self._attrs(attrs)}/>'
        )

    def polygon(self, coords: list[tuple[float, float]], **attrs: object) -> None:
        points = " ".join(
            f"{sx},{sy}" for sx, sy in (self.viewport.to_screen(x, y) for x, y in coords)
        )
        self._elements.append(
            f'<polygon points="{points}" {self._attrs(attrs)}/>'
        )

    def text(self, x: float, y: float, content: str, **attrs: object) -> None:
        sx, sy = self.viewport.to_screen(x, y)
        self._elements.append(
            f'<text x="{sx}" y="{sy}" {self._attrs(attrs)}>{escape(content)}</text>'
        )

    def screen_text(self, sx: float, sy: float, content: str, **attrs: object) -> None:
        """Text at fixed screen coordinates (legends, titles)."""
        self._elements.append(
            f'<text x="{sx}" y="{sy}" {self._attrs(attrs)}>{escape(content)}</text>'
        )

    def screen_rect(
        self, sx: float, sy: float, w: float, h: float, **attrs: object
    ) -> None:
        self._elements.append(
            f'<rect x="{sx}" y="{sy}" width="{w}" height="{h}" {self._attrs(attrs)}/>'
        )

    # -- document -----------------------------------------------------------------

    def render(self) -> str:
        head = (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.viewport.width}" height="{self.viewport.height}" '
            f'viewBox="0 0 {self.viewport.width} {self.viewport.height}">'
        )
        parts = [head]
        if self.title:
            parts.append(f"<title>{escape(self.title)}</title>")
        parts.extend(f"  {element}" for element in self._elements)
        parts.append("</svg>")
        return "\n".join(parts)
