"""Render a personalized session as an SVG map.

The paper's stated future work: "we plan to extend this approach
considering visualization aspects of the SDW mainly focus on spatial BI
tools" (Section 6).  This module implements that extension: a spatial-BI
style map of one decision maker's personalized view —

* state cells and city markers for orientation;
* every store, with the *selected* stores highlighted;
* the session location and its 5 km zone (Example 5.2);
* airport features and train lines once the layers exist, with the
  widened cities marked (Example 5.3).
"""

from __future__ import annotations

from repro.data.world import World
from repro.errors import ReproError
from repro.geometry import Envelope, Point
from repro.personalization.engine import PersonalizedSession
from repro.viz.svg import SVGCanvas, Viewport

__all__ = ["render_session_map", "render_world_map"]

_STYLE = {
    "state_fill": "#f7f7f2",
    "state_stroke": "#b0b0a8",
    "city": "#8c8c84",
    "store": "#9dbcd4",
    "store_selected": "#d62728",
    "airport": "#7a43b6",
    "train": "#2ca02c",
    "highway": "#c9c9bf",
    "user": "#ff7f0e",
    "widened_city": "#2ca02c",
}


def _world_envelope(world: World) -> Envelope:
    env = world.states[0].polygon.envelope
    for state in world.states[1:]:
        env = env.union(state.polygon.envelope)
    return env


def render_world_map(world: World, width: int = 800, height: int = 600) -> str:
    """The raw world, before any personalization (for comparison)."""
    viewport = Viewport(_world_envelope(world), width, height)
    canvas = SVGCanvas(viewport, title=f"world seed={world.config.seed}")
    _draw_base(canvas, world)
    _draw_legend(canvas, selected=False, widened=False)
    return canvas.render()


def render_session_map(
    session: PersonalizedSession,
    world: World,
    width: int = 800,
    height: int = 600,
    zone_radius_m: float = 5_000.0,
) -> str:
    """A personalized session as a spatial-BI map."""
    if session.closed:
        raise ReproError("cannot render a closed session")
    viewport = Viewport(_world_envelope(world), width, height)
    canvas = SVGCanvas(
        viewport, title=f"personalized view: {session.profile.user_id}"
    )
    _draw_base(canvas, world)

    selection = session.selection
    selected_stores = selection.members.get(("Store", "Store"), set())
    widened_cities = selection.members.get(("Store", "City"), set())

    # Layers present in the personalized schema.
    schema = session.view().schema
    if "Train" in schema.layers:
        for line in world.train_lines:
            canvas.polyline(
                list(line.path.coord_list),
                stroke=_STYLE["train"],
                stroke_width=2,
                stroke_dasharray="6,3",
            )
    if "Airport" in schema.layers:
        for airport in world.airports:
            canvas.circle(
                airport.location.x,
                airport.location.y,
                5,
                fill=_STYLE["airport"],
            )
            canvas.text(
                airport.location.x,
                airport.location.y,
                "✈",
                font_size=10,
                fill="#ffffff",
                text_anchor="middle",
            )

    # Widened cities (Example 5.3).
    for city in world.cities:
        if city.name in widened_cities:
            canvas.circle(
                city.location.x,
                city.location.y,
                9,
                fill="none",
                stroke=_STYLE["widened_city"],
                stroke_width=2.5,
            )

    # Stores, highlighting the selection.
    for store in world.stores:
        selected = store.name in selected_stores
        canvas.circle(
            store.location.x,
            store.location.y,
            4 if selected else 2.5,
            fill=_STYLE["store_selected"] if selected else _STYLE["store"],
        )

    # The user's location context and 5 km zone.
    profile = session.profile
    if profile.has("DecisionMaker.dm2session.s2location.geometry"):
        location = profile.get("DecisionMaker.dm2session.s2location.geometry")
        assert isinstance(location, Point)
        canvas.world_circle(
            location.x,
            location.y,
            zone_radius_m,
            fill="none",
            stroke=_STYLE["user"],
            stroke_width=1.5,
            stroke_dasharray="4,2",
        )
        canvas.circle(location.x, location.y, 5, fill=_STYLE["user"])

    _draw_legend(canvas, selected=True, widened=bool(widened_cities))
    return canvas.render()


def _draw_base(canvas: SVGCanvas, world: World) -> None:
    for state in world.states:
        canvas.polygon(
            list(state.polygon.shell),
            fill=_STYLE["state_fill"],
            stroke=_STYLE["state_stroke"],
            stroke_width=1,
        )
    for highway in world.highways:
        canvas.polyline(
            list(highway.path.coord_list),
            stroke=_STYLE["highway"],
            stroke_width=1.5,
        )
    for city in world.cities:
        canvas.circle(city.location.x, city.location.y, 3, fill=_STYLE["city"])
        canvas.text(
            city.location.x,
            city.location.y + canvas.viewport.world.height * 0.012,
            city.name,
            font_size=8,
            fill="#5c5c55",
            text_anchor="middle",
        )


def _draw_legend(canvas: SVGCanvas, selected: bool, widened: bool) -> None:
    entries = [("city", _STYLE["city"]), ("store", _STYLE["store"])]
    if selected:
        entries.append(("selected store", _STYLE["store_selected"]))
        entries.append(("user + 5km zone", _STYLE["user"]))
        entries.append(("airport", _STYLE["airport"]))
    if widened:
        entries.append(("train line", _STYLE["train"]))
        entries.append(("widened city", _STYLE["widened_city"]))
    x, y = 10.0, 14.0
    canvas.screen_rect(
        x - 4, y - 12, 130, 14 * len(entries) + 8, fill="#ffffff", opacity=0.85
    )
    for label, color in entries:
        canvas.screen_text(x + 12, y + 3, label, font_size=10, fill="#333")
        canvas._elements.append(
            f'<circle cx="{x + 4}" cy="{y}" r="4" fill="{color}"/>'
        )
        y += 14
