"""Visualization extension (the paper's Section 6 future work).

Dependency-free SVG rendering of personalized sessions: base geography,
store selections, the session location's distance zone, airport/train
layers and Example 5.3's widened cities.
"""

from repro.viz.map import render_session_map, render_world_map
from repro.viz.svg import SVGCanvas, Viewport

__all__ = [
    "SVGCanvas",
    "Viewport",
    "render_session_map",
    "render_world_map",
]
