"""PRML — the Personalization Rules Modeling Language, spatially extended.

The paper's core contribution: an ECA rule language (Fig. 5 metamodel)
with spatial operators (Intersect, Disjoint, Cross, Inside, Equals,
Distance, Intersection), spatial events (SpatialSelection) and spatial
actions (SetContent, SelectInstance, BecomeSpatial, AddLayer).

Pipeline: :func:`parse_rule` → :class:`SemanticAnalyzer` →
:class:`Evaluator` (with :func:`print_rule` giving the canonical text).
"""

from repro.prml.ast import (
    AddLayerAction,
    BecomeSpatialAction,
    BinaryOp,
    BinaryOperator,
    Event,
    Expr,
    ForeachStmt,
    GeomTypeLit,
    IfStmt,
    NotOp,
    NumberLit,
    ParameterRef,
    PathExpr,
    QuantityLit,
    Rule,
    SelectInstanceAction,
    SessionEndEvent,
    SessionStartEvent,
    SetContentAction,
    SpatialCall,
    SpatialFunction,
    SpatialSelectionEvent,
    Stmt,
    StringLit,
    VarPath,
)
from repro.prml.evaluator import (
    BoundFeature,
    BoundMember,
    Evaluator,
    GeoDataSource,
    RuleOutcome,
    RuntimeContext,
    SelectionSet,
)
from repro.prml.lexer import Token, TokenKind, tokenize
from repro.prml.parser import parse_expression, parse_path, parse_rule, parse_rules
from repro.prml.printer import print_event, print_expr, print_rule
from repro.prml.semantics import SemanticAnalyzer, SourceInfo, ValueType, analyze_rule
from repro.prml.stdlib import (
    LineAnchoredCollection,
    prml_distance,
    prml_intersection,
    prml_predicate,
)

__all__ = [
    "AddLayerAction",
    "BecomeSpatialAction",
    "BinaryOp",
    "BinaryOperator",
    "BoundFeature",
    "BoundMember",
    "Evaluator",
    "Event",
    "Expr",
    "ForeachStmt",
    "GeoDataSource",
    "GeomTypeLit",
    "IfStmt",
    "LineAnchoredCollection",
    "NotOp",
    "NumberLit",
    "ParameterRef",
    "PathExpr",
    "QuantityLit",
    "Rule",
    "RuleOutcome",
    "RuntimeContext",
    "SelectInstanceAction",
    "SelectionSet",
    "SemanticAnalyzer",
    "SessionEndEvent",
    "SessionStartEvent",
    "SetContentAction",
    "SourceInfo",
    "SpatialCall",
    "SpatialFunction",
    "SpatialSelectionEvent",
    "Stmt",
    "StringLit",
    "Token",
    "TokenKind",
    "ValueType",
    "VarPath",
    "analyze_rule",
    "parse_expression",
    "parse_path",
    "parse_rule",
    "parse_rules",
    "print_event",
    "print_expr",
    "print_rule",
    "prml_distance",
    "prml_intersection",
    "prml_predicate",
    "tokenize",
]
