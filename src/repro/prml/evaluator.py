"""PRML rule evaluation against a runtime context.

The evaluator executes a rule body (the engine in
:mod:`repro.personalization` decides *when*, per the ECA event part):

* expressions evaluate against the bound models — ``SUS.`` paths read the
  user profile, ``MD.``/``GeoMD.`` paths resolve to member/feature
  collections, loop variables hold bound members/features;
* ``SetContent`` writes through the user profile;
* ``BecomeSpatial``/``AddLayer`` mutate the GeoMD schema (and backfill
  geometry from the bound :class:`GeoDataSource`, standing in for the
  external geographic providers the paper assumes — SDIs, geo-portals);
* ``SelectInstance`` accumulates into a :class:`SelectionSet`, which the
  personalization engine later turns into a fact-row selection.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Protocol

from repro.errors import PRMLRuntimeError, SchemaError, StorageError, UserModelError
from repro.geomd.schema import GEOMETRY_ATTRIBUTE, GeoMDSchema
from repro.geometry import Geometry, Metric, PlanarMetric
from repro.mdm.model import MDSchema, ResolvedLevel
from repro.prml.ast import (
    AddLayerAction,
    BecomeSpatialAction,
    BinaryOp,
    BinaryOperator,
    Expr,
    ForeachStmt,
    GeomTypeLit,
    IfStmt,
    NotOp,
    NumberLit,
    ParameterRef,
    PathExpr,
    QuantityLit,
    Rule,
    SelectInstanceAction,
    SetContentAction,
    SpatialCall,
    SpatialFunction,
    Stmt,
    StringLit,
    VarPath,
)
from repro.prml.stdlib import (
    LineAnchoredCollection,
    prml_distance,
    prml_intersection,
    prml_predicate,
)
from repro.storage.star import StarSchema
from repro.storage.tables import Feature, Member
from repro.sus.model import UserProfile

__all__ = [
    "BoundMember",
    "BoundFeature",
    "SelectionSet",
    "GeoDataSource",
    "RuntimeContext",
    "RuleOutcome",
    "Evaluator",
]


@dataclass(frozen=True)
class BoundMember:
    """A dimension member bound to a loop variable (carries its origin)."""

    member: Member
    dimension: str

    @property
    def key(self) -> str:
        return self.member.key


@dataclass(frozen=True)
class BoundFeature:
    """A layer feature bound to a loop variable."""

    feature: Feature
    layer: str

    @property
    def name(self) -> str:
        return self.feature.name


class SelectionSet:
    """Instances kept by ``SelectInstance`` actions.

    Selections are *filters-in*: if a dimension has any selected members
    (at any of its levels), only facts rolling up into them survive;
    dimensions with no selections are unrestricted.  All selections within
    one dimension are **additive** (union) — Example 5.3 explicitly *adds*
    train-connected cities on top of Example 5.2's nearby stores ("then we
    also add the cities not near enough but with a good train
    connection").  Distinct dimensions still compose as intersection, each
    restricting its own axis.

    Each set carries a process-unique :attr:`uid` and a monotonic
    :attr:`generation` bumped whenever the selection actually grows.
    ``(uid, generation)`` is a *session-private* cache identity (used e.g.
    by the recommendation memo); :meth:`fingerprint` is the *content*
    identity — two sessions whose selections hold the same member/feature
    triples produce the same fingerprint, which is what lets the shared
    view store and the service query cache serve one materialization to
    any number of sessions with identical selections.
    """

    _uid_source = itertools.count(1)

    def __init__(self) -> None:
        self.members: dict[tuple[str, str], set[str]] = {}
        self.features: dict[str, set[str]] = {}
        self.uid = next(SelectionSet._uid_source)
        self.generation = 0
        # (generation, digest) — recomputed only after the selection grows.
        self._fingerprint: tuple[int, str] | None = None

    def add_member(self, dimension: str, level: str, key: str) -> None:
        keys = self.members.setdefault((dimension, level), set())
        if key not in keys:
            keys.add(key)
            self.generation += 1

    def add_feature(self, layer: str, name: str) -> None:
        names = self.features.setdefault(layer, set())
        if name not in names:
            names.add(name)
            self.generation += 1

    @property
    def is_empty(self) -> bool:
        return not self.members and not self.features

    def member_count(self) -> int:
        return sum(len(keys) for keys in self.members.values())

    def member_triples(self) -> list[tuple[str, str, str]]:
        """The selection flattened to ``(dimension, level, key)`` triples
        (the footprint shape the workload journal and recommender use)."""
        return [
            (dimension, level, key)
            for (dimension, level), keys in self.members.items()
            for key in keys
        ]

    def fingerprint(self) -> str:
        """Canonical, content-based identity of this selection.

        A digest over the sorted member triples and feature pairs —
        deliberately *not* the per-session :attr:`uid` — so two sessions
        that selected the same instances (however they got there) key the
        same shared materialized view / query-cache entry.  Cached per
        :attr:`generation`; the steady-state request path pays one dict
        compare, not a re-hash.
        """
        cached = self._fingerprint
        if cached is not None and cached[0] == self.generation:
            return cached[1]
        payload = repr(
            (
                sorted(self.member_triples()),
                sorted(
                    (layer, name)
                    for layer, names in self.features.items()
                    for name in names
                ),
            )
        )
        digest = hashlib.sha1(payload.encode("utf-8")).hexdigest()
        self._fingerprint = (self.generation, digest)
        return digest

    def snapshot(self) -> "SelectionSet":
        """A deep-copied, content-equal selection.

        Shared materialized views must not alias a live session's
        selection: the session may keep growing it (acquisition rules)
        while other sessions still hold the shared view.  The snapshot has
        its own uid — it is a warehouse object, not session state.
        """
        clone = SelectionSet()
        clone.members = {key: set(keys) for key, keys in self.members.items()}
        clone.features = {
            layer: set(names) for layer, names in self.features.items()
        }
        clone.generation = self.generation
        clone._fingerprint = self._fingerprint
        return clone

    @staticmethod
    def _member_exists(table, level: str, key: str) -> bool:
        try:
            table.member(level, key)
        except StorageError:
            return False
        return True

    def allowed_leaf_keys(self, star: StarSchema) -> dict[str, set[str]]:
        """Per-dimension allowed leaf keys implied by member selections.

        Selections can outlive the data they named (snapshot reloads,
        journal replays, rules selecting against since-mutated members):
        stale entries — a dimension, level or member key no longer in the
        star — are *dropped* instead of raising on the request path,
        mirroring the journal-profile degradation in
        :func:`repro.reco.similarity.build_spatial_profile`.  A selection
        whose every key for some dimension went stale leaves that
        dimension unrestricted again; keys that still exist keep
        restricting it.
        """
        out: dict[str, set[str]] = {}
        for (dimension, level), keys in self.members.items():
            try:
                table = star.dimension_table(dimension)
            except StorageError:  # lint-ok: swallowed-error - documented stale-key degradation
                continue  # dimension no longer in the star
            live = {
                key for key in keys if self._member_exists(table, level, key)
            }
            if not live:
                continue  # every selected key went stale
            if level == table.dimension.leaf:
                leaf_keys = live
            else:
                try:
                    leaf_keys = star.leaf_keys_rolled_to(
                        dimension, level, live
                    )
                except (SchemaError, StorageError):  # lint-ok: swallowed-error - documented stale-key degradation
                    continue  # level fell off every hierarchy path
            out.setdefault(dimension, set()).update(leaf_keys)
        return out

    def relevant_leaf_keys(self, star: StarSchema, fact_table) -> dict[str, set[str]]:
        """Allowed leaf keys projected onto one fact's dimensions.

        This is *the* row filter of a personalized view: a fact row
        survives iff every relevant dimension's key is in its set (see
        :meth:`row_matches`).  Full builds (:meth:`fact_row_ids`) and the
        view store's incremental patches share this projection so the two
        paths can never diverge.
        """
        return {
            dim: keys
            for dim, keys in self.allowed_leaf_keys(star).items()
            if dim in fact_table.fact.dimension_names
        }

    @staticmethod
    def row_matches(
        coordinates: dict[str, str], relevant: dict[str, set[str]]
    ) -> bool:
        """Whether one fact row's keys survive the projected selection."""
        return all(
            coordinates[dim] in keys for dim, keys in relevant.items()
        )

    def fact_row_ids(self, star: StarSchema, fact: str | None = None) -> list[int]:
        """Fact rows surviving the member selections (ascending row ids).

        With :attr:`StarSchema.use_indexes` on, each dimension's allowed
        keys are resolved through the fact table's posting lists and the
        per-dimension row sets intersected — no full-column scan.
        """
        fact_table = star.fact_table(fact)
        relevant = self.relevant_leaf_keys(star, fact_table)
        if not relevant:
            return list(fact_table.row_ids())
        if star.use_indexes:
            surviving: set[int] | None = None
            for dim, keys in relevant.items():
                postings = fact_table.key_postings(dim)
                rows: set[int] = set()
                for key in keys:
                    rows.update(postings.get(key, ()))
                surviving = rows if surviving is None else surviving & rows
                if not surviving:
                    return []
            assert surviving is not None
            return sorted(surviving)
        return fact_table.rows_matching(relevant)


class GeoDataSource(Protocol):
    """External geographic data provider (SDI / geo-portal stand-in).

    ``AddLayer``/``BecomeSpatial`` pull geometry from here — the paper's
    layers describe data "external to the domain" that the warehouse does
    not itself store.
    """

    def layer_features(
        self, layer_name: str
    ) -> list[tuple[str, Geometry, dict]] | None:
        """Features for a layer, or None when the source has none."""
        ...  # pragma: no cover - protocol

    def level_geometries(
        self, dimension: str, level: str
    ) -> dict[str, Geometry] | None:
        """member key -> geometry for a level, or None."""
        ...  # pragma: no cover - protocol


@dataclass
class RuntimeContext:
    """Everything a rule execution can read or mutate."""

    user_profile: UserProfile
    md_schema: MDSchema
    geomd_schema: GeoMDSchema
    star: StarSchema
    parameters: dict[str, object] = field(default_factory=dict)
    metric: Metric = field(default_factory=PlanarMetric)
    snap_tolerance: float = 1.0
    geo_source: GeoDataSource | None = None
    selection: SelectionSet = field(default_factory=SelectionSet)


@dataclass
class RuleOutcome:
    """What one rule execution did (for logs, tests and benchmarks).

    ``error`` is set when the rule was skipped because its context data was
    unavailable (e.g. a location-dependent rule in a session without a
    location): the ECA condition could not be fulfilled, so no action fired.
    """

    rule_name: str
    fired_actions: int = 0
    selected_instances: int = 0
    layers_added: list[str] = field(default_factory=list)
    levels_spatialized: list[str] = field(default_factory=list)
    contents_set: int = 0
    iterations: int = 0
    error: str | None = None


class Evaluator:
    """Executes rule bodies against a :class:`RuntimeContext`."""

    def __init__(self, context: RuntimeContext) -> None:
        self.context = context

    # -- rule execution --------------------------------------------------------

    def execute(self, rule: Rule) -> RuleOutcome:
        outcome = RuleOutcome(rule_name=rule.name)
        env: dict[str, object] = {}
        for stmt in rule.body:
            self._exec_stmt(stmt, env, outcome)
        return outcome

    # -- statements --------------------------------------------------------------

    def _exec_stmt(
        self, stmt: Stmt, env: dict[str, object], outcome: RuleOutcome
    ) -> None:
        if isinstance(stmt, IfStmt):
            condition = self._eval(stmt.condition, env)
            if not isinstance(condition, bool):
                raise PRMLRuntimeError(
                    f"If condition evaluated to {type(condition).__name__}, "
                    f"expected a boolean"
                )
            branch = stmt.then_body if condition else stmt.else_body
            for inner in branch:
                self._exec_stmt(inner, env, outcome)
            return
        if isinstance(stmt, ForeachStmt):
            collections = [
                self._eval_collection(source) for source in stmt.sources
            ]
            for combo in itertools.product(*collections):
                outcome.iterations += 1
                inner_env = dict(env)
                for variable, value in zip(stmt.variables, combo):
                    inner_env[variable] = value
                for inner in stmt.body:
                    self._exec_stmt(inner, inner_env, outcome)
            return
        if isinstance(stmt, SetContentAction):
            value = self._eval(stmt.value, env)
            if stmt.target.root != "SUS":
                raise PRMLRuntimeError(
                    f"SetContent target {stmt.target} must be a SUS path"
                )
            path = ".".join(stmt.target.steps)
            try:
                self.context.user_profile.set(path, value)
            except UserModelError as exc:
                raise PRMLRuntimeError(str(exc)) from exc
            outcome.contents_set += 1
            outcome.fired_actions += 1
            return
        if isinstance(stmt, SelectInstanceAction):
            target = self._eval(stmt.instance, env)
            if isinstance(target, BoundMember):
                self.context.selection.add_member(
                    target.dimension, target.member.level, target.member.key
                )
            elif isinstance(target, BoundFeature):
                self.context.selection.add_feature(target.layer, target.name)
            else:
                raise PRMLRuntimeError(
                    f"SelectInstance expects a member or feature, got "
                    f"{type(target).__name__}"
                )
            outcome.selected_instances += 1
            outcome.fired_actions += 1
            return
        if isinstance(stmt, BecomeSpatialAction):
            self._exec_become_spatial(stmt, outcome)
            return
        if isinstance(stmt, AddLayerAction):
            self._exec_add_layer(stmt, outcome)
            return
        raise PRMLRuntimeError(f"cannot execute {type(stmt).__name__}")

    def _exec_become_spatial(
        self, stmt: BecomeSpatialAction, outcome: RuleOutcome
    ) -> None:
        steps = list(stmt.element.steps)
        if steps and steps[-1] == GEOMETRY_ATTRIBUTE:
            steps = steps[:-1]
        schema = self.context.geomd_schema
        try:
            resolved = schema.resolve(steps)
        except SchemaError as exc:
            raise PRMLRuntimeError(
                f"BecomeSpatial target {stmt.element}: {exc}"
            ) from exc
        if not isinstance(resolved, ResolvedLevel):
            raise PRMLRuntimeError(
                f"BecomeSpatial target {stmt.element} must name a level"
            )
        level_ref = f"{resolved.dimension.name}.{resolved.level.name}"
        newly_spatial = level_ref not in schema.spatial_levels
        schema.become_spatial(level_ref, stmt.geometric_type.value)
        if newly_spatial:
            self.context.star.note_schema_change(
                op="become_spatial",
                payload={
                    "level": level_ref,
                    "geometric_type": stmt.geometric_type.value.name,
                },
            )
        outcome.levels_spatialized.append(level_ref)
        outcome.fired_actions += 1
        # Backfill member geometries from the external source.
        source = self.context.geo_source
        if source is None:
            return
        geometries = source.level_geometries(
            resolved.dimension.name, resolved.level.name
        )
        if geometries is None:
            return
        table = self.context.star.dimension_table(resolved.dimension.name)
        declared = stmt.geometric_type.value
        backfilled = False
        for member in table.members(resolved.level.name):
            geometry = geometries.get(member.key)
            if geometry is None:
                continue
            if not declared.accepts(geometry):
                raise PRMLRuntimeError(
                    f"external geometry for {member.key!r} is a "
                    f"{geometry.geom_type}, but {level_ref} was declared "
                    f"{declared.name}"
                )
            existing = member.attributes.get(GEOMETRY_ATTRIBUTE)
            if existing is not geometry and existing != geometry:
                member.attributes[GEOMETRY_ATTRIBUTE] = geometry
                backfilled = True
        # The backfill mutates members in place, bypassing the star's
        # insert hooks — invalidate its member-derived caches explicitly
        # (but not when an idempotent re-run wrote nothing new, so one
        # session's SessionStart cannot evict every other session's
        # caches).
        if backfilled:
            # An in-place update, not an add: roll-up structure is
            # untouched but geometry attributes changed, so this takes
            # the full per-dimension invalidation path (and forces an
            # eager history checkpoint — it cannot be replayed).
            self.context.star.note_member_change(
                resolved.dimension.name, op="update"
            )

    def _exec_add_layer(self, stmt: AddLayerAction, outcome: RuleOutcome) -> None:
        name = stmt.layer_name.value
        self.context.geomd_schema.add_layer(name, stmt.geometric_type.value)
        table = self.context.star.ensure_layer_table(name)
        outcome.layers_added.append(name)
        outcome.fired_actions += 1
        source = self.context.geo_source
        if source is None or len(table):
            return
        features = source.layer_features(name)
        if features is None:
            return
        for feature_name, geometry, attributes in features:
            table.add_feature(feature_name, geometry, attributes)
        if features:
            # One bulk mutation for the whole load, carrying the feature
            # tuples so the history can replay the load for as-of reads.
            self.context.star.note_feature_change(
                name,
                op="bulk",
                payload={
                    "features": [
                        (feature_name, geometry, dict(attributes or {}))
                        for feature_name, geometry, attributes in features
                    ]
                },
            )

    # -- expression evaluation ------------------------------------------------------

    def _eval(self, expr: Expr, env: dict[str, object]) -> object:
        if isinstance(expr, NumberLit):
            return expr.value
        if isinstance(expr, QuantityLit):
            return expr.metres
        if isinstance(expr, StringLit):
            return expr.value
        if isinstance(expr, GeomTypeLit):
            return expr.value
        if isinstance(expr, ParameterRef):
            if expr.name not in self.context.parameters:
                raise PRMLRuntimeError(
                    f"undefined parameter {expr.name!r}; defined: "
                    f"{sorted(self.context.parameters)}"
                )
            return self.context.parameters[expr.name]
        if isinstance(expr, VarPath):
            return self._eval_var_path(expr, env)
        if isinstance(expr, PathExpr):
            return self._eval_model_path(expr)
        if isinstance(expr, NotOp):
            operand = self._eval(expr.operand, env)
            if not isinstance(operand, bool):
                raise PRMLRuntimeError("not applied to a non-boolean")
            return not operand
        if isinstance(expr, SpatialCall):
            return self._eval_spatial_call(expr, env)
        if isinstance(expr, BinaryOp):
            return self._eval_binary(expr, env)
        raise PRMLRuntimeError(f"cannot evaluate {type(expr).__name__}")

    def _eval_var_path(self, expr: VarPath, env: dict[str, object]) -> object:
        if expr.var not in env:
            raise PRMLRuntimeError(f"unbound variable {expr.var!r}")
        value = env[expr.var]
        if not expr.steps:
            return value
        if len(expr.steps) > 1:
            raise PRMLRuntimeError(
                f"variable path {expr} navigates more than one step"
            )
        step = expr.steps[0]
        if isinstance(value, BoundMember):
            if step == GEOMETRY_ATTRIBUTE:
                geometry = value.member.geometry
                if geometry is None:
                    raise PRMLRuntimeError(
                        f"member {value.member.key!r} has no geometry; did "
                        f"a BecomeSpatial rule run and backfill it?"
                    )
                return geometry
            return value.member.get(step)
        if isinstance(value, BoundFeature):
            if step == GEOMETRY_ATTRIBUTE:
                return value.feature.geometry
            if step == "name":
                return value.feature.name
            if step in value.feature.attributes:
                return value.feature.attributes[step]
            raise PRMLRuntimeError(
                f"feature {value.feature.name!r} has no attribute {step!r}"
            )
        raise PRMLRuntimeError(
            f"cannot navigate {step!r} from {type(value).__name__}"
        )

    def _eval_model_path(self, path: PathExpr) -> object:
        if path.root == "SUS":
            try:
                return self.context.user_profile.get(".".join(path.steps))
            except UserModelError as exc:
                raise PRMLRuntimeError(str(exc)) from exc
        return self._eval_collection(path)

    def _eval_collection(self, path: PathExpr) -> list[object]:
        """Resolve an MD/GeoMD path to its member/feature collection."""
        if path.root == "SUS":
            raise PRMLRuntimeError(f"{path} is not an iterable collection")
        schema: MDSchema = (
            self.context.geomd_schema if path.root == "GeoMD" else self.context.md_schema
        )
        steps = list(path.steps)
        if (
            path.root == "GeoMD"
            and len(steps) == 1
            and isinstance(schema, GeoMDSchema)
            and steps[0] in schema.layers
        ):
            table = self.context.star.layer_table(steps[0])
            return [BoundFeature(f, steps[0]) for f in table.features()]
        try:
            resolved = schema.resolve(steps)
        except SchemaError as exc:
            raise PRMLRuntimeError(str(exc)) from exc
        if not isinstance(resolved, ResolvedLevel):
            raise PRMLRuntimeError(
                f"{path} resolves to an attribute, not an iterable level"
            )
        table = self.context.star.dimension_table(resolved.dimension.name)
        return [
            BoundMember(m, resolved.dimension.name)
            for m in table.members(resolved.level.name)
        ]

    def _coerce_geometry(self, value: object, origin: Expr) -> object:
        if isinstance(value, (Geometry, LineAnchoredCollection)):
            return value
        if isinstance(value, BoundMember):
            geometry = value.member.geometry
            if geometry is None:
                raise PRMLRuntimeError(
                    f"member {value.member.key!r} (from {origin}) has no "
                    f"geometry"
                )
            return geometry
        if isinstance(value, BoundFeature):
            return value.feature.geometry
        raise PRMLRuntimeError(
            f"{origin} evaluated to {type(value).__name__}, expected a "
            f"geometry"
        )

    def _eval_spatial_call(self, call: SpatialCall, env: dict[str, object]) -> object:
        values = [
            self._coerce_geometry(self._eval(arg, env), arg) for arg in call.args
        ]
        if call.function is SpatialFunction.DISTANCE:
            return prml_distance(values, self.context.metric)
        if call.function is SpatialFunction.INTERSECTION:
            return prml_intersection(
                values[0], values[1], self.context.snap_tolerance
            )
        return prml_predicate(call.function, values[0], values[1])

    def _eval_binary(self, expr: BinaryOp, env: dict[str, object]) -> object:
        op = expr.op
        if op is BinaryOperator.AND:
            left = self._eval(expr.left, env)
            self._require_bool(left, expr.left)
            if not left:
                return False
            right = self._eval(expr.right, env)
            self._require_bool(right, expr.right)
            return bool(right)
        if op is BinaryOperator.OR:
            left = self._eval(expr.left, env)
            self._require_bool(left, expr.left)
            if left:
                return True
            right = self._eval(expr.right, env)
            self._require_bool(right, expr.right)
            return bool(right)
        left = self._eval(expr.left, env)
        right = self._eval(expr.right, env)
        if op.is_arithmetic:
            if not isinstance(left, (int, float)) or not isinstance(
                right, (int, float)
            ):
                raise PRMLRuntimeError(
                    f"arithmetic {op.value} on {type(left).__name__} and "
                    f"{type(right).__name__}"
                )
            if op is BinaryOperator.ADD:
                return left + right
            if op is BinaryOperator.SUB:
                return left - right
            if op is BinaryOperator.MUL:
                return left * right
            if right == 0:
                raise PRMLRuntimeError("division by zero")
            return left / right
        # Comparisons.
        if op in (BinaryOperator.EQ, BinaryOperator.NE):
            result = left == right
            return result if op is BinaryOperator.EQ else not result
        if not isinstance(left, (int, float)) or not isinstance(right, (int, float)):
            raise PRMLRuntimeError(
                f"ordering comparison {op.value} on {type(left).__name__} "
                f"and {type(right).__name__}"
            )
        if op is BinaryOperator.LT:
            return left < right
        if op is BinaryOperator.LE:
            return left <= right
        if op is BinaryOperator.GT:
            return left > right
        return left >= right

    @staticmethod
    def _require_bool(value: object, origin: Expr) -> None:
        if not isinstance(value, bool):
            raise PRMLRuntimeError(
                f"{origin} evaluated to {type(value).__name__}, expected a "
                f"boolean"
            )
