"""PRML abstract syntax tree — the metamodel excerpt of Fig. 5, in code.

The node hierarchy mirrors the paper's metamodel: a :class:`Rule` owns an
event part, an optional condition and a sequence of actions (wrapped in
structural statements).  Spatial operators (Section 4.2.3) and the four
personalization actions (Section 4.2.4) are first-class nodes, so the
FIG5 benchmark can instantiate and round-trip every construct.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

from repro.geomd.gtypes_enum import GeometricType

__all__ = [
    "Node",
    "Expr",
    "PathExpr",
    "VarPath",
    "NumberLit",
    "StringLit",
    "QuantityLit",
    "GeomTypeLit",
    "ParameterRef",
    "BinaryOp",
    "BinaryOperator",
    "NotOp",
    "SpatialFunction",
    "SpatialCall",
    "Stmt",
    "IfStmt",
    "ForeachStmt",
    "SetContentAction",
    "SelectInstanceAction",
    "BecomeSpatialAction",
    "AddLayerAction",
    "Event",
    "SessionStartEvent",
    "SessionEndEvent",
    "SpatialSelectionEvent",
    "Rule",
    "MODEL_ROOTS",
]

#: Path-expression roots defined by the paper (Section 4.2.2).
MODEL_ROOTS = ("SUS", "MD", "GeoMD")


class Node:
    """Base class of all AST nodes."""

    __slots__ = ()


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr(Node):
    __slots__ = ()


@dataclass(frozen=True)
class PathExpr(Expr):
    """A model path: ``SUS.DecisionMaker.dm2role.name``, ``GeoMD.Store``..."""

    root: str  # one of MODEL_ROOTS
    steps: tuple[str, ...]

    def __str__(self) -> str:
        return ".".join((self.root,) + self.steps)


@dataclass(frozen=True)
class VarPath(Expr):
    """A loop-variable path: ``s`` or ``s.geometry``."""

    var: str
    steps: tuple[str, ...] = ()

    def __str__(self) -> str:
        return ".".join((self.var,) + self.steps)


@dataclass(frozen=True)
class NumberLit(Expr):
    value: float

    def __str__(self) -> str:
        if self.value == int(self.value):
            return str(int(self.value))
        return repr(self.value)


@dataclass(frozen=True)
class StringLit(Expr):
    value: str

    def __str__(self) -> str:
        escaped = self.value.replace("'", "''")
        return f"'{escaped}'"


@dataclass(frozen=True)
class QuantityLit(Expr):
    """A distance literal with unit: ``5km`` -> (5.0, "km")."""

    value: float
    unit: str

    @property
    def metres(self) -> float:
        from repro.geometry.metrics import convert_to_metres

        return convert_to_metres(self.value, self.unit)

    def __str__(self) -> str:
        if self.value == int(self.value):
            return f"{int(self.value)}{self.unit}"
        return f"{self.value!r}{self.unit}"


@dataclass(frozen=True)
class GeomTypeLit(Expr):
    """A geometric type literal: POINT, LINE, POLYGON, COLLECTION."""

    value: GeometricType

    def __str__(self) -> str:
        return self.value.name


@dataclass(frozen=True)
class ParameterRef(Expr):
    """A designer-defined parameter, e.g. ``threshold`` in Example 5.3."""

    name: str

    def __str__(self) -> str:
        return self.name


class BinaryOperator(enum.Enum):
    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    AND = "and"
    OR = "or"

    @property
    def is_comparison(self) -> bool:
        return self in (
            BinaryOperator.EQ,
            BinaryOperator.NE,
            BinaryOperator.LT,
            BinaryOperator.LE,
            BinaryOperator.GT,
            BinaryOperator.GE,
        )

    @property
    def is_arithmetic(self) -> bool:
        return self in (
            BinaryOperator.ADD,
            BinaryOperator.SUB,
            BinaryOperator.MUL,
            BinaryOperator.DIV,
        )

    @property
    def is_logical(self) -> bool:
        return self in (BinaryOperator.AND, BinaryOperator.OR)


@dataclass(frozen=True)
class BinaryOp(Expr):
    op: BinaryOperator
    left: Expr
    right: Expr


@dataclass(frozen=True)
class NotOp(Expr):
    operand: Expr


class SpatialFunction(enum.Enum):
    """The spatial operators the paper adds to PRML (Section 4.2.3)."""

    INTERSECT = "Intersect"
    DISJOINT = "Disjoint"
    CROSS = "Cross"
    INSIDE = "Inside"
    EQUALS = "Equals"
    DISTANCE = "Distance"
    INTERSECTION = "Intersection"

    @property
    def is_predicate(self) -> bool:
        return self in (
            SpatialFunction.INTERSECT,
            SpatialFunction.DISJOINT,
            SpatialFunction.CROSS,
            SpatialFunction.INSIDE,
            SpatialFunction.EQUALS,
        )


@dataclass(frozen=True)
class SpatialCall(Expr):
    """A spatial operator application, e.g. ``Distance(a, b) ``.

    ``Distance`` accepts one argument as well — the paper's Example 5.3
    applies it to a nested ``Intersection`` result; the unary semantics
    (arc length along the hosting line) are documented in DESIGN.md.
    """

    function: SpatialFunction
    args: tuple[Expr, ...]


# ---------------------------------------------------------------------------
# Statements (rule bodies)
# ---------------------------------------------------------------------------


class Stmt(Node):
    __slots__ = ()


@dataclass(frozen=True)
class IfStmt(Stmt):
    condition: Expr
    then_body: tuple[Stmt, ...]
    else_body: tuple[Stmt, ...] = ()


@dataclass(frozen=True)
class ForeachStmt(Stmt):
    """``Foreach v1, v2 in (Src1, Src2) ... endForeach``.

    Multiple variables iterate the *cartesian product* of their sources —
    Example 5.3 tests every (train, city, airport) combination.
    """

    variables: tuple[str, ...]
    sources: tuple[PathExpr, ...]
    body: tuple[Stmt, ...]


@dataclass(frozen=True)
class SetContentAction(Stmt):
    """``SetContent(p, v)`` — update user-model content at runtime."""

    target: PathExpr
    value: Expr


@dataclass(frozen=True)
class SelectInstanceAction(Stmt):
    """``SelectInstance(i)`` — keep an instance in the personalized view."""

    instance: Expr  # VarPath or PathExpr


@dataclass(frozen=True)
class BecomeSpatialAction(Stmt):
    """``BecomeSpatial(e, g)`` — add a geometric description to an element."""

    element: PathExpr
    geometric_type: GeomTypeLit


@dataclass(frozen=True)
class AddLayerAction(Stmt):
    """``AddLayer(s, g)`` — add a thematic layer to the MD structure."""

    layer_name: StringLit
    geometric_type: GeomTypeLit


# ---------------------------------------------------------------------------
# Events and rules
# ---------------------------------------------------------------------------


class Event(Node):
    __slots__ = ()


@dataclass(frozen=True)
class SessionStartEvent(Event):
    def __str__(self) -> str:
        return "SessionStart"


@dataclass(frozen=True)
class SessionEndEvent(Event):
    def __str__(self) -> str:
        return "SessionEnd"


@dataclass(frozen=True)
class SpatialSelectionEvent(Event):
    """``SpatialSelection(target, spatial-expression)`` (Section 4.2.1)."""

    target: PathExpr
    condition: Expr


@dataclass(frozen=True)
class Rule(Node):
    """A complete ECA personalization rule."""

    name: str
    event: Event
    body: tuple[Stmt, ...]

    def actions(self) -> list[Stmt]:
        """Flatten the body to its action statements (for phase detection)."""
        out: list[Stmt] = []

        def walk(stmts: Sequence[Stmt]) -> None:
            for stmt in stmts:
                if isinstance(stmt, IfStmt):
                    walk(stmt.then_body)
                    walk(stmt.else_body)
                elif isinstance(stmt, ForeachStmt):
                    walk(stmt.body)
                else:
                    out.append(stmt)

        walk(self.body)
        return out
