"""Canonical pretty-printer for PRML ASTs.

``parse(print(ast)) == ast`` is property-tested; the printer is also how
SpatialSelection event *patterns* are matched structurally (two event
declarations are the same subscription iff their canonical prints agree).
"""

from __future__ import annotations

from repro.errors import PRMLError
from repro.prml.ast import (
    AddLayerAction,
    BecomeSpatialAction,
    BinaryOp,
    BinaryOperator,
    Event,
    Expr,
    ForeachStmt,
    GeomTypeLit,
    IfStmt,
    NotOp,
    NumberLit,
    ParameterRef,
    PathExpr,
    QuantityLit,
    Rule,
    SelectInstanceAction,
    SessionEndEvent,
    SessionStartEvent,
    SetContentAction,
    SpatialCall,
    SpatialSelectionEvent,
    Stmt,
    StringLit,
    VarPath,
)

__all__ = ["print_rule", "print_expr", "print_event"]

_PRECEDENCE = {
    BinaryOperator.OR: 1,
    BinaryOperator.AND: 2,
    BinaryOperator.EQ: 4,
    BinaryOperator.NE: 4,
    BinaryOperator.LT: 4,
    BinaryOperator.LE: 4,
    BinaryOperator.GT: 4,
    BinaryOperator.GE: 4,
    BinaryOperator.ADD: 5,
    BinaryOperator.SUB: 5,
    BinaryOperator.MUL: 6,
    BinaryOperator.DIV: 6,
}

#: ``not`` binds tighter than the logical connectives but looser than
#: comparisons; it needs parentheses anywhere the grammar would not parse
#: a prefix ``not`` (operands of comparisons/arithmetic).
_NOT_PRECEDENCE = 3


def print_expr(
    expr: Expr,
    parent_precedence: int = 0,
    bound: frozenset[str] = frozenset(),
) -> str:
    """Render an expression with minimal (but sufficient) parenthesization.

    Comparisons are *non-associative* in the grammar, so a comparison
    operand of another comparison is always parenthesized; ``not`` is only
    valid at the logical level, so it is parenthesized under any tighter
    context.

    ``bound`` carries the Foreach variables in scope: a bare identifier
    is context-sensitive (variable if bound, parameter otherwise), so a
    :class:`ParameterRef` whose name is shadowed by a loop variable must
    print with the explicit ``$name`` escape or the re-parse would
    capture it as the variable.
    """
    if isinstance(expr, ParameterRef):
        return f"${expr.name}" if expr.name in bound else expr.name
    if isinstance(expr, (PathExpr, VarPath, NumberLit, StringLit, QuantityLit, GeomTypeLit)):
        return str(expr)
    if isinstance(expr, NotOp):
        text = f"not {print_expr(expr.operand, _NOT_PRECEDENCE + 1, bound)}"
        if parent_precedence > _NOT_PRECEDENCE:
            return f"({text})"
        return text
    if isinstance(expr, SpatialCall):
        args = ", ".join(print_expr(a, bound=bound) for a in expr.args)
        return f"{expr.function.value}({args})"
    if isinstance(expr, BinaryOp):
        precedence = _PRECEDENCE[expr.op]
        op_text = expr.op.value
        separator = f" {op_text} " if expr.op.is_logical else op_text
        # Non-associative comparisons parenthesize both operands at the
        # same level; left-associative operators only the right one.
        left_floor = precedence + 1 if expr.op.is_comparison else precedence
        text = (
            f"{print_expr(expr.left, left_floor, bound)}"
            f"{separator}"
            f"{print_expr(expr.right, precedence + 1, bound)}"
        )
        if precedence < parent_precedence:
            return f"({text})"
        return text
    raise PRMLError(f"cannot print expression {type(expr).__name__}")


def print_event(event: Event) -> str:
    if isinstance(event, SessionStartEvent):
        return "SessionStart"
    if isinstance(event, SessionEndEvent):
        return "SessionEnd"
    if isinstance(event, SpatialSelectionEvent):
        return (
            f"SpatialSelection({event.target}, {print_expr(event.condition)})"
        )
    raise PRMLError(f"cannot print event {type(event).__name__}")


def _print_stmt(
    stmt: Stmt, indent: int, bound: frozenset[str] = frozenset()
) -> list[str]:
    pad = "  " * indent
    if isinstance(stmt, IfStmt):
        lines = [f"{pad}If ({print_expr(stmt.condition, bound=bound)}) then"]
        for inner in stmt.then_body:
            lines.extend(_print_stmt(inner, indent + 1, bound))
        if stmt.else_body:
            lines.append(f"{pad}else")
            for inner in stmt.else_body:
                lines.extend(_print_stmt(inner, indent + 1, bound))
        lines.append(f"{pad}endIf")
        return lines
    if isinstance(stmt, ForeachStmt):
        variables = ", ".join(stmt.variables)
        sources = ", ".join(str(s) for s in stmt.sources)
        lines = [f"{pad}Foreach {variables} in ({sources})"]
        inner_bound = bound | set(stmt.variables)
        for inner in stmt.body:
            lines.extend(_print_stmt(inner, indent + 1, inner_bound))
        lines.append(f"{pad}endForeach")
        return lines
    if isinstance(stmt, SetContentAction):
        value = print_expr(stmt.value, bound=bound)
        return [f"{pad}SetContent({stmt.target}, {value})"]
    if isinstance(stmt, SelectInstanceAction):
        return [f"{pad}SelectInstance({print_expr(stmt.instance, bound=bound)})"]
    if isinstance(stmt, BecomeSpatialAction):
        return [f"{pad}BecomeSpatial({stmt.element}, {stmt.geometric_type})"]
    if isinstance(stmt, AddLayerAction):
        return [f"{pad}AddLayer({stmt.layer_name}, {stmt.geometric_type})"]
    raise PRMLError(f"cannot print statement {type(stmt).__name__}")


def print_rule(rule: Rule) -> str:
    """Render a rule in the paper's concrete syntax (canonical layout)."""
    lines = [f"Rule:{rule.name} When {print_event(rule.event)} do"]
    for stmt in rule.body:
        lines.extend(_print_stmt(stmt, 1))
    lines.append("endWhen")
    return "\n".join(lines)
