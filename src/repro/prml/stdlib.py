"""Runtime semantics of the PRML spatial operators.

The kernel (:mod:`repro.geometry`) implements the symmetric OGC
operations; this module layers the *paper's* operator conventions on top
(Section 4.2.3):

* **order-dependent Intersection** — "if we intersect LINE type with
  POINT the operator returns a COLLECTION type of sublines.  However, if
  it is POINT intersecting LINE type the operator returns a COLLECTION
  type of points."  LINE ∩ POINT therefore produces a
  :class:`LineAnchoredCollection` — the sub-lines of the host line split
  at the (snapped) point, remembering the host and the anchor points so
  further intersections can refine it;
* **unary Distance over such a collection** — Example 5.3 computes
  ``Distance(Intersection(Intersection(t, c), a))``: the travel distance
  along train line *t* between the city stop and the airport stop (see
  DESIGN.md, "Ex. 5.3 semantics").  An empty collection has distance
  ``+inf`` so enclosing ``< 50km`` conditions are simply false.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import PRMLRuntimeError
from repro.geometry import (
    Geometry,
    GeometryCollection,
    LineString,
    Metric,
    MultiPoint,
    Point,
    split_line_at,
)
from repro.geometry import algorithms as alg
from repro.geometry import intersection as kernel_intersection
from repro.geometry import (
    crosses as g_crosses,
)
from repro.geometry import (
    disjoint as g_disjoint,
)
from repro.geometry import (
    equals as g_equals,
)
from repro.geometry import (
    intersects as g_intersects,
)
from repro.geometry import (
    within as g_within,
)
from repro.prml.ast import SpatialFunction

__all__ = [
    "LineAnchoredCollection",
    "prml_intersection",
    "prml_distance",
    "prml_predicate",
]


class LineAnchoredCollection:
    """The paper's "COLLECTION of sublines" with provenance.

    Produced by LINE ∩ POINT: the host line, the anchor points that split
    it, and the resulting sub-lines.  Intersecting it with further points
    adds anchors.  Unary ``Distance`` over it measures the along-line arc
    between the first and last anchors.
    """

    def __init__(self, host: LineString, anchors: Sequence[Point]) -> None:
        self.host = host
        self.anchors = tuple(anchors)

    @property
    def sublines(self) -> list[LineString]:
        return split_line_at(self.host, list(self.anchors))

    @property
    def is_empty(self) -> bool:
        return not self.anchors

    def with_anchor(self, anchor: Point) -> "LineAnchoredCollection":
        return LineAnchoredCollection(self.host, self.anchors + (anchor,))

    def arc_distance(self) -> float:
        """Along-line distance between the first and last anchors."""
        if len(self.anchors) < 2:
            return math.inf
        return self.host.arc_between(self.anchors[0], self.anchors[-1])

    def __repr__(self) -> str:
        return (
            f"<LineAnchoredCollection host_len={self.host.length:.1f} "
            f"anchors={len(self.anchors)}>"
        )


def _snap_to_line(
    point: Point, line: LineString, snap_tolerance: float
) -> Point | None:
    """The on-line point nearest ``point`` if within tolerance, else None."""
    arc, nearest = alg.locate_on_polyline(point.coord, line.coord_list)
    del arc
    if alg.distance(point.coord, nearest) <= snap_tolerance:
        return Point(*nearest)
    return None


def prml_intersection(
    a: object, b: object, snap_tolerance: float = 1e-6
) -> object:
    """The paper's order-dependent Intersection operator.

    Dispatch:

    * ``LINE ∩ POINT`` → :class:`LineAnchoredCollection` (sub-lines);
    * ``LineAnchoredCollection ∩ POINT`` → collection with one more anchor;
    * ``POINT ∩ LINE`` → collection of points (the snapped point);
    * anything else → the symmetric kernel intersection.

    ``snap_tolerance`` (metres in the bound CRS) absorbs coordinate noise
    between station points and line vertices.
    """
    if isinstance(a, LineAnchoredCollection):
        if not isinstance(b, Point):
            raise PRMLRuntimeError(
                f"cannot intersect a subline collection with "
                f"{type(b).__name__}; expected a POINT"
            )
        if a.is_empty:
            return a
        snapped = _snap_to_line(b, a.host, snap_tolerance)
        if snapped is None:
            return LineAnchoredCollection(a.host, ())
        return a.with_anchor(snapped)
    if not isinstance(a, Geometry) or not isinstance(b, Geometry):
        raise PRMLRuntimeError(
            f"Intersection expects geometries, got {type(a).__name__} and "
            f"{type(b).__name__}"
        )
    if isinstance(a, LineString) and isinstance(b, Point):
        snapped = _snap_to_line(b, a, snap_tolerance)
        if snapped is None:
            return LineAnchoredCollection(a, ())
        return LineAnchoredCollection(a, (snapped,))
    if isinstance(a, Point) and isinstance(b, LineString):
        snapped = _snap_to_line(a, b, snap_tolerance)
        if snapped is None:
            return GeometryCollection(())
        return MultiPoint((snapped,))
    return kernel_intersection(a, b)


def prml_distance(
    args: Sequence[object], metric: Metric
) -> float:
    """The paper's Distance operator (binary metres, or unary arc length)."""
    if len(args) == 2:
        a, b = args
        if not isinstance(a, Geometry) or not isinstance(b, Geometry):
            raise PRMLRuntimeError(
                f"Distance expects geometries, got {type(a).__name__} and "
                f"{type(b).__name__}"
            )
        return metric.distance(a, b)
    if len(args) != 1:
        raise PRMLRuntimeError(f"Distance takes 1 or 2 arguments, got {len(args)}")
    value = args[0]
    if isinstance(value, LineAnchoredCollection):
        return value.arc_distance()
    if isinstance(value, Geometry) and value.is_empty:
        return math.inf
    raise PRMLRuntimeError(
        f"unary Distance expects a subline collection (from LINE ∩ POINT "
        f"intersections), got {type(value).__name__}"
    )


_PREDICATES = {
    SpatialFunction.INTERSECT: g_intersects,
    SpatialFunction.DISJOINT: g_disjoint,
    SpatialFunction.CROSS: g_crosses,
    SpatialFunction.INSIDE: g_within,
    SpatialFunction.EQUALS: g_equals,
}


def prml_predicate(function: SpatialFunction, a: object, b: object) -> bool:
    """Evaluate a boolean spatial operator on two geometry values."""
    if function not in _PREDICATES:
        raise PRMLRuntimeError(f"{function.value} is not a boolean predicate")
    if isinstance(a, LineAnchoredCollection):
        a = GeometryCollection(a.sublines) if not a.is_empty else GeometryCollection(())
    if isinstance(b, LineAnchoredCollection):
        b = GeometryCollection(b.sublines) if not b.is_empty else GeometryCollection(())
    if not isinstance(a, Geometry) or not isinstance(b, Geometry):
        raise PRMLRuntimeError(
            f"{function.value} expects geometries, got {type(a).__name__} "
            f"and {type(b).__name__}"
        )
    if a.is_empty or b.is_empty:
        return function is SpatialFunction.DISJOINT
    return _PREDICATES[function](a, b)
