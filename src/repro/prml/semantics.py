"""Static semantic analysis of PRML rules.

Parsed rules are checked against the three models they navigate before any
execution (failing fast at design time, like the paper's CASE tooling
would):

* ``SUS.`` paths against the spatial-aware user model schema;
* ``MD.`` paths against the multidimensional schema;
* ``GeoMD.`` paths against the geographic MD schema — including layers
  added *earlier in the same rule* by ``AddLayer`` (Example 5.3 adds the
  Train layer and immediately iterates it);
* expression typing: spatial predicates yield booleans, ``Distance``
  yields metres, quantity literals only meet numeric comparisons, logical
  connectives take booleans, and so on.

The analyzer reports every problem it finds (it does not stop at the
first), raising :class:`~repro.errors.PRMLSemanticError` with the full
list.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import (
    PRMLSemanticError,
    SchemaError,
    UserModelError,
)
from repro.geomd.schema import GEOMETRY_ATTRIBUTE, GeoMDSchema
from repro.mdm.model import MDSchema, ResolvedAttribute, ResolvedLevel
from repro.prml.ast import (
    AddLayerAction,
    BecomeSpatialAction,
    BinaryOp,
    Expr,
    ForeachStmt,
    GeomTypeLit,
    IfStmt,
    NotOp,
    NumberLit,
    ParameterRef,
    PathExpr,
    QuantityLit,
    Rule,
    SelectInstanceAction,
    SessionEndEvent,
    SessionStartEvent,
    SetContentAction,
    SpatialCall,
    SpatialFunction,
    SpatialSelectionEvent,
    Stmt,
    StringLit,
    VarPath,
)
from repro.sus.model import UserModelSchema

__all__ = ["ValueType", "SourceInfo", "SemanticAnalyzer", "analyze_rule"]


class ValueType(enum.Enum):
    NUMBER = "number"
    STRING = "string"
    BOOLEAN = "boolean"
    GEOMETRY = "geometry"
    GEOMETRIC_TYPE = "geometric type"
    INSTANCE = "instance"
    INSTANCES = "instance collection"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class SourceInfo:
    """What a Foreach variable ranges over."""

    kind: str  # "level" | "layer"
    dimension: str | None = None
    level: str | None = None
    layer: str | None = None

    @property
    def label(self) -> str:
        if self.kind == "layer":
            return f"layer {self.layer!r}"
        return f"level {self.dimension}.{self.level}"


@dataclass
class _Scope:
    variables: dict[str, SourceInfo] = field(default_factory=dict)


class SemanticAnalyzer:
    """Checks one rule against the bound models."""

    def __init__(
        self,
        user_schema: UserModelSchema,
        md_schema: MDSchema,
        geomd_schema: GeoMDSchema | None = None,
        parameters: dict[str, object] | None = None,
        known_layers: set[str] | None = None,
    ) -> None:
        self.user_schema = user_schema
        self.md_schema = md_schema
        self.geomd_schema = geomd_schema
        self.parameters = dict(parameters or {})
        #: Layers promised by other (earlier-registered) rules' AddLayer
        #: actions — Example 5.3's IntAirportCity references the Airport
        #: layer that Example 5.1's addSpatiality creates at runtime.
        self.known_layers = set(known_layers or ())
        self._issues: list[str] = []
        self._scopes: list[_Scope] = []
        self._pending_layers: dict[str, None] = {}

    # -- public API --------------------------------------------------------------

    def analyze(self, rule: Rule) -> list[str]:
        """Return the list of semantic problems (empty when clean)."""
        self._issues = []
        self._scopes = [_Scope()]
        self._pending_layers = {}
        self._check_event(rule)
        for stmt in rule.body:
            self._check_stmt(stmt)
        return self._issues

    def check(self, rule: Rule) -> None:
        """Analyze and raise on any problem."""
        issues = self.analyze(rule)
        if issues:
            bullet_list = "\n  - ".join(issues)
            raise PRMLSemanticError(
                f"rule {rule.name!r} has {len(issues)} semantic problem(s):"
                f"\n  - {bullet_list}"
            )

    # -- helpers ----------------------------------------------------------------

    def _issue(self, message: str) -> None:
        self._issues.append(message)

    def _lookup_var(self, name: str) -> SourceInfo | None:
        for scope in reversed(self._scopes):
            if name in scope.variables:
                return scope.variables[name]
        return None

    def _known_layer(self, name: str) -> bool:
        if name in self._pending_layers or name in self.known_layers:
            return True
        return self.geomd_schema is not None and name in self.geomd_schema.layers

    # -- events ------------------------------------------------------------------

    def _check_event(self, rule: Rule) -> None:
        event = rule.event
        if isinstance(event, (SessionStartEvent, SessionEndEvent)):
            return
        assert isinstance(event, SpatialSelectionEvent)
        info = self._resolve_collection_path(event.target)
        if info is None:
            self._issue(
                f"SpatialSelection target {event.target} does not name a "
                f"level or layer"
            )
        self._infer(event.condition)

    # -- statements -----------------------------------------------------------------

    def _check_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, IfStmt):
            cond_type = self._infer(stmt.condition)
            if cond_type not in (ValueType.BOOLEAN, ValueType.UNKNOWN):
                self._issue(
                    f"If condition has type {cond_type.value}, expected boolean"
                )
            for inner in stmt.then_body:
                self._check_stmt(inner)
            for inner in stmt.else_body:
                self._check_stmt(inner)
            return
        if isinstance(stmt, ForeachStmt):
            scope = _Scope()
            for variable, source in zip(stmt.variables, stmt.sources):
                info = self._resolve_collection_path(source)
                if info is None:
                    self._issue(
                        f"Foreach source {source} does not name a level or "
                        f"layer"
                    )
                    info = SourceInfo(kind="unknown")
                scope.variables[variable] = info
            self._scopes.append(scope)
            for inner in stmt.body:
                self._check_stmt(inner)
            self._scopes.pop()
            return
        if isinstance(stmt, SetContentAction):
            self._check_sus_property_path(stmt.target, writing=True)
            self._infer(stmt.value)
            return
        if isinstance(stmt, SelectInstanceAction):
            expr = stmt.instance
            if isinstance(expr, VarPath) and not expr.steps:
                if self._lookup_var(expr.var) is None:
                    self._issue(
                        f"SelectInstance({expr.var}) references an unbound "
                        f"variable"
                    )
            else:
                self._issue(
                    "SelectInstance expects a Foreach-bound variable"
                )
            return
        if isinstance(stmt, BecomeSpatialAction):
            self._check_become_spatial_target(stmt.element)
            return
        if isinstance(stmt, AddLayerAction):
            name = stmt.layer_name.value
            if not name:
                self._issue("AddLayer requires a non-empty layer name")
            else:
                self._pending_layers[name] = None
            return
        self._issue(f"unknown statement {type(stmt).__name__}")

    # -- paths --------------------------------------------------------------------

    def _check_sus_property_path(self, path: PathExpr, writing: bool) -> ValueType:
        if path.root != "SUS":
            self._issue(f"{path} must be rooted at SUS")
            return ValueType.UNKNOWN
        steps = list(path.steps)
        if not steps:
            self._issue("a SUS path needs at least the user class step")
            return ValueType.UNKNOWN
        if steps[0] != self.user_schema.user_class.name:
            self._issue(
                f"SUS paths start at the user class "
                f"{self.user_schema.user_class.name!r}, got {steps[0]!r}"
            )
            return ValueType.UNKNOWN
        current = steps[0]
        for position, step in enumerate(steps[1:], start=1):
            try:
                kind, target = self.user_schema.navigate(current, step)
            except UserModelError as exc:
                self._issue(str(exc))
                return ValueType.UNKNOWN
            if kind == "property":
                if position != len(steps) - 1:
                    self._issue(
                        f"SUS path {path} continues past property {step!r}"
                    )
                    return ValueType.UNKNOWN
                return {
                    "Integer": ValueType.NUMBER,
                    "Real": ValueType.NUMBER,
                    "String": ValueType.STRING,
                    "Boolean": ValueType.BOOLEAN,
                    "Geometry": ValueType.GEOMETRY,
                }.get(target, ValueType.UNKNOWN)
            current = target
        if writing:
            self._issue(f"SetContent target {path} must end at a property")
        return ValueType.INSTANCE

    def _resolve_collection_path(self, path: PathExpr) -> SourceInfo | None:
        """Resolve a path naming a member/feature collection (or None)."""
        if path.root == "SUS":
            return None
        schema: MDSchema | None
        if path.root == "GeoMD":
            schema = self.geomd_schema
            if schema is None:
                self._issue(
                    f"{path} used but no GeoMD schema is bound (run schema "
                    f"rules first)"
                )
                return None
            if len(path.steps) == 1 and self._known_layer(path.steps[0]):
                return SourceInfo(kind="layer", layer=path.steps[0])
        else:
            schema = self.md_schema
        if not path.steps:
            return None
        try:
            resolved = schema.resolve(path.steps)
        except SchemaError:
            return None
        if isinstance(resolved, ResolvedLevel):
            return SourceInfo(
                kind="level",
                dimension=resolved.dimension.name,
                level=resolved.level.name,
            )
        return None

    def _check_become_spatial_target(self, path: PathExpr) -> None:
        if path.root not in ("MD", "GeoMD"):
            self._issue(f"BecomeSpatial target {path} must be an MD/GeoMD path")
            return
        steps = list(path.steps)
        if steps and steps[-1] == GEOMETRY_ATTRIBUTE:
            steps = steps[:-1]
        if not steps:
            self._issue(f"BecomeSpatial target {path} is empty")
            return
        schema: MDSchema = (
            self.geomd_schema
            if path.root == "GeoMD" and self.geomd_schema is not None
            else self.md_schema
        )
        try:
            resolved = schema.resolve(steps)
        except SchemaError as exc:
            self._issue(f"BecomeSpatial target {path}: {exc}")
            return
        if not isinstance(resolved, ResolvedLevel):
            self._issue(
                f"BecomeSpatial target {path} must name a level (optionally "
                f"via its .{GEOMETRY_ATTRIBUTE} attribute)"
            )

    # -- expression typing ------------------------------------------------------------

    def _infer(self, expr: Expr) -> ValueType:
        if isinstance(expr, NumberLit):
            return ValueType.NUMBER
        if isinstance(expr, QuantityLit):
            return ValueType.NUMBER
        if isinstance(expr, StringLit):
            return ValueType.STRING
        if isinstance(expr, GeomTypeLit):
            return ValueType.GEOMETRIC_TYPE
        if isinstance(expr, ParameterRef):
            value = self.parameters.get(expr.name)
            if value is None and expr.name not in self.parameters:
                self._issue(
                    f"parameter {expr.name!r} is not defined (pass it in "
                    f"the rule parameters)"
                )
                return ValueType.UNKNOWN
            if isinstance(value, bool):
                return ValueType.BOOLEAN
            if isinstance(value, (int, float)):
                return ValueType.NUMBER
            if isinstance(value, str):
                return ValueType.STRING
            return ValueType.UNKNOWN
        if isinstance(expr, PathExpr):
            return self._infer_model_path(expr)
        if isinstance(expr, VarPath):
            return self._infer_var_path(expr)
        if isinstance(expr, NotOp):
            operand = self._infer(expr.operand)
            if operand not in (ValueType.BOOLEAN, ValueType.UNKNOWN):
                self._issue(f"not applied to {operand.value}")
            return ValueType.BOOLEAN
        if isinstance(expr, SpatialCall):
            return self._infer_spatial_call(expr)
        if isinstance(expr, BinaryOp):
            return self._infer_binary(expr)
        self._issue(f"cannot type expression {type(expr).__name__}")
        return ValueType.UNKNOWN

    def _infer_model_path(self, path: PathExpr) -> ValueType:
        if path.root == "SUS":
            return self._check_sus_property_path(path, writing=False)
        schema: MDSchema | None = (
            self.geomd_schema if path.root == "GeoMD" else self.md_schema
        )
        if schema is None:
            self._issue(f"{path} used but no GeoMD schema is bound")
            return ValueType.UNKNOWN
        steps = list(path.steps)
        # Layer references: GeoMD.Airport / GeoMD.Airport.geometry.
        if (
            path.root == "GeoMD"
            and steps
            and self._known_layer(steps[0])
        ):
            if len(steps) == 1:
                return ValueType.INSTANCES
            if len(steps) == 2 and steps[1] == GEOMETRY_ATTRIBUTE:
                return ValueType.GEOMETRY
            self._issue(f"cannot navigate {path} inside layer {steps[0]!r}")
            return ValueType.UNKNOWN
        try:
            resolved = schema.resolve(steps)
        except SchemaError as exc:
            # A trailing .geometry on a level that is not yet spatial is
            # legal in event patterns (the schema rule spatializes later);
            # report everything else.
            if steps and steps[-1] == GEOMETRY_ATTRIBUTE:
                try:
                    inner = schema.resolve(steps[:-1])
                except SchemaError:
                    self._issue(str(exc))
                    return ValueType.UNKNOWN
                if isinstance(inner, ResolvedLevel):
                    return ValueType.GEOMETRY
            self._issue(str(exc))
            return ValueType.UNKNOWN
        if isinstance(resolved, ResolvedLevel):
            return ValueType.INSTANCES
        assert isinstance(resolved, ResolvedAttribute)
        type_name = resolved.attribute.type.name
        return {
            "Integer": ValueType.NUMBER,
            "Real": ValueType.NUMBER,
            "String": ValueType.STRING,
            "Boolean": ValueType.BOOLEAN,
            "Geometry": ValueType.GEOMETRY,
        }.get(type_name, ValueType.UNKNOWN)

    def _infer_var_path(self, expr: VarPath) -> ValueType:
        info = self._lookup_var(expr.var)
        if info is None:
            self._issue(f"unbound variable {expr.var!r}")
            return ValueType.UNKNOWN
        if not expr.steps:
            return ValueType.INSTANCE
        if len(expr.steps) > 1:
            self._issue(
                f"variable path {expr} navigates more than one step"
            )
            return ValueType.UNKNOWN
        step = expr.steps[0]
        if step == GEOMETRY_ATTRIBUTE:
            return ValueType.GEOMETRY
        if info.kind == "level":
            assert info.dimension is not None and info.level is not None
            try:
                level = self.md_schema.dimension(info.dimension).level(info.level)
            except SchemaError:
                if self.geomd_schema is None:
                    self._issue(f"cannot check {expr}: unknown level")
                    return ValueType.UNKNOWN
                level = self.geomd_schema.dimension(info.dimension).level(info.level)
            if step not in level.attributes:
                self._issue(
                    f"{expr}: level {info.dimension}.{info.level} has no "
                    f"attribute {step!r}"
                )
                return ValueType.UNKNOWN
            type_name = level.attributes[step].type.name
            return {
                "Integer": ValueType.NUMBER,
                "Real": ValueType.NUMBER,
                "String": ValueType.STRING,
                "Boolean": ValueType.BOOLEAN,
                "Geometry": ValueType.GEOMETRY,
            }.get(type_name, ValueType.UNKNOWN)
        if info.kind == "layer":
            if step in ("name",):
                return ValueType.STRING
            return ValueType.UNKNOWN
        return ValueType.UNKNOWN

    def _infer_spatial_call(self, call: SpatialCall) -> ValueType:
        arg_types = [self._infer(a) for a in call.args]
        geometry_like = (ValueType.GEOMETRY, ValueType.INSTANCE, ValueType.UNKNOWN)
        if call.function is SpatialFunction.DISTANCE:
            if len(call.args) == 2:
                for arg_type, arg in zip(arg_types, call.args):
                    if arg_type not in geometry_like:
                        self._issue(
                            f"Distance argument {arg} has type "
                            f"{arg_type.value}, expected geometry"
                        )
            # Unary Distance takes a (line-anchored) collection; its only
            # well-typed producer is a nested Intersection call.
            elif not isinstance(call.args[0], SpatialCall) or call.args[
                0
            ].function is not SpatialFunction.INTERSECTION:
                self._issue(
                    "unary Distance expects a nested Intersection(...) "
                    "argument (see DESIGN.md on Example 5.3)"
                )
            return ValueType.NUMBER
        if call.function is SpatialFunction.INTERSECTION:
            for arg_type, arg in zip(arg_types, call.args):
                if arg_type not in geometry_like and not (
                    isinstance(arg, SpatialCall)
                    and arg.function is SpatialFunction.INTERSECTION
                ):
                    self._issue(
                        f"Intersection argument {arg} has type "
                        f"{arg_type.value}, expected geometry"
                    )
            return ValueType.GEOMETRY
        # Boolean predicates.
        for arg_type, arg in zip(arg_types, call.args):
            if arg_type not in geometry_like:
                self._issue(
                    f"{call.function.value} argument {arg} has type "
                    f"{arg_type.value}, expected geometry"
                )
        return ValueType.BOOLEAN

    def _infer_binary(self, expr: BinaryOp) -> ValueType:
        left = self._infer(expr.left)
        right = self._infer(expr.right)
        op = expr.op
        if op.is_logical:
            for side, side_type in (("left", left), ("right", right)):
                if side_type not in (ValueType.BOOLEAN, ValueType.UNKNOWN):
                    self._issue(
                        f"{op.value} {side} operand has type {side_type.value}"
                    )
            return ValueType.BOOLEAN
        if op.is_arithmetic:
            for side, side_type in (("left", left), ("right", right)):
                if side_type not in (ValueType.NUMBER, ValueType.UNKNOWN):
                    self._issue(
                        f"arithmetic {op.value} {side} operand has type "
                        f"{side_type.value}, expected number"
                    )
            return ValueType.NUMBER
        # Comparisons.
        if op.value in ("<", "<=", ">", ">="):
            for side, side_type in (("left", left), ("right", right)):
                if side_type not in (ValueType.NUMBER, ValueType.UNKNOWN):
                    self._issue(
                        f"ordering comparison {op.value} {side} operand has "
                        f"type {side_type.value}, expected number"
                    )
        else:  # = and <>
            comparable = {left, right} - {ValueType.UNKNOWN}
            if len(comparable) == 2:
                self._issue(
                    f"comparison {op.value} mixes {left.value} and "
                    f"{right.value}"
                )
        return ValueType.BOOLEAN


def analyze_rule(
    rule: Rule,
    user_schema: UserModelSchema,
    md_schema: MDSchema,
    geomd_schema: GeoMDSchema | None = None,
    parameters: dict[str, object] | None = None,
) -> list[str]:
    """Convenience wrapper around :class:`SemanticAnalyzer`."""
    analyzer = SemanticAnalyzer(user_schema, md_schema, geomd_schema, parameters)
    return analyzer.analyze(rule)
