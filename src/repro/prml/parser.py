"""Recursive-descent parser for PRML rule text.

Grammar (paper concrete syntax, Section 5):

.. code-block:: text

    rules      := rule+
    rule       := "Rule" ":" IDENT "When" event "do" body "endWhen"
    event      := "SessionStart" | "SessionEnd"
                | "SpatialSelection" "(" path "," expr ")"
    body       := stmt*
    stmt       := if | foreach | action
    if         := "If" "(" expr ")" "then" body ["else" body] "endIf"
    foreach    := "Foreach" IDENT ("," IDENT)* "in"
                  "(" path ("," path)* ")" body "endForeach"
    action     := "SetContent" "(" path "," expr ")"
                | "SelectInstance" "(" expr ")"
                | "BecomeSpatial" "(" path "," geomtype ")"
                | "AddLayer" "(" STRING "," geomtype ")"
    expr       := or-expr with the usual precedence
                  (or < and < not < comparison < additive < multiplicative)
    primary    := literal | quantity | spatial-call | path | var | "(" expr ")"

Paths starting with ``SUS``/``MD``/``GeoMD`` are model paths; a bare
identifier is a loop variable when bound by an enclosing ``Foreach``, a
geometric type literal if it names one, else a designer parameter.
"""

from __future__ import annotations

from repro.errors import PRMLSyntaxError
from repro.geomd.gtypes_enum import GeometricType
from repro.prml.ast import (
    AddLayerAction,
    BecomeSpatialAction,
    BinaryOp,
    BinaryOperator,
    Event,
    Expr,
    ForeachStmt,
    GeomTypeLit,
    IfStmt,
    MODEL_ROOTS,
    NotOp,
    NumberLit,
    ParameterRef,
    PathExpr,
    QuantityLit,
    Rule,
    SelectInstanceAction,
    SessionEndEvent,
    SessionStartEvent,
    SetContentAction,
    SpatialCall,
    SpatialFunction,
    SpatialSelectionEvent,
    Stmt,
    StringLit,
    VarPath,
)
from repro.prml.lexer import Token, TokenKind, tokenize

__all__ = ["parse_rule", "parse_rules"]

_SPATIAL_NAMES = {fn.value: fn for fn in SpatialFunction}
_ACTION_NAMES = {"SetContent", "SelectInstance", "BecomeSpatial", "AddLayer"}
_GEOM_NAMES = {t.name for t in GeometricType}
_COMPARISONS = {"=", "<>", "<", "<=", ">", ">="}


class _Parser:
    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.index = 0
        self._scopes: list[set[str]] = []

    # -- token plumbing --------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.current
        if token.kind != TokenKind.EOF:
            self.index += 1
        return token

    def error(self, message: str) -> PRMLSyntaxError:
        token = self.current
        return PRMLSyntaxError(
            f"{message} (found {token.value!r})", token.line, token.column
        )

    def expect_keyword(self, word: str) -> Token:
        token = self.current
        if token.kind != TokenKind.KEYWORD or token.value != word:
            raise self.error(f"expected keyword {word!r}")
        return self.advance()

    def expect_punct(self, punct: str) -> Token:
        token = self.current
        if token.kind != TokenKind.PUNCT or token.value != punct:
            raise self.error(f"expected {punct!r}")
        return self.advance()

    def expect_ident(self) -> Token:
        token = self.current
        if token.kind != TokenKind.IDENT:
            raise self.error("expected an identifier")
        return self.advance()

    def at_keyword(self, word: str) -> bool:
        return self.current.kind == TokenKind.KEYWORD and self.current.value == word

    def at_punct(self, punct: str) -> bool:
        return self.current.kind == TokenKind.PUNCT and self.current.value == punct

    def accept_punct(self, punct: str) -> bool:
        if self.at_punct(punct):
            self.advance()
            return True
        return False

    # -- scopes -----------------------------------------------------------------

    def _bound(self, name: str) -> bool:
        return any(name in scope for scope in self._scopes)

    # -- grammar ------------------------------------------------------------------

    def parse_rules(self) -> list[Rule]:
        rules = [self.parse_rule()]
        while self.at_keyword("Rule"):
            rules.append(self.parse_rule())
        if self.current.kind != TokenKind.EOF:
            raise self.error("trailing input after rule")
        return rules

    def parse_rule(self) -> Rule:
        self.expect_keyword("Rule")
        self.expect_punct(":")
        name = self._parse_rule_name()
        self.expect_keyword("When")
        event = self.parse_event()
        self.expect_keyword("do")
        body = self.parse_body(terminators=("endWhen",))
        self.expect_keyword("endWhen")
        return Rule(name=name, event=event, body=tuple(body))

    def _parse_rule_name(self) -> str:
        """Rule names may start with a digit (the paper's ``5kmStores``).

        The lexer splits such a name into quantity/number + identifier
        tokens; the name is their concatenation up to the ``When`` keyword.
        """
        pieces: list[str] = []
        while self.current.kind in (
            TokenKind.IDENT,
            TokenKind.NUMBER,
            TokenKind.QUANTITY,
        ):
            pieces.append(self.advance().value)
        if not pieces:
            raise self.error("expected a rule name")
        return "".join(pieces)

    def parse_event(self) -> Event:
        token = self.current
        if token.kind != TokenKind.IDENT:
            raise self.error("expected an event name")
        if token.value == "SessionStart":
            self.advance()
            return SessionStartEvent()
        if token.value == "SessionEnd":
            self.advance()
            return SessionEndEvent()
        if token.value == "SpatialSelection":
            self.advance()
            self.expect_punct("(")
            target = self.parse_model_path()
            self.expect_punct(",")
            condition = self.parse_expr()
            self.expect_punct(")")
            return SpatialSelectionEvent(target=target, condition=condition)
        raise self.error(
            "unknown event; expected SessionStart, SessionEnd or "
            "SpatialSelection"
        )

    def parse_body(self, terminators: tuple[str, ...]) -> list[Stmt]:
        body: list[Stmt] = []
        while True:
            token = self.current
            if token.kind == TokenKind.EOF:
                raise self.error(
                    f"unterminated block; expected one of {terminators}"
                )
            if token.kind == TokenKind.KEYWORD and token.value in terminators:
                return body
            body.append(self.parse_stmt())

    def parse_stmt(self) -> Stmt:
        if self.at_keyword("If"):
            return self.parse_if()
        if self.at_keyword("Foreach"):
            return self.parse_foreach()
        token = self.current
        if token.kind == TokenKind.IDENT and token.value in _ACTION_NAMES:
            return self.parse_action()
        raise self.error("expected If, Foreach or a personalization action")

    def parse_if(self) -> IfStmt:
        self.expect_keyword("If")
        self.expect_punct("(")
        condition = self.parse_expr()
        self.expect_punct(")")
        self.expect_keyword("then")
        then_body = self.parse_body(terminators=("else", "endIf"))
        else_body: list[Stmt] = []
        if self.at_keyword("else"):
            self.advance()
            else_body = self.parse_body(terminators=("endIf",))
        self.expect_keyword("endIf")
        return IfStmt(
            condition=condition,
            then_body=tuple(then_body),
            else_body=tuple(else_body),
        )

    def parse_foreach(self) -> ForeachStmt:
        self.expect_keyword("Foreach")
        variables = [self.expect_ident().value]
        while self.accept_punct(","):
            variables.append(self.expect_ident().value)
        self.expect_keyword("in")
        self.expect_punct("(")
        sources = [self.parse_model_path()]
        while self.accept_punct(","):
            sources.append(self.parse_model_path())
        self.expect_punct(")")
        if len(variables) != len(sources):
            raise self.error(
                f"Foreach declares {len(variables)} variables but "
                f"{len(sources)} sources"
            )
        duplicates = {v for v in variables if variables.count(v) > 1}
        if duplicates:
            raise self.error(f"duplicate Foreach variables {sorted(duplicates)}")
        self._scopes.append(set(variables))
        try:
            body = self.parse_body(terminators=("endForeach",))
        finally:
            self._scopes.pop()
        self.expect_keyword("endForeach")
        return ForeachStmt(
            variables=tuple(variables),
            sources=tuple(sources),
            body=tuple(body),
        )

    def parse_action(self) -> Stmt:
        name = self.expect_ident().value
        self.expect_punct("(")
        if name == "SetContent":
            target = self.parse_model_path()
            self.expect_punct(",")
            value = self.parse_expr()
            self.expect_punct(")")
            return SetContentAction(target=target, value=value)
        if name == "SelectInstance":
            instance = self.parse_expr()
            self.expect_punct(")")
            return SelectInstanceAction(instance=instance)
        if name == "BecomeSpatial":
            element = self.parse_model_path()
            self.expect_punct(",")
            gtype = self.parse_geom_type()
            self.expect_punct(")")
            return BecomeSpatialAction(element=element, geometric_type=gtype)
        if name == "AddLayer":
            token = self.current
            if token.kind != TokenKind.STRING:
                raise self.error("AddLayer expects a quoted layer name")
            self.advance()
            self.expect_punct(",")
            gtype = self.parse_geom_type()
            self.expect_punct(")")
            return AddLayerAction(
                layer_name=StringLit(token.value), geometric_type=gtype
            )
        raise self.error(f"unknown action {name!r}")  # pragma: no cover

    def parse_geom_type(self) -> GeomTypeLit:
        token = self.current
        if token.kind != TokenKind.IDENT or token.value not in _GEOM_NAMES:
            raise self.error(
                f"expected a geometric type ({sorted(_GEOM_NAMES)})"
            )
        self.advance()
        return GeomTypeLit(GeometricType[token.value])

    def parse_model_path(self) -> PathExpr:
        token = self.expect_ident()
        steps: list[str] = []
        while self.at_punct("."):
            self.advance()
            steps.append(self.expect_ident().value)
        if token.value not in MODEL_ROOTS:
            raise PRMLSyntaxError(
                f"expected a model path rooted at one of {MODEL_ROOTS}, got "
                f"{token.value!r}",
                token.line,
                token.column,
            )
        return PathExpr(root=token.value, steps=tuple(steps))

    # -- expressions ---------------------------------------------------------------

    def parse_expr(self) -> Expr:
        return self.parse_or()

    def parse_or(self) -> Expr:
        left = self.parse_and()
        while self.at_keyword("or"):
            self.advance()
            right = self.parse_and()
            left = BinaryOp(BinaryOperator.OR, left, right)
        return left

    def parse_and(self) -> Expr:
        left = self.parse_not()
        while self.at_keyword("and"):
            self.advance()
            right = self.parse_not()
            left = BinaryOp(BinaryOperator.AND, left, right)
        return left

    def parse_not(self) -> Expr:
        if self.at_keyword("not"):
            self.advance()
            return NotOp(self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> Expr:
        left = self.parse_additive()
        token = self.current
        if token.kind == TokenKind.OPERATOR and token.value in _COMPARISONS:
            self.advance()
            right = self.parse_additive()
            return BinaryOp(BinaryOperator(token.value), left, right)
        return left

    def parse_additive(self) -> Expr:
        left = self.parse_multiplicative()
        while (
            self.current.kind == TokenKind.OPERATOR
            and self.current.value in ("+", "-")
        ):
            op = BinaryOperator(self.advance().value)
            right = self.parse_multiplicative()
            left = BinaryOp(op, left, right)
        return left

    def parse_multiplicative(self) -> Expr:
        left = self.parse_unary()
        while (
            self.current.kind == TokenKind.OPERATOR
            and self.current.value in ("*", "/")
        ):
            op = BinaryOperator(self.advance().value)
            right = self.parse_unary()
            left = BinaryOp(op, left, right)
        return left

    def parse_unary(self) -> Expr:
        if self.current.kind == TokenKind.OPERATOR and self.current.value == "-":
            self.advance()
            operand = self.parse_unary()
            return BinaryOp(BinaryOperator.SUB, NumberLit(0.0), operand)
        return self.parse_primary()

    def parse_primary(self) -> Expr:
        token = self.current
        if token.kind == TokenKind.NUMBER:
            self.advance()
            return NumberLit(float(token.value))
        if token.kind == TokenKind.QUANTITY:
            self.advance()
            number = token.value.rstrip("abcdefghijklmnopqrstuvwxyz")
            unit = token.value[len(number):]
            return QuantityLit(float(number), unit)
        if token.kind == TokenKind.STRING:
            self.advance()
            return StringLit(token.value)
        if self.at_punct("("):
            self.advance()
            inner = self.parse_expr()
            self.expect_punct(")")
            return inner
        if self.at_punct("$"):
            # Explicit parameter escape: a bare identifier is
            # context-sensitive (Foreach variable if bound, parameter
            # otherwise), so ``$name`` is the spelling the printer uses
            # when a loop variable would capture the parameter's name.
            self.advance()
            return ParameterRef(self.expect_ident().value)
        if token.kind == TokenKind.IDENT:
            # Spatial function call?
            if token.value in _SPATIAL_NAMES:
                next_token = self.tokens[self.index + 1]
                if next_token.kind == TokenKind.PUNCT and next_token.value == "(":
                    return self.parse_spatial_call()
            # Geometric type literal?
            if token.value in _GEOM_NAMES:
                self.advance()
                return GeomTypeLit(GeometricType[token.value])
            # Model path?
            if token.value in MODEL_ROOTS:
                return self.parse_model_path()
            # Variable path or parameter.
            self.advance()
            steps: list[str] = []
            while self.at_punct("."):
                self.advance()
                steps.append(self.expect_ident().value)
            if steps or self._bound(token.value):
                return VarPath(var=token.value, steps=tuple(steps))
            return ParameterRef(token.value)
        raise self.error("expected an expression")

    def parse_spatial_call(self) -> SpatialCall:
        name_token = self.expect_ident()
        function = _SPATIAL_NAMES[name_token.value]
        self.expect_punct("(")
        args = [self.parse_expr()]
        while self.accept_punct(","):
            args.append(self.parse_expr())
        self.expect_punct(")")
        if function is SpatialFunction.DISTANCE:
            if len(args) not in (1, 2):
                raise PRMLSyntaxError(
                    f"Distance takes 1 or 2 arguments, got {len(args)}",
                    name_token.line,
                    name_token.column,
                )
        elif len(args) != 2:
            raise PRMLSyntaxError(
                f"{function.value} takes exactly 2 arguments, got {len(args)}",
                name_token.line,
                name_token.column,
            )
        return SpatialCall(function=function, args=tuple(args))


def parse_rule(source: str) -> Rule:
    """Parse exactly one rule from source text."""
    parser = _Parser(source)
    rule = parser.parse_rule()
    if parser.current.kind != TokenKind.EOF:
        raise parser.error("trailing input after rule")
    return rule


def parse_rules(source: str) -> list[Rule]:
    """Parse one or more rules from source text."""
    return _Parser(source).parse_rules()


def parse_expression(source: str) -> Expr:
    """Parse a standalone PRML expression (used for event matching)."""
    parser = _Parser(source)
    expr = parser.parse_expr()
    if parser.current.kind != TokenKind.EOF:
        raise parser.error("trailing input after expression")
    return expr


def parse_path(source: str) -> PathExpr:
    """Parse a standalone model path (``GeoMD.Store.City``...)."""
    parser = _Parser(source)
    path = parser.parse_model_path()
    if parser.current.kind != TokenKind.EOF:
        raise parser.error("trailing input after path")
    return path
