"""Lexer for the PRML concrete syntax used in Section 5 of the paper.

Token categories:

* keywords — ``Rule When do endWhen If then else endIf Foreach in
  endForeach and or not`` (case-sensitive, as printed in the paper);
* identifiers — rule names, path segments, variables, parameters;
* literals — numbers, single-quoted strings, *quantities* (a number with
  an immediately attached unit: ``5km``, ``250m``), geometric type names
  are plain identifiers resolved by the parser;
* operators — ``= <> < <= > >= + - * /``;
* punctuation — ``( ) , . : $`` (``$`` prefixes an identifier to force
  it to a parameter reference where a Foreach variable of the same name
  would otherwise capture the bare spelling).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PRMLSyntaxError
from repro.geometry.metrics import UNIT_FACTORS

__all__ = ["Token", "TokenKind", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset(
    {
        "Rule",
        "When",
        "do",
        "endWhen",
        "If",
        "then",
        "else",
        "endIf",
        "Foreach",
        "in",
        "endForeach",
        "and",
        "or",
        "not",
    }
)

_OPERATORS = ("<=", ">=", "<>", "=", "<", ">", "+", "-", "*", "/")
_PUNCTUATION = "(),.:$"


class TokenKind:
    KEYWORD = "KEYWORD"
    IDENT = "IDENT"
    NUMBER = "NUMBER"
    QUANTITY = "QUANTITY"
    STRING = "STRING"
    OPERATOR = "OPERATOR"
    PUNCT = "PUNCT"
    EOF = "EOF"


@dataclass(frozen=True)
class Token:
    kind: str
    value: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"<{self.kind} {self.value!r} @{self.line}:{self.column}>"


def tokenize(source: str) -> list[Token]:
    """Turn PRML source text into a token list (ending with EOF)."""
    tokens: list[Token] = []
    line = 1
    column = 1
    i = 0
    n = len(source)

    def error(message: str) -> PRMLSyntaxError:
        return PRMLSyntaxError(message, line, column)

    while i < n:
        ch = source[i]
        # -- whitespace & comments ------------------------------------------
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if ch == "#" or source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        start_line, start_col = line, column
        # -- strings -------------------------------------------------------------
        if ch == "'":
            j = i + 1
            buf: list[str] = []
            while j < n:
                if source[j] == "'":
                    if j + 1 < n and source[j + 1] == "'":
                        buf.append("'")
                        j += 2
                        continue
                    break
                if source[j] == "\n":
                    raise error("unterminated string literal")
                buf.append(source[j])
                j += 1
            if j >= n:
                raise error("unterminated string literal")
            text = "".join(buf)
            tokens.append(Token(TokenKind.STRING, text, start_line, start_col))
            column += (j + 1) - i
            i = j + 1
            continue
        # -- numbers / quantities ---------------------------------------------------
        if ch.isdigit() or (
            ch == "." and i + 1 < n and source[i + 1].isdigit()
        ):
            j = i
            seen_dot = False
            while j < n and (source[j].isdigit() or (source[j] == "." and not seen_dot)):
                if source[j] == ".":
                    # A dot not followed by a digit is path punctuation.
                    if j + 1 >= n or not source[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            number_text = source[i:j]
            # Attached unit suffix -> quantity literal (5km, 250m, 3mi).
            k = j
            while k < n and source[k].isalpha():
                k += 1
            suffix = source[j:k]
            if suffix and suffix.lower() in UNIT_FACTORS:
                tokens.append(
                    Token(
                        TokenKind.QUANTITY,
                        f"{number_text}{suffix.lower()}",
                        start_line,
                        start_col,
                    )
                )
                column += k - i
                i = k
                continue
            # A non-unit suffix is not an error: names like the paper's rule
            # "5kmStores" lex as NUMBER + IDENT and are rejoined where a
            # name (not an expression) is expected.
            tokens.append(Token(TokenKind.NUMBER, number_text, start_line, start_col))
            column += j - i
            i = j
            continue
        # -- identifiers / keywords ----------------------------------------------------
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            word = source[i:j]
            kind = TokenKind.KEYWORD if word in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, word, start_line, start_col))
            column += j - i
            i = j
            continue
        # -- operators -----------------------------------------------------------------
        matched = False
        for op in _OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token(TokenKind.OPERATOR, op, start_line, start_col))
                i += len(op)
                column += len(op)
                matched = True
                break
        if matched:
            continue
        # -- punctuation ----------------------------------------------------------------
        if ch in _PUNCTUATION:
            tokens.append(Token(TokenKind.PUNCT, ch, start_line, start_col))
            i += 1
            column += 1
            continue
        raise error(f"unexpected character {ch!r}")

    tokens.append(Token(TokenKind.EOF, "", line, column))
    return tokens
