"""Concurrency & cache-correctness analysis for the repro codebase.

Two halves, one subsystem:

* **Static** — a custom AST lint framework (:mod:`repro.analysis.core`,
  :mod:`repro.analysis.rules`) whose rules machine-check the invariants
  the cache hierarchy relies on: generation-stamped cache keys,
  lock-guarded shared attributes (declared with ``# guarded-by:``
  annotations, see :mod:`repro.analysis.guards`), frozen cached
  payloads, no unlocked check-then-act on shared dicts, and no
  swallowed errors on request paths.  Pre-existing violations are
  grandfathered in a committed baseline
  (:mod:`repro.analysis.baseline`); new ones fail ``repro lint``.

* **Runtime** — a lock-order sanitizer
  (:mod:`repro.analysis.sanitizer`): instrumented ``Lock``/``RLock``
  wrappers (opt-in via ``REPRO_SANITIZE=1``) that record per-thread
  acquisition stacks, build the global lock-order graph, and report
  cycles (potential deadlocks) plus contention/hold statistics.  The
  pytest plugin (:mod:`repro.analysis.pytest_plugin`) runs the test
  suite under instrumentation and fails on any lock-order cycle not in
  the committed ``lock-order-baseline.json``.
"""

__all__ = [
    "ALL_RULES",
    "Baseline",
    "LintRunner",
    "LockOrderSanitizer",
    "Violation",
]

_EXPORTS = {
    "ALL_RULES": ("repro.analysis.rules", "ALL_RULES"),
    "Baseline": ("repro.analysis.baseline", "Baseline"),
    "LintRunner": ("repro.analysis.core", "LintRunner"),
    "LockOrderSanitizer": ("repro.analysis.sanitizer", "LockOrderSanitizer"),
    "Violation": ("repro.analysis.core", "Violation"),
}


def __getattr__(name: str):
    # Lazy re-exports: the hot runtime path (repro.concurrency) imports
    # only the sanitizer; the AST lint machinery loads on first use.
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(name) from None
    from importlib import import_module

    return getattr(import_module(module_name), attr)
