"""``repro lint``: the concurrency / cache-correctness lint gate.

Runs every rule in :mod:`repro.analysis.rules` over the given paths and
reports findings not covered by the committed baseline
(``lint-baseline.json`` at the repo root by default).

Exit status is 1 when new violations exist, and — under
``--check-baseline`` — also when the baseline carries *stale* entries
(findings that no longer occur: fixing a grandfathered violation must
remove its baseline entry in the same change).  ``--write-baseline``
regenerates the file from the current findings.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.baseline import Baseline
from repro.analysis.core import LintRunner

__all__ = ["add_lint_arguments", "run_lint"]

DEFAULT_BASELINE = "lint-baseline.json"


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        metavar="FILE",
        help=f"grandfathered-findings file (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report every finding as new",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="regenerate the baseline from the current findings and exit",
    )
    parser.add_argument(
        "--check-baseline",
        action="store_true",
        help="also fail on stale baseline entries (CI mode)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="output_format",
        help="report format (default: text)",
    )


def _violation_dict(violation) -> dict:
    return {
        "rule": violation.rule,
        "path": violation.path,
        "line": violation.line,
        "scope": violation.scope,
        "message": violation.message,
    }


def run_lint(args: argparse.Namespace) -> int:
    violations = LintRunner().run(args.paths)
    baseline_path = Path(args.baseline)

    if args.write_baseline:
        Baseline.from_violations(violations).save(baseline_path)
        print(f"wrote {len(violations)} grandfathered findings to {baseline_path}")
        return 0

    baseline = Baseline() if args.no_baseline else Baseline.load(baseline_path)
    new, grandfathered, stale = baseline.split(violations)

    failed = bool(new) or (args.check_baseline and bool(stale))
    if args.output_format == "json":
        print(
            json.dumps(
                {
                    "new": [_violation_dict(v) for v in new],
                    "grandfathered": [_violation_dict(v) for v in grandfathered],
                    "stale": stale,
                    "ok": not failed,
                },
                indent=2,
            )
        )
        return 1 if failed else 0

    for violation in new:
        print(violation.format())
    if stale:
        print(
            f"{len(stale)} stale baseline entr"
            f"{'y' if len(stale) == 1 else 'ies'} in {baseline_path} "
            "(fixed findings must leave the baseline):",
            file=sys.stderr,
        )
        for entry in stale:
            print(
                f"  {entry['path']}:{entry['line']}: {entry['rule']} "
                f"[{entry['fingerprint']}]",
                file=sys.stderr,
            )
        if not args.check_baseline:
            print(
                "  (informational; --check-baseline makes this fatal)",
                file=sys.stderr,
            )
    summary = (
        f"{len(new)} new, {len(grandfathered)} grandfathered, "
        f"{len(stale)} stale"
    )
    if failed:
        print(f"lint: FAIL ({summary})", file=sys.stderr)
        return 1
    print(f"lint: ok ({summary})")
    return 0
