"""Sanitizer-instrumented pytest runs (loaded from the root conftest).

Does nothing unless ``REPRO_SANITIZE=1`` — the ordinary test run pays no
instrumentation cost.  When enabled, a fresh process-global
:class:`~repro.analysis.sanitizer.LockOrderSanitizer` is installed for
the whole session, so every lock the runtime creates through
:func:`repro.concurrency.make_lock` reports into one order graph.  At
session end the plugin:

* writes the full graph (stats, edges with example sites, cycles) to
  the path in ``REPRO_SANITIZE_GRAPH`` if set — CI uploads this as an
  artifact;
* compares the observed lock-order cycles against the committed
  ``lock-order-baseline.json`` and **fails the run** (exit status 1) on
  any cycle not listed there.  The committed baseline is empty: a new
  cycle is a potential deadlock and must be fixed, not baselined,
  unless a reviewer deliberately grandfathers it.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.analysis import sanitizer as _sanitizer

__all__ = ["GRAPH_ENV", "BASELINE_NAME"]

#: Where to write the order-graph artifact (no artifact when unset).
GRAPH_ENV = "REPRO_SANITIZE_GRAPH"
#: Committed grandfathered-cycles file, looked up at the pytest root.
BASELINE_NAME = "lock-order-baseline.json"


def pytest_configure(config) -> None:
    if os.environ.get(_sanitizer.ENV_SWITCH) != "1":
        return
    config._repro_sanitizer_previous = _sanitizer.current()
    config._repro_sanitizer = _sanitizer.activate()


def _baseline_cycles(rootpath: Path) -> list[list[str]]:
    path = rootpath / BASELINE_NAME
    if not path.exists():
        return []
    data = json.loads(path.read_text())
    return [sorted(cycle) for cycle in data.get("cycles", [])]


def pytest_sessionfinish(session, exitstatus) -> None:
    sanitizer = getattr(session.config, "_repro_sanitizer", None)
    if sanitizer is None:
        return
    graph = sanitizer.graph()
    graph_path = os.environ.get(GRAPH_ENV)
    if graph_path:
        Path(graph_path).write_text(json.dumps(graph, indent=2) + "\n")
    baseline = _baseline_cycles(Path(str(session.config.rootpath)))
    new_cycles = [cycle for cycle in graph["cycles"] if cycle not in baseline]

    reporter = session.config.pluginmanager.get_plugin("terminalreporter")

    def emit(line: str, **markup) -> None:
        if reporter is not None:
            reporter.write_line(line, **markup)
        else:  # pragma: no cover - no terminal plugin
            print(line)

    emit(
        f"lock-order sanitizer: {len(graph['locks'])} lock classes, "
        f"{len(graph['edges'])} order edges, {len(graph['cycles'])} cycles"
    )
    if new_cycles:
        sites = {
            (edge["held"], edge["acquired"]): edge["site"]
            for edge in graph["edges"]
        }
        emit(
            f"FAILED: lock-order cycles not grandfathered in {BASELINE_NAME}:",
            red=True,
        )
        for cycle in new_cycles:
            emit("  cycle: " + " <-> ".join(cycle), red=True)
            for held, acquired in sites:
                if held in cycle and acquired in cycle:
                    emit(
                        f"    {held} -> {acquired} at {sites[(held, acquired)]}",
                        red=True,
                    )
        session.exitstatus = 1


def pytest_unconfigure(config) -> None:
    if getattr(config, "_repro_sanitizer", None) is None:
        return
    _sanitizer.deactivate(getattr(config, "_repro_sanitizer_previous", None))
    config._repro_sanitizer = None
